//! Reproduces the paper's running example (Fig. 2 and Fig. 3): profiling
//! the gzip-shaped workload and reading flush_block's dependence profile.
//!
//! Run with: `cargo run --example gzip_profile`

use alchemist::prelude::*;
use alchemist::workloads;

fn main() {
    let gzip = workloads::by_name("gzip-1.3.5").expect("suite includes gzip");
    let module = gzip.module();
    let (profile, exec, _, _) = profile_module(
        &module,
        &gzip.exec_config(Scale::Default),
        ProfileConfig::default(),
    )
    .expect("gzip runs");
    let report = ProfileReport::new(&profile, &module);

    println!(
        "profiled gzip-1.3.5 workload: {} instructions, {} constructs\n",
        exec.steps,
        profile.len()
    );

    println!("=== Fig. 2: ranked profile with RAW dependences ===\n");
    print!("{}", report.render(9));

    let fb = report
        .find("Method flush_block")
        .expect("flush_block profiled");
    println!("\n=== Fig. 3: WAR/WAW profile of flush_block ===\n");
    print!("{}", report.render_war_waw(fb.head));

    println!("\n=== reading the profile like the paper does ===\n");
    println!(
        "flush_block ran {} times for {} instructions total (Tdur ~ {}).",
        fb.inst, fb.ttotal, fb.tdur_mean
    );
    let violating: Vec<_> = fb.edges_of(DepKind::Raw).filter(|e| e.violating).collect();
    println!(
        "{} RAW edges cross its boundary; {} violate Tdep > Tdur:",
        fb.edges_of(DepKind::Raw).count(),
        violating.len()
    );
    for e in &violating {
        println!(
            "  line {} -> line {} on `{}` (Tdep = {})",
            e.head_line,
            e.tail_line,
            e.var.as_deref().unwrap_or("?"),
            e.min_tdep
        );
    }
    println!(
        "\nAs in the paper, the short-distance edges are the trailing-bits\n\
         write (outcnt/bi_buf) against the continuation — they only occur\n\
         for the final call outside the driver loop, so the in-loop calls\n\
         remain spawnable after privatizing the flag state."
    );
}
