//! Quickstart: profile a small program and read its dependence report.
//!
//! Run with: `cargo run --example quickstart`

use alchemist::prelude::*;

const PROGRAM: &str = "
// A producer procedure whose work could overlap with its continuation:
// each call compresses one chunk into its own output slice, but a shared
// statistics counter chains the calls together.
int out[256];
int stats;
void compress_chunk(int chunk) {
    int i;
    int acc = 0;
    for (i = 0; i < 24; i++) {
        acc = (acc * 31 + chunk * 7 + i) & 65535;
        out[chunk * 24 + i] = acc & 255;
    }
    stats += acc & 15;          // the shared counter
}
int main() {
    int c;
    for (c = 0; c < 8; c++) {
        compress_chunk(c);
    }
    return stats;
}
";

fn main() {
    // One profiled run gives the dependence profile of EVERY construct.
    let outcome = profile_source(PROGRAM, vec![]).expect("program runs");
    let report = outcome.report();

    println!("=== ranked construct profile (Fig. 2 style) ===\n");
    print!("{}", report.render(6));

    // The paper's candidate criterion: a construct is spawnable when every
    // RAW distance exceeds its duration.
    println!("\n=== candidate analysis ===\n");
    for c in report.top(6) {
        let verdict = if c.is_candidate() {
            "spawnable as a future"
        } else {
            "needs transformation (violating RAW)"
        };
        println!("{:<34} -> {verdict}", c.label);
    }

    // WAR/WAW edges tell you what to privatize.
    let worker = report.find("Method compress_chunk").expect("profiled");
    println!("\n=== WAR/WAW profile for compress_chunk (Fig. 3 style) ===\n");
    print!("{}", report.render_war_waw(worker.head));
    println!(
        "\nThe `stats` accumulator chains calls; privatizing it (a per-task\n\
         reduction) removes every violating edge."
    );
}
