//! The full paper workflow on one benchmark: profile, pick candidates,
//! apply the suggested privatizations, and simulate the parallel schedule
//! (the section IV-B2 "parallelization experience").
//!
//! Run with: `cargo run --example parallelize_advisor [workload] [threads]`

use alchemist::prelude::*;
use alchemist::workloads;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let name = args.first().map(String::as_str).unwrap_or("bzip2");
    let threads: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(4);

    let w = workloads::by_name(name).unwrap_or_else(|| {
        eprintln!("unknown workload `{name}`; available:");
        for w in workloads::all() {
            eprintln!("  {}", w.name);
        }
        std::process::exit(1);
    });

    // Step 1: profile the sequential run.
    let module = w.module();
    let exec_cfg = w.exec_config(Scale::Default);
    let (profile, exec, _, _) =
        profile_module(&module, &exec_cfg, ProfileConfig::default()).expect("workload runs");
    let report = ProfileReport::new(&profile, &module);
    println!(
        "{name}: {} instructions, {} constructs profiled",
        exec.steps,
        profile.len()
    );

    // Step 2: candidates = large constructs with few violating RAW deps.
    let candidates = suggest_candidates(&report, &module, 0.02, 8);
    println!("\ncandidates (large, few violating RAW):");
    for c in candidates.iter().take(6) {
        println!(
            "  {:<34} {:>5.1}% violRAW={} privatize=[{}]",
            c.label,
            c.norm_size * 100.0,
            c.violating_raw,
            c.privatize.join(", ")
        );
    }

    // Step 3: apply the paper's transformation recipe for this workload
    // and simulate the parallel schedule.
    let Some(spec) = &w.parallel else {
        println!("\n(no transcription of a paper recipe for this workload)");
        return;
    };
    let mut cfg = ExtractConfig::default();
    for head in w.resolve_targets(&module) {
        cfg = cfg.mark(head);
    }
    for v in spec.privatized {
        cfg = cfg.privatize(v);
    }
    let trace = extract_tasks(&module, &exec_cfg, cfg).expect("workload runs");
    println!(
        "\npaper recipe: {} task(s) spawned, privatized [{}]",
        trace.tasks.len(),
        spec.privatized.join(", ")
    );
    println!(
        "serial fraction after transformation: {:.1}%",
        trace.serial_fraction() * 100.0
    );

    let sim = simulate(&trace, &SimConfig::with_threads(threads));
    println!(
        "\nsimulated on {threads} threads: {:.2}x speedup \
         (sequential {} -> parallel {} instructions)",
        sim.speedup, sim.t_seq, sim.t_par
    );
    if let Some(paper) = spec.paper_speedup {
        println!("paper measured {paper:.2}x on a 4-core Opteron (Table V)");
    }
}
