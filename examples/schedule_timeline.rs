//! Visualizes the simulated parallel schedule of a workload as a text
//! timeline — each row is a worker thread, each letter block a task.
//!
//! Run with: `cargo run --example schedule_timeline [workload] [threads]`

use alchemist::parsim::render_timeline;
use alchemist::prelude::*;
use alchemist::workloads;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let name = args.first().map(String::as_str).unwrap_or("par2");
    let threads: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(4);

    let w = workloads::by_name(name).unwrap_or_else(|| {
        eprintln!("unknown workload `{name}`");
        std::process::exit(1);
    });
    let Some(spec) = &w.parallel else {
        eprintln!("{name} has no parallelization recipe");
        std::process::exit(1);
    };

    let module = w.module();
    let mut cfg = ExtractConfig::default();
    for head in w.resolve_targets(&module) {
        cfg = cfg.mark(head);
    }
    for v in spec.privatized {
        cfg = cfg.privatize(v);
    }
    let trace = extract_tasks(&module, &w.exec_config(Scale::Default), cfg).expect("workload runs");

    println!(
        "{name}: {} tasks, serial fraction {:.1}%\n",
        trace.tasks.len(),
        trace.serial_fraction() * 100.0
    );
    print!(
        "{}",
        render_timeline(&trace, &SimConfig::with_threads(threads), 72)
    );
    println!("\n('.' = worker idle; the serial prefix/joins show up as idle gaps)");
}
