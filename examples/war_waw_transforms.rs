//! Demonstrates the paper's section II guidance: how WAR/WAW profile
//! entries translate into privatization/hoisting transformations, and what
//! each transformation buys in the simulated parallel schedule.
//!
//! Run with: `cargo run --example war_waw_transforms`

use alchemist::prelude::*;
use alchemist::vm::ExecConfig;

/// A worker with three distinct conflict patterns against its continuation:
/// * `last_flags`-style: reset at the end of the call, written at the start
///   of the next (short-distance WAW/WAR -> privatize / hoist the reset);
/// * `buffer`-style: the continuation overwrites what the call read
///   (WAR -> give the call a private copy);
/// * a genuine RAW result that must stay (joined at the read).
const PROGRAM: &str = "
int flags;
int buffer[64];
int results[8];
void work(int round) {
    int i;
    int acc = 0;
    flags = flags + 1;            // start-of-call write to shared state
    for (i = 0; i < 64; i++) {
        acc = (acc + buffer[i] * (round + 1)) & 1048575;
    }
    results[round] = acc;         // the real result (RAW to the join)
    flags = 0;                    // end-of-call reset (the WAW hotspot)
}
int main() {
    int r;
    int i;
    int total = 0;
    for (i = 0; i < 64; i++) buffer[i] = i * 3 + 1;
    for (r = 0; r < 8; r++) {
        work(r);
        for (i = 0; i < 64; i++) buffer[i] = (buffer[i] + r) & 255;  // WAR
        total += results[r];      // joins the future here
    }
    return total;
}
";

fn main() {
    let outcome = profile_source(PROGRAM, vec![]).expect("program runs");
    let report = outcome.report();
    let work = report.find("Method work").expect("work profiled");

    println!("=== WAR/WAW profile of `work` ===\n");
    print!("{}", report.render_war_waw(work.head));

    println!(
        "\nviolating WAW: {} | violating WAR: {} | violating RAW: {}",
        work.violating_waw, work.violating_war, work.violating_raw
    );

    // Simulate three variants, as a programmer following the paper would.
    let module = outcome.module;
    let head = module.func_by_name("work").expect("exists").1.entry;
    let exec = ExecConfig::default();

    let naive = ExtractConfig {
        respect_war_waw: true,
        ..Default::default()
    }
    .mark(head);
    let naive_trace = extract_tasks(&module, &exec, naive).expect("runs");
    let naive_sim = simulate(&naive_trace, &SimConfig::with_threads(4));

    let flags_only = ExtractConfig {
        respect_war_waw: true,
        ..Default::default()
    }
    .mark(head)
    .privatize("flags");
    let flags_trace = extract_tasks(&module, &exec, flags_only).expect("runs");
    let flags_sim = simulate(&flags_trace, &SimConfig::with_threads(4));

    let full = ExtractConfig {
        respect_war_waw: true,
        ..Default::default()
    }
    .mark(head)
    .privatize("flags")
    .privatize("buffer");
    let full_trace = extract_tasks(&module, &exec, full).expect("runs");
    let full_sim = simulate(&full_trace, &SimConfig::with_threads(4));

    println!("\n=== simulated schedules (4 threads, WAR/WAW honored) ===\n");
    println!("untransformed:                 {:.2}x", naive_sim.speedup);
    println!("privatize flags:               {:.2}x", flags_sim.speedup);
    println!("privatize flags + copy buffer: {:.2}x", full_sim.speedup);
    println!(
        "\nThe RAW on results[] remains in all three — the paper's point:\n\
         RAW distances bound the concurrency, WAR/WAW only cost\n\
         transformations."
    );
}
