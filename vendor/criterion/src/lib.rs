//! Offline, dependency-free stand-in for the `criterion` crate.
//!
//! The build container cannot reach crates.io, so this shim provides the
//! subset of criterion used by `crates/bench/benches/overhead.rs`:
//! [`Criterion`], [`Criterion::benchmark_group`], [`Bencher::iter`],
//! [`black_box`], and the [`criterion_group!`]/[`criterion_main!`] macros.
//! It measures wall-clock time (median of `sample_size` samples after one
//! warm-up) and prints one line per benchmark; there is no statistical
//! analysis, HTML report, or baseline comparison.

use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity, re-exported from `std::hint`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 1, "sample_size must be at least 1");
        self.sample_size = n;
        self
    }

    /// Accepted for API compatibility; the shim has no CLI arguments.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, self.sample_size, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }

    /// No-op: the shim prints results as it goes.
    pub fn final_summary(&mut self) {}
}

/// A group of benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 1, "sample_size must be at least 1");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Passed to the closure given to `bench_function`; call [`Bencher::iter`].
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` invocations of `routine`.
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F>(id: &str, sample_size: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    // Warm-up: one untimed iteration (also sizes nothing — the shim always
    // runs one routine call per sample to keep total time bounded).
    let mut bencher = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);

    let mut samples: Vec<Duration> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut bencher = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        samples.push(bencher.elapsed);
    }
    samples.sort_unstable();
    let median = samples[samples.len() / 2];
    let (lo, hi) = (samples[0], samples[samples.len() - 1]);
    println!(
        "{id:<40} time: [{} {} {}]  ({} samples)",
        fmt_duration(lo),
        fmt_duration(median),
        fmt_duration(hi),
        samples.len()
    );
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
