//! Offline, dependency-free stand-in for the `proptest` crate.
//!
//! Implements the subset of the real API used by the Alchemist workspace:
//! deterministic pseudo-random generation (no shrinking), composable
//! [`strategy::Strategy`] values, and the [`proptest!`] test macro. See
//! `README.md` for the differences from the genuine crate.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// The commonly used items, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts a condition inside a `proptest!` body.
///
/// The real crate returns a `TestCaseError`; this shim panics, which fails
/// the surrounding `#[test]` identically (minus shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            panic!($($fmt)*);
        }
    };
}

/// Asserts two values are equal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` == `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            panic!(
                "assertion failed: `{:?}` == `{:?}`: {}",
                l,
                r,
                format_args!($($fmt)*)
            );
        }
    }};
}

/// Asserts two values differ inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: `{:?}` != `{:?}`", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l != *r) {
            panic!(
                "assertion failed: `{:?}` != `{:?}`: {}",
                l,
                r,
                format_args!($($fmt)*)
            );
        }
    }};
}

/// Picks uniformly between several strategies producing the same value type.
///
/// Weighted alternatives (`n => strategy`) are not supported by the shim.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Declares deterministic property tests.
///
/// Mirrors the real macro's surface:
///
/// ```
/// use proptest::prelude::*;
///
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn holds(x in 0u32..100, v in proptest::collection::vec(any::<u64>(), 0..8)) {
///         prop_assert!((x as usize) + v.len() < 108);
///     }
/// }
/// ```
// The doctest necessarily shows `#[test]` inside the macro invocation —
// that's the real API — so the lint about non-running doctest unit tests
// does not apply.
#[allow(clippy::test_attr_in_doctest)]
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { @config($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! {
            @config($crate::test_runner::ProptestConfig::default())
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (@config($config:expr)) => {};
    (@config($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($parm:pat in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $config;
            let mut rng = $crate::test_runner::TestRng::for_test(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for case in 0..config.cases {
                let case_seed = rng.state();
                let run = || {
                    $(let $parm =
                        $crate::strategy::Strategy::generate(&($strategy), &mut rng);)+
                    $body
                };
                if let Err(payload) =
                    ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(run))
                {
                    eprintln!(
                        "proptest case {}/{} failed (rng state {:#x}); \
                         re-run with PROPTEST_SEED={} to reproduce",
                        case + 1,
                        config.cases,
                        case_seed,
                        case_seed,
                    );
                    ::std::panic::resume_unwind(payload);
                }
            }
        }
        $crate::__proptest_tests! { @config($config) $($rest)* }
    };
}
