//! String strategies from regex-like patterns.
//!
//! The real proptest interprets any `&str` as a full regex and generates
//! matching strings. This shim supports the subset the workspace's fuzz
//! tests use: a sequence of atoms — `.` (any printable char), a character
//! class `[...]` (literals, `a-z` ranges, `\n`/`\\`/`\-`/`\[`/`\]`
//! escapes), or a literal character — each optionally repeated with
//! `{n}`, `{lo,hi}`, `*`, `+` or `?`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

#[derive(Debug, Clone)]
enum Atom {
    /// `.` — any character from a printable-heavy pool.
    AnyChar,
    /// `[...]` — one of an explicit set of characters.
    Class(Vec<char>),
    /// A literal character.
    Lit(char),
}

#[derive(Debug, Clone)]
struct Piece {
    atom: Atom,
    lo: usize,
    hi: usize, // inclusive
}

fn unescape(c: char) -> char {
    match c {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        '0' => '\0',
        other => other, // \\, \-, \[, \], \., \{ ...
    }
}

fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Vec<char> {
    let mut set = Vec::new();
    loop {
        let c = match chars.next() {
            None => panic!("unterminated character class in string strategy"),
            Some(']') => break,
            Some('\\') => unescape(chars.next().expect("dangling escape in class")),
            Some(c) => c,
        };
        // A `-` between two class members denotes a range; elsewhere it is
        // literal (the tests escape their literal hyphens anyway).
        if chars.peek() == Some(&'-') {
            let mut lookahead = chars.clone();
            lookahead.next(); // the '-'
            match lookahead.peek() {
                Some(&']') | None => set.push(c), // trailing '-' is literal
                Some(_) => {
                    chars.next(); // consume '-'
                    let end = match chars.next() {
                        Some('\\') => unescape(chars.next().expect("dangling escape in class")),
                        Some(e) => e,
                        None => panic!("unterminated range in character class"),
                    };
                    assert!(c <= end, "inverted range {c:?}-{end:?} in class");
                    for v in c as u32..=end as u32 {
                        if let Some(ch) = char::from_u32(v) {
                            set.push(ch);
                        }
                    }
                    continue;
                }
            }
        } else {
            set.push(c);
        }
    }
    assert!(!set.is_empty(), "empty character class in string strategy");
    set
}

fn parse_repeat(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> (usize, usize) {
    match chars.peek() {
        Some('{') => {
            chars.next();
            let mut spec = String::new();
            for c in chars.by_ref() {
                if c == '}' {
                    break;
                }
                spec.push(c);
            }
            match spec.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().expect("bad repeat lower bound"),
                    hi.trim().parse().expect("bad repeat upper bound"),
                ),
                None => {
                    let n = spec.trim().parse().expect("bad repeat count");
                    (n, n)
                }
            }
        }
        Some('*') => {
            chars.next();
            (0, 16)
        }
        Some('+') => {
            chars.next();
            (1, 16)
        }
        Some('?') => {
            chars.next();
            (0, 1)
        }
        _ => (1, 1),
    }
}

fn parse_pattern(pattern: &str) -> Vec<Piece> {
    let mut chars = pattern.chars().peekable();
    let mut pieces = Vec::new();
    while let Some(c) = chars.next() {
        let atom = match c {
            '.' => Atom::AnyChar,
            '[' => Atom::Class(parse_class(&mut chars)),
            '\\' => Atom::Lit(unescape(chars.next().expect("dangling escape"))),
            other => Atom::Lit(other),
        };
        let (lo, hi) = parse_repeat(&mut chars);
        pieces.push(Piece { atom, lo, hi });
    }
    pieces
}

fn gen_any_char(rng: &mut TestRng) -> char {
    match rng.below(16) {
        // Mostly printable ASCII: what the parsers under test mostly see.
        0..=11 => char::from_u32(0x20 + rng.below(0x5f) as u32).unwrap(),
        12 => '\n',
        13 => '\t',
        // Occasional multi-byte characters to shake out byte-offset bugs.
        14 => char::from_u32(0xa1 + rng.below(0xff) as u32).unwrap_or('¿'),
        _ => {
            const WIDE: [char; 6] = ['λ', '中', '🦀', 'Ω', 'é', '\u{2028}'];
            WIDE[rng.below_usize(WIDE.len())]
        }
    }
}

/// The strategy produced from a `&str` pattern.
#[derive(Debug, Clone)]
pub struct StringStrategy {
    pieces: Vec<Piece>,
}

impl StringStrategy {
    /// Parses `pattern` (panics on syntax outside the supported subset).
    pub fn new(pattern: &str) -> Self {
        StringStrategy {
            pieces: parse_pattern(pattern),
        }
    }
}

impl Strategy for StringStrategy {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for piece in &self.pieces {
            let n = piece.lo + rng.below_usize(piece.hi - piece.lo + 1);
            for _ in 0..n {
                match &piece.atom {
                    Atom::AnyChar => out.push(gen_any_char(rng)),
                    Atom::Class(set) => out.push(set[rng.below_usize(set.len())]),
                    Atom::Lit(c) => out.push(*c),
                }
            }
        }
        out
    }
}

impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        StringStrategy::new(self).generate(rng)
    }
}

impl Strategy for String {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        StringStrategy::new(self).generate(rng)
    }
}
