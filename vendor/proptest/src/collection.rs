//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// An inclusive-exclusive length range for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

/// A strategy yielding `Vec`s of `element` with a length in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// The strategy returned by [`vec`](fn@vec).
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.lo + rng.below_usize(self.size.hi - self.size.lo);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
