//! The [`Strategy`] trait and combinators.

use crate::test_runner::TestRng;
use std::rc::Rc;

/// A recipe for generating values of `Self::Value` from an RNG.
///
/// Unlike the real proptest, strategies here generate plain values (no
/// value trees, no shrinking).
pub trait Strategy {
    /// The type of value this strategy yields.
    type Value;

    /// Produces one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Builds recursive values: `self` is the leaf strategy and `f` wraps
    /// an inner strategy into one that may nest it. `depth` bounds the
    /// nesting; `_desired_size` and `_expected_branch_size` are accepted
    /// for API compatibility and ignored.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let mut strategy = self.boxed();
        for _ in 0..depth {
            strategy = f(strategy).boxed();
        }
        strategy
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Rc::new(move |rng| self.generate(rng)))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Always yields a clone of the wrapped value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The `prop_map` combinator.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between strategies of one value type (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over `options`; must be non-empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below_usize(self.options.len());
        self.options[i].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($ty:ty),+) => {$(
        impl Strategy for std::ops::Range<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(
                    self.start < self.end,
                    "empty range strategy {}..{}",
                    self.start,
                    self.end
                );
                let width = (self.end as i128 - self.start as i128) as u128;
                let off = (u128::from(rng.next_u64()) * width) >> 64;
                (self.start as i128 + off as i128) as $ty
            }
        }

        impl Strategy for std::ops::RangeInclusive<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let width = (end as i128 - start as i128) as u128 + 1;
                let off = (u128::from(rng.next_u64()) * width) >> 64;
                (start as i128 + off as i128) as $ty
            }
        }
    )+};
}

int_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! tuple_strategy {
    ($(($($name:ident),+))+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}
