//! Deterministic RNG and configuration for the shim's test runner.

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A small, fast, deterministic PRNG (SplitMix64).
///
/// Each property test derives its stream from the test's module path and
/// name, so every run of the suite explores the same cases; set
/// `PROPTEST_SEED=<u64>` to replay a reported failing case.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// An RNG seeded explicitly.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// The RNG for a named test, honoring the `PROPTEST_SEED` override.
    pub fn for_test(name: &str) -> Self {
        if let Ok(seed) = std::env::var("PROPTEST_SEED") {
            if let Ok(seed) = seed.trim().parse::<u64>() {
                return TestRng { state: seed };
            }
        }
        // FNV-1a over the test name: stable across runs and platforms.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng::new(h)
    }

    /// The raw generator state (printed when a case fails, consumed by
    /// `PROPTEST_SEED`).
    pub fn state(&self) -> u64 {
        self.state
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Lemire-style multiply-shift; the slight modulo bias of the naive
        // approach would also be fine for test generation.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// A uniform value in `[0, bound)` as `usize`.
    pub fn below_usize(&mut self, bound: usize) -> usize {
        self.below(bound as u64) as usize
    }
}
