//! `any::<T>()` — default strategies for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical "anything goes" strategy.
pub trait Arbitrary: Sized {
    /// Produces one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
#[derive(Debug)]
pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! int_arbitrary {
    ($($ty:ty),+) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> $ty {
                // Bias 1-in-8 draws toward edge values, where integer bugs
                // live; the rest are uniform over the full domain.
                if rng.below(8) == 0 {
                    const EDGES: [$ty; 5] =
                        [0, 1, <$ty>::MAX, <$ty>::MIN, <$ty>::MAX >> 1];
                    EDGES[rng.below_usize(EDGES.len())]
                } else {
                    rng.next_u64() as $ty
                }
            }
        }
    )+};
}

int_arbitrary!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}
