//! # Alchemist
//!
//! A full reproduction of **"Alchemist: A Transparent Dependence Distance
//! Profiling Infrastructure"** (Zhang, Navabi, Jagannathan — CGO 2009) as a
//! Rust workspace.
//!
//! Alchemist profiles a sequential program once and reports, for **every**
//! program construct (procedure, loop, conditional), the RAW/WAR/WAW
//! dependences between the construct and its continuation together with
//! their time distances — enough to decide which constructs can be spawned
//! as futures and which variables must be privatized first.
//!
//! The original tool instruments native binaries through Valgrind; this
//! reproduction ships its own execution substrate (a mini-C frontend and a
//! tracing bytecode VM) so the entire pipeline is self-contained and
//! deterministic. See `DESIGN.md` for the substitution map and
//! `EXPERIMENTS.md` for paper-vs-measured results.
//!
//! ## Crates
//!
//! | crate | role |
//! |---|---|
//! | [`lang`] | mini-C lexer, parser, resolver |
//! | [`cfg`](mod@cfg) | dominators, post-dominators, natural loops |
//! | [`vm`] | bytecode compiler + tracing interpreter |
//! | [`core`](mod@core) | execution indexing + dependence profiling (the paper) |
//! | [`parsim`] | profile-guided parallel-schedule simulation (Table V) |
//! | [`trace`] | binary record/replay traces with offline analyses |
//! | [`workloads`] | the paper's eight benchmarks, re-implemented |
//!
//! ## Quick start
//!
//! ```
//! use alchemist::prelude::*;
//!
//! let outcome = profile_source(
//!     "int total;
//!      void add(int x) { total += x; }
//!      int main() { int i; for (i = 0; i < 10; i++) add(i); return total; }",
//!     vec![],
//! ).unwrap();
//! println!("{}", outcome.report().render(5));
//! ```

#![warn(missing_docs)]

pub use alchemist_cfg as cfg;
pub use alchemist_core as core;
pub use alchemist_lang as lang;
pub use alchemist_parsim as parsim;
pub use alchemist_trace as trace;
pub use alchemist_vm as vm;
pub use alchemist_workloads as workloads;

/// The most commonly used items, re-exported flat.
pub mod prelude {
    pub use alchemist_core::{
        profile_events, profile_module, profile_source, AlchemistProfiler, ConstructKind, DepKind,
        ProfileConfig, ProfileOutcome, ProfileReport,
    };
    pub use alchemist_lang::compile_to_hir;
    pub use alchemist_parsim::{
        extract_tasks, extract_tasks_from_events, simulate, suggest_candidates, ExtractConfig,
        SimConfig,
    };
    pub use alchemist_trace::{TraceReader, TraceWriter};
    pub use alchemist_vm::{compile_source, run, ExecConfig, NullSink};
    pub use alchemist_workloads::{Scale, Workload};
}

pub use alchemist_core::{profile_source, ProfileOutcome};
