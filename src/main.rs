//! The `alchemist` command-line profiler.
//!
//! ```text
//! alchemist profile <file.mc> [--input a,b,c] [--top N] [--war-waw LABEL]
//! alchemist run <file.mc> [--input a,b,c]
//! alchemist advise <file.mc> [--input a,b,c] [--threads K]
//! alchemist record <file.mc> [--input a,b,c] [-o trace.alct]
//! alchemist replay <trace.alct> [--analysis profile|advise|stats] [--jobs N]
//! alchemist workloads [--json]
//! ```

use alchemist_core::shadow::{Access, ShadowMemory};
use alchemist_core::{
    profile_batches_par_spec, profile_batches_par_with, profile_module, profile_source,
    shard_batch_counts_spec, AlchemistProfiler, DepProfile, PartialProfile, ProfileConfig,
    ProfileReport, ShardError, ShardSpec, ShardTuning,
};
use alchemist_obs::{span_opt, Counter, Metrics, Stage};
use alchemist_parsim::{
    extract_tasks, extract_tasks_from_batches_par_with, render_timeline, simulate,
    suggest_candidates, ExtractConfig, SimConfig,
};
use alchemist_trace::{
    decode_batches_par_recover, decode_batches_par_with, write_atomic, AtomicFile, ChunkInfo,
    MultiSink, ProfileArtifact, RecoveryReport, TraceError, TraceReader, TraceStats, TraceWriter,
    ALCP_MAGIC, ALCP_VERSION,
};
use alchemist_vm::{
    run_with_metrics, CountingSink, EventBatch, ExecConfig, NullSink, Pc, Tid, Time, TraceSink,
    TrapKind, DEFAULT_BATCH_EVENTS,
};
use alchemist_workloads::Scale;
use std::io::{BufReader, BufWriter};
use std::process::ExitCode;
use std::sync::Arc;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run_cli(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            // SIGINT is a request, not a failure: no "error:" prefix.
            if e.kind == ErrorKind::Interrupted {
                eprintln!("{}", e.msg);
            } else {
                eprintln!("error: {}", e.msg);
            }
            if e.show_usage {
                eprintln!();
                eprintln!("{USAGE}");
            }
            ExitCode::from(e.kind.exit_code())
        }
    }
}

const USAGE: &str = "usage:
  alchemist profile <file.mc> [--input a,b,c] [--top N] [--war-waw LABEL]
                    [--csv-constructs FILE] [--csv-edges FILE]
  alchemist profile save <file.mc|trace.alct> [--input a,b,c]...
                    [-o|--out FILE.alcp] [--jobs N] [--recover]
                    [--metrics text|json] [--metrics-out FILE]
  alchemist profile merge <A.alcp> <B.alcp>... -o|--out FILE.alcp
                    [--metrics text|json] [--metrics-out FILE]
  alchemist profile query <FILE.alcp> [--analysis profile,advise,stats]
                    [--construct PC|LABEL] [--top N] [--threads K]
                    [--metrics text|json] [--metrics-out FILE]
  alchemist run <file.mc|workload> [--input a,b,c] [--scale S] [--batch-size N]
                [--profile-out FILE.alcp]
                [--metrics text|json] [--metrics-out FILE]
  alchemist advise <file.mc> [--input a,b,c] [--threads K]
  alchemist simulate <file.mc> --mark FUNC[,FUNC..] [--privatize a,b]
                     [--input a,b,c] [--threads K] [--timeline]
  alchemist record <file.mc|workload> [--input a,b,c] [--scale S]
                   [-o|--out trace.alct] [--chunk-events N] [--batch-size N]
                   [--crc] [--profile-out FILE.alcp]
                   [--metrics text|json] [--metrics-out FILE]
  alchemist replay <trace.alct|workload> [--analysis profile,advise,stats]
                   [--top N] [--threads K] [--jobs N] [--batch-size N]
                   [--scale S] [--shard-flush N] [--shard-depth N]
                   [--war-waw LABEL] [--profile-out FILE.alcp] [--recover]
                   [--metrics text|json] [--metrics-out FILE]
  alchemist workloads [--json] [--scale S]

where <workload> is a bundled workload name (see `alchemist workloads`)
and S is one of tiny, small, default, large, huge (default tiny)

exit codes: 0 success, 1 program error (compile error or runtime trap),
2 usage, 3 I/O, 4 corrupt input, 5 internal error, 130 interrupted";

/// The CLI's documented error taxonomy, one exit code per kind (see the
/// trailing lines of [`USAGE`] and the README's exit-code table). Scripts
/// and CI can branch on the code without parsing stderr.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ErrorKind {
    /// The *profiled program* failed: compile error or runtime trap.
    Runtime,
    /// Bad invocation: unknown command/flag, invalid flag value.
    Usage,
    /// An OS-level file operation failed (open, create, write, stat).
    Io,
    /// Structurally corrupt input: an unreadable trace or artifact.
    CorruptInput,
    /// A defect on our side — e.g. a shard worker panicked mid-replay.
    Internal,
    /// SIGINT: the run was cancelled; partial artifacts were finalized.
    Interrupted,
}

impl ErrorKind {
    fn exit_code(self) -> u8 {
        match self {
            ErrorKind::Runtime => 1,
            ErrorKind::Usage => 2,
            ErrorKind::Io => 3,
            ErrorKind::CorruptInput => 4,
            ErrorKind::Internal => 5,
            // Shell convention for "terminated by SIGINT" (128 + 2).
            ErrorKind::Interrupted => 130,
        }
    }
}

/// A CLI failure: a message, its [`ErrorKind`] (which fixes the exit
/// code), plus whether the generic usage block helps.
///
/// Unknown flags set `show_usage = false` — the error itself names the
/// offending flag and the flags the command accepts, which is more useful
/// than re-printing the whole usage text.
struct CliError {
    msg: String,
    show_usage: bool,
    kind: ErrorKind,
}

impl CliError {
    fn with_kind(msg: impl Into<String>, kind: ErrorKind) -> Self {
        CliError {
            msg: msg.into(),
            show_usage: false,
            kind,
        }
    }

    fn bare(msg: impl Into<String>) -> Self {
        Self::with_kind(msg, ErrorKind::Usage)
    }

    /// The profiled program failed (compile error, runtime trap).
    fn runtime(msg: impl Into<String>) -> Self {
        Self::with_kind(msg, ErrorKind::Runtime)
    }

    fn io(msg: impl Into<String>) -> Self {
        Self::with_kind(msg, ErrorKind::Io)
    }

    fn corrupt(msg: impl Into<String>) -> Self {
        Self::with_kind(msg, ErrorKind::CorruptInput)
    }

    fn internal(msg: impl Into<String>) -> Self {
        Self::with_kind(msg, ErrorKind::Internal)
    }

    fn interrupted(msg: impl Into<String>) -> Self {
        Self::with_kind(msg, ErrorKind::Interrupted)
    }
}

impl From<String> for CliError {
    fn from(msg: String) -> Self {
        CliError {
            msg,
            show_usage: true,
            kind: ErrorKind::Usage,
        }
    }
}

impl From<&str> for CliError {
    fn from(msg: &str) -> Self {
        CliError::from(msg.to_owned())
    }
}

impl From<ShardError> for CliError {
    fn from(e: ShardError) -> Self {
        CliError::internal(format!("internal error: {e}"))
    }
}

/// Maps a failed trace read to the taxonomy: an OS-level failure is I/O,
/// anything else (bad magic, truncation, CRC mismatch...) is corrupt input.
fn trace_read_err(path: &str, e: &TraceError) -> CliError {
    let msg = format!("cannot read {path}: {e}");
    match e {
        TraceError::Io(_) => CliError::io(msg),
        _ => CliError::corrupt(msg),
    }
}

fn unknown_flag(cmd: &str, flag: &str, known: &[&str]) -> CliError {
    CliError::bare(format!(
        "unknown flag `{flag}` for `alchemist {cmd}` (expected one of: {})",
        known.join(", ")
    ))
}

/// Parses a flag value that must be a positive count; zero gets a
/// named-flag error (`--jobs must be >= 1`) instead of whatever the
/// zero-value path would otherwise do.
fn parse_ge1(flag: &str, value: Option<&String>) -> Result<usize, CliError> {
    let v = value.ok_or_else(|| CliError::from(format!("{flag} needs a value")))?;
    let n: usize = v
        .parse()
        .map_err(|e| CliError::from(format!("{flag}: {e}")))?;
    if n == 0 {
        return Err(CliError::bare(format!("{flag} must be >= 1")));
    }
    Ok(n)
}

/// Parses a `--scale` value into a workload input scale.
fn parse_scale(value: Option<&String>) -> Result<Scale, CliError> {
    let v = value.ok_or_else(|| CliError::from("--scale needs a value"))?;
    Scale::parse(v).ok_or_else(|| {
        CliError::bare(format!(
            "--scale: unknown scale `{v}` (expected tiny, small, default, large or huge)"
        ))
    })
}

/// Resolves a positional program argument: an on-disk mini-C file, or the
/// name of a bundled workload (`alchemist workloads` lists them). Workload
/// names pick up their deterministic generated input at `--scale` (default
/// tiny); an explicit `--input` overrides it. `--scale` is meaningless for
/// a plain file — its input can only come from `--input` — so that
/// combination is an error rather than a silent no-op.
fn resolve_program(
    arg: &str,
    scale: Option<Scale>,
    explicit_input: Vec<i64>,
) -> Result<(String, Vec<i64>), CliError> {
    if std::path::Path::new(arg).exists() {
        if scale.is_some() {
            return Err(CliError::bare(format!(
                "--scale only applies to bundled workload names; `{arg}` is a file \
                 (use --input to feed it data)"
            )));
        }
        let source = std::fs::read_to_string(arg)
            .map_err(|e| CliError::io(format!("cannot read {arg}: {e}")))?;
        return Ok((source, explicit_input));
    }
    match alchemist_workloads::by_name(arg) {
        Some(w) => {
            let input = if explicit_input.is_empty() {
                w.input(scale.unwrap_or(Scale::Tiny))
            } else {
                explicit_input
            };
            Ok((w.source.to_owned(), input))
        }
        None => Err(format!(
            "cannot read {arg}: no such file, and no bundled workload has that name \
             (see `alchemist workloads`)"
        )
        .into()),
    }
}

fn run_cli(args: &[String]) -> Result<(), CliError> {
    let mut it = args.iter();
    let cmd = it.next().ok_or("no command given")?;
    match cmd.as_str() {
        "profile" => profile_cmd(&args[1..]),
        "run" => run_cmd(&args[1..]),
        "advise" => advise_cmd(&args[1..]),
        "simulate" => simulate_cmd(&args[1..]),
        "record" => record_cmd(&args[1..]),
        "replay" => replay_cmd(&args[1..]),
        "workloads" => workloads_cmd(&args[1..]),
        other => Err(format!("unknown command `{other}`").into()),
    }
}

struct CommonArgs {
    source: String,
    input: Vec<i64>,
    top: usize,
    war_waw: Option<String>,
    threads: usize,
    csv_constructs: Option<String>,
    csv_edges: Option<String>,
    mark: Vec<String>,
    privatize: Vec<String>,
    timeline: bool,
    /// `Some` only when `--batch-size` was given explicitly.
    batch_size: Option<usize>,
    /// Save the run's dependence profile as a `.alcp` artifact here.
    profile_out: Option<String>,
    metrics: MetricsOpt,
}

/// Validated `--metrics` / `--metrics-out` pair: `format` is `None` when
/// instrumentation reporting was not requested.
#[derive(Default)]
struct MetricsOpt {
    format: Option<String>,
    out: Option<String>,
}

impl MetricsOpt {
    fn validate(format: Option<String>, out: Option<String>) -> Result<MetricsOpt, CliError> {
        if let Some(f) = &format {
            if f != "text" && f != "json" {
                return Err(CliError::bare(format!(
                    "--metrics: unknown format `{f}` (expected text or json)"
                )));
            }
        }
        if out.is_some() && format.is_none() {
            return Err(CliError::bare("--metrics-out requires --metrics text|json"));
        }
        Ok(MetricsOpt { format, out })
    }

    fn enabled(&self) -> bool {
        self.format.is_some()
    }

    /// Renders and delivers the report: stdout by default, `--metrics-out`
    /// file when given. A no-op when `--metrics` was not passed.
    fn emit(&self, metrics: &Metrics, command: &str) -> Result<(), CliError> {
        let Some(format) = &self.format else {
            return Ok(());
        };
        let report = metrics.report(command);
        let rendered = if format == "json" {
            report.to_json()
        } else {
            report.render_text()
        };
        match &self.out {
            Some(path) => {
                // Atomic commit: a crash mid-write never leaves a torn
                // report under the requested name.
                write_atomic(path, rendered.as_bytes())
                    .map_err(|e| CliError::io(format!("cannot create {path}: {e}")))?;
                eprintln!("wrote metrics to {path}");
            }
            None => print!("{rendered}"),
        }
        Ok(())
    }
}

/// Validates a comma-separated `--analysis` list against the analyses the
/// offline consumers (`replay`, `profile query`) implement. An unknown
/// name is a typed error naming the bad value and the valid set.
fn parse_analyses(value: &str) -> Result<Vec<String>, CliError> {
    let mut analyses: Vec<String> = Vec::new();
    for a in value.split(',').map(str::trim).filter(|s| !s.is_empty()) {
        if !matches!(a, "profile" | "advise" | "stats") {
            return Err(CliError::bare(format!(
                "unknown analysis `{a}` (expected profile, advise or stats)"
            )));
        }
        if !analyses.iter().any(|seen| seen == a) {
            analyses.push(a.to_owned());
        }
    }
    if analyses.is_empty() {
        return Err(CliError::bare(
            "--analysis needs at least one of profile, advise, stats",
        ));
    }
    Ok(analyses)
}

/// Writes a `.alcp` artifact to `path` through an [`AtomicFile`] commit
/// (the artifact appears complete or not at all), returning the byte count.
fn write_artifact(
    artifact: &ProfileArtifact,
    path: &str,
    metrics: Option<&Metrics>,
) -> Result<u64, CliError> {
    let mut f =
        AtomicFile::create(path).map_err(|e| CliError::io(format!("cannot create {path}: {e}")))?;
    let n = artifact
        .save_to(&mut f, metrics)
        .map_err(|e| CliError::io(format!("cannot write {path}: {e}")))?;
    f.commit()
        .map_err(|e| CliError::io(format!("cannot write {path}: {e}")))?;
    Ok(n)
}

/// Loads a `.alcp` artifact; corrupt input surfaces the typed
/// [`alchemist_trace::AlcpError`] with the file name attached.
fn load_artifact(path: &str, metrics: Option<&Metrics>) -> Result<ProfileArtifact, CliError> {
    let f =
        std::fs::File::open(path).map_err(|e| CliError::io(format!("cannot read {path}: {e}")))?;
    ProfileArtifact::load_from(BufReader::new(f), metrics).map_err(|e| {
        let msg = format!("cannot read {path}: {e}");
        match e {
            alchemist_trace::AlcpError::Io(_) => CliError::io(msg),
            _ => CliError::corrupt(msg),
        }
    })
}

fn parse_input_list(v: &str) -> Result<Vec<i64>, CliError> {
    v.split(',')
        .filter(|s| !s.is_empty())
        .map(|s| s.trim().parse::<i64>().map_err(|e| e.to_string().into()))
        .collect()
}

/// Parses the flags shared by the source-driven commands. `allowed` is the
/// subset of flags this particular command accepts, so unknown-flag errors
/// list exactly what applies (and `run --mark`-style mismatches are
/// rejected instead of silently ignored).
fn parse_common(cmd: &str, args: &[String], allowed: &[&str]) -> Result<CommonArgs, CliError> {
    let mut file = None;
    let mut input = Vec::new();
    let mut top = 10;
    let mut war_waw = None;
    let mut threads = 4;
    let mut csv_constructs = None;
    let mut csv_edges = None;
    let mut mark = Vec::new();
    let mut privatize = Vec::new();
    let mut timeline = false;
    let mut batch_size = None;
    let mut profile_out = None;
    let mut scale = None;
    let mut metrics_format = None;
    let mut metrics_out = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a.starts_with('-') && !allowed.contains(&a.as_str()) {
            return Err(unknown_flag(cmd, a, allowed));
        }
        match a.as_str() {
            "--scale" => {
                scale = Some(parse_scale(it.next())?);
            }
            "--metrics" => {
                metrics_format = Some(it.next().ok_or("--metrics needs text or json")?.clone());
            }
            "--metrics-out" => {
                metrics_out = Some(it.next().ok_or("--metrics-out needs a path")?.clone());
            }
            "--input" => {
                input = parse_input_list(it.next().ok_or("--input needs a value")?)?;
            }
            "--top" => {
                top = it
                    .next()
                    .ok_or("--top needs a value")?
                    .parse()
                    .map_err(|e| format!("--top: {e}"))?;
            }
            "--war-waw" => {
                war_waw = Some(it.next().ok_or("--war-waw needs a label")?.clone());
            }
            "--csv-constructs" => {
                csv_constructs = Some(it.next().ok_or("--csv-constructs needs a path")?.clone());
            }
            "--csv-edges" => {
                csv_edges = Some(it.next().ok_or("--csv-edges needs a path")?.clone());
            }
            "--mark" => {
                let v = it.next().ok_or("--mark needs function name(s)")?;
                mark.extend(v.split(',').map(|s| s.trim().to_owned()));
            }
            "--privatize" => {
                let v = it.next().ok_or("--privatize needs variable name(s)")?;
                privatize.extend(v.split(',').map(|s| s.trim().to_owned()));
            }
            "--timeline" => timeline = true,
            "--batch-size" => {
                batch_size = Some(parse_ge1("--batch-size", it.next())?);
            }
            "--profile-out" => {
                profile_out = Some(it.next().ok_or("--profile-out needs a path")?.clone());
            }
            "--threads" => {
                threads = it
                    .next()
                    .ok_or("--threads needs a value")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?;
            }
            path if file.is_none() => file = Some(path.to_owned()),
            other => return Err(format!("unexpected argument `{other}`").into()),
        }
    }
    let path = file.ok_or("no source file given")?;
    let (source, input) = resolve_program(&path, scale, input)?;
    Ok(CommonArgs {
        source,
        input,
        top,
        war_waw,
        threads,
        csv_constructs,
        csv_edges,
        mark,
        privatize,
        timeline,
        batch_size,
        profile_out,
        metrics: MetricsOpt::validate(metrics_format, metrics_out)?,
    })
}

fn render_profile_report(
    report: &ProfileReport,
    top: usize,
    war_waw: Option<&str>,
) -> Result<(), CliError> {
    print!("{}", report.render(top));
    if let Some(label) = war_waw {
        let c = report
            .find(label)
            .ok_or_else(|| format!("no construct matching `{label}`"))?;
        println!("\nWAR/WAW profile for {}:", c.label);
        print!("{}", report.render_war_waw(c.head));
    }
    Ok(())
}

fn profile_cmd(args: &[String]) -> Result<(), CliError> {
    // `profile save|merge|query` operate on persistent `.alcp` artifacts;
    // anything else is the classic live-profiling form.
    match args.first().map(String::as_str) {
        Some("save") => return profile_save_cmd(&args[1..]),
        Some("merge") => return profile_merge_cmd(&args[1..]),
        Some("query") => return profile_query_cmd(&args[1..]),
        _ => {}
    }
    let a = parse_common(
        "profile",
        args,
        &[
            "--input",
            "--top",
            "--war-waw",
            "--csv-constructs",
            "--csv-edges",
        ],
    )?;
    let outcome =
        profile_source(&a.source, a.input).map_err(|e| CliError::runtime(e.to_string()))?;
    let report = outcome.report();
    println!(
        "profiled {} instructions, {} static constructs, exit value {}",
        outcome.exec.steps,
        outcome.profile.len(),
        outcome.exec.exit_value
    );
    println!();
    render_profile_report(&report, a.top, a.war_waw.as_deref())?;
    if let Some(path) = a.csv_constructs {
        write_atomic(&path, alchemist_core::constructs_to_csv(&report).as_bytes())
            .map_err(|e| CliError::io(format!("cannot write {path}: {e}")))?;
        println!("\nwrote construct table to {path}");
    }
    if let Some(path) = a.csv_edges {
        write_atomic(&path, alchemist_core::edges_to_csv(&report).as_bytes())
            .map_err(|e| CliError::io(format!("cannot write {path}: {e}")))?;
        println!("wrote edge table to {path}");
    }
    Ok(())
}

/// `profile save`: profile a source file (once per `--input`, aggregated
/// through the order-independent [`PartialProfile`] merge) or replay a
/// recorded trace, and persist the result as a `.alcp` artifact.
fn profile_save_cmd(args: &[String]) -> Result<(), CliError> {
    const FLAGS: &[&str] = &[
        "--input",
        "-o",
        "--out",
        "--jobs",
        "--recover",
        "--metrics",
        "--metrics-out",
    ];
    let mut file = None;
    let mut inputs: Vec<Vec<i64>> = Vec::new();
    let mut out = None;
    let mut jobs = 1usize;
    let mut recover = false;
    let mut metrics_format = None;
    let mut metrics_out = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--input" => {
                inputs.push(parse_input_list(it.next().ok_or("--input needs a value")?)?);
            }
            "-o" | "--out" => {
                out = Some(it.next().ok_or("-o needs a path")?.clone());
            }
            "--jobs" => {
                jobs = parse_ge1("--jobs", it.next())?;
            }
            "--recover" => recover = true,
            "--metrics" => {
                metrics_format = Some(it.next().ok_or("--metrics needs text or json")?.clone());
            }
            "--metrics-out" => {
                metrics_out = Some(it.next().ok_or("--metrics-out needs a path")?.clone());
            }
            flag if flag.starts_with('-') => return Err(unknown_flag("profile save", flag, FLAGS)),
            path if file.is_none() => file = Some(path.to_owned()),
            other => return Err(format!("unexpected argument `{other}`").into()),
        }
    }
    let mopt = MetricsOpt::validate(metrics_format, metrics_out)?;
    let metrics = mopt.enabled().then(Metrics::new);
    let m = metrics.as_ref();
    let path = file.ok_or("profile save needs a source file or trace")?;
    let out_path = out.unwrap_or_else(|| {
        let mut p = std::path::PathBuf::from(&path);
        p.set_extension("alcp");
        p.display().to_string()
    });
    let bytes =
        std::fs::read(&path).map_err(|e| CliError::io(format!("cannot read {path}: {e}")))?;
    let artifact = if bytes.starts_with(&alchemist_trace::format::MAGIC) {
        if !inputs.is_empty() {
            return Err(CliError::bare(
                "--input applies to source saves; a trace already fixes its input",
            ));
        }
        save_from_trace(&path, jobs, recover, m)?
    } else if bytes.starts_with(&ALCP_MAGIC) {
        return Err(CliError::bare(format!(
            "{path} is already a profile artifact; use `profile merge` or `profile query`"
        )));
    } else {
        if recover {
            return Err(CliError::bare(
                "--recover applies to trace replays; a source save re-executes the program",
            ));
        }
        let source = String::from_utf8(bytes)
            .map_err(|e| CliError::corrupt(format!("cannot read {path}: {e}")))?;
        save_from_source(&source, inputs, m)?
    };
    let n = write_artifact(&artifact, &out_path, m)?;
    println!(
        "wrote profile artifact to {out_path} ({n} bytes, {} constructs, \
         {} recorded instructions)",
        artifact.profile.len(),
        artifact.profile.total_steps
    );
    if let Some(metrics) = &metrics {
        mopt.emit(metrics, "profile save")?;
    }
    Ok(())
}

/// Profiles `source` once per input vector (no `--input` means one run on
/// the empty input) and aggregates the runs into one artifact. Single-run
/// saves also embed the best candidate's task summary so `profile query
/// --analysis advise` can simulate offline.
fn save_from_source(
    source: &str,
    mut inputs: Vec<Vec<i64>>,
    m: Option<&Metrics>,
) -> Result<ProfileArtifact, CliError> {
    let module =
        alchemist_vm::compile_source(source).map_err(|e| CliError::runtime(e.to_string()))?;
    if inputs.is_empty() {
        inputs.push(Vec::new());
    }
    let single_run = inputs.len() == 1;
    let mut aggregated = PartialProfile::new();
    for (i, input) in inputs.iter().enumerate() {
        let exec_cfg = ExecConfig::with_input(input.clone());
        let (profile, ..) = profile_module(&module, &exec_cfg, ProfileConfig::default())
            .map_err(|e| CliError::runtime(e.to_string()))?;
        if i > 0 {
            if let Some(m) = m {
                m.incr(Counter::ProfileMerges);
            }
        }
        aggregated.merge(&PartialProfile::from(profile));
    }
    let mut artifact = ProfileArtifact::new(aggregated.seal()).with_source(source);
    if single_run {
        // One extra run extracts the best candidate's task schedule; a
        // multi-input aggregate has no single schedule to embed.
        let report = ProfileReport::new(&artifact.profile, &module);
        let candidates = suggest_candidates(&report, &module, 0.02, 0);
        if let Some(best) = candidates.first() {
            let mut cfg = ExtractConfig::default().mark(best.head);
            for v in &best.privatize {
                cfg = cfg.privatize(v);
            }
            let tasks = extract_tasks(&module, &ExecConfig::with_input(inputs[0].clone()), cfg)
                .map_err(|e| CliError::runtime(e.to_string()))?;
            artifact = artifact.with_tasks(tasks);
        }
    }
    Ok(artifact)
}

/// One deterministic sentence describing what salvage dropped; doubles as
/// the profile report's `note:` line and the stderr notice.
fn salvage_note(report: &RecoveryReport) -> String {
    format!(
        "salvaged replay: skipped {} of {} chunk(s), >= {} event(s) lost \
         ({} CRC mismatch(es), {} truncation(s), {} decode error(s){})",
        report.chunks_skipped,
        report.chunks_total,
        report.events_lost,
        report.crc_mismatches,
        report.truncations,
        report.decode_errors,
        if report.footer_recovered {
            ""
        } else {
            "; footer lost, total steps estimated"
        }
    )
}

/// Folds a `--recover` outcome into the metrics counters and — when
/// anything was actually dropped — a stderr notice. Stdout is left to the
/// per-analysis renderers so it stays byte-stable across job counts.
fn surface_salvage(report: &RecoveryReport, metrics: Option<&Metrics>) {
    if let Some(m) = metrics {
        m.add(Counter::TraceChunksSkipped, report.chunks_skipped);
        m.add(Counter::TraceEventsSalvaged, report.events_salvaged);
    }
    if !report.is_clean() {
        eprintln!("{}", salvage_note(report));
    }
}

/// Replays a recorded trace (chunk-parallel with `--jobs`) into a profile
/// artifact, embedding the trace's source and the best candidate's task
/// summary — all offline, no re-execution. With `recover`, corrupt or
/// truncated chunks are skipped instead of failing the save.
fn save_from_trace(
    path: &str,
    jobs: usize,
    recover: bool,
    m: Option<&Metrics>,
) -> Result<ProfileArtifact, CliError> {
    let reader = open_trace(path)?;
    let module = trace_module(&reader)?;
    let source = reader
        .source()
        .expect("trace_module required the source")
        .to_owned();
    let (batches, summary) = if recover {
        let (batches, summary, report) = decode_batches_par_recover(reader, jobs, m);
        surface_salvage(&report, m);
        (batches, summary)
    } else {
        decode_batches_par_with(reader, jobs, m).map_err(|e| trace_read_err(path, &e))?
    };
    let (profile, _, _) = profile_batches_par_with(
        &module,
        &batches,
        summary.total_steps,
        ProfileConfig::default(),
        jobs,
        m,
    )?;
    let mut artifact = ProfileArtifact::new(profile).with_source(source);
    let report = ProfileReport::new(&artifact.profile, &module);
    let candidates = suggest_candidates(&report, &module, 0.02, 0);
    if let Some(best) = candidates.first() {
        let mut cfg = ExtractConfig::default().mark(best.head);
        for v in &best.privatize {
            cfg = cfg.privatize(v);
        }
        let tasks = extract_tasks_from_batches_par_with(
            &module,
            cfg,
            &batches,
            summary.total_steps,
            jobs,
            m,
        )?;
        artifact = artifact.with_tasks(tasks);
    }
    Ok(artifact)
}

/// `profile merge`: fold N artifacts into one through the
/// order-independent [`PartialProfile`] algebra.
fn profile_merge_cmd(args: &[String]) -> Result<(), CliError> {
    const FLAGS: &[&str] = &["-o", "--out", "--metrics", "--metrics-out"];
    let mut files: Vec<String> = Vec::new();
    let mut out = None;
    let mut metrics_format = None;
    let mut metrics_out = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "-o" | "--out" => {
                out = Some(it.next().ok_or("-o needs a path")?.clone());
            }
            "--metrics" => {
                metrics_format = Some(it.next().ok_or("--metrics needs text or json")?.clone());
            }
            "--metrics-out" => {
                metrics_out = Some(it.next().ok_or("--metrics-out needs a path")?.clone());
            }
            flag if flag.starts_with('-') => {
                return Err(unknown_flag("profile merge", flag, FLAGS))
            }
            path => files.push(path.to_owned()),
        }
    }
    let mopt = MetricsOpt::validate(metrics_format, metrics_out)?;
    let metrics = mopt.enabled().then(Metrics::new);
    let m = metrics.as_ref();
    if files.is_empty() {
        return Err("profile merge needs at least one .alcp artifact".into());
    }
    let out_path = out.ok_or("profile merge needs -o|--out FILE.alcp")?;
    // Corrupt or unreadable inputs are skipped with a warning, so one
    // bit-rotted artifact cannot sink a fleet-wide merge; zero survivors
    // is an error — never an empty output artifact at the requested path.
    let mut merged: Option<ProfileArtifact> = None;
    let mut survivors = 0usize;
    for f in &files {
        let artifact = match load_artifact(f, m) {
            Ok(a) => a,
            Err(e) => {
                eprintln!("warning: skipping {f}: {}", e.msg);
                continue;
            }
        };
        survivors += 1;
        match merged.as_mut() {
            None => merged = Some(artifact),
            Some(acc) => acc
                .merge(artifact, m)
                .map_err(|e| CliError::corrupt(format!("{f}: {e}")))?,
        }
    }
    let Some(merged) = merged else {
        return Err(CliError::corrupt(format!(
            "nothing was merged: all {} input artifact(s) were corrupt or unreadable",
            files.len()
        )));
    };
    let n = write_artifact(&merged, &out_path, m)?;
    println!(
        "merged {survivors} artifact(s) into {out_path} ({n} bytes, {} constructs, \
         {} recorded instructions)",
        merged.profile.len(),
        merged.profile.total_steps
    );
    if survivors < files.len() {
        eprintln!(
            "warning: {} of {} input(s) skipped as corrupt or unreadable",
            files.len() - survivors,
            files.len()
        );
    }
    if let Some(metrics) = &metrics {
        mopt.emit(metrics, "profile merge")?;
    }
    Ok(())
}

/// `profile query`: run the offline analyses over a saved artifact —
/// no re-execution, no trace, just the `.alcp` file.
fn profile_query_cmd(args: &[String]) -> Result<(), CliError> {
    const FLAGS: &[&str] = &[
        "--analysis",
        "--construct",
        "--top",
        "--threads",
        "--metrics",
        "--metrics-out",
    ];
    let mut file = None;
    let mut analysis = "profile".to_owned();
    let mut construct: Option<String> = None;
    let mut top = 10;
    let mut threads = 4;
    let mut metrics_format = None;
    let mut metrics_out = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--analysis" => {
                analysis = it.next().ok_or("--analysis needs a value")?.clone();
            }
            "--construct" => {
                construct = Some(it.next().ok_or("--construct needs a pc or label")?.clone());
            }
            "--top" => {
                top = it
                    .next()
                    .ok_or("--top needs a value")?
                    .parse()
                    .map_err(|e| format!("--top: {e}"))?;
            }
            "--threads" => {
                threads = it
                    .next()
                    .ok_or("--threads needs a value")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?;
            }
            "--metrics" => {
                metrics_format = Some(it.next().ok_or("--metrics needs text or json")?.clone());
            }
            "--metrics-out" => {
                metrics_out = Some(it.next().ok_or("--metrics-out needs a path")?.clone());
            }
            flag if flag.starts_with('-') => {
                return Err(unknown_flag("profile query", flag, FLAGS))
            }
            path if file.is_none() => file = Some(path.to_owned()),
            other => return Err(format!("unexpected argument `{other}`").into()),
        }
    }
    let mopt = MetricsOpt::validate(metrics_format, metrics_out)?;
    let metrics = mopt.enabled().then(Metrics::new);
    let m = metrics.as_ref();
    let path = file.ok_or("profile query needs a .alcp artifact")?;
    let analyses = parse_analyses(&analysis)?;
    if construct.is_some() && !analyses.iter().any(|a| a == "profile") {
        return Err(CliError::bare("--construct requires the profile analysis"));
    }
    let artifact = load_artifact(&path, m)?;
    let need_module = analyses.iter().any(|a| a == "profile" || a == "advise");
    let module = if need_module {
        let src = artifact.source.as_deref().ok_or_else(|| {
            CliError::bare("profile artifact has no embedded source; cannot rebuild the module")
        })?;
        Some(
            alchemist_vm::compile_source(src)
                .map_err(|e| CliError::corrupt(format!("embedded source does not compile: {e}")))?,
        )
    } else {
        None
    };
    for (i, analysis) in analyses.iter().enumerate() {
        if i > 0 {
            println!();
        }
        match analysis.as_str() {
            // The profile analysis deliberately never prints the file path:
            // two artifacts with equal contents (e.g. a merge of per-run
            // saves vs a direct aggregated save) query identically.
            "profile" => {
                let md = module.as_ref().expect("compiled above");
                println!(
                    "profile artifact: {} recorded instructions, {} static constructs",
                    artifact.profile.total_steps,
                    artifact.profile.len()
                );
                println!();
                let report = ProfileReport::new(&artifact.profile, md);
                render_profile_report(&report, top, None)?;
                if let Some(sel) = &construct {
                    let (label, head) = if let Ok(pc) = sel.parse::<u32>() {
                        let c = artifact
                            .profile
                            .construct(Pc(pc))
                            .ok_or_else(|| CliError::bare(format!("no construct at pc {pc}")))?;
                        (format!("pc {pc}"), c.id.head)
                    } else {
                        let c = report
                            .find(sel)
                            .ok_or_else(|| format!("no construct matching `{sel}`"))?;
                        (c.label.clone(), c.head)
                    };
                    println!("\nWAR/WAW profile for {label}:");
                    print!("{}", report.render_war_waw(head));
                }
            }
            "advise" => {
                let md = module.as_ref().expect("compiled above");
                let report = ProfileReport::new(&artifact.profile, md);
                let candidates = suggest_candidates(&report, md, 0.02, 0);
                if candidates.is_empty() {
                    println!("no construct qualifies for asynchronous execution");
                    println!("(every sizable construct has violating RAW dependences)");
                    continue;
                }
                println!("parallelization candidates (largest first):\n");
                for c in &candidates {
                    println!(
                        "  {:<30} {:>5.1}% of run, violating RAW: {}",
                        c.label,
                        c.norm_size * 100.0,
                        c.violating_raw
                    );
                    if !c.privatize.is_empty() {
                        println!("      privatize: {}", c.privatize.join(", "));
                    }
                }
                match &artifact.tasks {
                    Some(tasks) => {
                        let sim = simulate(tasks, &SimConfig::with_threads(threads));
                        println!(
                            "\nsimulating `{}` (embedded task summary) on {} threads: \
                             {:.2}x speedup ({} tasks, {} joins)",
                            candidates[0].label, threads, sim.speedup, sim.tasks, sim.main_joins
                        );
                        if tasks.cross_thread_sharing > 0 {
                            println!(
                                "cross-thread: {} dependences already run on separate program \
                                 threads (excluded from serialization cost)",
                                tasks.cross_thread_sharing
                            );
                        }
                    }
                    None => println!(
                        "\n(no embedded task summary: merged artifacts drop schedules; \
                         re-run `profile save` on a single run or a trace to simulate offline)"
                    ),
                }
            }
            "stats" => {
                let file_bytes = std::fs::metadata(&path)
                    .map_err(|e| CliError::io(format!("cannot stat {path}: {e}")))?
                    .len();
                println!("profile artifact {path}: format v{ALCP_VERSION}, {file_bytes} bytes");
                match &artifact.source {
                    Some(s) => println!("embedded source: yes ({} lines)", s.lines().count()),
                    None => println!("embedded source: no"),
                }
                match &artifact.tasks {
                    Some(t) => println!(
                        "task summary: yes ({} tasks, {} joins)",
                        t.tasks.len(),
                        t.main_joins.len()
                    ),
                    None => println!("task summary: no"),
                }
                let edges: usize = artifact.profile.constructs().map(|c| c.edges.len()).sum();
                println!(
                    "profile: {} recorded instructions, {} constructs, {} dependence edges",
                    artifact.profile.total_steps,
                    artifact.profile.len(),
                    edges
                );
                println!(
                    "dependences: {} intra-thread, {} cross-thread",
                    artifact.profile.intra_thread_deps, artifact.profile.cross_thread_deps
                );
                println!(
                    "reads dropped at reader cap: {}",
                    artifact.profile.dropped_readers
                );
            }
            _ => unreachable!("validated by parse_analyses"),
        }
    }
    if let Some(metrics) = &metrics {
        mopt.emit(metrics, "profile query")?;
    }
    Ok(())
}

fn run_cmd(args: &[String]) -> Result<(), CliError> {
    let a = parse_common(
        "run",
        args,
        &[
            "--input",
            "--scale",
            "--batch-size",
            "--profile-out",
            "--metrics",
            "--metrics-out",
        ],
    )?;
    let metrics = a.metrics.enabled().then(Metrics::new);
    let m = metrics.as_ref();
    let (out, profile) = {
        let _total_span = span_opt(m, Stage::Total);
        let module = {
            let _parse_span = span_opt(m, Stage::Parse);
            alchemist_vm::compile_source(&a.source).map_err(|e| CliError::runtime(e.to_string()))?
        };
        // `run` observes nothing (NullSink), so batching is opt-in here: the
        // default stays the zero-overhead per-event baseline. With
        // --profile-out the profiler rides the run instead.
        let exec_config = ExecConfig {
            batch_events: a.batch_size.unwrap_or(0),
            ..ExecConfig::with_input(a.input)
        };
        if a.profile_out.is_some() {
            let mut prof = AlchemistProfiler::new(&module, ProfileConfig::default());
            let out = run_with_metrics(&module, &exec_config, &mut prof, m)
                .map_err(|e| CliError::runtime(e.to_string()))?;
            let p = prof.into_profile(out.steps);
            (out, Some(p))
        } else {
            let out = run_with_metrics(&module, &exec_config, &mut NullSink, m)
                .map_err(|e| CliError::runtime(e.to_string()))?;
            (out, None)
        }
    };
    for v in &out.output {
        println!("{v}");
    }
    println!(
        "exit value: {} ({} instructions)",
        out.exit_value, out.steps
    );
    if let (Some(path), Some(p)) = (&a.profile_out, profile) {
        let artifact = ProfileArtifact::new(p).with_source(&*a.source);
        write_artifact(&artifact, path, m)?;
        eprintln!("wrote profile artifact to {path}");
    }
    if let Some(metrics) = &metrics {
        a.metrics.emit(metrics, "run")?;
    }
    Ok(())
}

fn advise_cmd(args: &[String]) -> Result<(), CliError> {
    let a = parse_common("advise", args, &["--input", "--threads"])?;
    let outcome =
        profile_source(&a.source, a.input.clone()).map_err(|e| CliError::runtime(e.to_string()))?;
    let report: ProfileReport = outcome.report();
    let candidates = suggest_candidates(&report, &outcome.module, 0.02, 0);
    if candidates.is_empty() {
        println!("no construct qualifies for asynchronous execution");
        println!("(every sizable construct has violating RAW dependences)");
        return Ok(());
    }
    println!("parallelization candidates (largest first):\n");
    for c in &candidates {
        println!(
            "  {:<30} {:>5.1}% of run, violating RAW: {}",
            c.label,
            c.norm_size * 100.0,
            c.violating_raw
        );
        if !c.privatize.is_empty() {
            println!("      privatize: {}", c.privatize.join(", "));
        }
    }
    // Simulate the top candidate.
    let best = &candidates[0];
    let mut cfg = ExtractConfig::default().mark(best.head);
    for v in &best.privatize {
        cfg = cfg.privatize(v);
    }
    let trace = extract_tasks(&outcome.module, &ExecConfig::with_input(a.input), cfg)
        .map_err(|e| CliError::runtime(e.to_string()))?;
    let sim = simulate(&trace, &SimConfig::with_threads(a.threads));
    println!(
        "\nsimulating `{}` as a future on {} threads: {:.2}x speedup \
         ({} tasks, {} joins)",
        best.label, a.threads, sim.speedup, sim.tasks, sim.main_joins
    );
    if trace.cross_thread_sharing > 0 {
        println!(
            "cross-thread: {} dependences already run on separate program \
             threads (excluded from serialization cost)",
            trace.cross_thread_sharing
        );
    }
    Ok(())
}

fn simulate_cmd(args: &[String]) -> Result<(), CliError> {
    let a = parse_common(
        "simulate",
        args,
        &[
            "--input",
            "--mark",
            "--privatize",
            "--threads",
            "--timeline",
        ],
    )?;
    if a.mark.is_empty() {
        return Err("simulate requires at least one --mark FUNC".into());
    }
    let module =
        alchemist_vm::compile_source(&a.source).map_err(|e| CliError::runtime(e.to_string()))?;
    let mut cfg = ExtractConfig::default();
    for name in &a.mark {
        let head = module
            .func_by_name(name)
            .ok_or_else(|| format!("no function `{name}` to mark"))?
            .1
            .entry;
        cfg = cfg.mark(head);
    }
    for v in &a.privatize {
        if module.global_by_name(v).is_none() {
            return Err(format!("no global `{v}` to privatize").into());
        }
        cfg = cfg.privatize(v);
    }
    let trace = extract_tasks(&module, &ExecConfig::with_input(a.input), cfg)
        .map_err(|e| CliError::runtime(e.to_string()))?;
    let sim_cfg = SimConfig::with_threads(a.threads);
    if a.timeline {
        print!("{}", render_timeline(&trace, &sim_cfg, 72));
    } else {
        let sim = simulate(&trace, &sim_cfg);
        println!(
            "marked [{}] privatized [{}]",
            a.mark.join(", "),
            a.privatize.join(", ")
        );
        println!(
            "{} tasks, serial fraction {:.1}%",
            trace.tasks.len(),
            trace.serial_fraction() * 100.0
        );
        println!(
            "sequential {} -> parallel {} instructions on {} threads: {:.2}x",
            sim.t_seq, sim.t_par, a.threads, sim.speedup
        );
    }
    Ok(())
}

/// Installs a SIGINT handler that requests cooperative interpreter
/// cancellation (an atomic store — async-signal-safe) instead of letting
/// the default disposition kill the process, so `record` can finalize the
/// current chunk and footer before exiting with code 130.
///
/// Raw FFI rather than a crate: std already links libc on every supported
/// Unix, and the CLI must not grow a dependency for one syscall.
#[cfg(unix)]
fn install_sigint_handler() {
    extern "C" fn on_sigint(_signum: i32) {
        alchemist_vm::request_interrupt();
    }
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    const SIGINT: i32 = 2;
    unsafe {
        signal(SIGINT, on_sigint);
    }
}

#[cfg(not(unix))]
fn install_sigint_handler() {}

fn record_cmd(args: &[String]) -> Result<(), CliError> {
    const FLAGS: &[&str] = &[
        "--input",
        "--scale",
        "-o",
        "--out",
        "--chunk-events",
        "--batch-size",
        "--crc",
        "--profile-out",
        "--metrics",
        "--metrics-out",
    ];
    let mut file = None;
    let mut out = None;
    let mut input = Vec::new();
    let mut scale = None;
    let mut chunk_events = None;
    let mut batch_size = None;
    let mut crc = false;
    let mut profile_out: Option<String> = None;
    let mut metrics_format = None;
    let mut metrics_out = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--input" => {
                input = parse_input_list(it.next().ok_or("--input needs a value")?)?;
            }
            "--scale" => {
                scale = Some(parse_scale(it.next())?);
            }
            "-o" | "--out" => {
                out = Some(it.next().ok_or("-o needs a path")?.clone());
            }
            "--profile-out" => {
                profile_out = Some(it.next().ok_or("--profile-out needs a path")?.clone());
            }
            "--chunk-events" => {
                chunk_events = Some(
                    it.next()
                        .ok_or("--chunk-events needs a value")?
                        .parse::<usize>()
                        .map_err(|e| format!("--chunk-events: {e}"))?,
                );
            }
            "--batch-size" => {
                batch_size = Some(parse_ge1("--batch-size", it.next())?);
            }
            "--crc" => crc = true,
            "--metrics" => {
                metrics_format = Some(it.next().ok_or("--metrics needs text or json")?.clone());
            }
            "--metrics-out" => {
                metrics_out = Some(it.next().ok_or("--metrics-out needs a path")?.clone());
            }
            flag if flag.starts_with('-') => return Err(unknown_flag("record", flag, FLAGS)),
            path if file.is_none() => file = Some(path.to_owned()),
            other => return Err(format!("unexpected argument `{other}`").into()),
        }
    }
    let mopt = MetricsOpt::validate(metrics_format, metrics_out)?;
    let metrics = mopt.enabled().then(|| Arc::new(Metrics::new()));
    let total_span = span_opt(metrics.as_deref(), Stage::Total);
    let path = file.ok_or("record needs a source file")?;
    let (source, input) = resolve_program(&path, scale, input)?;
    let module = {
        let _parse_span = span_opt(metrics.as_deref(), Stage::Parse);
        alchemist_vm::compile_source(&source).map_err(|e| CliError::runtime(e.to_string()))?
    };
    let out_path = out.unwrap_or_else(|| {
        if std::path::Path::new(&path).exists() {
            let mut p = std::path::PathBuf::from(&path);
            p.set_extension("alct");
            p.display().to_string()
        } else {
            // A workload name ("gzip-1.3.5") is not a path; appending keeps
            // the dots in the name intact instead of truncating at the last.
            format!("{path}.alct")
        }
    });
    // The trace builds in a temp file and only renames over `out_path` when
    // finalized, so a crash or trap never leaves a footer-less file under
    // the requested name — dropping an uncommitted AtomicFile cleans up.
    let f = AtomicFile::create(&out_path)
        .map_err(|e| CliError::io(format!("cannot create {out_path}: {e}")))?;
    // From here until commit, SIGINT means "finalize what you have": the
    // handler flips the interpreter's cancellation flag and the trap below
    // writes the final chunk + footer before exiting 130.
    install_sigint_handler();
    alchemist_vm::clear_interrupt();
    // --crc asks for v3 (per-chunk CRC-32 for salvage replay); otherwise
    // threaded programs need the v2 tid column and single-threaded programs
    // keep emitting byte-identical v1 traces.
    let mut writer = if crc {
        TraceWriter::new_v3(BufWriter::new(f), Some(&source))
    } else if module.uses_threads() {
        TraceWriter::new_v2(BufWriter::new(f), Some(&source))
    } else {
        TraceWriter::new(BufWriter::new(f), Some(&source))
    }
    .map_err(|e| CliError::io(format!("cannot write {out_path}: {e}")))?;
    if let Some(n) = chunk_events {
        writer = writer.with_chunk_capacity(n);
    }
    if let Some(m) = &metrics {
        writer = writer.with_metrics(Arc::clone(m));
    }
    // With --batch-size the interpreter hands the writer EventBatches
    // of that many events; the encoded bytes are identical to the
    // default per-event recording (the writer is statically
    // dispatched, so batching is opt-in rather than a default win).
    let exec_config = ExecConfig {
        batch_events: batch_size.unwrap_or(0),
        ..ExecConfig::with_input(input)
    };
    // With --profile-out the profiler rides the same run through a
    // sink fan-out: one execution yields both artifacts.
    let mut prof = profile_out
        .is_some()
        .then(|| AlchemistProfiler::new(&module, ProfileConfig::default()));
    let run_result = if let Some(p) = prof.as_mut() {
        let mut fan = MultiSink::new();
        fan.push(&mut writer).push(p);
        run_with_metrics(&module, &exec_config, &mut fan, metrics.as_deref())
    } else {
        run_with_metrics(&module, &exec_config, &mut writer, metrics.as_deref())
    };
    // Flush the final chunk, write the footer, fsync and rename: after
    // this the trace at `out_path` is complete and replayable.
    let finalize =
        |writer: TraceWriter<BufWriter<AtomicFile>>, steps: u64| -> Result<TraceStats, CliError> {
            let (w, stats) = writer
                .finish(steps)
                .map_err(|e| CliError::io(format!("cannot write {out_path}: {e}")))?;
            let f = w
                .into_inner()
                .map_err(|e| CliError::io(format!("cannot write {out_path}: {e}")))?;
            f.commit()
                .map_err(|e| CliError::io(format!("cannot write {out_path}: {e}")))?;
            Ok(stats)
        };
    let outcome = match run_result {
        Ok(out) => out,
        Err(trap) if trap.kind == TrapKind::Interrupted => {
            // The run has no final step count; finalize with the same
            // lower-bound estimate the salvage reader derives for a
            // footer-less trace (last event time + 1).
            let est = writer.last_event_time() + 1;
            let stats = finalize(writer, est)?;
            drop(total_span);
            return Err(CliError::interrupted(format!(
                "interrupted: finalized partial trace to {out_path} \
                 ({} events in {} chunks; replayable as-is)",
                stats.events, stats.chunks
            )));
        }
        // Uncommitted AtomicFile drops here: temp removed, out_path
        // untouched — a trap never publishes a half-recorded trace.
        Err(trap) => return Err(CliError::runtime(trap.to_string())),
    };
    let stats = finalize(writer, outcome.steps)?;
    let profile = prof.map(|p| p.into_profile(outcome.steps));
    drop(total_span);
    if let (Some(path), Some(p)) = (&profile_out, profile) {
        let artifact = ProfileArtifact::new(p).with_source(&*source);
        write_artifact(&artifact, path, metrics.as_deref())?;
        eprintln!("wrote profile artifact to {path}");
    }
    println!(
        "recorded {} events in {} chunks to {out_path}",
        stats.events, stats.chunks
    );
    println!(
        "{} bytes ({:.2} bytes/event), {} instructions, exit value {}",
        stats.bytes,
        stats.bytes_per_event(),
        outcome.steps,
        outcome.exit_value
    );
    if let Some(m) = &metrics {
        mopt.emit(m, "record")?;
    }
    Ok(())
}

fn replay_cmd(args: &[String]) -> Result<(), CliError> {
    const FLAGS: &[&str] = &[
        "--analysis",
        "--top",
        "--threads",
        "--jobs",
        "--batch-size",
        "--scale",
        "--shard-flush",
        "--shard-depth",
        "--war-waw",
        "--profile-out",
        "--recover",
        "--metrics",
        "--metrics-out",
    ];
    let mut file = None;
    let mut analysis = "profile".to_owned();
    let mut top = 10;
    let mut threads = 4;
    let mut jobs = 1usize;
    let mut batch_size = None;
    let mut scale = None;
    let mut shard_flush = None;
    let mut shard_depth = None;
    let mut war_waw = None;
    let mut profile_out = None;
    let mut recover = false;
    let mut metrics_format = None;
    let mut metrics_out = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--analysis" => {
                analysis = it.next().ok_or("--analysis needs a value")?.clone();
            }
            "--profile-out" => {
                profile_out = Some(it.next().ok_or("--profile-out needs a path")?.clone());
            }
            "--metrics" => {
                metrics_format = Some(it.next().ok_or("--metrics needs text or json")?.clone());
            }
            "--metrics-out" => {
                metrics_out = Some(it.next().ok_or("--metrics-out needs a path")?.clone());
            }
            "--top" => {
                top = it
                    .next()
                    .ok_or("--top needs a value")?
                    .parse()
                    .map_err(|e| format!("--top: {e}"))?;
            }
            "--threads" => {
                threads = it
                    .next()
                    .ok_or("--threads needs a value")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?;
            }
            "--jobs" => {
                jobs = parse_ge1("--jobs", it.next())?;
            }
            "--batch-size" => {
                batch_size = Some(parse_ge1("--batch-size", it.next())?);
            }
            "--scale" => {
                scale = Some(parse_scale(it.next())?);
            }
            "--shard-flush" => {
                shard_flush = Some(parse_ge1("--shard-flush", it.next())?);
            }
            "--shard-depth" => {
                shard_depth = Some(parse_ge1("--shard-depth", it.next())?);
            }
            "--war-waw" => {
                war_waw = Some(it.next().ok_or("--war-waw needs a label")?.clone());
            }
            "--recover" => recover = true,
            flag if flag.starts_with('-') => return Err(unknown_flag("replay", flag, FLAGS)),
            path if file.is_none() => file = Some(path.to_owned()),
            other => return Err(format!("unexpected argument `{other}`").into()),
        }
    }
    let path = file.ok_or("replay needs a trace file")?;
    // `--analysis` accepts a comma-separated list; one decode pass serves
    // every requested analysis.
    let analyses = parse_analyses(&analysis)?;
    let tuning = ShardTuning {
        channel_depth: shard_depth.unwrap_or(alchemist_core::SHARD_CHANNEL_DEPTH),
        flush_events: shard_flush.unwrap_or(alchemist_core::SHARD_FLUSH_EVENTS),
    };
    // The positional may also name a bundled workload: record it to a
    // temporary trace at the requested scale, replay that, clean up. This
    // is what lets the perf suite drive tens-of-millions-of-events replays
    // without shipping giant .alct files around.
    let mut temp_trace = None;
    let trace_path = if std::path::Path::new(&path).exists() {
        if scale.is_some() {
            return Err(CliError::bare(format!(
                "--scale only applies to bundled workload names; `{path}` is a trace file"
            )));
        }
        path.clone()
    } else if let Some(w) = alchemist_workloads::by_name(&path) {
        let sc = scale.unwrap_or(Scale::Tiny);
        let p = record_workload_trace(w, sc)?;
        eprintln!(
            "recorded bundled workload `{}` at --scale {} to {}",
            w.name,
            sc.name(),
            p.display()
        );
        let s = p.display().to_string();
        temp_trace = Some(p);
        s
    } else {
        // Name the OS cause so "typo'd path" and "permission denied" read
        // differently; no usage block — the invocation itself was fine.
        let cause = std::fs::metadata(&path)
            .err()
            .map_or_else(|| "not a readable file".to_owned(), |e| e.to_string());
        return Err(CliError::io(format!(
            "cannot read {path}: {cause}, and no bundled workload has that name \
             (see `alchemist workloads`)"
        )));
    };
    let result = run_replay(
        &trace_path,
        &analyses,
        top,
        threads,
        jobs,
        batch_size,
        tuning,
        war_waw.as_deref(),
        profile_out.as_deref(),
        recover,
        &MetricsOpt::validate(metrics_format, metrics_out)?,
    );
    if let Some(p) = temp_trace {
        let _ = std::fs::remove_file(p);
    }
    result
}

/// Records `w` at `scale` to a temporary self-contained trace, for
/// `replay <workload>`. The file is the caller's to delete.
fn record_workload_trace(
    w: &alchemist_workloads::Workload,
    scale: Scale,
) -> Result<std::path::PathBuf, CliError> {
    let path = std::env::temp_dir().join(format!(
        "alchemist-replay-{}-{}-{}.alct",
        w.name,
        scale.name(),
        std::process::id()
    ));
    let module = w.module();
    // AtomicFile: a trap or write failure drops the uncommitted temp and
    // never publishes a footer-less trace under `path`.
    let f = AtomicFile::create(&path)
        .map_err(|e| CliError::io(format!("cannot create {}: {e}", path.display())))?;
    let wr_err = |e: TraceError| CliError::io(format!("cannot write {}: {e}", path.display()));
    let mut writer = if module.uses_threads() {
        TraceWriter::new_v2(BufWriter::new(f), Some(w.source))
    } else {
        TraceWriter::new(BufWriter::new(f), Some(w.source))
    }
    .map_err(wr_err)?;
    let out = alchemist_vm::run(&module, &w.exec_config(scale), &mut writer)
        .map_err(|e| CliError::runtime(e.to_string()))?;
    let (bufw, _) = writer.finish(out.steps).map_err(wr_err)?;
    bufw.into_inner()
        .map_err(|e| CliError::io(format!("cannot write {}: {e}", path.display())))?
        .commit()
        .map_err(|e| CliError::io(format!("cannot write {}: {e}", path.display())))?;
    Ok(path)
}

fn open_trace(path: &str) -> Result<TraceReader<BufReader<std::fs::File>>, CliError> {
    let f =
        std::fs::File::open(path).map_err(|e| CliError::io(format!("cannot read {path}: {e}")))?;
    TraceReader::new(BufReader::new(f)).map_err(|e| trace_read_err(path, &e))
}

/// Recompiles the module a self-contained trace describes.
fn trace_module(
    reader: &TraceReader<BufReader<std::fs::File>>,
) -> Result<alchemist_vm::Module, CliError> {
    let source = reader
        .source()
        .ok_or_else(|| CliError::bare("trace has no embedded source; cannot rebuild the module"))?;
    alchemist_vm::compile_source(source)
        .map_err(|e| CliError::corrupt(format!("embedded source does not compile: {e}")))
}

/// Runs the requested analyses over one trace with **one decode pass**.
///
/// The decoded batch stream fans out through a [`MultiSink`]: with
/// `jobs <= 1` and no advise request the batches stream straight from the
/// reader into every sink; otherwise the batches are materialized once
/// (chunk-parallel when `jobs > 1`) and shared by the sharded profiler,
/// the stats sinks and task extraction.
#[allow(clippy::too_many_arguments)]
fn run_replay(
    path: &str,
    analyses: &[String],
    top: usize,
    threads: usize,
    jobs: usize,
    batch_size: Option<usize>,
    tuning: ShardTuning,
    war_waw: Option<&str>,
    profile_out: Option<&str>,
    recover: bool,
    mopt: &MetricsOpt,
) -> Result<(), CliError> {
    let want = |name: &str| analyses.iter().any(|a| a == name);
    let need_advise = want("advise");
    // --profile-out needs the profile computed even when no analysis
    // prints it (replay straight into an artifact).
    let need_profile = want("profile") || need_advise || profile_out.is_some();
    let need_stats = want("stats");

    // Replay always carries a Metrics: the stats analysis reads throughput
    // out of it, and --metrics reports it. The per-chunk granularity keeps
    // the always-on cost far below measurement noise.
    let metrics = Arc::new(Metrics::new());
    let m = Some(&*metrics);

    // Header-only scan for stats: chunk metadata, no payload decoding.
    let stats_scan = if need_stats {
        let mut reader = open_trace(path)?;
        let version = reader.version();
        let source_lines = reader.source().map(|s| s.lines().count());
        let infos = if recover {
            // Salvage scan: damaged chunks are skipped here exactly as the
            // decode pass below will skip them, so both agree on the set.
            let (infos, _, _) = reader.read_chunk_infos_recover();
            infos
        } else {
            reader
                .read_chunk_infos()
                .map_err(|e| trace_read_err(path, &e))?
        };
        Some((version, infos, source_lines))
    } else {
        None
    };

    let mut profile: Option<DepProfile> = None;
    let mut recovery: Option<RecoveryReport> = None;
    let mut batches_kept: Option<Vec<EventBatch>> = None;
    let mut shard_counts: Option<Vec<u64>> = None;
    let mut counts = CountingSink::default();
    let mut addrs = AddrSpan::default();
    let mut drops = None;
    let mut source_for_artifact: Option<String> = None;
    let module;
    let summary;
    {
        let _total_span = span_opt(m, Stage::Total);
        let reader = open_trace(path)?;
        // profile/advise need the module; stats uses it only when the trace
        // is self-contained (for the reader-cap audit).
        module = {
            let _parse_span = span_opt(m, Stage::Parse);
            if need_profile {
                Some(trace_module(&reader)?)
            } else {
                reader.source().map(|_| trace_module(&reader)).transpose()?
            }
        };
        if need_stats {
            drops = module.as_ref().map(CapDrops::new);
        }
        // Grabbed before the decode consumes the reader: a saved artifact
        // stays self-contained like the trace it came from.
        if profile_out.is_some() {
            source_for_artifact = reader.source().map(str::to_owned);
        }

        if jobs > 1 || need_advise || recover {
            // Materialize the batch stream once; every analysis reuses it.
            // (--recover rides this path too: the salvage reader indexes the
            // whole file to find intact chunks past a damaged one.) The
            // batches follow the trace's chunk boundaries here, so an
            // explicit --batch-size cannot take effect — say so rather than
            // silently ignoring the flag.
            if batch_size.is_some() {
                eprintln!(
                    "note: --batch-size is ignored with --jobs > 1, --analysis advise or \
                     --recover (batches follow the trace's chunk boundaries)"
                );
            }
            let (batches, s) = if recover {
                let (batches, s, rep) = decode_batches_par_recover(reader, jobs, m);
                surface_salvage(&rep, m);
                recovery = Some(rep);
                (batches, s)
            } else {
                decode_batches_par_with(reader, jobs, m).map_err(|e| trace_read_err(path, &e))?
            };
            summary = s;
            if need_stats {
                let mut fan = MultiSink::new();
                fan.push(&mut counts).push(&mut addrs);
                if let Some(d) = drops.as_mut() {
                    fan.push(d);
                }
                for batch in &batches {
                    fan.on_batch(batch);
                }
            }
            if need_profile {
                let md = module.as_ref().expect("profile requires a module");
                // One partition choice serves the profiler, the per-shard
                // summary and the report's imbalance note.
                let spec = ShardSpec::for_batches(&batches, jobs as u32);
                let (p, _, _) = {
                    let _profile_span = span_opt(m, Stage::Profile);
                    profile_batches_par_spec(
                        md,
                        &batches,
                        summary.total_steps,
                        ProfileConfig::default(),
                        spec,
                        tuning,
                        m,
                    )?
                };
                if jobs > 1 {
                    let per_shard = shard_batch_counts_spec(&batches, spec);
                    let rendered: Vec<String> = per_shard.iter().map(|c| c.to_string()).collect();
                    eprintln!(
                        "sharded replay across {jobs} workers, block-cyclic over \
                         {}-word blocks (memory events per shard: {})",
                        spec.block_words(),
                        rendered.join(", ")
                    );
                    shard_counts = Some(per_shard);
                }
                profile = Some(p);
            }
            if need_advise {
                batches_kept = Some(batches);
            }
        } else {
            // Streaming path: one batched pass, no event buffer; the
            // MultiSink fans each batch out to every requested sink. The
            // pass fuses decode with analysis, so it runs under the
            // `profile` stage when profiling (and plain `decode` when only
            // stats were asked for); the reader still counts chunks, bytes
            // and events either way.
            let mut reader = reader.with_metrics(Arc::clone(&metrics));
            let mut prof = if need_profile {
                let md = module.as_ref().expect("profile requires a module");
                Some(AlchemistProfiler::new(md, ProfileConfig::default()))
            } else {
                None
            };
            let mut fan = MultiSink::new();
            if let Some(p) = prof.as_mut() {
                fan.push(p);
            }
            if need_stats {
                fan.push(&mut counts).push(&mut addrs);
                if let Some(d) = drops.as_mut() {
                    fan.push(d);
                }
            }
            summary = {
                let _pass_span = if need_profile {
                    span_opt(m, Stage::Profile)
                } else {
                    span_opt(m, Stage::Decode)
                };
                reader
                    .replay_batched_into(&mut fan, batch_size.unwrap_or(DEFAULT_BATCH_EVENTS))
                    .map_err(|e| trace_read_err(path, &e))?
            };
            drop(fan);
            if let Some(p) = prof {
                let p = p.into_profile(summary.total_steps);
                metrics.add(Counter::ProfileEvents, summary.events);
                metrics.add(
                    Counter::ProfileDeps,
                    p.intra_thread_deps + p.cross_thread_deps,
                );
                profile = Some(p);
            }
        }
    }
    let (replay_wall_ns, _) = metrics.stage(Stage::Total);

    for (i, analysis) in analyses.iter().enumerate() {
        if i > 0 {
            println!();
        }
        match analysis.as_str() {
            "profile" => {
                let p = profile.as_ref().expect("profiled above");
                let md = module.as_ref().expect("profile requires a module");
                println!(
                    "replayed {} events ({} recorded instructions), {} static constructs",
                    summary.events,
                    summary.total_steps,
                    p.len()
                );
                println!();
                let mut report = ProfileReport::new(p, md);
                if let Some(c) = &shard_counts {
                    report = report.with_shard_events(c.clone());
                }
                // A salvaged profile is a lower bound, not the full run;
                // say so on the report itself, not just on stderr.
                if let Some(rep) = recovery.as_ref().filter(|r| !r.is_clean()) {
                    report = report.with_note(salvage_note(rep));
                }
                render_profile_report(&report, top, war_waw)?;
            }
            "advise" => {
                let p = profile.as_ref().expect("profiled above");
                let md = module.as_ref().expect("advise requires a module");
                let batches = batches_kept.as_ref().expect("advise keeps the batches");
                render_advise(md, p, batches, summary.total_steps, threads, jobs, m)?;
            }
            "stats" => {
                let (version, infos, source_lines) = stats_scan.as_ref().expect("scanned above");
                render_stats(
                    path,
                    *version,
                    infos,
                    *source_lines,
                    summary.events,
                    summary.total_steps,
                    &counts,
                    &addrs,
                    drops.as_ref(),
                    recovery.as_ref(),
                    replay_wall_ns,
                )?;
            }
            _ => unreachable!("validated in replay_cmd"),
        }
    }
    if let Some(out_path) = profile_out {
        let p = profile.clone().expect("profiled above");
        let mut artifact = ProfileArtifact::new(p);
        if let Some(src) = source_for_artifact {
            artifact = artifact.with_source(src);
        }
        write_artifact(&artifact, out_path, m)?;
        // Stderr, like the shard summary: stdout stays byte-identical
        // across job counts for the parity tests.
        eprintln!("wrote profile artifact to {out_path}");
    }
    mopt.emit(&metrics, "replay")?;
    Ok(())
}

/// Prints parallelization candidates and simulates the best one from the
/// already-decoded batch stream: no re-execution, no re-decode.
#[allow(clippy::too_many_arguments)]
fn render_advise(
    module: &alchemist_vm::Module,
    profile: &DepProfile,
    batches: &[EventBatch],
    total_steps: u64,
    threads: usize,
    jobs: usize,
    metrics: Option<&Metrics>,
) -> Result<(), CliError> {
    let report = ProfileReport::new(profile, module);
    let candidates = suggest_candidates(&report, module, 0.02, 0);
    if candidates.is_empty() {
        println!("no construct qualifies for asynchronous execution");
        println!("(every sizable construct has violating RAW dependences)");
        return Ok(());
    }
    println!("parallelization candidates (largest first):\n");
    for c in &candidates {
        println!(
            "  {:<30} {:>5.1}% of run, violating RAW: {}",
            c.label,
            c.norm_size * 100.0,
            c.violating_raw
        );
        if !c.privatize.is_empty() {
            println!("      privatize: {}", c.privatize.join(", "));
        }
    }
    // Simulate the top candidate from the same recorded batches: no
    // re-execution anywhere in this pipeline.
    let best = &candidates[0];
    let mut cfg = ExtractConfig::default().mark(best.head);
    for v in &best.privatize {
        cfg = cfg.privatize(v);
    }
    let trace =
        extract_tasks_from_batches_par_with(module, cfg, batches, total_steps, jobs, metrics)?;
    let sim = simulate(&trace, &SimConfig::with_threads(threads));
    println!(
        "\nsimulating `{}` as a future on {} threads: {:.2}x speedup \
         ({} tasks, {} joins)",
        best.label, threads, sim.speedup, sim.tasks, sim.main_joins
    );
    if trace.cross_thread_sharing > 0 {
        println!(
            "cross-thread: {} dependences already run on separate program \
             threads (excluded from serialization cost)",
            trace.cross_thread_sharing
        );
    }
    Ok(())
}

/// Tracks the span of data addresses the replay touches.
#[derive(Default)]
struct AddrSpan {
    seen: bool,
    lo: u32,
    hi: u32,
}

impl AddrSpan {
    fn touch(&mut self, addr: u32) {
        if self.seen {
            self.lo = self.lo.min(addr);
            self.hi = self.hi.max(addr);
        } else {
            (self.seen, self.lo, self.hi) = (true, addr, addr);
        }
    }
}

impl TraceSink for AddrSpan {
    fn on_read(&mut self, _t: Time, addr: u32, _pc: Pc, _tid: Tid) {
        self.touch(addr);
    }
    fn on_write(&mut self, _t: Time, addr: u32, _pc: Pc, _tid: Tid) {
        self.touch(addr);
    }
}

/// Replays global-memory accesses through a shadow memory with the
/// profiler's default reader cap, counting the reads a profiling run of
/// this trace would drop (capped read sets silently lose WAR edges; the
/// stats analysis makes that visible before anyone trusts a profile).
struct CapDrops {
    shadow: ShadowMemory<()>,
    global_words: u32,
}

impl CapDrops {
    fn new(module: &alchemist_vm::Module) -> Self {
        CapDrops {
            shadow: ShadowMemory::with_dense_limit(
                ProfileConfig::default().reader_cap,
                module.global_words,
            ),
            global_words: module.global_words,
        }
    }
}

impl TraceSink for CapDrops {
    fn on_read(&mut self, t: Time, addr: u32, pc: Pc, tid: Tid) {
        if addr < self.global_words {
            let _ = self.shadow.on_read(
                addr,
                Access {
                    pc,
                    t,
                    tid,
                    node: (),
                },
            );
        }
    }
    fn on_write(&mut self, t: Time, addr: u32, pc: Pc, tid: Tid) {
        if addr < self.global_words {
            // The audit only wants the shadow's counters; the detected
            // dependences themselves are discarded.
            self.shadow.on_write(
                addr,
                Access {
                    pc,
                    t,
                    tid,
                    node: (),
                },
                &mut |_, _| {},
            );
        }
    }
}

/// Prints the stats section from sinks already fed by the shared decode
/// pass plus the header-only chunk scan.
#[allow(clippy::too_many_arguments)]
fn render_stats(
    path: &str,
    version: u16,
    infos: &[ChunkInfo],
    source_lines: Option<usize>,
    events: u64,
    total_steps: u64,
    counts: &CountingSink,
    addrs: &AddrSpan,
    drops: Option<&CapDrops>,
    recovery: Option<&RecoveryReport>,
    wall_ns: u64,
) -> Result<(), CliError> {
    let file_bytes = std::fs::metadata(path)
        .map_err(|e| CliError::io(format!("cannot stat {path}: {e}")))?
        .len();
    let payload: u64 = infos.iter().map(|c| c.payload_bytes).sum();
    println!("trace {path}: format v{version}");
    match source_lines {
        Some(n) => println!("embedded source: yes ({n} lines)"),
        None => println!("embedded source: no"),
    }
    println!(
        "chunks: {} ({} payload bytes), file {} bytes",
        infos.len(),
        payload,
        file_bytes
    );
    if let Some(rep) = recovery {
        if rep.is_clean() {
            println!("recovery: clean (all {} chunk(s) intact)", rep.chunks_total);
        } else {
            println!(
                "recovery: skipped {} of {} chunk(s), >= {} event(s) lost \
                 ({} CRC mismatch(es), {} truncation(s), {} decode error(s))",
                rep.chunks_skipped,
                rep.chunks_total,
                rep.events_lost,
                rep.crc_mismatches,
                rep.truncations,
                rep.decode_errors
            );
            if !rep.footer_recovered {
                println!("recovery: footer lost; total steps is a lower-bound estimate");
            }
        }
    }
    println!(
        "events: {} total — enters {}, exits {}, blocks {}, predicates {}, reads {}, writes {}",
        events,
        counts.enters,
        counts.exits,
        counts.blocks,
        counts.predicates,
        counts.reads,
        counts.writes
    );
    println!(
        "encoded size: {:.2} bytes/event over {} recorded instructions",
        if events == 0 {
            0.0
        } else {
            file_bytes as f64 / events as f64
        },
        total_steps
    );
    // Wall-clock throughput is inherently run-dependent, so — like the
    // per-shard summary — it goes to stderr, keeping stdout byte-identical
    // across job counts and repeat runs (the determinism guarantee the CLI
    // parity tests diff for).
    if wall_ns > 0 && events > 0 {
        let secs = wall_ns as f64 / 1e9;
        eprintln!(
            "throughput: {:.0} events/sec ({:.1} ns/event) over {:.3} s wall time",
            events as f64 / secs,
            wall_ns as f64 / events as f64,
            secs
        );
    }
    if let (Some(first), Some(last)) = (infos.first(), infos.last()) {
        println!("time range: [{}, {}]", first.t_first, last.t_last);
    }
    if addrs.seen {
        println!("data addresses touched: [{}, {}]", addrs.lo, addrs.hi);
    }
    if let Some(d) = drops {
        println!(
            "reads dropped at reader cap {}: {}{}",
            ProfileConfig::default().reader_cap,
            d.shadow.dropped_readers,
            if d.shadow.dropped_readers > 0 {
                " (profiling this trace undercounts WAR edges)"
            } else {
                ""
            }
        );
        let st = d.shadow.stats();
        println!(
            "shadow layout: {} page(s) of {} cells faulted in, {} read-set \
             spill(s) past the inline capacity of {}{}",
            st.pages_allocated,
            alchemist_core::PAGE_WORDS,
            st.read_set_spills,
            alchemist_core::INLINE_READERS,
            if st.read_set_spills > 0 {
                " (some read sets left the allocation-free inline path)"
            } else {
                " (profiling this trace is allocation-free in steady state)"
            }
        );
    }
    Ok(())
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn workloads_cmd(args: &[String]) -> Result<(), CliError> {
    const FLAGS: &[&str] = &["--json", "--scale"];
    let mut json = false;
    let mut scale = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => json = true,
            "--scale" => scale = Some(parse_scale(it.next())?),
            flag if flag.starts_with('-') => return Err(unknown_flag("workloads", flag, FLAGS)),
            other => return Err(format!("unexpected argument `{other}`").into()),
        }
    }
    let scale = scale.unwrap_or(Scale::Tiny);
    if json {
        println!("[");
        let suite = alchemist_workloads::all();
        for (i, w) in suite.iter().enumerate() {
            let speedup = w
                .parallel
                .as_ref()
                .and_then(|p| p.paper_speedup)
                .map_or("null".to_owned(), |s| format!("{s}"));
            // One run per workload at the requested --scale (default tiny)
            // yields the exact event count a recording of it would contain
            // and — via an in-memory trace writer and a profiler riding the
            // same run — the exact encoded byte sizes of both artifacts
            // (the suite is deterministic, so these are stable facts, not
            // estimates).
            let module = w.module();
            let mut counts = CountingSink::default();
            let mut prof = AlchemistProfiler::new(&module, ProfileConfig::default());
            let mut writer = if module.uses_threads() {
                TraceWriter::new_v2(Vec::new(), None)
            } else {
                TraceWriter::new(Vec::new(), None)
            }
            .map_err(|e| CliError::bare(format!("workload {}: {e}", w.name)))?;
            let out = {
                let mut fan = MultiSink::new();
                fan.push(&mut counts).push(&mut writer).push(&mut prof);
                alchemist_vm::run(&module, &w.exec_config(scale), &mut fan)
                    .map_err(|e| CliError::bare(format!("workload {}: {e}", w.name)))?
            };
            let (_, tstats) = writer
                .finish(out.steps)
                .map_err(|e| CliError::bare(format!("workload {}: {e}", w.name)))?;
            // Like trace_bytes, profile_bytes is the source-less artifact:
            // the size of the data, not of the embedded program text.
            let profile_bytes = ProfileArtifact::new(prof.into_profile(out.steps))
                .to_bytes()
                .len();
            let events = counts.enters
                + counts.exits
                + counts.blocks
                + counts.predicates
                + counts.reads
                + counts.writes;
            println!(
                "  {{\"name\": \"{}\", \"loc\": {}, \"description\": \"{}\", \"source\": \"{}\", \
                 \"threaded\": {}, \"events\": {}, \"steps\": {}, \"trace_bytes\": {}, \
                 \"profile_bytes\": {}, \"paper_speedup\": {}}}{}",
                json_escape(w.name),
                w.loc(),
                json_escape(w.description),
                json_escape(w.source_path),
                module.uses_threads(),
                events,
                out.steps,
                tstats.bytes,
                profile_bytes,
                speedup,
                if i + 1 < suite.len() { "," } else { "" }
            );
        }
        println!("]");
    } else {
        println!("{:<12} {:>5}  description", "name", "LOC");
        for w in alchemist_workloads::all() {
            println!("{:<12} {:>5}  {}", w.name, w.loc(), w.description);
        }
    }
    Ok(())
}
