//! The `alchemist` command-line profiler.
//!
//! ```text
//! alchemist profile <file.mc> [--input a,b,c] [--top N] [--war-waw LABEL]
//! alchemist run <file.mc> [--input a,b,c]
//! alchemist advise <file.mc> [--input a,b,c] [--threads K]
//! alchemist workloads
//! ```

use alchemist_core::{profile_source, ProfileReport};
use alchemist_parsim::{
    extract_tasks, render_timeline, simulate, suggest_candidates, ExtractConfig, SimConfig,
};
use alchemist_vm::{ExecConfig, NullSink};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run_cli(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  alchemist profile <file.mc> [--input a,b,c] [--top N] [--war-waw LABEL]
                    [--csv-constructs FILE] [--csv-edges FILE]
  alchemist run <file.mc> [--input a,b,c]
  alchemist advise <file.mc> [--input a,b,c] [--threads K]
  alchemist simulate <file.mc> --mark FUNC[,FUNC..] [--privatize a,b]
                     [--input a,b,c] [--threads K] [--timeline]
  alchemist workloads";

fn run_cli(args: &[String]) -> Result<(), String> {
    let mut it = args.iter();
    let cmd = it.next().ok_or("no command given")?;
    match cmd.as_str() {
        "profile" => profile_cmd(&args[1..]),
        "run" => run_cmd(&args[1..]),
        "advise" => advise_cmd(&args[1..]),
        "simulate" => simulate_cmd(&args[1..]),
        "workloads" => {
            println!("{:<12} {:>5}  description", "name", "LOC");
            for w in alchemist_workloads::all() {
                println!("{:<12} {:>5}  {}", w.name, w.loc(), w.description);
            }
            Ok(())
        }
        other => Err(format!("unknown command `{other}`")),
    }
}

struct CommonArgs {
    source: String,
    input: Vec<i64>,
    top: usize,
    war_waw: Option<String>,
    threads: usize,
    csv_constructs: Option<String>,
    csv_edges: Option<String>,
    mark: Vec<String>,
    privatize: Vec<String>,
    timeline: bool,
}

fn parse_common(args: &[String]) -> Result<CommonArgs, String> {
    let mut file = None;
    let mut input = Vec::new();
    let mut top = 10;
    let mut war_waw = None;
    let mut threads = 4;
    let mut csv_constructs = None;
    let mut csv_edges = None;
    let mut mark = Vec::new();
    let mut privatize = Vec::new();
    let mut timeline = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--input" => {
                let v = it.next().ok_or("--input needs a value")?;
                input = v
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(|s| s.trim().parse::<i64>().map_err(|e| e.to_string()))
                    .collect::<Result<_, _>>()?;
            }
            "--top" => {
                top = it
                    .next()
                    .ok_or("--top needs a value")?
                    .parse()
                    .map_err(|e| format!("--top: {e}"))?;
            }
            "--war-waw" => {
                war_waw = Some(it.next().ok_or("--war-waw needs a label")?.clone());
            }
            "--csv-constructs" => {
                csv_constructs = Some(it.next().ok_or("--csv-constructs needs a path")?.clone());
            }
            "--csv-edges" => {
                csv_edges = Some(it.next().ok_or("--csv-edges needs a path")?.clone());
            }
            "--mark" => {
                let v = it.next().ok_or("--mark needs function name(s)")?;
                mark.extend(v.split(',').map(|s| s.trim().to_owned()));
            }
            "--privatize" => {
                let v = it.next().ok_or("--privatize needs variable name(s)")?;
                privatize.extend(v.split(',').map(|s| s.trim().to_owned()));
            }
            "--timeline" => timeline = true,
            "--threads" => {
                threads = it
                    .next()
                    .ok_or("--threads needs a value")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?;
            }
            path if file.is_none() && !path.starts_with("--") => {
                file = Some(path.to_owned());
            }
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    let path = file.ok_or("no source file given")?;
    let source = std::fs::read_to_string(&path).map_err(|e| format!("cannot read {path}: {e}"))?;
    Ok(CommonArgs {
        source,
        input,
        top,
        war_waw,
        threads,
        csv_constructs,
        csv_edges,
        mark,
        privatize,
        timeline,
    })
}

fn profile_cmd(args: &[String]) -> Result<(), String> {
    let a = parse_common(args)?;
    let outcome = profile_source(&a.source, a.input).map_err(|e| e.to_string())?;
    let report = outcome.report();
    println!(
        "profiled {} instructions, {} static constructs, exit value {}",
        outcome.exec.steps,
        outcome.profile.len(),
        outcome.exec.exit_value
    );
    println!();
    print!("{}", report.render(a.top));
    if let Some(label) = a.war_waw {
        let c = report
            .find(&label)
            .ok_or_else(|| format!("no construct matching `{label}`"))?;
        println!("\nWAR/WAW profile for {}:", c.label);
        print!("{}", report.render_war_waw(c.head));
    }
    if let Some(path) = a.csv_constructs {
        std::fs::write(&path, alchemist_core::constructs_to_csv(&report))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("\nwrote construct table to {path}");
    }
    if let Some(path) = a.csv_edges {
        std::fs::write(&path, alchemist_core::edges_to_csv(&report))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("wrote edge table to {path}");
    }
    Ok(())
}

fn run_cmd(args: &[String]) -> Result<(), String> {
    let a = parse_common(args)?;
    let module = alchemist_vm::compile_source(&a.source).map_err(|e| e.to_string())?;
    let out = alchemist_vm::run(&module, &ExecConfig::with_input(a.input), &mut NullSink)
        .map_err(|e| e.to_string())?;
    for v in &out.output {
        println!("{v}");
    }
    println!(
        "exit value: {} ({} instructions)",
        out.exit_value, out.steps
    );
    Ok(())
}

fn advise_cmd(args: &[String]) -> Result<(), String> {
    let a = parse_common(args)?;
    let outcome = profile_source(&a.source, a.input.clone()).map_err(|e| e.to_string())?;
    let report: ProfileReport = outcome.report();
    let candidates = suggest_candidates(&report, &outcome.module, 0.02, 0);
    if candidates.is_empty() {
        println!("no construct qualifies for asynchronous execution");
        println!("(every sizable construct has violating RAW dependences)");
        return Ok(());
    }
    println!("parallelization candidates (largest first):\n");
    for c in &candidates {
        println!(
            "  {:<30} {:>5.1}% of run, violating RAW: {}",
            c.label,
            c.norm_size * 100.0,
            c.violating_raw
        );
        if !c.privatize.is_empty() {
            println!("      privatize: {}", c.privatize.join(", "));
        }
    }
    // Simulate the top candidate.
    let best = &candidates[0];
    let mut cfg = ExtractConfig::default().mark(best.head);
    for v in &best.privatize {
        cfg = cfg.privatize(v);
    }
    let trace = extract_tasks(&outcome.module, &ExecConfig::with_input(a.input), cfg)
        .map_err(|e| e.to_string())?;
    let sim = simulate(&trace, &SimConfig::with_threads(a.threads));
    println!(
        "\nsimulating `{}` as a future on {} threads: {:.2}x speedup \
         ({} tasks, {} joins)",
        best.label, a.threads, sim.speedup, sim.tasks, sim.main_joins
    );
    Ok(())
}

fn simulate_cmd(args: &[String]) -> Result<(), String> {
    let a = parse_common(args)?;
    if a.mark.is_empty() {
        return Err("simulate requires at least one --mark FUNC".to_owned());
    }
    let module = alchemist_vm::compile_source(&a.source).map_err(|e| e.to_string())?;
    let mut cfg = ExtractConfig::default();
    for name in &a.mark {
        let head = module
            .func_by_name(name)
            .ok_or_else(|| format!("no function `{name}` to mark"))?
            .1
            .entry;
        cfg = cfg.mark(head);
    }
    for v in &a.privatize {
        if module.global_by_name(v).is_none() {
            return Err(format!("no global `{v}` to privatize"));
        }
        cfg = cfg.privatize(v);
    }
    let trace =
        extract_tasks(&module, &ExecConfig::with_input(a.input), cfg).map_err(|e| e.to_string())?;
    let sim_cfg = SimConfig::with_threads(a.threads);
    if a.timeline {
        print!("{}", render_timeline(&trace, &sim_cfg, 72));
    } else {
        let sim = simulate(&trace, &sim_cfg);
        println!(
            "marked [{}] privatized [{}]",
            a.mark.join(", "),
            a.privatize.join(", ")
        );
        println!(
            "{} tasks, serial fraction {:.1}%",
            trace.tasks.len(),
            trace.serial_fraction() * 100.0
        );
        println!(
            "sequential {} -> parallel {} instructions on {} threads: {:.2}x",
            sim.t_seq, sim.t_par, a.threads, sim.speedup
        );
    }
    Ok(())
}
