//! Bytecode compiler: HIR → [`Module`].
//!
//! Lowering notes relevant to profiling fidelity:
//!
//! * Short-circuit `&&`/`||` and the ternary operator are lowered to
//!   conditional branches, exactly as a C compiler would. They therefore
//!   appear as predicates — and hence as profiled constructs — just like
//!   `if` statements. This is what "transparent profiling of all constructs"
//!   means at the binary level.
//! * `while`/`for` loops test at the top; `do`-`while` tests at the bottom.
//!   The loop/branch classification is *not* trusted from syntax; it is
//!   recomputed from the block graph by [`analyze`].
//! * Every function ends with an explicit `ret` (an implicit `return 0` is
//!   appended when control can fall off the end).

use crate::analysis::analyze;
use crate::module::{FuncInfo, GlobalInfo, Module};
use crate::op::{Op, Pc};
use alchemist_lang::hir::{
    HArg, HBlock, HExpr, HFunction, HProgram, HStmt, HVar, Storage, VarSite,
};
use alchemist_lang::{BinOp, Span, UnOp};

/// Compiles a resolved program to bytecode.
///
/// # Examples
///
/// ```
/// use alchemist_lang::compile_to_hir;
/// use alchemist_vm::compile;
///
/// let hir = compile_to_hir("int main() { return 2 + 3; }")?;
/// let module = compile(&hir);
/// assert_eq!(module.funcs.len(), 1);
/// # Ok::<(), alchemist_lang::LangError>(())
/// ```
pub fn compile(hir: &HProgram) -> Module {
    let mut globals = Vec::with_capacity(hir.globals.len());
    let mut offset = 0u32;
    for g in &hir.globals {
        let words = g.storage.words();
        globals.push(GlobalInfo {
            name: g.name.clone(),
            offset,
            words,
            is_array: g.storage.is_array(),
            init: g.init,
            span: g.span,
        });
        offset += words;
    }

    let mut ops = Vec::new();
    let mut spans = Vec::new();
    let mut funcs = Vec::with_capacity(hir.functions.len());
    let mut ranges = Vec::with_capacity(hir.functions.len());
    for f in &hir.functions {
        let entry = Pc(ops.len() as u32);
        FnCompiler::new(&globals, f, &mut ops, &mut spans).run();
        let end = Pc(ops.len() as u32);
        funcs.push(FuncInfo {
            name: f.name.clone(),
            entry,
            end,
            frame_words: f.frame_words(),
            param_count: f.param_count,
            is_void: f.is_void,
            span: f.span,
        });
        ranges.push((entry, end));
    }

    let analysis = analyze(&ops, &ranges);
    Module {
        ops,
        spans,
        funcs,
        globals,
        global_words: offset,
        main: hir.main,
        analysis,
    }
}

/// A forward-branch patch list bound to a label.
#[derive(Debug, Default)]
struct Label {
    target: Option<u32>,
    patches: Vec<usize>,
}

#[derive(Debug)]
struct LoopCtx {
    break_label: usize,
    continue_label: usize,
}

struct FnCompiler<'a> {
    globals: &'a [GlobalInfo],
    func: &'a HFunction,
    ops: &'a mut Vec<Op>,
    spans: &'a mut Vec<Span>,
    /// Frame word offset of each local slot.
    slot_offset: Vec<u32>,
    labels: Vec<Label>,
    loop_stack: Vec<LoopCtx>,
}

impl<'a> FnCompiler<'a> {
    fn new(
        globals: &'a [GlobalInfo],
        func: &'a HFunction,
        ops: &'a mut Vec<Op>,
        spans: &'a mut Vec<Span>,
    ) -> Self {
        let mut slot_offset = Vec::with_capacity(func.locals.len());
        let mut off = 0u32;
        for l in &func.locals {
            slot_offset.push(off);
            off += l.storage.words();
        }
        FnCompiler {
            globals,
            func,
            ops,
            spans,
            slot_offset,
            labels: Vec::new(),
            loop_stack: Vec::new(),
        }
    }

    fn run(mut self) {
        let body = &self.func.body;
        self.block(body);
        // Implicit `return 0` when control can fall off the end.
        if self.ops.last() != Some(&Op::Ret) {
            self.emit(Op::Const(0), self.func.span);
            self.emit(Op::Ret, self.func.span);
        }
    }

    fn emit(&mut self, op: Op, span: Span) {
        self.ops.push(op);
        self.spans.push(span);
    }

    fn here(&self) -> u32 {
        self.ops.len() as u32
    }

    fn new_label(&mut self) -> usize {
        self.labels.push(Label::default());
        self.labels.len() - 1
    }

    fn bind(&mut self, label: usize) {
        let target = self.here();
        let l = &mut self.labels[label];
        debug_assert!(l.target.is_none(), "label bound twice");
        l.target = Some(target);
        for &site in &l.patches {
            Self::patch_at(self.ops, site, target);
        }
    }

    fn patch_at(ops: &mut [Op], site: usize, target: u32) {
        match &mut ops[site] {
            Op::Br(t) | Op::BrTrue(t) | Op::BrFalse(t) => *t = target,
            other => unreachable!("patching non-branch op {other}"),
        }
    }

    /// Emits a branch to `label`, patching later if unbound.
    fn branch(&mut self, make: impl FnOnce(u32) -> Op, label: usize, span: Span) {
        match self.labels[label].target {
            Some(t) => self.emit(make(t), span),
            None => {
                let site = self.ops.len();
                self.emit(make(u32::MAX), span);
                self.labels[label].patches.push(site);
            }
        }
    }

    fn block(&mut self, b: &HBlock) {
        for s in &b.stmts {
            self.stmt(s);
        }
    }

    fn stmt(&mut self, s: &HStmt) {
        match s {
            HStmt::Expr(e) => self.expr_for_effect(e),
            HStmt::Init { local, value, span } => {
                self.expr(value);
                let off = self.slot_offset[local.0 as usize];
                self.emit(Op::StoreLocal(off), *span);
            }
            HStmt::If {
                cond,
                then_blk,
                else_blk,
                span,
            } => match else_blk {
                None => {
                    let end = self.new_label();
                    self.cond_jump(cond, false, end);
                    self.block(then_blk);
                    self.bind(end);
                }
                Some(else_blk) => {
                    let els = self.new_label();
                    let end = self.new_label();
                    self.cond_jump(cond, false, els);
                    self.block(then_blk);
                    self.branch(Op::Br, end, *span);
                    self.bind(els);
                    self.block(else_blk);
                    self.bind(end);
                }
            },
            HStmt::While { cond, body, span } => {
                let head = self.new_label();
                let exit = self.new_label();
                self.bind(head);
                self.cond_jump(cond, false, exit);
                self.loop_stack.push(LoopCtx {
                    break_label: exit,
                    continue_label: head,
                });
                self.block(body);
                self.loop_stack.pop();
                self.branch(Op::Br, head, *span);
                self.bind(exit);
            }
            HStmt::DoWhile { body, cond, span } => {
                let head = self.new_label();
                let cont = self.new_label();
                let exit = self.new_label();
                self.bind(head);
                self.loop_stack.push(LoopCtx {
                    break_label: exit,
                    continue_label: cont,
                });
                self.block(body);
                self.loop_stack.pop();
                self.bind(cont);
                self.cond_jump(cond, true, head);
                self.bind(exit);
                let _ = span;
            }
            HStmt::For {
                init,
                cond,
                step,
                body,
                span,
            } => {
                if let Some(init) = init {
                    self.stmt(init);
                }
                let head = self.new_label();
                let cont = self.new_label();
                let exit = self.new_label();
                self.bind(head);
                if let Some(cond) = cond {
                    self.cond_jump(cond, false, exit);
                }
                self.loop_stack.push(LoopCtx {
                    break_label: exit,
                    continue_label: cont,
                });
                self.block(body);
                self.loop_stack.pop();
                self.bind(cont);
                if let Some(step) = step {
                    self.expr_for_effect(step);
                }
                self.branch(Op::Br, head, *span);
                self.bind(exit);
            }
            HStmt::Break(span) => {
                let label = self
                    .loop_stack
                    .last()
                    .expect("resolver rejects break outside loops")
                    .break_label;
                self.branch(Op::Br, label, *span);
            }
            HStmt::Continue(span) => {
                let label = self
                    .loop_stack
                    .last()
                    .expect("resolver rejects continue outside loops")
                    .continue_label;
                self.branch(Op::Br, label, *span);
            }
            HStmt::Return { value, span } => {
                match value {
                    Some(e) => self.expr(e),
                    None => self.emit(Op::Const(0), *span),
                }
                self.emit(Op::Ret, *span);
            }
            HStmt::Spawn { func, span } => self.emit(Op::Spawn(*func), *span),
            HStmt::Join(span) => self.emit(Op::Join, *span),
            HStmt::Block(b) => self.block(b),
        }
    }

    /// Compiles `e` and discards its value, avoiding a redundant
    /// `store.k`+`pop` for the common assignment/inc-dec statements.
    fn expr_for_effect(&mut self, e: &HExpr) {
        match e {
            HExpr::Assign {
                var,
                index,
                op,
                value,
                span,
            } => {
                self.assign(var, index.as_deref(), *op, value, *span, false);
            }
            HExpr::IncDec {
                var,
                index,
                inc,
                span,
                ..
            } => {
                // Value unused: prefix/postfix are equivalent.
                self.inc_dec_no_value(var, index.as_deref(), *inc, *span);
            }
            other => {
                self.expr(other);
                self.emit(Op::Pop, other.span());
            }
        }
    }

    /// Emits code that jumps to `label` when `truth(e) == jump_if`, falling
    /// through otherwise. Handles short-circuit operators without
    /// materializing booleans.
    fn cond_jump(&mut self, e: &HExpr, jump_if: bool, label: usize) {
        match e {
            HExpr::Binary {
                op: BinOp::LogAnd,
                lhs,
                rhs,
                ..
            } => {
                if jump_if {
                    // Jump when both are true.
                    let fall = self.new_label();
                    self.cond_jump(lhs, false, fall);
                    self.cond_jump(rhs, true, label);
                    self.bind(fall);
                } else {
                    // Jump when either is false.
                    self.cond_jump(lhs, false, label);
                    self.cond_jump(rhs, false, label);
                }
            }
            HExpr::Binary {
                op: BinOp::LogOr,
                lhs,
                rhs,
                ..
            } => {
                if jump_if {
                    self.cond_jump(lhs, true, label);
                    self.cond_jump(rhs, true, label);
                } else {
                    let fall = self.new_label();
                    self.cond_jump(lhs, true, fall);
                    self.cond_jump(rhs, false, label);
                    self.bind(fall);
                }
            }
            HExpr::Unary {
                op: UnOp::Not,
                expr,
                ..
            } => {
                self.cond_jump(expr, !jump_if, label);
            }
            HExpr::Int(v, span) => {
                // Constant condition: an unconditional jump or nothing.
                // (`while(1)` must not produce a predicate.)
                if (*v != 0) == jump_if {
                    self.branch(Op::Br, label, *span);
                }
            }
            other => {
                self.expr(other);
                let span = other.span();
                if jump_if {
                    self.branch(Op::BrTrue, label, span);
                } else {
                    self.branch(Op::BrFalse, label, span);
                }
            }
        }
    }

    fn global_offset(&self, var: &HVar) -> u32 {
        match var.site {
            VarSite::Global(g) => self.globals[g.0 as usize].offset,
            VarSite::Local(_) => unreachable!("local passed to global_offset"),
        }
    }

    fn local_offset(&self, var: &HVar) -> u32 {
        match var.site {
            VarSite::Local(l) => self.slot_offset[l.0 as usize],
            VarSite::Global(_) => unreachable!("global passed to local_offset"),
        }
    }

    /// Pushes a scalar variable's value.
    fn load_scalar(&mut self, var: &HVar) {
        debug_assert_eq!(var.storage, Storage::Scalar);
        match var.site {
            VarSite::Global(_) => {
                let off = self.global_offset(var);
                self.emit(Op::LoadGlobal(off), var.span);
            }
            VarSite::Local(_) => {
                let off = self.local_offset(var);
                self.emit(Op::LoadLocal(off), var.span);
            }
        }
    }

    /// Emits the store for a scalar variable (value on stack).
    fn store_scalar(&mut self, var: &HVar, keep: bool, span: Span) {
        match (var.site, keep) {
            (VarSite::Global(_), false) => {
                let off = self.global_offset(var);
                self.emit(Op::StoreGlobal(off), span);
            }
            (VarSite::Global(_), true) => {
                let off = self.global_offset(var);
                self.emit(Op::StoreGlobalKeep(off), span);
            }
            (VarSite::Local(_), false) => {
                let off = self.local_offset(var);
                self.emit(Op::StoreLocal(off), span);
            }
            (VarSite::Local(_), true) => {
                let off = self.local_offset(var);
                self.emit(Op::StoreLocalKeep(off), span);
            }
        }
    }

    /// Pushes an array descriptor for `var`.
    fn push_array_ref(&mut self, var: &HVar) {
        match (var.site, var.storage) {
            (VarSite::Global(_), Storage::Array { size }) => {
                let off = self.global_offset(var);
                self.emit(Op::GlobalArrRef { off, len: size }, var.span);
            }
            (VarSite::Local(_), Storage::Array { size }) => {
                let slot = self.local_offset(var);
                self.emit(Op::LocalArrRef { slot, len: size }, var.span);
            }
            (VarSite::Local(_), Storage::ArrayRef) => {
                // The slot holds a descriptor produced by the caller.
                let slot = self.local_offset(var);
                self.emit(Op::LoadLocal(slot), var.span);
            }
            (site, storage) => {
                unreachable!("not an array: {site:?} {storage:?}")
            }
        }
    }

    fn assign(
        &mut self,
        var: &HVar,
        index: Option<&HExpr>,
        op: Option<BinOp>,
        value: &HExpr,
        span: Span,
        keep: bool,
    ) {
        match (index, op) {
            (None, None) => {
                self.expr(value);
                self.store_scalar(var, keep, span);
            }
            (None, Some(op)) => {
                self.load_scalar(var);
                self.expr(value);
                self.emit(Op::Bin(op), span);
                self.store_scalar(var, keep, span);
            }
            (Some(idx), None) => {
                // [v ref i] -> estore
                self.expr(value);
                self.push_array_ref(var);
                self.expr(idx);
                self.emit(
                    if keep {
                        Op::StoreElemKeep
                    } else {
                        Op::StoreElem
                    },
                    span,
                );
            }
            (Some(idx), Some(op)) => {
                // [ref i] dup2 eload -> [ref i old] <value> bin -> [ref i new]
                // rot3 -> [new ref i] estore
                self.push_array_ref(var);
                self.expr(idx);
                self.emit(Op::Dup2, span);
                self.emit(Op::LoadElem, span);
                self.expr(value);
                self.emit(Op::Bin(op), span);
                self.emit(Op::Rot3Down, span);
                self.emit(
                    if keep {
                        Op::StoreElemKeep
                    } else {
                        Op::StoreElem
                    },
                    span,
                );
            }
        }
    }

    fn inc_dec_no_value(&mut self, var: &HVar, index: Option<&HExpr>, inc: bool, span: Span) {
        let op = if inc { BinOp::Add } else { BinOp::Sub };
        match index {
            None => {
                self.load_scalar(var);
                self.emit(Op::Const(1), span);
                self.emit(Op::Bin(op), span);
                self.store_scalar(var, false, span);
            }
            Some(idx) => {
                self.push_array_ref(var);
                self.expr(idx);
                self.emit(Op::Dup2, span);
                self.emit(Op::LoadElem, span);
                self.emit(Op::Const(1), span);
                self.emit(Op::Bin(op), span);
                self.emit(Op::Rot3Down, span);
                self.emit(Op::StoreElem, span);
            }
        }
    }

    fn inc_dec_value(
        &mut self,
        var: &HVar,
        index: Option<&HExpr>,
        inc: bool,
        prefix: bool,
        span: Span,
    ) {
        let op = if inc { BinOp::Add } else { BinOp::Sub };
        match (index, prefix) {
            (None, true) => {
                self.load_scalar(var);
                self.emit(Op::Const(1), span);
                self.emit(Op::Bin(op), span);
                self.store_scalar(var, true, span);
            }
            (None, false) => {
                self.load_scalar(var);
                self.emit(Op::Dup, span);
                self.emit(Op::Const(1), span);
                self.emit(Op::Bin(op), span);
                self.store_scalar(var, false, span);
            }
            (Some(idx), true) => {
                self.push_array_ref(var);
                self.expr(idx);
                self.emit(Op::Dup2, span);
                self.emit(Op::LoadElem, span);
                self.emit(Op::Const(1), span);
                self.emit(Op::Bin(op), span);
                self.emit(Op::Rot3Down, span);
                self.emit(Op::StoreElemKeep, span);
            }
            (Some(idx), false) => {
                // Leaves the OLD value. Performs a second (harmless,
                // deterministic) read of the element; see the design notes.
                self.push_array_ref(var);
                self.expr(idx);
                self.emit(Op::Dup2, span);
                self.emit(Op::LoadElem, span); // [ref i old]
                self.emit(Op::Rot3Down, span); // [old ref i]
                self.emit(Op::Dup2, span); // [old ref i ref i]
                self.emit(Op::LoadElem, span); // [old ref i old]
                self.emit(Op::Const(1), span);
                self.emit(Op::Bin(op), span); // [old ref i new]
                self.emit(Op::Rot3Down, span); // [old new ref i]
                self.emit(Op::StoreElem, span); // [old]
            }
        }
    }

    /// Compiles `e`, leaving exactly one value on the operand stack.
    fn expr(&mut self, e: &HExpr) {
        match e {
            HExpr::Int(v, span) => self.emit(Op::Const(*v), *span),
            HExpr::Load(var) => self.load_scalar(var),
            HExpr::LoadIndex { var, index, span } => {
                self.push_array_ref(var);
                self.expr(index);
                self.emit(Op::LoadElem, *span);
            }
            HExpr::Call {
                func, args, span, ..
            } => {
                for a in args {
                    match a {
                        HArg::Scalar(e) => self.expr(e),
                        HArg::Array(v) => self.push_array_ref(v),
                    }
                }
                self.emit(Op::Call(*func), *span);
            }
            HExpr::CallIntrinsic { which, args, span } => {
                for a in args {
                    self.expr(a);
                }
                self.emit(Op::CallIntrinsic(*which), *span);
            }
            HExpr::Unary { op, expr, span } => {
                self.expr(expr);
                self.emit(Op::Un(*op), *span);
            }
            HExpr::Binary {
                op: BinOp::LogAnd | BinOp::LogOr,
                ..
            } => {
                // Materialize 0/1 through branches.
                let fail = self.new_label();
                let end = self.new_label();
                let span = e.span();
                self.cond_jump(e, false, fail);
                self.emit(Op::Const(1), span);
                self.branch(Op::Br, end, span);
                self.bind(fail);
                self.emit(Op::Const(0), span);
                self.bind(end);
            }
            HExpr::Binary { op, lhs, rhs, span } => {
                self.expr(lhs);
                self.expr(rhs);
                self.emit(Op::Bin(*op), *span);
            }
            HExpr::Ternary {
                cond,
                then_expr,
                else_expr,
                span,
            } => {
                let els = self.new_label();
                let end = self.new_label();
                self.cond_jump(cond, false, els);
                self.expr(then_expr);
                self.branch(Op::Br, end, *span);
                self.bind(els);
                self.expr(else_expr);
                self.bind(end);
            }
            HExpr::Assign {
                var,
                index,
                op,
                value,
                span,
            } => {
                self.assign(var, index.as_deref(), *op, value, *span, true);
            }
            HExpr::IncDec {
                var,
                index,
                inc,
                prefix,
                span,
            } => {
                self.inc_dec_value(var, index.as_deref(), *inc, *prefix, *span);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alchemist_lang::compile_to_hir;

    fn module(src: &str) -> Module {
        compile(&compile_to_hir(src).unwrap())
    }

    #[test]
    fn every_op_has_a_span() {
        let m = module("int main() { return 1 + 2; }");
        assert_eq!(m.ops.len(), m.spans.len());
    }

    #[test]
    fn functions_end_with_ret() {
        let m = module("void f() { } int main() { f(); return 0; }");
        for f in &m.funcs {
            assert_eq!(
                m.ops[f.end.0 as usize - 1],
                Op::Ret,
                "{} missing ret",
                f.name
            );
        }
    }

    #[test]
    fn implicit_return_zero_appended() {
        let m = module("int main() { int x = 1; }");
        let f = &m.funcs[0];
        let tail = &m.ops[f.end.0 as usize - 2..f.end.0 as usize];
        assert_eq!(tail, &[Op::Const(0), Op::Ret]);
    }

    #[test]
    fn global_offsets_are_cumulative() {
        let m = module("int a; int buf[10]; int b; int main() { return 0; }");
        assert_eq!(m.globals[0].offset, 0);
        assert_eq!(m.globals[1].offset, 1);
        assert_eq!(m.globals[2].offset, 11);
        assert_eq!(m.global_words, 12);
    }

    #[test]
    fn while_one_has_no_predicate() {
        // Constant conditions must not emit conditional branches.
        let m = module("int main() { while (1) { break; } return 0; }");
        assert!(
            m.ops.iter().all(|o| !o.is_predicate()),
            "while(1) produced a predicate: {}",
            m.disassemble()
        );
    }

    #[test]
    fn logical_and_lowered_to_branches() {
        let m = module("int main() { int a = 1; int b = 2; if (a && b) a = 3; return a; }");
        let predicates = m.ops.iter().filter(|o| o.is_predicate()).count();
        assert_eq!(
            predicates,
            2,
            "one predicate per && operand:\n{}",
            m.disassemble()
        );
        assert!(
            !m.ops.iter().any(|o| matches!(o, Op::Bin(BinOp::LogAnd))),
            "&& must not survive as a binary op"
        );
    }

    #[test]
    fn branch_patches_are_resolved() {
        let m = module(
            "int main() { int i; int s = 0; \
             for (i = 0; i < 4; i++) { if (i == 2) continue; s += i; } \
             return s; }",
        );
        for (i, op) in m.ops.iter().enumerate() {
            if let Some(t) = op.branch_target() {
                assert!((t as usize) < m.ops.len(), "unpatched branch at @{i}: {op}");
            }
        }
    }

    #[test]
    fn array_ref_param_forwarding_uses_slot_load() {
        let m = module(
            "int f(int a[]) { return a[0]; } \
             int g(int b[]) { return f(b); } \
             int buf[4]; \
             int main() { return g(buf); }",
        );
        let g = m.func_by_name("g").unwrap().1;
        let g_ops = &m.ops[g.entry.0 as usize..g.end.0 as usize];
        assert!(
            g_ops.iter().any(|o| matches!(o, Op::LoadLocal(0))),
            "forwarding an array ref loads the descriptor slot:\n{}",
            m.disassemble()
        );
        let main = m.func_by_name("main").unwrap().1;
        let main_ops = &m.ops[main.entry.0 as usize..main.end.0 as usize];
        assert!(
            main_ops
                .iter()
                .any(|o| matches!(o, Op::GlobalArrRef { off: 0, len: 4 })),
            "passing a global array pushes a descriptor"
        );
    }
}
