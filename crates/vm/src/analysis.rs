//! Control-flow analysis of compiled bytecode.
//!
//! For every function this module builds the basic-block graph, computes
//! immediate post-dominators (with a virtual exit node collecting all `ret`
//! instructions) and classifies every conditional branch as a *loop* or
//! *branch* predicate. These are precisely the static facts the Alchemist
//! instrumentation rules (Fig. 5 of the paper) consume at run time:
//!
//! * rule 4 needs to know which predicates delimit loop iterations, and
//! * rule 5 pops a construct when control reaches the immediate
//!   post-dominator of its predicate.
//!
//! Predicates whose post-dominator is the virtual exit (or that cannot reach
//! the exit at all) have [`BlockInfo::ipdom`] `None`; the indexing runtime
//! closes such constructs when the enclosing function returns.

use crate::op::{BlockId, Op, Pc};
use alchemist_cfg::{dominators, natural_loops, post_dominators, DiGraph};
use alchemist_lang::hir::FuncId;

/// Classification of a conditional branch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PredKind {
    /// Delimits loop iterations (its block is a loop header or it takes a
    /// back edge, as in `do`-`while`).
    Loop,
    /// An ordinary branch (`if`, `&&`, ternary, ...).
    Branch,
}

/// Static facts about one basic block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockInfo {
    /// The function owning the block.
    pub func: FuncId,
    /// First instruction of the block.
    pub first: Pc,
    /// One past the last instruction.
    pub end: Pc,
    /// Immediate post-dominator block; `None` when it is the function exit
    /// or the block cannot reach the exit.
    pub ipdom: Option<BlockId>,
}

/// Module-wide control-flow facts consumed by the profiler.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ModuleAnalysis {
    block_start: Vec<Option<BlockId>>,
    block_of: Vec<u32>,
    blocks: Vec<BlockInfo>,
    predicates: Vec<Option<PredKind>>,
}

impl ModuleAnalysis {
    /// The block starting at `pc`, if `pc` is a block leader.
    pub fn block_start(&self, pc: Pc) -> Option<BlockId> {
        self.block_start.get(pc.0 as usize).copied().flatten()
    }

    /// The block containing `pc`.
    ///
    /// # Panics
    ///
    /// Panics if `pc` is out of range.
    pub fn block_of(&self, pc: Pc) -> BlockId {
        BlockId(self.block_of[pc.0 as usize])
    }

    /// Facts about `block`.
    ///
    /// # Panics
    ///
    /// Panics if `block` is out of range.
    pub fn block(&self, block: BlockId) -> &BlockInfo {
        &self.blocks[block.0 as usize]
    }

    /// All blocks, in id order.
    pub fn blocks(&self) -> &[BlockInfo] {
        &self.blocks
    }

    /// Predicate classification of the conditional branch at `pc`, or `None`
    /// if the instruction is not a conditional branch.
    pub fn predicate_kind(&self, pc: Pc) -> Option<PredKind> {
        self.predicates.get(pc.0 as usize).copied().flatten()
    }

    /// Number of *static constructs* in the module: one per function plus
    /// one per conditional branch. This matches the paper's Table III
    /// "Static" column definition.
    pub fn static_construct_count(&self, func_count: usize) -> usize {
        func_count + self.predicates.iter().filter(|p| p.is_some()).count()
    }
}

/// Computes control-flow facts for a compiled module.
///
/// `funcs` gives each function's `[entry, end)` instruction range.
pub fn analyze(ops: &[Op], funcs: &[(Pc, Pc)]) -> ModuleAnalysis {
    let mut analysis = ModuleAnalysis {
        block_start: vec![None; ops.len()],
        block_of: vec![u32::MAX; ops.len()],
        blocks: Vec::new(),
        predicates: vec![None; ops.len()],
    };
    for (fi, &(entry, end)) in funcs.iter().enumerate() {
        analyze_function(ops, FuncId(fi as u32), entry, end, &mut analysis);
    }
    analysis
}

fn analyze_function(ops: &[Op], func: FuncId, entry: Pc, end: Pc, out: &mut ModuleAnalysis) {
    let lo = entry.0 as usize;
    let hi = end.0 as usize;
    assert!(lo < hi && hi <= ops.len(), "function range out of bounds");

    // 1. Find block leaders.
    let mut leader = vec![false; hi - lo];
    leader[0] = true;
    for pc in lo..hi {
        let op = &ops[pc];
        if let Some(t) = op.branch_target() {
            let t = t as usize;
            assert!(lo <= t && t < hi, "branch target escapes function");
            leader[t - lo] = true;
        }
        if op.is_terminator() && pc + 1 < hi {
            leader[pc + 1 - lo] = true;
        }
    }

    // 2. Materialize blocks.
    let base = out.blocks.len() as u32;
    let mut local_block_of = vec![0u32; hi - lo]; // function-local ids
    let mut starts: Vec<usize> = Vec::new();
    for (i, &is_leader) in leader.iter().enumerate() {
        if is_leader {
            starts.push(lo + i);
        }
        if !starts.is_empty() {
            local_block_of[i] = (starts.len() - 1) as u32;
        }
    }
    let nblocks = starts.len();
    for (bi, &s) in starts.iter().enumerate() {
        let e = starts.get(bi + 1).copied().unwrap_or(hi);
        let gid = BlockId(base + bi as u32);
        out.block_start[s] = Some(gid);
        for pc in s..e {
            out.block_of[pc] = gid.0;
        }
        out.blocks.push(BlockInfo {
            func,
            first: Pc(s as u32),
            end: Pc(e as u32),
            ipdom: None,
        });
    }

    // 3. Build the block graph with a virtual exit node.
    let exit = nblocks as u32;
    let mut g = DiGraph::new(nblocks + 1);
    for bi in 0..nblocks {
        let e = starts.get(bi + 1).copied().unwrap_or(hi);
        let last = &ops[e - 1];
        match last {
            Op::Br(t) => g.add_edge(bi as u32, local_block_of[*t as usize - lo]),
            Op::BrTrue(t) | Op::BrFalse(t) => {
                g.add_edge(bi as u32, local_block_of[*t as usize - lo]);
                if e < hi {
                    g.add_edge(bi as u32, local_block_of[e - lo]);
                }
            }
            Op::Ret => g.add_edge(bi as u32, exit),
            _ => {
                // Fallthrough into the next block.
                if e < hi {
                    g.add_edge(bi as u32, local_block_of[e - lo]);
                }
            }
        }
    }

    // 4. Post-dominators (virtual exit as root) and dominators/loops.
    let pdom = post_dominators(&g, exit);
    let dom = dominators(&g, 0);
    let loops = natural_loops(&g, &dom);

    for bi in 0..nblocks {
        let ip = pdom.idom(bi as u32).filter(|&p| p != exit);
        out.blocks[(base + bi as u32) as usize].ipdom = ip.map(|p| BlockId(base + p));
    }

    // 5. Classify conditional branches.
    for bi in 0..nblocks {
        let e = starts.get(bi + 1).copied().unwrap_or(hi);
        let last_pc = e - 1;
        if !ops[last_pc].is_predicate() {
            continue;
        }
        let b = bi as u32;
        let takes_back_edge = g.succs(b).iter().any(|&t| t != exit && dom.dominates(t, b));
        let kind = if loops.is_header(b) || takes_back_edge {
            PredKind::Loop
        } else {
            PredKind::Branch
        };
        out.predicates[last_pc] = Some(kind);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Hand-assembled `while` loop:
    /// ```text
    /// 0: const 10        (entry block A)
    /// 1: lstore 0
    /// 2: lload 0         (header block H)
    /// 3: br.f 8
    /// 4: lload 0         (body block B)
    /// 5: const -1
    /// 6: bin +
    /// 7: ... br 2        (latch, same block as body here)
    /// 8: const 0         (exit block X)
    /// 9: ret
    /// ```
    fn while_ops() -> Vec<Op> {
        use alchemist_lang::BinOp;
        vec![
            Op::Const(10),
            Op::StoreLocal(0),
            Op::LoadLocal(0),
            Op::BrFalse(8),
            Op::LoadLocal(0),
            Op::Const(-1),
            Op::Bin(BinOp::Add),
            Op::Br(2),
            Op::Const(0),
            Op::Ret,
        ]
    }

    #[test]
    fn blocks_are_split_at_leaders() {
        let ops = while_ops();
        let a = analyze(&ops, &[(Pc(0), Pc(10))]);
        // Blocks: [0..2), [2..4), [4..8), [8..10).
        assert_eq!(a.blocks().len(), 4);
        assert!(a.block_start(Pc(0)).is_some());
        assert!(a.block_start(Pc(2)).is_some());
        assert!(a.block_start(Pc(4)).is_some());
        assert!(a.block_start(Pc(8)).is_some());
        assert!(a.block_start(Pc(5)).is_none());
        assert_eq!(a.block_of(Pc(6)), a.block_of(Pc(4)));
    }

    #[test]
    fn loop_predicate_is_classified() {
        let ops = while_ops();
        let a = analyze(&ops, &[(Pc(0), Pc(10))]);
        assert_eq!(a.predicate_kind(Pc(3)), Some(PredKind::Loop));
        assert_eq!(a.predicate_kind(Pc(7)), None, "unconditional br");
        assert_eq!(a.predicate_kind(Pc(0)), None);
    }

    #[test]
    fn ipdom_of_loop_header_is_exit_block() {
        let ops = while_ops();
        let a = analyze(&ops, &[(Pc(0), Pc(10))]);
        let header = a.block_of(Pc(2));
        let exit_block = a.block_of(Pc(8));
        assert_eq!(a.block(header).ipdom, Some(exit_block));
        // The body's ipdom is the header.
        let body = a.block_of(Pc(4));
        assert_eq!(a.block(body).ipdom, Some(header));
        // The final block's ipdom is the virtual exit -> None.
        assert_eq!(a.block(exit_block).ipdom, None);
    }

    #[test]
    fn if_predicate_is_branch_kind() {
        use alchemist_lang::BinOp;
        // 0: lload 0; 1: br.f 4; 2: const 1; 3: bin +  (then, falls through)
        // 4: const 0; 5: ret
        let ops = vec![
            Op::LoadLocal(0),
            Op::BrFalse(4),
            Op::Const(1),
            Op::Bin(BinOp::Add),
            Op::Const(0),
            Op::Ret,
        ];
        let a = analyze(&ops, &[(Pc(0), Pc(6))]);
        assert_eq!(a.predicate_kind(Pc(1)), Some(PredKind::Branch));
        // ipdom of the branch block is the join block at 4.
        let cond_block = a.block_of(Pc(1));
        let join = a.block_of(Pc(4));
        assert_eq!(a.block(cond_block).ipdom, Some(join));
    }

    #[test]
    fn do_while_latch_predicate_is_loop_kind() {
        use alchemist_lang::BinOp;
        // 0: const 1 (body H); 1: lload 0; 2: bin + ... 3: br.t 0 (latch Q); 4: const 0; 5: ret
        let ops = vec![
            Op::Const(1),
            Op::LoadLocal(0),
            Op::Bin(BinOp::Add),
            Op::BrTrue(0),
            Op::Const(0),
            Op::Ret,
        ];
        let a = analyze(&ops, &[(Pc(0), Pc(6))]);
        assert_eq!(a.predicate_kind(Pc(3)), Some(PredKind::Loop));
    }

    #[test]
    fn static_construct_count_counts_functions_and_predicates() {
        let ops = while_ops();
        let a = analyze(&ops, &[(Pc(0), Pc(10))]);
        // 1 function + 1 predicate.
        assert_eq!(a.static_construct_count(1), 2);
    }

    #[test]
    fn infinite_loop_blocks_have_no_ipdom() {
        // 0: const 1; 1: pop; 2: br 0  -- never returns. Add unreachable ret.
        let ops = vec![Op::Const(1), Op::Pop, Op::Br(0), Op::Const(0), Op::Ret];
        let a = analyze(&ops, &[(Pc(0), Pc(5))]);
        let b0 = a.block_of(Pc(0));
        assert_eq!(a.block(b0).ipdom, None);
    }

    #[test]
    fn multiple_functions_get_disjoint_block_ids() {
        let mut ops = while_ops();
        let split = ops.len() as u32;
        ops.extend([Op::Const(0), Op::Ret]);
        let a = analyze(&ops, &[(Pc(0), Pc(split)), (Pc(split), Pc(split + 2))]);
        let last = a.block_of(Pc(split));
        assert_eq!(a.block(last).func, FuncId(1));
        assert!(last.0 >= 4, "second function blocks numbered after first");
    }
}
