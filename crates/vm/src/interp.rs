//! The tracing interpreter.
//!
//! Executes a compiled [`Module`] over a flat word memory (globals first,
//! stack frames above) while reporting events to a [`TraceSink`]. With
//! [`NullSink`](crate::NullSink) this measures "original" program time; with
//! the Alchemist sink it produces dependence profiles.
//!
//! # Threads
//!
//! `spawn { ... }` creates a new logical thread running the synthesized
//! body function; `join;` blocks until all of the current thread's live
//! direct children finish. Threads are scheduled by a *deterministic*
//! round-robin scheduler: each thread runs [`ExecConfig::quantum`]
//! instructions before yielding, and the rotation order is fixed (or
//! perturbed reproducibly by [`ExecConfig::sched_seed`]). All threads share
//! one retirement clock, so timestamps stay globally non-decreasing and a
//! run is replayable bit-for-bit from its trace. Every event is stamped
//! with the thread id ([`Tid`]) that produced it; single-threaded programs
//! emit exactly the stream they always did, with every event on
//! [`Tid::MAIN`].

use crate::batch::{BatchingSink, EventBatch};
use crate::error::{Trap, TrapKind};
use crate::events::{Tid, Time, TraceSink};
use crate::module::Module;
use crate::op::{pack_ref, unpack_ref, BlockId, Op, Pc};
use alchemist_lang::hir::{FuncId, Intrinsic};
use alchemist_lang::{BinOp, UnOp};
use alchemist_obs::{span_opt, Counter, Metrics, Stage};
use std::sync::atomic::{AtomicBool, Ordering};

/// Process-global cancellation flag checked by every interpreter at each
/// quantum boundary (once per [`ExecConfig::quantum`] instructions).
///
/// A global rather than a config field keeps [`ExecConfig`] a plain value
/// type (it derives `PartialEq`/`Eq` and is pinned in golden tests) and —
/// more importantly — lets an `extern "C"` signal handler flip it with a
/// single async-signal-safe atomic store.
static INTERRUPT: AtomicBool = AtomicBool::new(false);

/// Requests cooperative cancellation of all running interpreters: the next
/// quantum boundary returns a [`TrapKind::Interrupted`] trap. Safe to call
/// from a signal handler.
pub fn request_interrupt() {
    INTERRUPT.store(true, Ordering::Release);
}

/// Clears a pending [`request_interrupt`] (call before starting a run that
/// must not inherit a stale cancellation).
pub fn clear_interrupt() {
    INTERRUPT.store(false, Ordering::Release);
}

/// Whether cancellation has been requested and not yet cleared.
pub fn interrupt_requested() -> bool {
    INTERRUPT.load(Ordering::Acquire)
}

/// Execution parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecConfig {
    /// Trap after this many instructions (guards infinite loops).
    pub max_steps: u64,
    /// Words of stack memory available for the main thread's frames.
    pub stack_words: u32,
    /// Input buffer served by the `input`/`input_len` intrinsics.
    pub input: Vec<i64>,
    /// Deliver events to the sink in [`EventBatch`]es of
    /// this size (one [`TraceSink::on_batch`] call per block) instead of
    /// one callback per event. `0` or `1` keeps the classic per-event
    /// dispatch. The event stream a sink observes is identical either way;
    /// only the call granularity changes.
    pub batch_events: usize,
    /// Instructions a thread retires before the scheduler rotates to the
    /// next runnable thread. Irrelevant while only one thread is live.
    pub quantum: u64,
    /// Scheduler seed. `0` is strict round-robin; any other value rotates
    /// the pick deterministically, so different seeds explore different
    /// (but individually reproducible) interleavings.
    pub sched_seed: u64,
    /// Words of stack memory carved out for each spawned thread.
    pub thread_stack_words: u32,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            max_steps: 500_000_000,
            stack_words: 1 << 20,
            input: Vec::new(),
            batch_events: 0,
            quantum: 64,
            sched_seed: 0,
            thread_stack_words: 1 << 16,
        }
    }
}

impl ExecConfig {
    /// A config with the given input buffer and default limits.
    pub fn with_input(input: Vec<i64>) -> Self {
        ExecConfig {
            input,
            ..ExecConfig::default()
        }
    }
}

/// The result of a completed execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecOutcome {
    /// Instructions executed across all threads (the final timestamp).
    pub steps: u64,
    /// Values produced by the `print` intrinsic, in retirement order.
    pub output: Vec<i64>,
    /// `main`'s return value.
    pub exit_value: i64,
}

#[derive(Debug, Clone, Copy)]
struct Frame {
    func: u32,
    fp: u32,
    ret_pc: u32,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ThreadStatus {
    Runnable,
    /// Parked on `join` until `live_children` drops to zero.
    Joining,
    Finished,
}

/// Per-thread bookkeeping. While a thread runs, its execution state lives
/// in the [`Interp`] "register file"; it is exchanged back here on every
/// context switch.
#[derive(Debug)]
struct Thread {
    tid: Tid,
    pc: u32,
    operands: Vec<i64>,
    frames: Vec<Frame>,
    stack_top: u32,
    stack_limit: u32,
    status: ThreadStatus,
    /// Index of the spawning thread (main points at itself).
    parent: usize,
    /// Direct children that have not finished yet.
    live_children: u32,
    /// Scheduler slices granted to this thread (metrics only).
    quanta: u64,
}

/// Runs `module` to completion.
///
/// The run ends once every thread has finished; the exit value is `main`'s
/// return value.
///
/// # Errors
///
/// Returns a [`Trap`] on out-of-bounds indexing, division by zero, stack
/// overflow or step-limit exhaustion — in *any* thread; the first trap
/// aborts the whole run.
///
/// # Examples
///
/// ```
/// use alchemist_lang::compile_to_hir;
/// use alchemist_vm::{compile, run, ExecConfig, NullSink};
///
/// let m = compile(&compile_to_hir("int main() { return 6 * 7; }")?);
/// let out = run(&m, &ExecConfig::default(), &mut NullSink).unwrap();
/// assert_eq!(out.exit_value, 42);
/// # Ok::<(), alchemist_lang::LangError>(())
/// ```
pub fn run<S: TraceSink>(
    module: &Module,
    config: &ExecConfig,
    sink: &mut S,
) -> Result<ExecOutcome, Trap> {
    if config.batch_events > 1 {
        // Accumulate into an EventBatch and flush on_batch every
        // `batch_events` events — and once more at the end of the run,
        // trap or not, so the sink always sees the complete stream.
        let mut batcher = BatchingSink::new(sink, config.batch_events);
        let outcome = Interp::new(module, config).run(&mut batcher);
        batcher.flush();
        outcome
    } else {
        Interp::new(module, config).run(sink)
    }
}

/// Like [`run`], but records VM self-metrics — events delivered, batches
/// flushed, instructions retired, context switches, spawned threads, and
/// per-tid scheduler quanta, all under a `exec` stage span — into `metrics`
/// when it is `Some`. With `None` this *is* [`run`]: no clock reads, no
/// counter updates, identical code path.
pub fn run_with_metrics<S: TraceSink>(
    module: &Module,
    config: &ExecConfig,
    sink: &mut S,
    metrics: Option<&Metrics>,
) -> Result<ExecOutcome, Trap> {
    let Some(m) = metrics else {
        return run(module, config, sink);
    };
    let _exec_span = span_opt(Some(m), Stage::Exec);
    let mut interp = Interp::new(module, config);
    let mut meter = MeterSink {
        inner: sink,
        events: 0,
        batches: 0,
    };
    let result = if config.batch_events > 1 {
        let mut batcher = BatchingSink::new(&mut meter, config.batch_events);
        let r = interp.run(&mut batcher);
        batcher.flush();
        r
    } else {
        interp.run(&mut meter)
    };
    m.add(Counter::VmEvents, meter.events);
    m.add(Counter::VmBatchesFlushed, meter.batches);
    interp.record_metrics(m);
    result
}

/// Counts events/batches flowing through to the wrapped sink. Used only on
/// the metered path; the counters are plain `u64`s folded into [`Metrics`]
/// once at the end of the run.
struct MeterSink<'a, S> {
    inner: &'a mut S,
    events: u64,
    batches: u64,
}

impl<S: TraceSink> TraceSink for MeterSink<'_, S> {
    fn on_enter_function(&mut self, t: Time, func: FuncId, fp: u32, tid: Tid) {
        self.events += 1;
        self.inner.on_enter_function(t, func, fp, tid);
    }
    fn on_exit_function(&mut self, t: Time, func: FuncId, tid: Tid) {
        self.events += 1;
        self.inner.on_exit_function(t, func, tid);
    }
    fn on_block_entry(&mut self, t: Time, block: BlockId, tid: Tid) {
        self.events += 1;
        self.inner.on_block_entry(t, block, tid);
    }
    fn on_predicate(&mut self, t: Time, pc: Pc, block: BlockId, taken: bool, tid: Tid) {
        self.events += 1;
        self.inner.on_predicate(t, pc, block, taken, tid);
    }
    fn on_read(&mut self, t: Time, addr: u32, pc: Pc, tid: Tid) {
        self.events += 1;
        self.inner.on_read(t, addr, pc, tid);
    }
    fn on_write(&mut self, t: Time, addr: u32, pc: Pc, tid: Tid) {
        self.events += 1;
        self.inner.on_write(t, addr, pc, tid);
    }
    fn on_batch(&mut self, batch: &EventBatch) {
        self.events += batch.len() as u64;
        self.batches += 1;
        self.inner.on_batch(batch);
    }
}

/// Interpreter state. Most users call [`run`]; the struct is exposed so the
/// profiler crates can drive execution with custom configurations.
#[derive(Debug)]
pub struct Interp<'m> {
    module: &'m Module,
    mem: Vec<i64>,
    /// All threads in spawn order. The running thread's entry is stale; its
    /// live state is in the register-file fields below.
    threads: Vec<Thread>,
    cur_thread: usize,
    // Register file of the running thread.
    tid: Tid,
    operands: Vec<i64>,
    frames: Vec<Frame>,
    stack_top: u32,
    stack_limit: u32,
    next_tid: u32,
    steps: u64,
    max_steps: u64,
    quantum: u64,
    sched_state: u64,
    thread_stack_words: u32,
    input: Vec<i64>,
    output: Vec<i64>,
    main_exit: i64,
    /// Context switches performed (metrics only).
    ctx_switches: u64,
}

impl<'m> Interp<'m> {
    /// Creates a fresh interpreter for `module`.
    pub fn new(module: &'m Module, config: &ExecConfig) -> Self {
        let mem_words = module.global_words as usize + config.stack_words as usize;
        let mut mem = vec![0i64; mem_words];
        for g in &module.globals {
            if !g.is_array {
                mem[g.offset as usize] = g.init;
            }
        }
        let stack_limit = mem_words as u32;
        Interp {
            module,
            mem,
            threads: vec![Thread {
                tid: Tid::MAIN,
                pc: 0,
                operands: Vec::new(),
                frames: Vec::new(),
                stack_top: module.global_words,
                stack_limit,
                status: ThreadStatus::Runnable,
                parent: 0,
                live_children: 0,
                quanta: 0,
            }],
            cur_thread: 0,
            tid: Tid::MAIN,
            operands: Vec::with_capacity(64),
            frames: Vec::with_capacity(64),
            stack_top: module.global_words,
            stack_limit,
            next_tid: 1,
            steps: 0,
            max_steps: config.max_steps,
            quantum: config.quantum.max(1),
            sched_state: config.sched_seed,
            thread_stack_words: config.thread_stack_words.max(16),
            input: config.input.clone(),
            output: Vec::new(),
            main_exit: 0,
            ctx_switches: 0,
        }
    }

    fn trap(&self, kind: TrapKind, pc: Pc) -> Trap {
        Trap {
            kind,
            pc,
            span: self.module.span_at(pc),
        }
    }

    fn pop(&mut self) -> i64 {
        self.operands
            .pop()
            .expect("operand stack underflow: compiler bug")
    }

    /// Picks the next runnable thread other than the current one:
    /// round-robin from `cur_thread`, rotated by the seeded scheduler when
    /// a seed was set.
    fn next_runnable(&mut self) -> Option<usize> {
        let n = self.threads.len();
        let start = if self.sched_state != 0 {
            // xorshift64: a different but reproducible rotation per pick.
            let mut x = self.sched_state;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.sched_state = x;
            (x % n as u64) as usize
        } else {
            0
        };
        (1..=n)
            .map(|k| (self.cur_thread + start + k) % n)
            .find(|&i| i != self.cur_thread && self.threads[i].status == ThreadStatus::Runnable)
    }

    /// Parks the running thread's state at `pc` and resumes `next`,
    /// returning the pc to continue from.
    fn context_switch(&mut self, pc: u32, next: usize) -> u32 {
        self.ctx_switches += 1;
        let t = &mut self.threads[self.cur_thread];
        t.pc = pc;
        t.operands = std::mem::take(&mut self.operands);
        t.frames = std::mem::take(&mut self.frames);
        t.stack_top = self.stack_top;
        self.cur_thread = next;
        let t = &mut self.threads[next];
        self.operands = std::mem::take(&mut t.operands);
        self.frames = std::mem::take(&mut t.frames);
        self.stack_top = t.stack_top;
        self.stack_limit = t.stack_limit;
        self.tid = t.tid;
        t.pc
    }

    /// Executes until every thread has finished.
    ///
    /// # Errors
    ///
    /// Returns a [`Trap`] on runtime errors; see [`run`].
    pub fn run<S: TraceSink>(&mut self, sink: &mut S) -> Result<ExecOutcome, Trap> {
        let main = &self.module.funcs[self.module.main.0 as usize];
        let entry = main.entry;
        let fp = self.stack_top;
        self.stack_top += main.frame_words;
        self.frames.push(Frame {
            func: self.module.main.0,
            fp,
            ret_pc: u32::MAX,
        });
        sink.on_enter_function(0, self.module.main, fp, Tid::MAIN);
        self.threads[0].quanta += 1;

        let mut pc = entry.0;
        let mut quantum_left = self.quantum;
        loop {
            if quantum_left == 0 {
                // Cancellation is polled here (once per quantum, not per
                // instruction) so a SIGINT unwinds through the normal trap
                // path: the sink has seen a consistent event prefix and a
                // recording can still finalize its current chunk + footer.
                if interrupt_requested() {
                    return Err(self.trap(TrapKind::Interrupted, Pc(pc)));
                }
                quantum_left = self.quantum;
                if let Some(next) = self.next_runnable() {
                    pc = self.context_switch(pc, next);
                }
                self.threads[self.cur_thread].quanta += 1;
            }
            quantum_left -= 1;
            if self.steps >= self.max_steps {
                return Err(self.trap(
                    TrapKind::StepLimitExceeded {
                        limit: self.max_steps,
                    },
                    Pc(pc),
                ));
            }
            if let Some(b) = self.module.analysis.block_start(Pc(pc)) {
                sink.on_block_entry(self.steps, b, self.tid);
            }
            let t: Time = self.steps;
            self.steps += 1;
            let cur = Pc(pc);
            match self.module.ops[pc as usize] {
                Op::Const(k) => {
                    self.operands.push(k);
                    pc += 1;
                }
                Op::Dup => {
                    let a = *self.operands.last().expect("dup on empty stack");
                    self.operands.push(a);
                    pc += 1;
                }
                Op::Dup2 => {
                    let n = self.operands.len();
                    assert!(n >= 2, "dup2 needs two operands");
                    let a = self.operands[n - 2];
                    let b = self.operands[n - 1];
                    self.operands.push(a);
                    self.operands.push(b);
                    pc += 1;
                }
                Op::Rot3Down => {
                    let n = self.operands.len();
                    assert!(n >= 3, "rot3 needs three operands");
                    let c = self.operands.remove(n - 1);
                    self.operands.insert(n - 3, c);
                    pc += 1;
                }
                Op::Pop => {
                    self.pop();
                    pc += 1;
                }
                Op::LoadLocal(slot) => {
                    let addr = self.frames.last().expect("no frame").fp + slot;
                    sink.on_read(t, addr, cur, self.tid);
                    self.operands.push(self.mem[addr as usize]);
                    pc += 1;
                }
                Op::StoreLocal(slot) | Op::StoreLocalKeep(slot) => {
                    let keep = matches!(self.module.ops[pc as usize], Op::StoreLocalKeep(_));
                    let addr = self.frames.last().expect("no frame").fp + slot;
                    let v = self.pop();
                    sink.on_write(t, addr, cur, self.tid);
                    self.mem[addr as usize] = v;
                    if keep {
                        self.operands.push(v);
                    }
                    pc += 1;
                }
                Op::LoadGlobal(off) => {
                    sink.on_read(t, off, cur, self.tid);
                    self.operands.push(self.mem[off as usize]);
                    pc += 1;
                }
                Op::StoreGlobal(off) | Op::StoreGlobalKeep(off) => {
                    let keep = matches!(self.module.ops[pc as usize], Op::StoreGlobalKeep(_));
                    let v = self.pop();
                    sink.on_write(t, off, cur, self.tid);
                    self.mem[off as usize] = v;
                    if keep {
                        self.operands.push(v);
                    }
                    pc += 1;
                }
                Op::GlobalArrRef { off, len } => {
                    self.operands.push(pack_ref(off, len));
                    pc += 1;
                }
                Op::LocalArrRef { slot, len } => {
                    let fp = self.frames.last().expect("no frame").fp;
                    self.operands.push(pack_ref(fp + slot, len));
                    pc += 1;
                }
                Op::LoadElem => {
                    let idx = self.pop();
                    let (base, len) = unpack_ref(self.pop());
                    let addr = self.elem_addr(base, len, idx, cur)?;
                    sink.on_read(t, addr, cur, self.tid);
                    self.operands.push(self.mem[addr as usize]);
                    pc += 1;
                }
                Op::StoreElem | Op::StoreElemKeep => {
                    let keep = matches!(self.module.ops[pc as usize], Op::StoreElemKeep);
                    let idx = self.pop();
                    let (base, len) = unpack_ref(self.pop());
                    let v = self.pop();
                    let addr = self.elem_addr(base, len, idx, cur)?;
                    sink.on_write(t, addr, cur, self.tid);
                    self.mem[addr as usize] = v;
                    if keep {
                        self.operands.push(v);
                    }
                    pc += 1;
                }
                Op::Un(op) => {
                    let a = self.pop();
                    self.operands.push(eval_un(op, a));
                    pc += 1;
                }
                Op::Bin(op) => {
                    let b = self.pop();
                    let a = self.pop();
                    let v = eval_bin(op, a, b).map_err(|k| self.trap(k, cur))?;
                    self.operands.push(v);
                    pc += 1;
                }
                Op::Br(target) => {
                    pc = target;
                }
                Op::BrTrue(target) => {
                    let c = self.pop();
                    let taken = c != 0;
                    sink.on_predicate(t, cur, self.module.analysis.block_of(cur), taken, self.tid);
                    pc = if taken { target } else { pc + 1 };
                }
                Op::BrFalse(target) => {
                    let c = self.pop();
                    let taken = c == 0;
                    sink.on_predicate(t, cur, self.module.analysis.block_of(cur), taken, self.tid);
                    pc = if taken { target } else { pc + 1 };
                }
                Op::Call(func) => {
                    let fi = &self.module.funcs[func.0 as usize];
                    let fp = self.stack_top;
                    let frame_end = fp as u64 + fi.frame_words as u64;
                    if frame_end > self.stack_limit as u64 {
                        return Err(self.trap(TrapKind::StackOverflow, cur));
                    }
                    self.stack_top = frame_end as u32;
                    // Zero the frame (deterministic locals), then move the
                    // arguments into the first slots. Argument writes are
                    // attributed to the call site, as real push instructions
                    // would be.
                    self.mem[fp as usize..frame_end as usize].fill(0);
                    let nargs = fi.param_count as usize;
                    let args_base = self.operands.len() - nargs;
                    for (i, v) in self.operands.drain(args_base..).enumerate() {
                        let addr = fp + i as u32;
                        sink.on_write(t, addr, cur, self.tid);
                        self.mem[addr as usize] = v;
                    }
                    self.frames.push(Frame {
                        func: func.0,
                        fp,
                        ret_pc: pc + 1,
                    });
                    sink.on_enter_function(t, func, fp, self.tid);
                    pc = fi.entry.0;
                }
                Op::CallIntrinsic(which) => {
                    self.intrinsic(which);
                    pc += 1;
                }
                Op::Spawn(func) => {
                    let fi = &self.module.funcs[func.0 as usize];
                    // Carve a fresh, zeroed stack region above everything
                    // allocated so far. Regions are never reused, so a
                    // thread's addresses depend only on spawn order.
                    let base = self.mem.len();
                    let words = self.thread_stack_words.max(fi.frame_words) as usize;
                    let end = base + words;
                    if end > u32::MAX as usize {
                        return Err(self.trap(TrapKind::StackOverflow, cur));
                    }
                    self.mem.resize(end, 0);
                    let fp = base as u32;
                    let child_tid = Tid(self.next_tid);
                    self.next_tid += 1;
                    self.threads.push(Thread {
                        tid: child_tid,
                        pc: fi.entry.0,
                        operands: Vec::new(),
                        frames: vec![Frame {
                            func: func.0,
                            fp,
                            ret_pc: u32::MAX,
                        }],
                        stack_top: fp + fi.frame_words,
                        stack_limit: end as u32,
                        status: ThreadStatus::Runnable,
                        parent: self.cur_thread,
                        live_children: 0,
                        quanta: 0,
                    });
                    self.threads[self.cur_thread].live_children += 1;
                    // The child's root construct opens at spawn time, on
                    // the child's own tid.
                    sink.on_enter_function(t, func, fp, child_tid);
                    pc += 1;
                }
                Op::Join => {
                    if self.threads[self.cur_thread].live_children > 0 {
                        self.threads[self.cur_thread].status = ThreadStatus::Joining;
                        let next = self.next_runnable().expect(
                            "scheduler: thread joining live children but nothing is runnable",
                        );
                        pc = self.context_switch(pc + 1, next);
                        quantum_left = self.quantum;
                        self.threads[self.cur_thread].quanta += 1;
                    } else {
                        pc += 1;
                    }
                }
                Op::Ret => {
                    let value = self.pop();
                    let frame = self.frames.pop().expect("ret without frame");
                    // The function ends once `ret` has retired, so the exit
                    // timestamp is one past the instruction's own: this way
                    // a construct's duration covers all its instructions
                    // (main's Tdur equals the run's step count).
                    sink.on_exit_function(
                        self.steps,
                        alchemist_lang::hir::FuncId(frame.func),
                        self.tid,
                    );
                    self.stack_top = frame.fp;
                    if self.frames.is_empty() {
                        if self.cur_thread == 0 {
                            self.main_exit = value;
                        }
                        self.threads[self.cur_thread].status = ThreadStatus::Finished;
                        let parent = self.threads[self.cur_thread].parent;
                        if parent != self.cur_thread {
                            let p = &mut self.threads[parent];
                            p.live_children -= 1;
                            if p.live_children == 0 && p.status == ThreadStatus::Joining {
                                p.status = ThreadStatus::Runnable;
                            }
                        }
                        match self.next_runnable() {
                            Some(next) => {
                                pc = self.context_switch(pc, next);
                                quantum_left = self.quantum;
                                self.threads[self.cur_thread].quanta += 1;
                            }
                            None => {
                                return Ok(ExecOutcome {
                                    steps: self.steps,
                                    output: std::mem::take(&mut self.output),
                                    exit_value: self.main_exit,
                                });
                            }
                        }
                    } else {
                        self.operands.push(value);
                        pc = frame.ret_pc;
                    }
                }
            }
        }
    }

    /// Folds interpreter-side counters (instructions, context switches,
    /// spawned threads, per-tid quanta) into `m`. Valid after a run, whether
    /// it finished or trapped.
    fn record_metrics(&self, m: &Metrics) {
        m.add(Counter::VmInstructions, self.steps);
        m.add(Counter::VmContextSwitches, self.ctx_switches);
        m.add(Counter::VmThreadsSpawned, (self.next_tid - 1) as u64);
        for t in &self.threads {
            m.record_thread_quanta(t.tid.0, t.quanta);
        }
    }

    fn elem_addr(&self, base: u32, len: u32, idx: i64, pc: Pc) -> Result<u32, Trap> {
        if idx < 0 || idx >= len as i64 {
            return Err(self.trap(TrapKind::IndexOutOfBounds { index: idx, len }, pc));
        }
        Ok(base + idx as u32)
    }

    fn intrinsic(&mut self, which: Intrinsic) {
        match which {
            Intrinsic::Print => {
                let v = *self.operands.last().expect("print needs an argument");
                self.output.push(v);
            }
            Intrinsic::Input => {
                let i = self.pop();
                let v = usize::try_from(i)
                    .ok()
                    .and_then(|i| self.input.get(i).copied())
                    .unwrap_or(0);
                self.operands.push(v);
            }
            Intrinsic::InputLen => {
                self.operands.push(self.input.len() as i64);
            }
            Intrinsic::Output => {
                // Reserved; currently behaves like print of the second arg.
                let v = self.pop();
                let _i = self.pop();
                self.output.push(v);
                self.operands.push(v);
            }
        }
    }
}

fn eval_un(op: UnOp, a: i64) -> i64 {
    match op {
        UnOp::Neg => a.wrapping_neg(),
        UnOp::Not => (a == 0) as i64,
        UnOp::BitNot => !a,
    }
}

fn eval_bin(op: BinOp, a: i64, b: i64) -> Result<i64, TrapKind> {
    Ok(match op {
        BinOp::Add => a.wrapping_add(b),
        BinOp::Sub => a.wrapping_sub(b),
        BinOp::Mul => a.wrapping_mul(b),
        BinOp::Div => {
            if b == 0 {
                return Err(TrapKind::DivideByZero);
            }
            a.wrapping_div(b)
        }
        BinOp::Rem => {
            if b == 0 {
                return Err(TrapKind::DivideByZero);
            }
            a.wrapping_rem(b)
        }
        BinOp::BitAnd => a & b,
        BinOp::BitOr => a | b,
        BinOp::BitXor => a ^ b,
        BinOp::Shl => a.wrapping_shl((b & 63) as u32),
        BinOp::Shr => a.wrapping_shr((b & 63) as u32),
        BinOp::Lt => (a < b) as i64,
        BinOp::Le => (a <= b) as i64,
        BinOp::Gt => (a > b) as i64,
        BinOp::Ge => (a >= b) as i64,
        BinOp::Eq => (a == b) as i64,
        BinOp::Ne => (a != b) as i64,
        BinOp::LogAnd | BinOp::LogOr => {
            unreachable!("short-circuit ops are lowered to branches")
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler::compile;
    use crate::events::{CountingSink, NullSink};
    use alchemist_lang::compile_to_hir;

    fn exec(src: &str) -> ExecOutcome {
        exec_with(src, ExecConfig::default())
    }

    fn exec_with(src: &str, config: ExecConfig) -> ExecOutcome {
        let m = compile(&compile_to_hir(src).unwrap());
        run(&m, &config, &mut NullSink).unwrap()
    }

    fn exec_err(src: &str) -> Trap {
        let m = compile(&compile_to_hir(src).unwrap());
        run(&m, &ExecConfig::default(), &mut NullSink).unwrap_err()
    }

    #[test]
    fn arithmetic_and_precedence() {
        assert_eq!(
            exec("int main() { return 2 + 3 * 4 - 6 / 2; }").exit_value,
            11
        );
        assert_eq!(exec("int main() { return (2 + 3) * 4; }").exit_value, 20);
        assert_eq!(exec("int main() { return 17 % 5; }").exit_value, 2);
        assert_eq!(exec("int main() { return -7 / 2; }").exit_value, -3);
    }

    #[test]
    fn bitwise_and_shifts() {
        assert_eq!(
            exec("int main() { return (5 & 3) | (8 ^ 12); }").exit_value,
            5
        );
        assert_eq!(exec("int main() { return 1 << 10; }").exit_value, 1024);
        assert_eq!(exec("int main() { return -8 >> 1; }").exit_value, -4);
        assert_eq!(exec("int main() { return ~0; }").exit_value, -1);
    }

    #[test]
    fn comparisons_yield_zero_one() {
        assert_eq!(
            exec("int main() { return (1 < 2) + (2 <= 2) + (3 > 4); }").exit_value,
            2
        );
        assert_eq!(
            exec("int main() { return (1 == 1) + (1 != 1); }").exit_value,
            1
        );
    }

    #[test]
    fn globals_persist_across_calls() {
        let src = "int g; void bump() { g += 5; } int main() { bump(); bump(); return g; }";
        assert_eq!(exec(src).exit_value, 10);
    }

    #[test]
    fn global_scalar_initializers_apply() {
        assert_eq!(
            exec("int a = 41; int main() { return a + 1; }").exit_value,
            42
        );
    }

    #[test]
    fn local_arrays_and_loops() {
        let src = "int main() {
            int a[10];
            int i;
            for (i = 0; i < 10; i++) a[i] = i * i;
            int s = 0;
            for (i = 0; i < 10; i++) s += a[i];
            return s;
        }";
        assert_eq!(exec(src).exit_value, 285);
    }

    #[test]
    fn array_params_alias_caller_storage() {
        let src = "int buf[4];
            void fill(int a[], int n) { int i; for (i = 0; i < n; i++) a[i] = n; }
            int main() { fill(buf, 4); return buf[0] + buf[3]; }";
        assert_eq!(exec(src).exit_value, 8);
    }

    #[test]
    fn array_ref_forwarding() {
        let src = "int buf[3];
            void inner(int a[]) { a[2] = 9; }
            void outer(int a[]) { inner(a); }
            int main() { outer(buf); return buf[2]; }";
        assert_eq!(exec(src).exit_value, 9);
    }

    #[test]
    fn recursion_factorial_and_fib() {
        let fact = "int fact(int n) { if (n <= 1) return 1; return n * fact(n - 1); }
            int main() { return fact(10); }";
        assert_eq!(exec(fact).exit_value, 3_628_800);
        let fib = "int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
            int main() { return fib(15); }";
        assert_eq!(exec(fib).exit_value, 610);
    }

    #[test]
    fn while_do_while_equivalence() {
        let src = "int main() {
            int i = 0; int s = 0;
            while (i < 5) { s += i; i++; }
            int j = 0;
            do { s += j; j++; } while (j < 5);
            return s;
        }";
        assert_eq!(exec(src).exit_value, 20);
    }

    #[test]
    fn break_and_continue() {
        let src = "int main() {
            int s = 0; int i;
            for (i = 0; i < 100; i++) {
                if (i % 2 == 0) continue;
                if (i > 10) break;
                s += i;
            }
            return s;
        }";
        // 1+3+5+7+9 = 25
        assert_eq!(exec(src).exit_value, 25);
    }

    #[test]
    fn short_circuit_skips_side_effects() {
        let src = "int calls;
            int truthy() { calls++; return 1; }
            int main() {
                int a = 0 && truthy();
                int b = 1 || truthy();
                int c = 1 && truthy();
                return calls * 100 + a * 10 + b + c;
            }";
        // truthy called exactly once (for c); a=0, b=1, c=1.
        assert_eq!(exec(src).exit_value, 102);
    }

    #[test]
    fn ternary_expression() {
        assert_eq!(
            exec("int main() { int x = 7; return x > 5 ? 1 : 2; }").exit_value,
            1
        );
        assert_eq!(
            exec("int main() { int x = 3; return x > 5 ? 1 : 2; }").exit_value,
            2
        );
    }

    #[test]
    fn compound_assignment_on_array_elements() {
        let src = "int a[3]; int main() {
            a[1] = 10;
            a[1] += 5;
            a[1] *= 2;
            a[1] <<= 1;
            return a[1];
        }";
        assert_eq!(exec(src).exit_value, 60);
    }

    #[test]
    fn inc_dec_semantics() {
        let src = "int main() {
            int x = 5;
            int a = x++;  // a=5, x=6
            int b = ++x;  // b=7, x=7
            int c = x--;  // c=7, x=6
            int d = --x;  // d=5, x=5
            return a * 1000 + b * 100 + c * 10 + d;
        }";
        assert_eq!(exec(src).exit_value, 5775);
    }

    #[test]
    fn inc_dec_on_array_elements() {
        let src = "int a[2]; int main() {
            a[0] = 5;
            int old = a[0]++;
            int new_ = ++a[0];
            return old * 100 + new_ * 10 + a[0];
        }";
        assert_eq!(exec(src).exit_value, 577);
    }

    #[test]
    fn print_and_input_intrinsics() {
        let m = compile(
            &compile_to_hir(
                "int main() {
                    int n = input_len();
                    int i;
                    for (i = 0; i < n; i++) print(input(i) * 2);
                    return n;
                }",
            )
            .unwrap(),
        );
        let out = run(&m, &ExecConfig::with_input(vec![3, 5, 8]), &mut NullSink).unwrap();
        assert_eq!(out.exit_value, 3);
        assert_eq!(out.output, vec![6, 10, 16]);
    }

    #[test]
    fn input_out_of_range_reads_zero() {
        let out = exec("int main() { return input(99) + input(-1); }");
        assert_eq!(out.exit_value, 0);
    }

    #[test]
    fn out_of_bounds_index_traps() {
        let t = exec_err("int a[4]; int main() { return a[4]; }");
        assert_eq!(t.kind, TrapKind::IndexOutOfBounds { index: 4, len: 4 });
        let t = exec_err("int a[4]; int main() { int i = -1; return a[i]; }");
        assert_eq!(t.kind, TrapKind::IndexOutOfBounds { index: -1, len: 4 });
    }

    #[test]
    fn division_by_zero_traps() {
        let t = exec_err("int main() { int z = 0; return 3 / z; }");
        assert_eq!(t.kind, TrapKind::DivideByZero);
        let t = exec_err("int main() { int z = 0; return 3 % z; }");
        assert_eq!(t.kind, TrapKind::DivideByZero);
    }

    #[test]
    fn step_limit_traps_infinite_loop() {
        let m = compile(&compile_to_hir("int main() { while (1) { } return 0; }").unwrap());
        let cfg = ExecConfig {
            max_steps: 1000,
            ..ExecConfig::default()
        };
        let t = run(&m, &cfg, &mut NullSink).unwrap_err();
        assert_eq!(t.kind, TrapKind::StepLimitExceeded { limit: 1000 });
    }

    #[test]
    fn deep_recursion_overflows_stack() {
        let m = compile(
            &compile_to_hir(
                "int down(int n) { int pad[64]; pad[0] = n; return down(n + 1); }
                 int main() { return down(0); }",
            )
            .unwrap(),
        );
        let cfg = ExecConfig {
            stack_words: 4096,
            ..ExecConfig::default()
        };
        let t = run(&m, &cfg, &mut NullSink).unwrap_err();
        assert_eq!(t.kind, TrapKind::StackOverflow);
    }

    #[test]
    fn steps_count_matches_timestamps() {
        let out = exec("int main() { return 1; }");
        // const + ret = 2 instructions.
        assert_eq!(out.steps, 2);
    }

    #[test]
    fn event_counts_are_consistent() {
        let m = compile(
            &compile_to_hir(
                "int g;
                 int add(int x) { g += x; return g; }
                 int main() { int i; for (i = 0; i < 3; i++) add(i); return g; }",
            )
            .unwrap(),
        );
        let mut sink = CountingSink::default();
        let out = run(&m, &ExecConfig::default(), &mut sink).unwrap();
        assert_eq!(sink.enters, sink.exits, "balanced function events");
        assert_eq!(sink.enters, 4, "main + three calls");
        assert!(sink.predicates >= 4, "loop test ran 4 times");
        assert!(sink.reads > 0 && sink.writes > 0);
        assert!(out.steps > 0);
    }

    #[test]
    fn batched_run_emits_the_identical_event_stream() {
        use crate::events::RecordingSink;
        let m = compile(
            &compile_to_hir(
                "int g;
                 int add(int x) { g += x; return g; }
                 int main() { int i; for (i = 0; i < 5; i++) add(i); return g; }",
            )
            .unwrap(),
        );
        let mut per_event = RecordingSink::default();
        let out = run(&m, &ExecConfig::default(), &mut per_event).unwrap();
        for batch_events in [2usize, 3, 64, 4096] {
            let cfg = ExecConfig {
                batch_events,
                ..ExecConfig::default()
            };
            let mut batched = RecordingSink::default();
            let out_b = run(&m, &cfg, &mut batched).unwrap();
            assert_eq!(out_b, out, "batch_events={batch_events}");
            assert_eq!(batched, per_event, "batch_events={batch_events}");
        }
    }

    #[test]
    fn batched_run_flushes_partial_batch_on_trap() {
        use crate::events::CountingSink;
        let m = compile(&compile_to_hir("int a[4]; int main() { return a[9]; }").unwrap());
        let mut per_event = CountingSink::default();
        run(&m, &ExecConfig::default(), &mut per_event).unwrap_err();
        let cfg = ExecConfig {
            batch_events: 1 << 20, // never fills: only the final flush delivers
            ..ExecConfig::default()
        };
        let mut batched = CountingSink::default();
        run(&m, &cfg, &mut batched).unwrap_err();
        assert_eq!(batched, per_event, "events before the trap must arrive");
    }

    #[test]
    fn locals_are_zeroed_per_call() {
        let src = "int probe() { int x; int y = x; x = 77; return y; }
            int main() { probe(); return probe(); }";
        // Second call must see a fresh zero even though the first wrote 77.
        assert_eq!(exec(src).exit_value, 0);
    }

    #[test]
    fn void_function_call_statement() {
        let src = "int g; void f() { g = 4; } int main() { f(); return g; }";
        assert_eq!(exec(src).exit_value, 4);
    }

    #[test]
    fn nested_loops_product() {
        let src = "int main() {
            int s = 0; int i; int j;
            for (i = 1; i <= 3; i++)
                for (j = 1; j <= 4; j++)
                    s += i * j;
            return s;
        }";
        assert_eq!(exec(src).exit_value, 60);
    }

    #[test]
    fn gzip_like_shape_runs() {
        // A miniature of the paper's Fig. 2 structure: a driver loop that
        // buffers values and periodically calls a flush routine.
        let src = "
            int buf[8];
            int count;
            int out[64];
            int outcnt;
            void flush_block() {
                int i;
                for (i = 0; i < count; i++) out[outcnt++] = buf[i] * 3;
                count = 0;
            }
            int main() {
                int n = input_len();
                int i;
                for (i = 0; i < n; i++) {
                    if (count == 8) flush_block();
                    buf[count++] = input(i);
                }
                flush_block();
                return outcnt;
            }";
        let m = compile(&compile_to_hir(src).unwrap());
        let input: Vec<i64> = (0..20).collect();
        let out = run(&m, &ExecConfig::with_input(input), &mut NullSink).unwrap();
        assert_eq!(out.exit_value, 20);
    }

    // ------------------------------------------------------------------
    // Threads
    // ------------------------------------------------------------------

    #[test]
    fn spawn_then_join_sees_child_writes() {
        let src = "int a; int b;
            int main() {
                spawn { a = 5; }
                spawn { b = 7; }
                join;
                return a + b;
            }";
        assert_eq!(exec(src).exit_value, 12);
    }

    #[test]
    fn join_without_children_is_a_noop() {
        assert_eq!(exec("int main() { join; return 3; }").exit_value, 3);
    }

    #[test]
    fn spawned_threads_have_private_locals() {
        // Each spawned body gets its own zeroed stack region; the local
        // loop counter in each body is independent.
        let src = "int total;
            int main() {
                spawn { int i; for (i = 0; i < 10; i++) total += 1; }
                spawn { int i; for (i = 0; i < 10; i++) total += 1; }
                join;
                return total;
            }";
        // `total += 1` is a read-modify-write, but a whole increment retires
        // within one default quantum (64), so no updates are lost here.
        assert_eq!(exec(src).exit_value, 20);
    }

    #[test]
    fn interleaving_is_deterministic() {
        use crate::events::RecordingSink;
        let src = "int x; int y;
            int main() {
                int i;
                spawn { int j; for (j = 0; j < 50; j++) x += 1; }
                spawn { int j; for (j = 0; j < 50; j++) y += 1; }
                for (i = 0; i < 30; i++) { }
                join;
                return x + y;
            }";
        let m = compile(&compile_to_hir(src).unwrap());
        let cfg = ExecConfig {
            quantum: 5,
            ..ExecConfig::default()
        };
        let mut a = RecordingSink::default();
        let out_a = run(&m, &cfg, &mut a).unwrap();
        let mut b = RecordingSink::default();
        let out_b = run(&m, &cfg, &mut b).unwrap();
        assert_eq!(out_a, out_b, "two runs of the same config must agree");
        assert_eq!(a, b, "event streams must be identical");
        assert_eq!(out_a.exit_value, 100);
    }

    #[test]
    fn sched_seed_changes_interleaving_not_results() {
        use crate::events::RecordingSink;
        let src = "int x; int y;
            int main() {
                spawn { int j; for (j = 0; j < 40; j++) x += 1; }
                spawn { int j; for (j = 0; j < 40; j++) y += 1; }
                join;
                return x * 1000 + y;
            }";
        let m = compile(&compile_to_hir(src).unwrap());
        let mut streams = Vec::new();
        for seed in [0u64, 1, 42] {
            let cfg = ExecConfig {
                quantum: 7,
                sched_seed: seed,
                ..ExecConfig::default()
            };
            let mut s = RecordingSink::default();
            let out = run(&m, &cfg, &mut s).unwrap();
            assert_eq!(out.exit_value, 40_040, "seed {seed}");
            streams.push(s);
        }
        // Seeded runs shuffle the schedule; at least one pair must differ.
        assert!(
            streams[0] != streams[1] || streams[0] != streams[2],
            "seeds should produce distinct interleavings"
        );
    }

    #[test]
    fn events_are_stamped_with_spawning_order_tids() {
        use crate::events::RecordingSink;
        let src = "int a;
            int main() {
                spawn { a += 1; }
                spawn { a += 2; }
                join;
                return a;
            }";
        let m = compile(&compile_to_hir(src).unwrap());
        let mut s = RecordingSink::default();
        let out = run(&m, &ExecConfig::default(), &mut s).unwrap();
        assert_eq!(out.exit_value, 3);
        let mut tids: Vec<u32> = s.events.iter().map(|e| e.tid().0).collect();
        tids.sort_unstable();
        tids.dedup();
        assert_eq!(tids, vec![0, 1, 2], "main + two children, spawn order");
    }

    #[test]
    fn timestamps_stay_globally_nondecreasing_across_threads() {
        use crate::events::RecordingSink;
        let src = "int x;
            int main() {
                spawn { int j; for (j = 0; j < 25; j++) x += 1; }
                spawn { int j; for (j = 0; j < 25; j++) x += 1; }
                join;
                return x;
            }";
        let m = compile(&compile_to_hir(src).unwrap());
        let cfg = ExecConfig {
            quantum: 3,
            ..ExecConfig::default()
        };
        let mut s = RecordingSink::default();
        run(&m, &cfg, &mut s).unwrap();
        let times: Vec<u64> = s.events.iter().map(|e| e.time()).collect();
        assert!(
            times.windows(2).all(|w| w[0] <= w[1]),
            "shared clock must be non-decreasing in emission order"
        );
    }

    #[test]
    fn trap_in_child_aborts_the_run() {
        let src = "int main() {
                spawn { int z; print(1 / z); }
                join;
                return 0;
            }";
        let t = exec_err(src);
        assert_eq!(t.kind, TrapKind::DivideByZero);
    }

    #[test]
    fn nested_spawn_joins_grandchildren_transitively() {
        let src = "int a; int b;
            int main() {
                spawn {
                    spawn { a = 1; }
                    join;
                    b = a + 1;
                }
                join;
                return b;
            }";
        assert_eq!(exec(src).exit_value, 2);
    }

    #[test]
    fn run_finishes_unjoined_children_before_exiting() {
        // main returns without joining; the run still drains the child and
        // its output, and the exit value is main's.
        let src = "int main() {
                spawn { int j; for (j = 0; j < 200; j++) { } print(9); }
                return 1;
            }";
        let out = exec(src);
        assert_eq!(out.exit_value, 1);
        assert_eq!(out.output, vec![9]);
    }

    // ------------------------------------------------------------------
    // Metrics
    // ------------------------------------------------------------------

    #[test]
    fn run_with_metrics_counts_events_and_instructions() {
        use crate::events::RecordingSink;
        let src = "int g;
            int add(int x) { g += x; return g; }
            int main() { int i; for (i = 0; i < 5; i++) add(i); return g; }";
        let m = compile(&compile_to_hir(src).unwrap());
        let mut base = RecordingSink::default();
        let out = run(&m, &ExecConfig::default(), &mut base).unwrap();

        let metrics = Metrics::new();
        let mut sink = RecordingSink::default();
        let out_m =
            run_with_metrics(&m, &ExecConfig::default(), &mut sink, Some(&metrics)).unwrap();
        assert_eq!(out_m, out, "metering must not perturb execution");
        assert_eq!(sink, base, "metering must not perturb the event stream");
        assert_eq!(metrics.get(Counter::VmEvents), base.events.len() as u64);
        assert_eq!(metrics.get(Counter::VmInstructions), out.steps);
        assert_eq!(metrics.get(Counter::VmBatchesFlushed), 0, "unbatched run");
        assert_eq!(metrics.get(Counter::VmThreadsSpawned), 0);
        assert_eq!(metrics.stage(Stage::Exec).1, 1, "one exec span");
        // Single-threaded: all quanta on tid 0.
        let sched = metrics.sched();
        assert_eq!(sched.len(), 1);
        assert_eq!(sched[0].0, 0);
        assert!(sched[0].1 >= 1);
    }

    #[test]
    fn run_with_metrics_batched_counts_batches() {
        use crate::events::RecordingSink;
        let src = "int main() { int a[32]; int i; for (i = 0; i < 32; i++) a[i] = i; return 0; }";
        let m = compile(&compile_to_hir(src).unwrap());
        let mut base = RecordingSink::default();
        run(&m, &ExecConfig::default(), &mut base).unwrap();

        let metrics = Metrics::new();
        let cfg = ExecConfig {
            batch_events: 16,
            ..ExecConfig::default()
        };
        let mut sink = RecordingSink::default();
        run_with_metrics(&m, &cfg, &mut sink, Some(&metrics)).unwrap();
        assert_eq!(sink, base);
        let events = metrics.get(Counter::VmEvents);
        assert_eq!(events, base.events.len() as u64);
        let batches = metrics.get(Counter::VmBatchesFlushed);
        assert_eq!(batches, events.div_ceil(16));
    }

    #[test]
    fn run_with_metrics_none_is_plain_run() {
        use crate::events::RecordingSink;
        let src = "int main() { return 6 * 7; }";
        let m = compile(&compile_to_hir(src).unwrap());
        let mut a = RecordingSink::default();
        let out_a = run(&m, &ExecConfig::default(), &mut a).unwrap();
        let mut b = RecordingSink::default();
        let out_b = run_with_metrics(&m, &ExecConfig::default(), &mut b, None).unwrap();
        assert_eq!(out_a, out_b);
        assert_eq!(a, b);
    }

    #[test]
    fn run_with_metrics_tracks_threads_and_switches() {
        let src = "int x; int y;
            int main() {
                spawn { int j; for (j = 0; j < 50; j++) x += 1; }
                spawn { int j; for (j = 0; j < 50; j++) y += 1; }
                join;
                return x + y;
            }";
        let m = compile(&compile_to_hir(src).unwrap());
        let metrics = Metrics::new();
        let cfg = ExecConfig {
            quantum: 8,
            ..ExecConfig::default()
        };
        let out = run_with_metrics(&m, &cfg, &mut NullSink, Some(&metrics)).unwrap();
        assert_eq!(out.exit_value, 100);
        assert_eq!(metrics.get(Counter::VmThreadsSpawned), 2);
        assert!(metrics.get(Counter::VmContextSwitches) > 0);
        let sched = metrics.sched();
        assert_eq!(sched.len(), 3, "main + two children report quanta");
        assert!(sched.iter().all(|&(_, q)| q >= 1));
    }

    #[test]
    fn single_threaded_outcome_unchanged_by_thread_fields() {
        // Thread support must not perturb classic runs: steps and events
        // are identical whatever quantum/seed are set to.
        use crate::events::RecordingSink;
        let src = "int g;
            int add(int x) { g += x; return g; }
            int main() { int i; for (i = 0; i < 5; i++) add(i); return g; }";
        let m = compile(&compile_to_hir(src).unwrap());
        let mut base = RecordingSink::default();
        let out = run(&m, &ExecConfig::default(), &mut base).unwrap();
        for (q, seed) in [(1u64, 0u64), (2, 9), (1000, 77)] {
            let cfg = ExecConfig {
                quantum: q,
                sched_seed: seed,
                ..ExecConfig::default()
            };
            let mut s = RecordingSink::default();
            let out_b = run(&m, &cfg, &mut s).unwrap();
            assert_eq!(out_b, out, "quantum={q} seed={seed}");
            assert_eq!(s, base, "quantum={q} seed={seed}");
        }
    }
}
