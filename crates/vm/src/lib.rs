//! # alchemist-vm
//!
//! Bytecode compiler and tracing interpreter: the execution substrate of the
//! Alchemist dependence-distance profiler (CGO 2009 reproduction).
//!
//! The original Alchemist instruments native binaries through Valgrind. This
//! crate replaces that layer with a deterministic VM that produces the same
//! kinds of events a DBI tool would:
//!
//! * per-instruction timestamps (retired-instruction counts),
//! * every data-memory read and write with its word address,
//! * function entry/exit,
//! * conditional-branch (predicate) executions, and
//! * basic-block entries — which is where the paper's post-dominator rule
//!   (instrumentation rule 5) fires.
//!
//! The compiled [`Module`] also carries the static control-flow facts the
//! profiler needs (immediate post-dominators per block, loop/branch
//! classification per predicate), computed by [`analysis`] using
//! `alchemist-cfg`.
//!
//! ## Example
//!
//! ```
//! use alchemist_lang::compile_to_hir;
//! use alchemist_vm::{compile, run, CountingSink, ExecConfig};
//!
//! let hir = compile_to_hir(
//!     "int g;
//!      int main() { int i; for (i = 0; i < 10; i++) g += i; return g; }",
//! )?;
//! let module = compile(&hir);
//! let mut sink = CountingSink::default();
//! let outcome = run(&module, &ExecConfig::default(), &mut sink).unwrap();
//! assert_eq!(outcome.exit_value, 45);
//! assert!(sink.writes >= 10); // the ten stores to `g`, at least
//! # Ok::<(), alchemist_lang::LangError>(())
//! ```

#![warn(missing_docs)]

pub mod analysis;
pub mod batch;
pub mod compiler;
pub mod error;
pub mod events;
pub mod interp;
pub mod module;
pub mod op;

pub use analysis::{BlockInfo, ModuleAnalysis, PredKind};
pub use batch::{BatchingSink, EventBatch, EventTag, DEFAULT_BATCH_EVENTS};
pub use compiler::compile;
pub use error::{Trap, TrapKind};
pub use events::{CountingSink, Event, NullSink, RecordingSink, Tid, Time, TraceSink};
pub use interp::{
    clear_interrupt, interrupt_requested, request_interrupt, run, run_with_metrics, ExecConfig,
    ExecOutcome, Interp,
};
pub use module::{FuncInfo, GlobalInfo, Module};
pub use op::{pack_ref, unpack_ref, BlockId, Op, Pc};

/// Compiles mini-C source all the way to an executable [`Module`].
///
/// # Errors
///
/// Returns the first frontend error ([`alchemist_lang::LangError`]).
///
/// # Examples
///
/// ```
/// let m = alchemist_vm::compile_source("int main() { return 7; }")?;
/// assert_eq!(m.funcs.len(), 1);
/// # Ok::<(), alchemist_lang::LangError>(())
/// ```
pub fn compile_source(src: &str) -> Result<Module, alchemist_lang::LangError> {
    let hir = alchemist_lang::compile_to_hir(src)?;
    Ok(compile(&hir))
}
