//! Runtime errors raised by the interpreter.

use crate::op::Pc;
use alchemist_lang::Span;
use std::error::Error;
use std::fmt;

/// Why execution failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrapKind {
    /// Array access outside `[0, len)`.
    IndexOutOfBounds {
        /// The offending index.
        index: i64,
        /// The array length.
        len: u32,
    },
    /// Integer division or remainder by zero.
    DivideByZero,
    /// The call stack exhausted the configured stack memory.
    StackOverflow,
    /// The configured step budget was exhausted (likely an infinite loop).
    StepLimitExceeded {
        /// The configured limit.
        limit: u64,
    },
    /// Execution was cancelled from outside (e.g. the CLI's SIGINT
    /// handler via [`request_interrupt`](crate::interp::request_interrupt)).
    Interrupted,
}

impl fmt::Display for TrapKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrapKind::IndexOutOfBounds { index, len } => {
                write!(f, "array index {index} out of bounds for length {len}")
            }
            TrapKind::DivideByZero => write!(f, "division by zero"),
            TrapKind::StackOverflow => write!(f, "stack overflow"),
            TrapKind::StepLimitExceeded { limit } => {
                write!(f, "step limit of {limit} instructions exceeded")
            }
            TrapKind::Interrupted => write!(f, "execution interrupted"),
        }
    }
}

/// A runtime trap with its source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trap {
    /// What went wrong.
    pub kind: TrapKind,
    /// The instruction that trapped.
    pub pc: Pc,
    /// Source location of that instruction.
    pub span: Span,
}

impl fmt::Display for Trap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "runtime trap at {} ({}): {}",
            self.span, self.pc, self.kind
        )
    }
}

impl Error for Trap {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trap_display_includes_location_and_cause() {
        let t = Trap {
            kind: TrapKind::IndexOutOfBounds { index: 9, len: 4 },
            pc: Pc(17),
            span: Span::default(),
        };
        let s = t.to_string();
        assert!(s.contains("@17"));
        assert!(s.contains("index 9 out of bounds for length 4"));
    }

    #[test]
    fn step_limit_display() {
        assert_eq!(
            TrapKind::StepLimitExceeded { limit: 10 }.to_string(),
            "step limit of 10 instructions exceeded"
        );
        assert_eq!(TrapKind::DivideByZero.to_string(), "division by zero");
        assert_eq!(TrapKind::StackOverflow.to_string(), "stack overflow");
    }
}
