//! The trace-event interface between the interpreter and profilers.
//!
//! This is the reproduction's stand-in for the Valgrind instrumentation
//! layer of the original Alchemist: the interpreter calls into a
//! [`TraceSink`] with exactly the events the paper's instrumentation rules
//! consume — function entry/exit, predicate executions, basic-block entries
//! (for the post-dominator rule) and every data-memory access.
//!
//! All timestamps are *retired instruction counts*, matching the paper's
//! "time stamp ... simulated by the number of executed instructions".

use crate::op::{BlockId, Pc};
use alchemist_lang::hir::FuncId;

/// Instruction-count timestamp.
pub type Time = u64;

/// Receiver of execution events.
///
/// All methods default to no-ops so sinks override only what they need.
/// Running with the provided [`NullSink`] measures "original" (uninstrumented)
/// execution for overhead comparisons.
pub trait TraceSink {
    /// A function was entered; its frame occupies `[fp, fp + frame_words)`.
    fn on_enter_function(&mut self, t: Time, func: FuncId, fp: u32) {
        let _ = (t, func, fp);
    }

    /// A function is about to return.
    fn on_exit_function(&mut self, t: Time, func: FuncId) {
        let _ = (t, func);
    }

    /// Control entered a basic block.
    fn on_block_entry(&mut self, t: Time, block: BlockId) {
        let _ = (t, block);
    }

    /// A conditional branch executed.
    fn on_predicate(&mut self, t: Time, pc: Pc, block: BlockId, taken: bool) {
        let _ = (t, pc, block, taken);
    }

    /// A data-memory word was read.
    fn on_read(&mut self, t: Time, addr: u32, pc: Pc) {
        let _ = (t, addr, pc);
    }

    /// A data-memory word was written.
    fn on_write(&mut self, t: Time, addr: u32, pc: Pc) {
        let _ = (t, addr, pc);
    }
}

/// A sink that ignores every event (native-speed baseline).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullSink;

impl TraceSink for NullSink {}

/// Counts events by category; useful for tests and overhead accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CountingSink {
    /// Function entries observed.
    pub enters: u64,
    /// Function exits observed.
    pub exits: u64,
    /// Block entries observed.
    pub blocks: u64,
    /// Predicate executions observed.
    pub predicates: u64,
    /// Reads observed.
    pub reads: u64,
    /// Writes observed.
    pub writes: u64,
}

impl TraceSink for CountingSink {
    fn on_enter_function(&mut self, _t: Time, _func: FuncId, _fp: u32) {
        self.enters += 1;
    }
    fn on_exit_function(&mut self, _t: Time, _func: FuncId) {
        self.exits += 1;
    }
    fn on_block_entry(&mut self, _t: Time, _block: BlockId) {
        self.blocks += 1;
    }
    fn on_predicate(&mut self, _t: Time, _pc: Pc, _block: BlockId, _taken: bool) {
        self.predicates += 1;
    }
    fn on_read(&mut self, _t: Time, _addr: u32, _pc: Pc) {
        self.reads += 1;
    }
    fn on_write(&mut self, _t: Time, _addr: u32, _pc: Pc) {
        self.writes += 1;
    }
}

/// One recorded event (see [`RecordingSink`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// Function entry.
    Enter {
        /// Timestamp.
        t: Time,
        /// The function entered.
        func: FuncId,
        /// Frame base address.
        fp: u32,
    },
    /// Function exit.
    Exit {
        /// Timestamp.
        t: Time,
        /// The function exiting.
        func: FuncId,
    },
    /// Basic-block entry.
    Block {
        /// Timestamp.
        t: Time,
        /// The block entered.
        block: BlockId,
    },
    /// Conditional-branch execution.
    Predicate {
        /// Timestamp.
        t: Time,
        /// The branch instruction.
        pc: Pc,
        /// The block containing the branch.
        block: BlockId,
        /// Whether the branch was taken.
        taken: bool,
    },
    /// Memory read.
    Read {
        /// Timestamp.
        t: Time,
        /// Word address.
        addr: u32,
        /// The reading instruction.
        pc: Pc,
    },
    /// Memory write.
    Write {
        /// Timestamp.
        t: Time,
        /// Word address.
        addr: u32,
        /// The writing instruction.
        pc: Pc,
    },
}

/// Records the full event stream (tests and the oracle profiler).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecordingSink {
    /// The recorded events, in order.
    pub events: Vec<Event>,
}

impl TraceSink for RecordingSink {
    fn on_enter_function(&mut self, t: Time, func: FuncId, fp: u32) {
        self.events.push(Event::Enter { t, func, fp });
    }
    fn on_exit_function(&mut self, t: Time, func: FuncId) {
        self.events.push(Event::Exit { t, func });
    }
    fn on_block_entry(&mut self, t: Time, block: BlockId) {
        self.events.push(Event::Block { t, block });
    }
    fn on_predicate(&mut self, t: Time, pc: Pc, block: BlockId, taken: bool) {
        self.events.push(Event::Predicate {
            t,
            pc,
            block,
            taken,
        });
    }
    fn on_read(&mut self, t: Time, addr: u32, pc: Pc) {
        self.events.push(Event::Read { t, addr, pc });
    }
    fn on_write(&mut self, t: Time, addr: u32, pc: Pc) {
        self.events.push(Event::Write { t, addr, pc });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_sink_tallies() {
        let mut s = CountingSink::default();
        s.on_read(0, 1, Pc(0));
        s.on_read(1, 2, Pc(1));
        s.on_write(2, 1, Pc(2));
        s.on_predicate(3, Pc(3), BlockId(0), true);
        assert_eq!(s.reads, 2);
        assert_eq!(s.writes, 1);
        assert_eq!(s.predicates, 1);
        assert_eq!(s.blocks, 0);
    }

    #[test]
    fn recording_sink_preserves_order() {
        let mut s = RecordingSink::default();
        s.on_enter_function(0, FuncId(0), 16);
        s.on_write(1, 16, Pc(2));
        s.on_exit_function(2, FuncId(0));
        assert_eq!(s.events.len(), 3);
        assert!(matches!(s.events[0], Event::Enter { fp: 16, .. }));
        assert!(matches!(s.events[2], Event::Exit { .. }));
    }
}
