//! The trace-event interface between the interpreter and profilers.
//!
//! This is the reproduction's stand-in for the Valgrind instrumentation
//! layer of the original Alchemist: the interpreter calls into a
//! [`TraceSink`] with exactly the events the paper's instrumentation rules
//! consume — function entry/exit, predicate executions, basic-block entries
//! (for the post-dominator rule) and every data-memory access.
//!
//! All timestamps are *retired instruction counts*, matching the paper's
//! "time stamp ... simulated by the number of executed instructions".
//! Since the scheduler interleaves threads on one shared clock, timestamps
//! stay globally non-decreasing across the whole stream.
//!
//! Every event carries the [`Tid`] of the thread that produced it. The
//! main thread is always [`Tid::MAIN`]; single-threaded programs therefore
//! produce streams whose tid column is uniformly zero.

use crate::batch::{EventBatch, EventTag};
use crate::op::{BlockId, Pc};
use alchemist_lang::hir::FuncId;
use std::fmt;

/// Instruction-count timestamp.
pub type Time = u64;

/// A thread id. The main thread is [`Tid::MAIN`] (0); spawned threads get
/// sequential ids in spawn order, never reused within a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Tid(pub u32);

impl Tid {
    /// The main thread's id.
    pub const MAIN: Tid = Tid(0);
}

impl fmt::Display for Tid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Receiver of execution events.
///
/// All methods default to no-ops so sinks override only what they need.
/// Running with the provided [`NullSink`] measures "original" (uninstrumented)
/// execution for overhead comparisons.
pub trait TraceSink {
    /// A function was entered; its frame occupies `[fp, fp + frame_words)`.
    fn on_enter_function(&mut self, t: Time, func: FuncId, fp: u32, tid: Tid) {
        let _ = (t, func, fp, tid);
    }

    /// A function is about to return.
    fn on_exit_function(&mut self, t: Time, func: FuncId, tid: Tid) {
        let _ = (t, func, tid);
    }

    /// Control entered a basic block.
    fn on_block_entry(&mut self, t: Time, block: BlockId, tid: Tid) {
        let _ = (t, block, tid);
    }

    /// A conditional branch executed.
    fn on_predicate(&mut self, t: Time, pc: Pc, block: BlockId, taken: bool, tid: Tid) {
        let _ = (t, pc, block, taken, tid);
    }

    /// A data-memory word was read.
    fn on_read(&mut self, t: Time, addr: u32, pc: Pc, tid: Tid) {
        let _ = (t, addr, pc, tid);
    }

    /// A data-memory word was written.
    fn on_write(&mut self, t: Time, addr: u32, pc: Pc, tid: Tid) {
        let _ = (t, addr, pc, tid);
    }

    /// A block of events arrived at once (the bulk path of the pipeline).
    ///
    /// The default delivers every row through the matching per-event
    /// callback above, so sinks that predate batching — including
    /// third-party ones — behave identically without changes. Sinks on hot
    /// paths override this to process whole batches per virtual call (the
    /// trace codec, the profiler, fan-outs, shard filters).
    ///
    /// Implementations must preserve the row order and must not assume a
    /// batch is non-empty or full.
    fn on_batch(&mut self, batch: &EventBatch) {
        batch.dispatch_into(self);
    }
}

/// Forwarding impl: any `&mut S` is itself a sink.
///
/// [`run`](crate::run) already borrows its sink, but APIs that take a sink
/// *by value* — combinators like a tee, helpers generic over `S:
/// TraceSink` — would otherwise consume the caller's only binding, forcing
/// `Option`-dance workarounds to get the sink back for inspection. With
/// this impl the caller hands such an API `&mut sink` and keeps ownership:
///
/// ```
/// use alchemist_vm::{CountingSink, Pc, Tid, TraceSink};
///
/// fn feed(mut sink: impl TraceSink) {
///     sink.on_read(0, 1, Pc(0), Tid::MAIN);
/// }
///
/// let mut counts = CountingSink::default();
/// feed(&mut counts); // lends instead of moving
/// feed(&mut counts);
/// assert_eq!(counts.reads, 2); // still ours to inspect
/// ```
impl<S: TraceSink + ?Sized> TraceSink for &mut S {
    fn on_enter_function(&mut self, t: Time, func: FuncId, fp: u32, tid: Tid) {
        (**self).on_enter_function(t, func, fp, tid);
    }
    fn on_exit_function(&mut self, t: Time, func: FuncId, tid: Tid) {
        (**self).on_exit_function(t, func, tid);
    }
    fn on_block_entry(&mut self, t: Time, block: BlockId, tid: Tid) {
        (**self).on_block_entry(t, block, tid);
    }
    fn on_predicate(&mut self, t: Time, pc: Pc, block: BlockId, taken: bool, tid: Tid) {
        (**self).on_predicate(t, pc, block, taken, tid);
    }
    fn on_read(&mut self, t: Time, addr: u32, pc: Pc, tid: Tid) {
        (**self).on_read(t, addr, pc, tid);
    }
    fn on_write(&mut self, t: Time, addr: u32, pc: Pc, tid: Tid) {
        (**self).on_write(t, addr, pc, tid);
    }
    fn on_batch(&mut self, batch: &EventBatch) {
        (**self).on_batch(batch);
    }
}

/// A sink that ignores every event (native-speed baseline).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn on_batch(&mut self, _batch: &EventBatch) {}
}

/// Counts events by category; useful for tests and overhead accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CountingSink {
    /// Function entries observed.
    pub enters: u64,
    /// Function exits observed.
    pub exits: u64,
    /// Block entries observed.
    pub blocks: u64,
    /// Predicate executions observed.
    pub predicates: u64,
    /// Reads observed.
    pub reads: u64,
    /// Writes observed.
    pub writes: u64,
}

impl TraceSink for CountingSink {
    fn on_enter_function(&mut self, _t: Time, _func: FuncId, _fp: u32, _tid: Tid) {
        self.enters += 1;
    }
    fn on_exit_function(&mut self, _t: Time, _func: FuncId, _tid: Tid) {
        self.exits += 1;
    }
    fn on_block_entry(&mut self, _t: Time, _block: BlockId, _tid: Tid) {
        self.blocks += 1;
    }
    fn on_predicate(&mut self, _t: Time, _pc: Pc, _block: BlockId, _taken: bool, _tid: Tid) {
        self.predicates += 1;
    }
    fn on_read(&mut self, _t: Time, _addr: u32, _pc: Pc, _tid: Tid) {
        self.reads += 1;
    }
    fn on_write(&mut self, _t: Time, _addr: u32, _pc: Pc, _tid: Tid) {
        self.writes += 1;
    }
    fn on_batch(&mut self, batch: &EventBatch) {
        // One pass over the tag column; no row reconstruction.
        for tag in batch.tags() {
            match tag {
                EventTag::Enter => self.enters += 1,
                EventTag::Exit => self.exits += 1,
                EventTag::Block => self.blocks += 1,
                EventTag::PredNotTaken | EventTag::PredTaken => self.predicates += 1,
                EventTag::Read => self.reads += 1,
                EventTag::Write => self.writes += 1,
            }
        }
    }
}

/// One recorded event (see [`RecordingSink`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// Function entry.
    Enter {
        /// Timestamp.
        t: Time,
        /// The function entered.
        func: FuncId,
        /// Frame base address.
        fp: u32,
        /// Executing thread.
        tid: Tid,
    },
    /// Function exit.
    Exit {
        /// Timestamp.
        t: Time,
        /// The function exiting.
        func: FuncId,
        /// Executing thread.
        tid: Tid,
    },
    /// Basic-block entry.
    Block {
        /// Timestamp.
        t: Time,
        /// The block entered.
        block: BlockId,
        /// Executing thread.
        tid: Tid,
    },
    /// Conditional-branch execution.
    Predicate {
        /// Timestamp.
        t: Time,
        /// The branch instruction.
        pc: Pc,
        /// The block containing the branch.
        block: BlockId,
        /// Whether the branch was taken.
        taken: bool,
        /// Executing thread.
        tid: Tid,
    },
    /// Memory read.
    Read {
        /// Timestamp.
        t: Time,
        /// Word address.
        addr: u32,
        /// The reading instruction.
        pc: Pc,
        /// Executing thread.
        tid: Tid,
    },
    /// Memory write.
    Write {
        /// Timestamp.
        t: Time,
        /// Word address.
        addr: u32,
        /// The writing instruction.
        pc: Pc,
        /// Executing thread.
        tid: Tid,
    },
}

impl Event {
    /// The event's timestamp.
    pub fn time(&self) -> Time {
        match *self {
            Event::Enter { t, .. }
            | Event::Exit { t, .. }
            | Event::Block { t, .. }
            | Event::Predicate { t, .. }
            | Event::Read { t, .. }
            | Event::Write { t, .. } => t,
        }
    }

    /// The thread that produced the event.
    pub fn tid(&self) -> Tid {
        match *self {
            Event::Enter { tid, .. }
            | Event::Exit { tid, .. }
            | Event::Block { tid, .. }
            | Event::Predicate { tid, .. }
            | Event::Read { tid, .. }
            | Event::Write { tid, .. } => tid,
        }
    }

    /// The same event restamped onto `tid`. Trace readers use this to apply
    /// a separately-stored thread-id column to a decoded event.
    pub fn with_tid(mut self, new_tid: Tid) -> Event {
        match &mut self {
            Event::Enter { tid, .. }
            | Event::Exit { tid, .. }
            | Event::Block { tid, .. }
            | Event::Predicate { tid, .. }
            | Event::Read { tid, .. }
            | Event::Write { tid, .. } => *tid = new_tid,
        }
        self
    }

    /// Delivers the event to `sink` by calling the matching trait method.
    ///
    /// This is the replay primitive: any stream of [`Event`]s (a
    /// [`RecordingSink`], a decoded trace file) can drive any sink exactly
    /// as a live interpreter run would.
    pub fn dispatch<S: TraceSink + ?Sized>(&self, sink: &mut S) {
        match *self {
            Event::Enter { t, func, fp, tid } => sink.on_enter_function(t, func, fp, tid),
            Event::Exit { t, func, tid } => sink.on_exit_function(t, func, tid),
            Event::Block { t, block, tid } => sink.on_block_entry(t, block, tid),
            Event::Predicate {
                t,
                pc,
                block,
                taken,
                tid,
            } => sink.on_predicate(t, pc, block, taken, tid),
            Event::Read { t, addr, pc, tid } => sink.on_read(t, addr, pc, tid),
            Event::Write { t, addr, pc, tid } => sink.on_write(t, addr, pc, tid),
        }
    }
}

/// Records the full event stream (tests and the oracle profiler).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecordingSink {
    /// The recorded events, in order.
    pub events: Vec<Event>,
}

impl TraceSink for RecordingSink {
    fn on_enter_function(&mut self, t: Time, func: FuncId, fp: u32, tid: Tid) {
        self.events.push(Event::Enter { t, func, fp, tid });
    }
    fn on_exit_function(&mut self, t: Time, func: FuncId, tid: Tid) {
        self.events.push(Event::Exit { t, func, tid });
    }
    fn on_block_entry(&mut self, t: Time, block: BlockId, tid: Tid) {
        self.events.push(Event::Block { t, block, tid });
    }
    fn on_predicate(&mut self, t: Time, pc: Pc, block: BlockId, taken: bool, tid: Tid) {
        self.events.push(Event::Predicate {
            t,
            pc,
            block,
            taken,
            tid,
        });
    }
    fn on_read(&mut self, t: Time, addr: u32, pc: Pc, tid: Tid) {
        self.events.push(Event::Read { t, addr, pc, tid });
    }
    fn on_write(&mut self, t: Time, addr: u32, pc: Pc, tid: Tid) {
        self.events.push(Event::Write { t, addr, pc, tid });
    }
    fn on_batch(&mut self, batch: &EventBatch) {
        self.events.reserve(batch.len());
        self.events.extend(batch.iter());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_sink_tallies() {
        let mut s = CountingSink::default();
        s.on_read(0, 1, Pc(0), Tid::MAIN);
        s.on_read(1, 2, Pc(1), Tid(1));
        s.on_write(2, 1, Pc(2), Tid::MAIN);
        s.on_predicate(3, Pc(3), BlockId(0), true, Tid::MAIN);
        assert_eq!(s.reads, 2);
        assert_eq!(s.writes, 1);
        assert_eq!(s.predicates, 1);
        assert_eq!(s.blocks, 0);
    }

    #[test]
    fn dispatch_replays_into_any_sink() {
        let mut rec = RecordingSink::default();
        rec.on_enter_function(0, FuncId(1), 8, Tid::MAIN);
        rec.on_predicate(1, Pc(4), BlockId(2), false, Tid(2));
        rec.on_read(2, 9, Pc(5), Tid::MAIN);
        rec.on_write(3, 9, Pc(6), Tid(1));
        rec.on_block_entry(4, BlockId(3), Tid(1));
        rec.on_exit_function(5, FuncId(1), Tid::MAIN);

        let mut replayed = RecordingSink::default();
        for e in &rec.events {
            assert_eq!(
                e.time(),
                rec.events.iter().position(|x| x == e).unwrap() as u64
            );
            e.dispatch(&mut replayed);
        }
        assert_eq!(rec, replayed);
    }

    #[test]
    fn mut_ref_is_a_sink() {
        fn feed<S: TraceSink>(mut s: S) {
            s.on_read(0, 1, Pc(0), Tid::MAIN);
        }
        let mut counts = CountingSink::default();
        feed(&mut counts);
        feed(&mut counts);
        assert_eq!(counts.reads, 2);
    }

    #[test]
    fn counting_sink_batch_override_matches_per_event() {
        let mut rec = RecordingSink::default();
        rec.on_enter_function(0, FuncId(0), 8, Tid::MAIN);
        rec.on_predicate(1, Pc(4), BlockId(2), true, Tid(3));
        rec.on_read(2, 9, Pc(5), Tid(3));
        rec.on_write(3, 9, Pc(6), Tid::MAIN);
        rec.on_block_entry(4, BlockId(3), Tid::MAIN);
        rec.on_exit_function(5, FuncId(0), Tid::MAIN);
        let batch = EventBatch::from_events(&rec.events);

        let mut per_event = CountingSink::default();
        for e in &rec.events {
            e.dispatch(&mut per_event);
        }
        let mut batched = CountingSink::default();
        batched.on_batch(&batch);
        assert_eq!(batched, per_event);

        let mut rebatched = RecordingSink::default();
        rebatched.on_batch(&batch);
        assert_eq!(rebatched.events, rec.events);
    }

    #[test]
    fn recording_sink_preserves_order_and_tids() {
        let mut s = RecordingSink::default();
        s.on_enter_function(0, FuncId(0), 16, Tid::MAIN);
        s.on_write(1, 16, Pc(2), Tid(7));
        s.on_exit_function(2, FuncId(0), Tid::MAIN);
        assert_eq!(s.events.len(), 3);
        assert!(matches!(s.events[0], Event::Enter { fp: 16, .. }));
        assert_eq!(s.events[1].tid(), Tid(7));
        assert!(matches!(s.events[2], Event::Exit { .. }));
    }

    #[test]
    fn tid_display_and_default() {
        assert_eq!(Tid(3).to_string(), "t3");
        assert_eq!(Tid::default(), Tid::MAIN);
    }
}
