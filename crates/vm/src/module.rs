//! Compiled program representation.

use crate::analysis::ModuleAnalysis;
use crate::op::{Op, Pc};
use alchemist_lang::hir::FuncId;
use alchemist_lang::Span;
use std::fmt;

/// Metadata about one compiled function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuncInfo {
    /// Source name.
    pub name: String,
    /// First instruction of the function.
    pub entry: Pc,
    /// One past the last instruction of the function.
    pub end: Pc,
    /// Words of frame storage (parameters + locals, arrays inline).
    pub frame_words: u32,
    /// Number of parameters (stored in the first frame slots).
    pub param_count: u32,
    /// `true` if declared `void`.
    pub is_void: bool,
    /// Signature source location.
    pub span: Span,
}

/// Metadata about one global variable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GlobalInfo {
    /// Source name.
    pub name: String,
    /// Word offset in global storage.
    pub offset: u32,
    /// Number of words (1 for scalars).
    pub words: u32,
    /// `true` if declared as an array.
    pub is_array: bool,
    /// Initial value (scalars only; arrays are zero-filled).
    pub init: i64,
    /// Declaration site.
    pub span: Span,
}

/// A fully compiled and analyzed mini-C program.
///
/// Produced by [`compile`](crate::compile); executed by
/// [`Interp`](crate::Interp). Carries everything the Alchemist profiler
/// needs: source spans per instruction and the control-flow facts
/// (basic blocks, immediate post-dominators, predicate classification) in
/// [`Module::analysis`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Module {
    /// All instructions, all functions concatenated.
    pub ops: Vec<Op>,
    /// Source span of each instruction (parallel to `ops`).
    pub spans: Vec<Span>,
    /// Function table; `FuncId` indexes here.
    pub funcs: Vec<FuncInfo>,
    /// Global variable table.
    pub globals: Vec<GlobalInfo>,
    /// Total words of global storage.
    pub global_words: u32,
    /// Entry function.
    pub main: FuncId,
    /// Control-flow analysis used by the execution-indexing runtime.
    pub analysis: ModuleAnalysis,
}

impl Module {
    /// The function containing `pc`, if any.
    pub fn func_at(&self, pc: Pc) -> Option<FuncId> {
        self.funcs
            .iter()
            .position(|f| f.entry.0 <= pc.0 && pc.0 < f.end.0)
            .map(|i| FuncId(i as u32))
    }

    /// Source span of the instruction at `pc`.
    ///
    /// # Panics
    ///
    /// Panics if `pc` is out of range.
    pub fn span_at(&self, pc: Pc) -> Span {
        self.spans[pc.0 as usize]
    }

    /// Source line of the instruction at `pc`.
    ///
    /// # Panics
    ///
    /// Panics if `pc` is out of range.
    pub fn line_at(&self, pc: Pc) -> u32 {
        self.span_at(pc).line()
    }

    /// Whether the program contains `spawn` (it may run more than one
    /// thread). Drives trace format selection: single-threaded modules keep
    /// writing v1 traces byte-for-byte.
    pub fn uses_threads(&self) -> bool {
        self.ops.iter().any(|op| matches!(op, Op::Spawn(_)))
    }

    /// Looks up a function by source name.
    pub fn func_by_name(&self, name: &str) -> Option<(FuncId, &FuncInfo)> {
        self.funcs
            .iter()
            .enumerate()
            .find(|(_, f)| f.name == name)
            .map(|(i, f)| (FuncId(i as u32), f))
    }

    /// Looks up a global by source name.
    pub fn global_by_name(&self, name: &str) -> Option<&GlobalInfo> {
        self.globals.iter().find(|g| g.name == name)
    }

    /// A human-readable disassembly (for debugging and tests).
    pub fn disassemble(&self) -> String {
        let mut out = String::new();
        use fmt::Write;
        for (fi, f) in self.funcs.iter().enumerate() {
            writeln!(out, "fn#{fi} {}:", f.name).expect("string write");
            for pc in f.entry.0..f.end.0 {
                let block = self
                    .analysis
                    .block_start(Pc(pc))
                    .map(|b| format!("{b}:"))
                    .unwrap_or_default();
                writeln!(out, "  {block:>6} @{pc:<4} {}", self.ops[pc as usize])
                    .expect("string write");
            }
        }
        out
    }
}
