//! Bytecode instruction set.
//!
//! The VM is a stack machine over `i64` words with a flat, word-addressed
//! data memory (globals first, then stack frames). Arrays are referenced
//! through packed descriptors (base address + length in one word) so that
//! `int a[]` parameters can be passed and bounds-checked.

use alchemist_lang::hir::{FuncId, Intrinsic};
use alchemist_lang::{BinOp, UnOp};
use std::fmt;

/// A program counter: an index into [`Module::ops`](crate::Module::ops).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Pc(pub u32);

impl fmt::Display for Pc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{}", self.0)
    }
}

/// A basic-block id, global across the module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(pub u32);

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

/// Packs an array descriptor (base address, length) into one stack word.
pub fn pack_ref(base: u32, len: u32) -> i64 {
    (base as i64) | ((len as i64) << 32)
}

/// Unpacks an array descriptor produced by [`pack_ref`].
pub fn unpack_ref(word: i64) -> (u32, u32) {
    (word as u32, (word >> 32) as u32)
}

/// One VM instruction.
///
/// Stack effects are written `[before] -> [after]` with the stack top on the
/// right.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// `[] -> [k]`
    Const(i64),
    /// `[a] -> [a a]`
    Dup,
    /// `[a b] -> [a b a b]`
    Dup2,
    /// `[a b c] -> [c a b]`
    Rot3Down,
    /// `[a] -> []`
    Pop,

    /// `[] -> [mem[fp+slot]]`; emits a read event.
    LoadLocal(u32),
    /// `[v] -> []`; writes `mem[fp+slot]`; emits a write event.
    StoreLocal(u32),
    /// `[v] -> [v]`; like [`Op::StoreLocal`] but keeps the value.
    StoreLocalKeep(u32),
    /// `[] -> [mem[off]]`; emits a read event.
    LoadGlobal(u32),
    /// `[v] -> []`; writes `mem[off]`; emits a write event.
    StoreGlobal(u32),
    /// `[v] -> [v]`; like [`Op::StoreGlobal`] but keeps the value.
    StoreGlobalKeep(u32),

    /// `[] -> [ref]`; descriptor for a global array at `off` of `len` words.
    GlobalArrRef {
        /// Word offset of the array in global storage.
        off: u32,
        /// Array length in words.
        len: u32,
    },
    /// `[] -> [ref]`; descriptor for a frame array at `fp+slot`.
    LocalArrRef {
        /// Word offset of the array within the frame.
        slot: u32,
        /// Array length in words.
        len: u32,
    },
    /// `[ref i] -> [mem[base+i]]`; bounds-checked; emits a read event.
    LoadElem,
    /// `[v ref i] -> []`; bounds-checked; emits a write event.
    StoreElem,
    /// `[v ref i] -> [v]`; like [`Op::StoreElem`] but keeps the value.
    StoreElemKeep,

    /// `[a] -> [op a]`
    Un(UnOp),
    /// `[a b] -> [a op b]`; never `&&`/`||` (lowered to branches).
    Bin(BinOp),

    /// Unconditional jump to an absolute pc.
    Br(u32),
    /// `[c] -> []`; jump when `c != 0`. A *predicate* instruction.
    BrTrue(u32),
    /// `[c] -> []`; jump when `c == 0`. A *predicate* instruction.
    BrFalse(u32),

    /// `[arg0 .. argN-1] -> []` in caller; arguments move to the callee frame.
    Call(FuncId),
    /// Intrinsic call; pops the intrinsic's arity, pushes one result.
    CallIntrinsic(Intrinsic),
    /// `[v] -> []`; pop frame and deliver `v` to the caller's stack.
    Ret,

    /// `[] -> []`; start a new thread running the synthesized function.
    Spawn(FuncId),
    /// `[] -> []`; block until all live direct children have finished.
    Join,
}

impl Op {
    /// Whether this op ends a basic block.
    pub fn is_terminator(&self) -> bool {
        matches!(self, Op::Br(_) | Op::BrTrue(_) | Op::BrFalse(_) | Op::Ret)
    }

    /// Whether this op is a conditional branch (a predicate in the paper's
    /// sense).
    pub fn is_predicate(&self) -> bool {
        matches!(self, Op::BrTrue(_) | Op::BrFalse(_))
    }

    /// Branch target, if the op is any branch.
    pub fn branch_target(&self) -> Option<u32> {
        match self {
            Op::Br(t) | Op::BrTrue(t) | Op::BrFalse(t) => Some(*t),
            _ => None,
        }
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Op::Const(k) => write!(f, "const {k}"),
            Op::Dup => write!(f, "dup"),
            Op::Dup2 => write!(f, "dup2"),
            Op::Rot3Down => write!(f, "rot3"),
            Op::Pop => write!(f, "pop"),
            Op::LoadLocal(s) => write!(f, "lload {s}"),
            Op::StoreLocal(s) => write!(f, "lstore {s}"),
            Op::StoreLocalKeep(s) => write!(f, "lstore.k {s}"),
            Op::LoadGlobal(o) => write!(f, "gload {o}"),
            Op::StoreGlobal(o) => write!(f, "gstore {o}"),
            Op::StoreGlobalKeep(o) => write!(f, "gstore.k {o}"),
            Op::GlobalArrRef { off, len } => write!(f, "garef {off} len={len}"),
            Op::LocalArrRef { slot, len } => write!(f, "laref {slot} len={len}"),
            Op::LoadElem => write!(f, "eload"),
            Op::StoreElem => write!(f, "estore"),
            Op::StoreElemKeep => write!(f, "estore.k"),
            Op::Un(op) => write!(f, "un {op}"),
            Op::Bin(op) => write!(f, "bin {op}"),
            Op::Br(t) => write!(f, "br {t}"),
            Op::BrTrue(t) => write!(f, "br.t {t}"),
            Op::BrFalse(t) => write!(f, "br.f {t}"),
            Op::Call(id) => write!(f, "call {id}"),
            Op::CallIntrinsic(i) => write!(f, "icall {}", i.name()),
            Op::Ret => write!(f, "ret"),
            Op::Spawn(id) => write!(f, "spawn {id}"),
            Op::Join => write!(f, "join"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ref_packing_round_trips() {
        for (base, len) in [(0u32, 0u32), (1, 1), (12345, 678), (u32::MAX, u32::MAX)] {
            assert_eq!(unpack_ref(pack_ref(base, len)), (base, len));
        }
    }

    #[test]
    fn terminators_and_predicates() {
        assert!(Op::Br(0).is_terminator());
        assert!(Op::Ret.is_terminator());
        assert!(!Op::Call(FuncId(0)).is_terminator());
        assert!(Op::BrTrue(3).is_predicate());
        assert!(!Op::Br(3).is_predicate());
        assert_eq!(Op::BrFalse(7).branch_target(), Some(7));
        assert_eq!(Op::Ret.branch_target(), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Op::Const(-4).to_string(), "const -4");
        assert_eq!(Op::BrFalse(9).to_string(), "br.f 9");
        assert_eq!(Pc(3).to_string(), "@3");
        assert_eq!(BlockId(5).to_string(), "bb5");
    }
}
