//! Struct-of-arrays event batches: the bulk interface of the event pipeline.
//!
//! The per-event [`TraceSink`] callbacks are the *semantic* interface —
//! one call per retired instrumentation point — but moving tens of millions
//! of events one call at a time caps throughput everywhere downstream
//! (encoding, replay, shard partitioning). An [`EventBatch`] carries the
//! same stream as parallel columns (`tag`/`time`/`addr`/`pc`/`aux`), so a
//! whole block of events crosses each layer boundary in a single
//! [`TraceSink::on_batch`] call, the columns stay cache-resident during
//! tight per-row loops, and batch-aware sinks (the trace codec, the shard
//! partitioner, fan-outs) can process rows without re-materializing
//! [`Event`] values.
//!
//! [`BatchingSink`] adapts the two worlds: it exposes the per-event
//! callbacks, accumulates rows into a reusable batch, and flushes to the
//! inner sink's `on_batch` at a configurable size. The interpreter uses it
//! when [`ExecConfig::batch_events`](crate::ExecConfig) is set, so every
//! existing sink works unchanged while batch-aware sinks get the bulk path.

use crate::events::{Event, Tid, Time, TraceSink};
use crate::op::{BlockId, Pc};
use alchemist_lang::hir::FuncId;

/// Default events-per-batch flush threshold (matches the trace codec's
/// default chunk size, so one batch fills one chunk).
pub const DEFAULT_BATCH_EVENTS: usize = 4096;

/// Discriminant of one batch row. Predicate outcomes are folded into the
/// tag (as in the `.alct` wire format) so a row needs no boolean column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum EventTag {
    /// Function entry (`addr` = frame base, `aux` = function id).
    Enter,
    /// Function exit (`aux` = function id).
    Exit,
    /// Basic-block entry (`aux` = block id).
    Block,
    /// Conditional branch, not taken (`pc` = branch pc, `aux` = block id).
    PredNotTaken,
    /// Conditional branch, taken (`pc` = branch pc, `aux` = block id).
    PredTaken,
    /// Memory read (`addr` = word address, `pc` = reading pc).
    Read,
    /// Memory write (`addr` = word address, `pc` = writing pc).
    Write,
}

impl EventTag {
    /// Whether this row is a data-memory access (the events an address
    /// shard owns; everything else is control and broadcast).
    #[inline]
    pub fn is_memory(self) -> bool {
        matches!(self, EventTag::Read | EventTag::Write)
    }
}

/// A block of events in struct-of-arrays layout.
///
/// Column meaning depends on the row's [`EventTag`] (see its variants);
/// unused columns hold 0 for that row, which keeps `PartialEq` meaningful
/// and the row encoding canonical.
///
/// # Examples
///
/// ```
/// use alchemist_vm::{Event, EventBatch, Pc, RecordingSink, Tid, TraceSink};
///
/// let mut batch = EventBatch::new();
/// batch.push_read(3, 100, Pc(7), Tid::MAIN);
/// batch.push_write(4, 101, Pc(8), Tid(1));
/// assert_eq!(batch.len(), 2);
/// assert_eq!(
///     batch.get(0),
///     Event::Read { t: 3, addr: 100, pc: Pc(7), tid: Tid::MAIN }
/// );
///
/// // Delivering a batch to any sink is equivalent to the per-event calls.
/// let mut rec = RecordingSink::default();
/// rec.on_batch(&batch);
/// assert_eq!(rec.events.len(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EventBatch {
    tags: Vec<EventTag>,
    times: Vec<Time>,
    addrs: Vec<u32>,
    pcs: Vec<u32>,
    auxs: Vec<u32>,
    tids: Vec<u32>,
}

impl EventBatch {
    /// An empty batch.
    pub fn new() -> Self {
        EventBatch::default()
    }

    /// An empty batch with room for `capacity` rows in every column.
    pub fn with_capacity(capacity: usize) -> Self {
        EventBatch {
            tags: Vec::with_capacity(capacity),
            times: Vec::with_capacity(capacity),
            addrs: Vec::with_capacity(capacity),
            pcs: Vec::with_capacity(capacity),
            auxs: Vec::with_capacity(capacity),
            tids: Vec::with_capacity(capacity),
        }
    }

    /// Builds a batch from a slice of events.
    pub fn from_events(events: &[Event]) -> Self {
        let mut batch = EventBatch::with_capacity(events.len());
        for ev in events {
            batch.push_event(ev);
        }
        batch
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.tags.len()
    }

    /// Whether the batch holds no rows.
    pub fn is_empty(&self) -> bool {
        self.tags.is_empty()
    }

    /// Removes all rows, keeping the columns' capacity for reuse.
    pub fn clear(&mut self) {
        self.tags.clear();
        self.times.clear();
        self.addrs.clear();
        self.pcs.clear();
        self.auxs.clear();
        self.tids.clear();
    }

    #[inline]
    fn push_row(&mut self, tag: EventTag, t: Time, addr: u32, pc: u32, aux: u32, tid: Tid) {
        self.tags.push(tag);
        self.times.push(t);
        self.addrs.push(addr);
        self.pcs.push(pc);
        self.auxs.push(aux);
        self.tids.push(tid.0);
    }

    /// Appends a function-entry row.
    #[inline]
    pub fn push_enter(&mut self, t: Time, func: FuncId, fp: u32, tid: Tid) {
        self.push_row(EventTag::Enter, t, fp, 0, func.0, tid);
    }

    /// Appends a function-exit row.
    #[inline]
    pub fn push_exit(&mut self, t: Time, func: FuncId, tid: Tid) {
        self.push_row(EventTag::Exit, t, 0, 0, func.0, tid);
    }

    /// Appends a block-entry row.
    #[inline]
    pub fn push_block(&mut self, t: Time, block: BlockId, tid: Tid) {
        self.push_row(EventTag::Block, t, 0, 0, block.0, tid);
    }

    /// Appends a predicate row.
    #[inline]
    pub fn push_predicate(&mut self, t: Time, pc: Pc, block: BlockId, taken: bool, tid: Tid) {
        let tag = if taken {
            EventTag::PredTaken
        } else {
            EventTag::PredNotTaken
        };
        self.push_row(tag, t, 0, pc.0, block.0, tid);
    }

    /// Appends a memory-read row.
    #[inline]
    pub fn push_read(&mut self, t: Time, addr: u32, pc: Pc, tid: Tid) {
        self.push_row(EventTag::Read, t, addr, pc.0, 0, tid);
    }

    /// Appends a memory-write row.
    #[inline]
    pub fn push_write(&mut self, t: Time, addr: u32, pc: Pc, tid: Tid) {
        self.push_row(EventTag::Write, t, addr, pc.0, 0, tid);
    }

    /// Appends one event as a row.
    #[inline]
    pub fn push_event(&mut self, ev: &Event) {
        match *ev {
            Event::Enter { t, func, fp, tid } => self.push_enter(t, func, fp, tid),
            Event::Exit { t, func, tid } => self.push_exit(t, func, tid),
            Event::Block { t, block, tid } => self.push_block(t, block, tid),
            Event::Predicate {
                t,
                pc,
                block,
                taken,
                tid,
            } => self.push_predicate(t, pc, block, taken, tid),
            Event::Read { t, addr, pc, tid } => self.push_read(t, addr, pc, tid),
            Event::Write { t, addr, pc, tid } => self.push_write(t, addr, pc, tid),
        }
    }

    /// Copies row `i` of `src` into this batch (a column-wise copy; no
    /// [`Event`] value is materialized). The shard partitioner's hot loop.
    #[inline]
    pub fn push_index(&mut self, src: &EventBatch, i: usize) {
        self.push_row(
            src.tags[i],
            src.times[i],
            src.addrs[i],
            src.pcs[i],
            src.auxs[i],
            Tid(src.tids[i]),
        );
    }

    /// Row `i`'s tag.
    #[inline]
    pub fn tag(&self, i: usize) -> EventTag {
        self.tags[i]
    }

    /// Row `i`'s timestamp.
    #[inline]
    pub fn time(&self, i: usize) -> Time {
        self.times[i]
    }

    /// Row `i`'s address column (word address / frame base).
    #[inline]
    pub fn addr(&self, i: usize) -> u32 {
        self.addrs[i]
    }

    /// Row `i`'s pc column.
    #[inline]
    pub fn pc(&self, i: usize) -> u32 {
        self.pcs[i]
    }

    /// Row `i`'s aux column (function id / block id).
    #[inline]
    pub fn aux(&self, i: usize) -> u32 {
        self.auxs[i]
    }

    /// Row `i`'s thread id.
    #[inline]
    pub fn tid(&self, i: usize) -> Tid {
        Tid(self.tids[i])
    }

    /// The tag column.
    pub fn tags(&self) -> &[EventTag] {
        &self.tags
    }

    /// The timestamp column.
    pub fn times(&self) -> &[Time] {
        &self.times
    }

    /// The thread-id column (raw `u32`s).
    pub fn tids(&self) -> &[u32] {
        &self.tids
    }

    /// Reconstructs row `i` as an [`Event`].
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn get(&self, i: usize) -> Event {
        let t = self.times[i];
        let tid = Tid(self.tids[i]);
        match self.tags[i] {
            EventTag::Enter => Event::Enter {
                t,
                func: FuncId(self.auxs[i]),
                fp: self.addrs[i],
                tid,
            },
            EventTag::Exit => Event::Exit {
                t,
                func: FuncId(self.auxs[i]),
                tid,
            },
            EventTag::Block => Event::Block {
                t,
                block: BlockId(self.auxs[i]),
                tid,
            },
            EventTag::PredNotTaken | EventTag::PredTaken => Event::Predicate {
                t,
                pc: Pc(self.pcs[i]),
                block: BlockId(self.auxs[i]),
                taken: self.tags[i] == EventTag::PredTaken,
                tid,
            },
            EventTag::Read => Event::Read {
                t,
                addr: self.addrs[i],
                pc: Pc(self.pcs[i]),
                tid,
            },
            EventTag::Write => Event::Write {
                t,
                addr: self.addrs[i],
                pc: Pc(self.pcs[i]),
                tid,
            },
        }
    }

    /// Iterates the rows as [`Event`] values.
    pub fn iter(&self) -> impl Iterator<Item = Event> + '_ {
        (0..self.len()).map(|i| self.get(i))
    }

    /// Delivers every row to `sink` through the matching per-event
    /// callback, in order. This is the compatibility bridge behind the
    /// default [`TraceSink::on_batch`]: a sink that overrides nothing
    /// observes exactly the per-event stream.
    pub fn dispatch_into<S: TraceSink + ?Sized>(&self, sink: &mut S) {
        for i in 0..self.len() {
            let t = self.times[i];
            let tid = Tid(self.tids[i]);
            match self.tags[i] {
                EventTag::Enter => {
                    sink.on_enter_function(t, FuncId(self.auxs[i]), self.addrs[i], tid);
                }
                EventTag::Exit => sink.on_exit_function(t, FuncId(self.auxs[i]), tid),
                EventTag::Block => sink.on_block_entry(t, BlockId(self.auxs[i]), tid),
                EventTag::PredNotTaken => {
                    sink.on_predicate(t, Pc(self.pcs[i]), BlockId(self.auxs[i]), false, tid);
                }
                EventTag::PredTaken => {
                    sink.on_predicate(t, Pc(self.pcs[i]), BlockId(self.auxs[i]), true, tid);
                }
                EventTag::Read => sink.on_read(t, self.addrs[i], Pc(self.pcs[i]), tid),
                EventTag::Write => sink.on_write(t, self.addrs[i], Pc(self.pcs[i]), tid),
            }
        }
    }
}

/// Adapts a batch-aware sink to the per-event interface: accumulates
/// events into a reusable [`EventBatch`] and flushes it to the inner
/// sink's [`TraceSink::on_batch`] every `capacity` events.
///
/// Used by [`run`](crate::run) when
/// [`ExecConfig::batch_events`](crate::ExecConfig) is above 1, and usable
/// standalone to batch any event source in front of any sink. Remember to
/// [`flush`](BatchingSink::flush) (or [`into_inner`](BatchingSink::into_inner))
/// after the final event; dropping the adapter does **not** flush.
///
/// # Examples
///
/// ```
/// use alchemist_vm::{BatchingSink, CountingSink, Pc, Tid, TraceSink};
///
/// let mut counts = CountingSink::default();
/// let mut batcher = BatchingSink::new(&mut counts, 8);
/// for i in 0..20 {
///     batcher.on_read(i, i as u32, Pc(0), Tid::MAIN);
/// }
/// batcher.flush(); // deliver the final partial batch
/// drop(batcher);
/// assert_eq!(counts.reads, 20);
/// ```
#[derive(Debug)]
pub struct BatchingSink<S> {
    inner: S,
    batch: EventBatch,
    capacity: usize,
}

impl<S: TraceSink> BatchingSink<S> {
    /// Wraps `inner`, flushing every `capacity` events (minimum 1).
    pub fn new(inner: S, capacity: usize) -> Self {
        let capacity = capacity.max(1);
        BatchingSink {
            inner,
            batch: EventBatch::with_capacity(capacity),
            capacity,
        }
    }

    /// Delivers any buffered events to the inner sink now.
    pub fn flush(&mut self) {
        if !self.batch.is_empty() {
            self.inner.on_batch(&self.batch);
            self.batch.clear();
        }
    }

    /// Flushes, then returns the inner sink.
    pub fn into_inner(mut self) -> S {
        self.flush();
        self.inner
    }

    /// Events currently buffered (below one flush threshold).
    pub fn pending(&self) -> usize {
        self.batch.len()
    }

    #[inline]
    fn maybe_flush(&mut self) {
        if self.batch.len() >= self.capacity {
            self.flush();
        }
    }
}

impl<S: TraceSink> TraceSink for BatchingSink<S> {
    fn on_enter_function(&mut self, t: Time, func: FuncId, fp: u32, tid: Tid) {
        self.batch.push_enter(t, func, fp, tid);
        self.maybe_flush();
    }
    fn on_exit_function(&mut self, t: Time, func: FuncId, tid: Tid) {
        self.batch.push_exit(t, func, tid);
        self.maybe_flush();
    }
    fn on_block_entry(&mut self, t: Time, block: BlockId, tid: Tid) {
        self.batch.push_block(t, block, tid);
        self.maybe_flush();
    }
    fn on_predicate(&mut self, t: Time, pc: Pc, block: BlockId, taken: bool, tid: Tid) {
        self.batch.push_predicate(t, pc, block, taken, tid);
        self.maybe_flush();
    }
    fn on_read(&mut self, t: Time, addr: u32, pc: Pc, tid: Tid) {
        self.batch.push_read(t, addr, pc, tid);
        self.maybe_flush();
    }
    fn on_write(&mut self, t: Time, addr: u32, pc: Pc, tid: Tid) {
        self.batch.push_write(t, addr, pc, tid);
        self.maybe_flush();
    }
    fn on_batch(&mut self, batch: &EventBatch) {
        // Preserve order: anything buffered precedes the incoming batch.
        self.flush();
        self.inner.on_batch(batch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::{CountingSink, RecordingSink};

    fn sample_events() -> Vec<Event> {
        vec![
            Event::Enter {
                t: 0,
                func: FuncId(1),
                fp: 64,
                tid: Tid::MAIN,
            },
            Event::Block {
                t: 1,
                block: BlockId(2),
                tid: Tid(1),
            },
            Event::Predicate {
                t: 2,
                pc: Pc(10),
                block: BlockId(2),
                taken: true,
                tid: Tid(1),
            },
            Event::Read {
                t: 3,
                addr: 7,
                pc: Pc(11),
                tid: Tid(2),
            },
            Event::Write {
                t: 4,
                addr: 7,
                pc: Pc(12),
                tid: Tid::MAIN,
            },
            Event::Predicate {
                t: 5,
                pc: Pc(10),
                block: BlockId(2),
                taken: false,
                tid: Tid(1),
            },
            Event::Exit {
                t: 6,
                func: FuncId(1),
                tid: Tid::MAIN,
            },
        ]
    }

    #[test]
    fn rows_roundtrip_through_get_and_iter() {
        let events = sample_events();
        let batch = EventBatch::from_events(&events);
        assert_eq!(batch.len(), events.len());
        for (i, ev) in events.iter().enumerate() {
            assert_eq!(batch.get(i), *ev);
        }
        let collected: Vec<Event> = batch.iter().collect();
        assert_eq!(collected, events);
    }

    #[test]
    fn dispatch_into_equals_per_event_delivery() {
        let events = sample_events();
        let batch = EventBatch::from_events(&events);
        let mut via_batch = RecordingSink::default();
        batch.dispatch_into(&mut via_batch);
        assert_eq!(via_batch.events, events);
    }

    #[test]
    fn push_index_copies_rows_verbatim() {
        let src = EventBatch::from_events(&sample_events());
        let mut dst = EventBatch::new();
        for i in (0..src.len()).rev() {
            dst.push_index(&src, i);
        }
        let reversed: Vec<Event> = dst.iter().collect();
        let mut expect: Vec<Event> = src.iter().collect();
        expect.reverse();
        assert_eq!(reversed, expect);
    }

    #[test]
    fn clear_retains_capacity() {
        let mut batch = EventBatch::with_capacity(16);
        for ev in sample_events() {
            batch.push_event(&ev);
        }
        let cap = batch.tags.capacity();
        batch.clear();
        assert!(batch.is_empty());
        assert_eq!(batch.tags.capacity(), cap);
    }

    #[test]
    fn memory_tags_are_exactly_reads_and_writes() {
        for tag in [
            EventTag::Enter,
            EventTag::Exit,
            EventTag::Block,
            EventTag::PredNotTaken,
            EventTag::PredTaken,
        ] {
            assert!(!tag.is_memory());
        }
        assert!(EventTag::Read.is_memory());
        assert!(EventTag::Write.is_memory());
    }

    #[test]
    fn batching_sink_flushes_at_capacity_and_on_demand() {
        let mut rec = RecordingSink::default();
        let mut batcher = BatchingSink::new(&mut rec, 3);
        for ev in sample_events() {
            ev.dispatch(&mut batcher);
        }
        // 7 events, capacity 3: two full flushes happened, one row pending.
        assert_eq!(batcher.pending(), 1);
        batcher.flush();
        assert_eq!(batcher.pending(), 0);
        drop(batcher);
        assert_eq!(rec.events, sample_events());
    }

    #[test]
    fn batching_sink_forwards_incoming_batches_in_order() {
        let mut rec = RecordingSink::default();
        let mut batcher = BatchingSink::new(&mut rec, 100);
        let events = sample_events();
        // One buffered per-event row, then a whole batch: order must hold.
        events[0].dispatch(&mut batcher);
        batcher.on_batch(&EventBatch::from_events(&events[1..]));
        drop(batcher);
        assert_eq!(rec.events, events);
    }

    #[test]
    fn into_inner_flushes_the_tail() {
        let mut counts = CountingSink::default();
        let mut batcher = BatchingSink::new(&mut counts, 64);
        batcher.on_read(0, 1, Pc(0), Tid::MAIN);
        batcher.on_write(1, 1, Pc(1), Tid::MAIN);
        let _ = batcher.into_inner();
        assert_eq!(counts.reads, 1);
        assert_eq!(counts.writes, 1);
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let mut counts = CountingSink::default();
        let mut batcher = BatchingSink::new(&mut counts, 0);
        batcher.on_read(0, 1, Pc(0), Tid::MAIN);
        assert_eq!(batcher.pending(), 0, "capacity 1 flushes every event");
        drop(batcher);
        assert_eq!(counts.reads, 1);
    }
}
