//! Cooperative cancellation: `request_interrupt` must stop any in-flight
//! run at the next quantum boundary with a typed `Interrupted` trap, and a
//! cleared flag must leave later runs untouched.
//!
//! The flag is process-global (that is what makes it settable from a
//! signal handler), so these tests live in their own integration binary
//! and serialize on a mutex — no other test in this process calls `run`.

use alchemist_vm::{
    clear_interrupt, compile_source, interrupt_requested, request_interrupt, run, ExecConfig,
    NullSink, RecordingSink, TrapKind,
};
use std::sync::Mutex;

static SERIAL: Mutex<()> = Mutex::new(());

const SPIN: &str = "int g;
int main() { int i; for (i = 0; i < 100000; i++) g += i; return g; }";

#[test]
fn pending_interrupt_traps_at_the_first_quantum_boundary() {
    let _guard = SERIAL.lock().unwrap();
    let module = compile_source(SPIN).unwrap();
    request_interrupt();
    assert!(interrupt_requested());
    let err = run(&module, &ExecConfig::default(), &mut NullSink).unwrap_err();
    clear_interrupt();
    assert_eq!(err.kind, TrapKind::Interrupted);
    assert!(err.to_string().contains("execution interrupted"));
    // The flag is only observed, never consumed, by the interpreter —
    // clearing is the caller's job (done above).
    assert!(!interrupt_requested());
}

#[test]
fn interrupted_runs_still_deliver_a_consistent_event_prefix() {
    let _guard = SERIAL.lock().unwrap();
    let module = compile_source(SPIN).unwrap();
    // The sink sees whatever was emitted before the boundary; events are
    // whole (no torn rows) and timestamps stay monotone.
    let mut rec = RecordingSink::default();
    request_interrupt();
    let err = run(&module, &ExecConfig::default(), &mut rec).unwrap_err();
    clear_interrupt();
    assert_eq!(err.kind, TrapKind::Interrupted);
    let times: Vec<u64> = rec.events.iter().map(|e| e.time()).collect();
    assert!(
        times.windows(2).all(|w| w[0] <= w[1]),
        "monotone timestamps"
    );
}

#[test]
fn cleared_interrupt_does_not_affect_subsequent_runs() {
    let _guard = SERIAL.lock().unwrap();
    let module = compile_source(SPIN).unwrap();
    request_interrupt();
    clear_interrupt();
    let out = run(&module, &ExecConfig::default(), &mut NullSink).unwrap();
    assert!(out.steps > 0);
}
