//! Property tests: the VM's expression evaluation must agree with a direct
//! AST interpreter (Rust semantics with the documented wrapping/masking
//! rules) on randomly generated expression trees.

use alchemist_lang::ast::{BinOp, UnOp};
use alchemist_vm::{compile_source, run, ExecConfig, NullSink};
use proptest::prelude::*;

/// An expression tree over two variables `x`, `y` whose value we can
/// compute directly.
#[derive(Debug, Clone)]
enum E {
    Const(i64),
    X,
    Y,
    Un(UnOp, Box<E>),
    Bin(BinOp, Box<E>, Box<E>),
    Ternary(Box<E>, Box<E>, Box<E>),
}

impl E {
    fn to_source(&self) -> String {
        match self {
            // i64::MIN has no literal form (the same quirk as C): the
            // lexer sees `-` as negation of an overflowing magnitude.
            E::Const(v) if *v == i64::MIN => "(-9223372036854775807 - 1)".to_owned(),
            E::Const(v) => format!("{v}"),
            E::X => "x".into(),
            E::Y => "y".into(),
            E::Un(op, a) => format!("({op} {})", a.to_source()),
            E::Bin(op, a, b) => {
                format!("({} {op} {})", a.to_source(), b.to_source())
            }
            E::Ternary(c, t, e) => format!(
                "({} ? {} : {})",
                c.to_source(),
                t.to_source(),
                e.to_source()
            ),
        }
    }

    /// The language's defined semantics, evaluated directly.
    fn eval(&self, x: i64, y: i64) -> Option<i64> {
        Some(match self {
            E::Const(v) => *v,
            E::X => x,
            E::Y => y,
            E::Un(op, a) => {
                let a = a.eval(x, y)?;
                match op {
                    UnOp::Neg => a.wrapping_neg(),
                    UnOp::Not => (a == 0) as i64,
                    UnOp::BitNot => !a,
                }
            }
            // Short-circuit forms first: the right side must not be
            // evaluated (it may contain a division by zero the VM never
            // reaches).
            E::Bin(BinOp::LogAnd, a, b) => {
                if a.eval(x, y)? == 0 {
                    0
                } else {
                    (b.eval(x, y)? != 0) as i64
                }
            }
            E::Bin(BinOp::LogOr, a, b) => {
                if a.eval(x, y)? != 0 {
                    1
                } else {
                    (b.eval(x, y)? != 0) as i64
                }
            }
            E::Bin(op, a, b) => {
                let a = a.eval(x, y)?;
                let b = b.eval(x, y)?;
                match op {
                    BinOp::Add => a.wrapping_add(b),
                    BinOp::Sub => a.wrapping_sub(b),
                    BinOp::Mul => a.wrapping_mul(b),
                    BinOp::Div => {
                        if b == 0 {
                            return None;
                        }
                        a.wrapping_div(b)
                    }
                    BinOp::Rem => {
                        if b == 0 {
                            return None;
                        }
                        a.wrapping_rem(b)
                    }
                    BinOp::BitAnd => a & b,
                    BinOp::BitOr => a | b,
                    BinOp::BitXor => a ^ b,
                    BinOp::Shl => a.wrapping_shl((b & 63) as u32),
                    BinOp::Shr => a.wrapping_shr((b & 63) as u32),
                    BinOp::Lt => (a < b) as i64,
                    BinOp::Le => (a <= b) as i64,
                    BinOp::Gt => (a > b) as i64,
                    BinOp::Ge => (a >= b) as i64,
                    BinOp::Eq => (a == b) as i64,
                    BinOp::Ne => (a != b) as i64,
                    BinOp::LogAnd | BinOp::LogOr => {
                        unreachable!("handled above")
                    }
                }
            }
            E::Ternary(c, t, e) => {
                if c.eval(x, y)? != 0 {
                    t.eval(x, y)?
                } else {
                    e.eval(x, y)?
                }
            }
        })
    }
}

fn arb_expr() -> impl Strategy<Value = E> {
    let leaf = prop_oneof![
        (-1000i64..1000).prop_map(E::Const),
        Just(E::X),
        Just(E::Y),
        Just(E::Const(i64::MAX)),
        Just(E::Const(i64::MIN)),
    ];
    leaf.prop_recursive(5, 64, 3, |inner| {
        let un = prop_oneof![Just(UnOp::Neg), Just(UnOp::Not), Just(UnOp::BitNot)];
        let bin = prop_oneof![
            Just(BinOp::Add),
            Just(BinOp::Sub),
            Just(BinOp::Mul),
            Just(BinOp::Div),
            Just(BinOp::Rem),
            Just(BinOp::BitAnd),
            Just(BinOp::BitOr),
            Just(BinOp::BitXor),
            Just(BinOp::Shl),
            Just(BinOp::Shr),
            Just(BinOp::Lt),
            Just(BinOp::Le),
            Just(BinOp::Gt),
            Just(BinOp::Ge),
            Just(BinOp::Eq),
            Just(BinOp::Ne),
            Just(BinOp::LogAnd),
            Just(BinOp::LogOr),
        ];
        prop_oneof![
            (un, inner.clone()).prop_map(|(op, a)| E::Un(op, Box::new(a))),
            (bin, inner.clone(), inner.clone()).prop_map(|(op, a, b)| E::Bin(
                op,
                Box::new(a),
                Box::new(b)
            )),
            (inner.clone(), inner.clone(), inner)
                .prop_map(|(c, t, e)| { E::Ternary(Box::new(c), Box::new(t), Box::new(e)) }),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn vm_matches_direct_evaluation(
        e in arb_expr(),
        x in -100i64..100,
        y in any::<i64>(),
    ) {
        let src = format!(
            "int main() {{ int x = input(0); int y = input(1); \
             print({}); return 0; }}",
            e.to_source()
        );
        let module = compile_source(&src).expect("generated expression compiles");
        let outcome = run(
            &module,
            &ExecConfig::with_input(vec![x, y]),
            &mut NullSink,
        );
        match e.eval(x, y) {
            Some(expected) => {
                let out = outcome.expect("defined expressions run");
                prop_assert_eq!(out.output, vec![expected]);
            }
            None => {
                let trap = outcome.expect_err("division by zero traps");
                prop_assert_eq!(
                    trap.kind,
                    alchemist_vm::TrapKind::DivideByZero
                );
            }
        }
    }

    /// Shifts are masked to 0..63 like hardware, never UB or panic.
    #[test]
    fn extreme_shifts_are_masked(a in any::<i64>(), b in any::<i64>()) {
        let src = "int main() { print(input(0) << input(1)); \
                    print(input(0) >> input(1)); return 0; }";
        let module = compile_source(src).expect("compiles");
        let out = run(&module, &ExecConfig::with_input(vec![a, b]), &mut NullSink)
            .expect("shifts never trap");
        prop_assert_eq!(out.output[0], a.wrapping_shl((b & 63) as u32));
        prop_assert_eq!(out.output[1], a.wrapping_shr((b & 63) as u32));
    }

    /// i64::MIN / -1 must not panic (wrapping division).
    #[test]
    fn overflow_division_wraps(a in any::<i64>()) {
        let src = "int main() { print(input(0) / input(1)); return 0; }";
        let module = compile_source(src).expect("compiles");
        let out = run(
            &module,
            &ExecConfig::with_input(vec![a, -1]),
            &mut NullSink,
        )
        .expect("runs");
        prop_assert_eq!(out.output[0], a.wrapping_div(-1));
    }
}
