//! Source-level tests of the control-flow analysis: for each mini-C
//! control shape, check the predicate classification and immediate
//! post-dominator facts the indexing runtime will consume.

use alchemist_vm::{compile_source, Module, Pc, PredKind};

fn predicates_of(m: &Module, func: &str) -> Vec<(Pc, PredKind)> {
    let (_, fi) = m.func_by_name(func).expect("function exists");
    (fi.entry.0..fi.end.0)
        .map(Pc)
        .filter_map(|pc| m.analysis.predicate_kind(pc).map(|k| (pc, k)))
        .collect()
}

#[test]
fn while_loop_has_one_loop_predicate_closing_at_exit() {
    let m =
        compile_source("int g; int main() { int i = 0; while (i < 5) { g += i; i++; } return g; }")
            .unwrap();
    let preds = predicates_of(&m, "main");
    assert_eq!(preds.len(), 1);
    assert_eq!(preds[0].1, PredKind::Loop);
    // Its block's ipdom is the code after the loop (a real block).
    let block = m.analysis.block_of(preds[0].0);
    assert!(m.analysis.block(block).ipdom.is_some());
}

#[test]
fn for_loop_predicate_is_loop_kind() {
    let m = compile_source("int g; int main() { int i; for (i = 0; i < 3; i++) g++; return g; }")
        .unwrap();
    let preds = predicates_of(&m, "main");
    assert_eq!(
        preds.iter().filter(|(_, k)| *k == PredKind::Loop).count(),
        1
    );
}

#[test]
fn do_while_bottom_test_is_loop_kind() {
    let m = compile_source(
        "int g; int main() { int i = 0; do { g += i; i++; } while (i < 4); return g; }",
    )
    .unwrap();
    let preds = predicates_of(&m, "main");
    assert_eq!(preds.len(), 1);
    assert_eq!(
        preds[0].1,
        PredKind::Loop,
        "bottom test takes the back edge"
    );
}

#[test]
fn if_inside_loop_is_branch_kind() {
    let m = compile_source(
        "int g; int main() { int i; for (i = 0; i < 6; i++) { \
         if (i & 1) g += i; } return g; }",
    )
    .unwrap();
    let preds = predicates_of(&m, "main");
    let loops = preds.iter().filter(|(_, k)| *k == PredKind::Loop).count();
    let branches = preds.iter().filter(|(_, k)| *k == PredKind::Branch).count();
    assert_eq!((loops, branches), (1, 1));
}

#[test]
fn break_test_in_while_one_becomes_the_loop_predicate() {
    // `while (1)` emits no conditional branch of its own, so the first
    // test in the body — `if (i > 3) break;` — sits in the loop-header
    // block and is (correctly) classified as the iteration predicate:
    // each of its executions delimits one iteration, exactly what the
    // indexing rules need for a head-less loop.
    let m = compile_source(
        "int g; int main() { int i = 0; while (1) { \
         if (i > 3) break; g += i; i++; } return g; }",
    )
    .unwrap();
    let preds = predicates_of(&m, "main");
    assert_eq!(preds.len(), 1, "while(1) itself has no predicate");
    assert_eq!(preds[0].1, PredKind::Loop);
}

#[test]
fn second_break_test_in_while_one_is_branch_kind() {
    // A break-test later in the body is not the header: it stays a Branch,
    // and the indexing runtime bounds the stack through the generalized
    // re-execution rule instead.
    let m = compile_source(
        "int g; int main() { int i = 0; while (1) { \
         if (i > 3) break; g += i; if (g > 100) break; i++; } return g; }",
    )
    .unwrap();
    let preds = predicates_of(&m, "main");
    assert_eq!(preds.len(), 2);
    assert_eq!(preds[0].1, PredKind::Loop, "header test");
    assert_eq!(preds[1].1, PredKind::Branch, "mid-body test");
}

#[test]
fn short_circuit_condition_produces_two_predicates() {
    let m = compile_source(
        "int g; int main() { int i = 0; while (i < 9 && g < 5) { g += i; i++; } \
         return g; }",
    )
    .unwrap();
    let preds = predicates_of(&m, "main");
    assert_eq!(preds.len(), 2, "one predicate per && operand");
    // The first (header) test is the loop predicate.
    assert_eq!(preds[0].1, PredKind::Loop);
}

#[test]
fn ternary_is_branch_kind() {
    let m = compile_source("int main() { int x = 3; return x > 1 ? 10 : 20; }").unwrap();
    let preds = predicates_of(&m, "main");
    assert_eq!(preds.len(), 1);
    assert_eq!(preds[0].1, PredKind::Branch);
}

#[test]
fn nested_loops_classify_independently() {
    let m = compile_source(
        "int g; int main() { int i; int j; \
         for (i = 0; i < 3; i++) for (j = 0; j < 3; j++) g++; return g; }",
    )
    .unwrap();
    let preds = predicates_of(&m, "main");
    assert_eq!(
        preds.iter().filter(|(_, k)| *k == PredKind::Loop).count(),
        2
    );
}

#[test]
fn if_join_is_the_ipdom_of_its_predicate() {
    let m = compile_source(
        "int g; int main() { if (g > 0) { g = 1; } else { g = 2; } g = 3; return g; }",
    )
    .unwrap();
    let preds = predicates_of(&m, "main");
    assert_eq!(preds.len(), 1);
    let pred_block = m.analysis.block_of(preds[0].0);
    let join = m
        .analysis
        .block(pred_block)
        .ipdom
        .expect("diamond has a join");
    // The join block contains the `g = 3` store; both arms flow into it.
    let info = m.analysis.block(join);
    assert!(info.first.0 > preds[0].0 .0);
}

#[test]
fn early_return_predicates_close_at_function_exit() {
    let m = compile_source(
        "int f(int x) { if (x > 0) return 1; return 2; }
         int main() { return f(3); }",
    )
    .unwrap();
    let preds = predicates_of(&m, "f");
    assert_eq!(preds.len(), 1);
    let block = m.analysis.block_of(preds[0].0);
    assert_eq!(
        m.analysis.block(block).ipdom,
        None,
        "both arms return; only the virtual exit post-dominates"
    );
}

#[test]
fn disassembly_lists_blocks_and_ops() {
    let m = compile_source("int g; int main() { int i; for (i = 0; i < 3; i++) g++; return g; }")
        .unwrap();
    let text = m.disassemble();
    assert!(text.contains("fn#0 main:"), "{text}");
    assert!(text.contains("bb"), "block labels shown: {text}");
    assert!(text.contains("br.f") || text.contains("br.t"), "{text}");
    assert!(text.contains("ret"), "{text}");
}

#[test]
fn block_count_is_reasonable_for_straightline_code() {
    let m = compile_source("int main() { int a = 1; int b = 2; return a + b; }").unwrap();
    // Straight-line code: exactly one block.
    let f = &m.funcs[0];
    let blocks: std::collections::HashSet<_> = (f.entry.0..f.end.0)
        .map(|pc| m.analysis.block_of(Pc(pc)))
        .collect();
    assert_eq!(blocks.len(), 1);
}
