//! Differential property tests for the paged shadow memory.
//!
//! A naive reference implementation — `HashMap<u32, (Option<Access>,
//! Vec<Access>)>`, the spec written as directly as possible — replays the
//! same arbitrary access stream as the production [`ShadowMemory`], and
//! every observable must match *exactly*:
//!
//! * the emitted dependence stream (kind, head pc/time, tail pc/time,
//!   address), in order — this pins RAW/WAR/WAW detection, the same-site
//!   read update, and the stalest-entry **eviction victims** (a wrong
//!   victim surfaces as a different WAR set at the next write);
//! * `dropped_readers` after every event;
//! * the occupied-address count ([`ShadowMemory::len`]).
//!
//! The stream mixes dense page-0 addresses with far-page strides (the
//! paged layout's sparse path), and runs under reader caps below, at and
//! above the inline capacity, so eviction, the all-inline path and the
//! heap-spill path are all differentially checked.

use alchemist_core::shadow::{Access, ShadowMemory};
use alchemist_core::{DepKind, INLINE_READERS, PAGE_WORDS};
use alchemist_vm::{Pc, Tid, Time};
use proptest::prelude::*;
use std::collections::HashMap;

type Tag = u32;

/// One reference cell: the last write plus the reads since it.
type NaiveCell = (Option<Access<Tag>>, Vec<Access<Tag>>);

/// One observed dependence, in a comparable shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Dep {
    kind: DepKind,
    head_pc: Pc,
    head_t: Time,
    head_node: Tag,
    tail_pc: Pc,
    tail_t: Time,
    addr: u32,
}

/// The spec: unpaged, uncapped-layout shadow cells in a plain `HashMap`,
/// with the reader-cap semantics written out longhand.
#[derive(Default)]
struct NaiveShadow {
    cells: HashMap<u32, NaiveCell>,
    reader_cap: usize,
    dropped_readers: u64,
}

impl NaiveShadow {
    fn new(reader_cap: usize) -> Self {
        NaiveShadow {
            reader_cap: reader_cap.max(1),
            ..NaiveShadow::default()
        }
    }

    fn on_read(&mut self, addr: u32, access: Access<Tag>, out: &mut Vec<Dep>) {
        let (last_write, reads) = self.cells.entry(addr).or_default();
        if let Some(head) = *last_write {
            out.push(Dep {
                kind: DepKind::Raw,
                head_pc: head.pc,
                head_t: head.t,
                head_node: head.node,
                tail_pc: access.pc,
                tail_t: access.t,
                addr,
            });
        }
        if let Some(existing) = reads.iter_mut().find(|r| r.pc == access.pc) {
            *existing = access;
        } else if reads.len() < self.reader_cap {
            reads.push(access);
        } else {
            self.dropped_readers += 1;
            if let Some(oldest) = reads.iter_mut().min_by_key(|r| (r.t, r.pc)) {
                *oldest = access;
            }
        }
    }

    fn on_write(&mut self, addr: u32, access: Access<Tag>, out: &mut Vec<Dep>) {
        let (last_write, reads) = self.cells.entry(addr).or_default();
        if let Some(head) = *last_write {
            out.push(Dep {
                kind: DepKind::Waw,
                head_pc: head.pc,
                head_t: head.t,
                head_node: head.node,
                tail_pc: access.pc,
                tail_t: access.t,
                addr,
            });
        }
        for head in reads.drain(..) {
            out.push(Dep {
                kind: DepKind::War,
                head_pc: head.pc,
                head_t: head.t,
                head_node: head.node,
                tail_pc: access.pc,
                tail_t: access.t,
                addr,
            });
        }
        *last_write = Some(access);
    }

    fn len(&self) -> usize {
        self.cells.len()
    }
}

/// One raw generated access: (time delta, write?, address selector, pc).
type RawAccess = (u64, bool, u16, u8);

/// Maps an address selector onto a mix of dense page-0 addresses and
/// sparse far-page strides, so both layout paths are exercised.
fn addr_of(sel: u16) -> u32 {
    let sel = u32::from(sel);
    if sel % 4 == 3 {
        // Sparse: one address per page across many pages.
        (sel % 61) * PAGE_WORDS as u32 + (sel % 7)
    } else {
        // Dense: a small page-0 working set (collisions are the point —
        // read sets must grow and evict).
        sel % 24
    }
}

/// Replays `raw` through both implementations under `reader_cap`,
/// asserting every observable matches after every event. `dense_limit`
/// varies the production constructor (spine pre-sizing must not matter).
fn check_stream(raw: &[RawAccess], reader_cap: usize, dense_limit: u32) {
    let mut naive = NaiveShadow::new(reader_cap);
    let mut paged: ShadowMemory<Tag> = ShadowMemory::with_dense_limit(reader_cap, dense_limit);
    let mut t = 0u64;
    for (i, &(dt, is_write, sel, pc)) in raw.iter().enumerate() {
        t += dt;
        let addr = addr_of(sel);
        let access = Access {
            pc: Pc(u32::from(pc) % 40),
            t,
            tid: Tid::MAIN,
            node: i as Tag,
        };
        let mut expect = Vec::new();
        let mut got = Vec::new();
        if is_write {
            naive.on_write(addr, access, &mut expect);
            paged.on_write(addr, access, &mut |kind, dep| {
                got.push(Dep {
                    kind,
                    head_pc: dep.head.pc,
                    head_t: dep.head.t,
                    head_node: dep.head.node,
                    tail_pc: dep.tail_pc,
                    tail_t: dep.tail_t,
                    addr: dep.addr,
                })
            });
        } else {
            naive.on_read(addr, access, &mut expect);
            if let Some(dep) = paged.on_read(addr, access) {
                got.push(Dep {
                    kind: DepKind::Raw,
                    head_pc: dep.head.pc,
                    head_t: dep.head.t,
                    head_node: dep.head.node,
                    tail_pc: dep.tail_pc,
                    tail_t: dep.tail_t,
                    addr: dep.addr,
                });
            }
        }
        prop_assert_eq!(
            &got,
            &expect,
            "event {} (cap {}, dense_limit {}): addr {} {}",
            i,
            reader_cap,
            dense_limit,
            addr,
            if is_write { "write" } else { "read" }
        );
        prop_assert_eq!(
            paged.dropped_readers,
            naive.dropped_readers,
            "dropped_readers diverged at event {}",
            i
        );
    }
    prop_assert_eq!(paged.len(), naive.len(), "occupied-address count");
    if reader_cap <= INLINE_READERS {
        prop_assert_eq!(
            paged.stats().read_set_spills,
            0,
            "caps within the inline capacity must never spill"
        );
    }
}

proptest! {
    /// The paged shadow equals the naive reference event-for-event, under
    /// caps that exercise eviction (1, 2), the inline boundary
    /// (INLINE_READERS) and the heap-spill path (INLINE_READERS + 5).
    #[test]
    fn paged_shadow_matches_naive_reference(
        raw in proptest::collection::vec(
            (0u64..3, any::<bool>(), any::<u16>(), any::<u8>()),
            0..400,
        ),
    ) {
        for cap in [1usize, 2, INLINE_READERS, INLINE_READERS + 5] {
            check_stream(&raw, cap, 0);
        }
    }

    /// Spine pre-sizing (`with_dense_limit`) is invisible to detection:
    /// any dense limit produces the same stream as the reference.
    #[test]
    fn dense_limit_is_observably_irrelevant(
        raw in proptest::collection::vec(
            (0u64..3, any::<bool>(), any::<u16>(), any::<u8>()),
            0..200,
        ),
        dense_limit in 0u32..(3 * PAGE_WORDS as u32),
    ) {
        check_stream(&raw, INLINE_READERS, dense_limit);
    }

    /// Timestamp-tied reads (dt = 0 runs) still evict deterministically:
    /// the lowest-pc victim rule is differentially pinned against the
    /// reference under heavy ties.
    #[test]
    fn tied_timestamps_evict_identically(
        raw in proptest::collection::vec(
            // dt fixed at 0: every access in the stream shares t = 0.
            (0u64..1, any::<bool>(), 0u16..8, any::<u8>()),
            0..150,
        ),
    ) {
        for cap in [1usize, 3] {
            check_stream(&raw, cap, 0);
        }
    }
}
