//! Stress and property tests of the construct pool and the frame-memory
//! tracing decision.

use alchemist_core::{
    profile_module, ConstructKind, ConstructPool, DepKind, NodeRef, ProfileConfig,
};
use alchemist_vm::{compile_source, ExecConfig, Pc};
use proptest::prelude::*;

/// Random push/complete sequences: pool invariants hold regardless of
/// capacity.
///
/// * a reference resolves until (and only until) its slot is reused;
/// * reuse never happens inside a node's retirement window
///   (`now - t_exit < t_exit - t_enter`);
/// * parent references either resolve to the true parent or are detected
///   stale — never misattributed.
#[derive(Debug, Clone)]
enum Action {
    Push { dur: u64, gap: u64 },
    CompleteOldest,
}

fn arb_actions() -> impl Strategy<Value = Vec<Action>> {
    proptest::collection::vec(
        prop_oneof![
            (1u64..50, 0u64..10).prop_map(|(dur, gap)| Action::Push { dur, gap }),
            Just(Action::CompleteOldest),
        ],
        1..120,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn pool_invariants_under_pressure(
        actions in arb_actions(),
        capacity in 1usize..16,
    ) {
        let mut pool = ConstructPool::new(capacity, 8);
        let mut now: u64 = 0;
        // Live instances: (ref, t_enter); completed: (ref, t_enter, t_exit).
        let mut live: Vec<(NodeRef, u64)> = Vec::new();
        let mut completed: Vec<(NodeRef, u64, u64)> = Vec::new();
        for (i, a) in actions.iter().enumerate() {
            match a {
                Action::Push { dur, gap } => {
                    now += gap;
                    let r = pool.push_instance(
                        Pc(i as u32),
                        ConstructKind::Loop,
                        live.last().map(|(r, _)| *r),
                        now,
                    );
                    live.push((r, now));
                    now += dur;
                }
                Action::CompleteOldest => {
                    if let Some((r, t_enter)) = live.pop() {
                        pool.complete_instance(r, now);
                        completed.push((r, t_enter, now));
                        now += 1;
                    }
                }
            }
        }
        // Every live instance still resolves with its original start time.
        for (r, t_enter) in &live {
            let node = pool.resolve(*r);
            prop_assert!(node.is_some(), "live node evicted");
            prop_assert_eq!(node.unwrap().t_enter, *t_enter);
            prop_assert!(node.unwrap().t_exit.is_none());
        }
        // Completed instances either resolve unchanged or were reused, and
        // reuse only after their retirement window.
        for (r, t_enter, t_exit) in &completed {
            match pool.resolve(*r) {
                Some(node) => {
                    prop_assert_eq!(node.t_enter, *t_enter);
                    prop_assert_eq!(node.t_exit, Some(*t_exit));
                }
                None => {
                    // Slot reused: the new occupant must have started no
                    // earlier than the retirement point.
                    let occupant = pool.node(r.id);
                    let window = t_exit - t_enter;
                    prop_assert!(
                        occupant.t_enter >= t_exit + window,
                        "reused at {} inside window [{}, {})",
                        occupant.t_enter,
                        t_exit,
                        t_exit + window
                    );
                }
            }
        }
    }
}

/// Pool pressure can only *lose* dependence information, never invent it,
/// and a pool comfortably above the live-construct count reproduces the
/// unbounded answer exactly. (Per Table I's guarantee, a dropped edge had
/// `Tdep > Tdur` for the retired *instance*; against the construct's mean
/// duration the classification of the surviving minimum may differ, which
/// is why small capacities may under-report — but never over-report.)
#[test]
fn pool_capacity_monotonicity_for_hot_constructs() {
    let w = alchemist_workloads::by_name("gzip-1.3.5").unwrap();
    let module = w.module();
    let exec = w.exec_config(alchemist_workloads::Scale::Tiny);
    let mut per_capacity = Vec::new();
    for capacity in [64usize, 4096, 1_000_000] {
        let cfg = ProfileConfig {
            pool_capacity: capacity,
            ..Default::default()
        };
        let (profile, ..) = profile_module(&module, &exec, cfg).unwrap();
        let flush = module.func_by_name("flush_block").unwrap().1.entry;
        let c = profile.construct(flush).unwrap();
        per_capacity.push((c.violating_count(DepKind::Raw), c.edge_count(DepKind::Raw)));
    }
    // Generous pools agree exactly with the reference answer.
    assert_eq!(
        per_capacity[1], per_capacity[2],
        "a pool above the live-node count must be lossless: {per_capacity:?}"
    );
    // Tiny pools never report MORE than the reference.
    assert!(
        per_capacity[0].0 <= per_capacity[2].0 && per_capacity[0].1 <= per_capacity[2].1,
        "pressure must only lose information: {per_capacity:?}"
    );
}

/// Frame-memory tracing (off by default) demonstrably changes only
/// frame-address dependences: with it on, extra edges appear on stack
/// slots; global-variable edges are identical. This validates the
/// futures-model filtering decision documented in DESIGN.md.
#[test]
fn frame_tracing_adds_only_frame_edges() {
    let src = "
        int g;
        int work(int n) {
            int local = 0;
            int i;
            for (i = 0; i < n; i++) local += i;
            g += local;
            return local;
        }
        int main() { work(5); work(7); return g; }";
    let module = compile_source(src).unwrap();
    let exec = ExecConfig::default();
    let (off, ..) = profile_module(&module, &exec, ProfileConfig::default()).unwrap();
    let cfg_on = ProfileConfig {
        trace_frame_memory: true,
        ..Default::default()
    };
    let (on, ..) = profile_module(&module, &exec, cfg_on).unwrap();

    let globals_top = module.global_words;
    let work = module.func_by_name("work").unwrap().1.entry;
    let off_work = off.construct(work).unwrap();
    let on_work = on.construct(work).unwrap();

    // Every global-address edge in the filtered profile appears identically
    // in the full profile.
    for (key, stat) in &off_work.edges {
        let full = on_work.edges.get(key).expect("global edge must persist");
        assert_eq!(full.min_tdep, stat.min_tdep);
        assert!(stat.sample_addr < globals_top);
    }
    // The full profile has strictly more edges, all of them on frame
    // addresses (the cross-call WAW/WAR on recycled stack slots).
    assert!(on_work.edges.len() > off_work.edges.len());
    for (key, stat) in &on_work.edges {
        if !off_work.edges.contains_key(key) {
            assert!(
                stat.sample_addr >= globals_top,
                "unexpected new global edge {key:?}"
            );
        }
    }
}
