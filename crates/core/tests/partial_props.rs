//! Property tests for the [`PartialProfile`] merge algebra.
//!
//! The `.alcp` artifact story rests on one guarantee: merging partial
//! profiles is **order-independent** — commutative, associative, and with
//! the empty partial as identity — so a pile of per-run artifacts folds to
//! the same sealed profile no matter how the merges are ordered or
//! grouped. These tests pin that algebra over *arbitrary* synthetic
//! profiles (random construct sets, colliding edge keys with conflicting
//! sample metadata, nesting counts, every summed counter including the
//! shadow-layout telemetry that `PartialEq` deliberately ignores).
//! `tests/profile_artifact.rs` complements this with profiles produced by
//! real executions split at arbitrary run boundaries.

use alchemist_core::{
    ConstructId, ConstructKind, DepKind, DepProfile, EdgeKey, EdgeStat, PartialProfile,
};
use alchemist_vm::Pc;
use proptest::prelude::*;

/// `(kind tag, head, tail, min_tdep, count, cross_count, addr, tid0, tid1)`
type EdgeTuple = (u8, u32, u32, u64, u64, u64, u32, u32, u32);
/// `(head, ttotal, inst, edges, nested-in counts)`
type ConstructTuple = (u32, u64, u64, Vec<EdgeTuple>, Vec<(u32, u64)>);

/// A construct's kind is a function of its head pc in real profiles (one
/// static site, one kind); deriving it here keeps the generated profiles
/// structurally consistent.
fn kind_of(head: u32) -> ConstructKind {
    match head % 3 {
        0 => ConstructKind::Method,
        1 => ConstructKind::Loop,
        _ => ConstructKind::Branch,
    }
}

fn dep_kind(tag: u8) -> DepKind {
    match tag % 3 {
        0 => DepKind::Raw,
        1 => DepKind::War,
        _ => DepKind::Waw,
    }
}

fn build(constructs: Vec<ConstructTuple>, counters: [u64; 6]) -> PartialProfile {
    let mut p = DepProfile::new();
    let [steps, dropped, intra, cross, pages, spills] = counters;
    p.total_steps = steps;
    p.dropped_readers = dropped;
    p.intra_thread_deps = intra;
    p.cross_thread_deps = cross;
    p.shadow_stats.pages_allocated = pages;
    p.shadow_stats.read_set_spills = spills;
    for (head, ttotal, inst, edges, nested) in constructs {
        let id = ConstructId::new(Pc(head), kind_of(head));
        p.merge_duration(id, ttotal, inst);
        for (k, eh, et, tdep, count, cross_count, addr, t0, t1) in edges {
            p.merge_edge(
                id,
                EdgeKey {
                    kind: dep_kind(k),
                    head: Pc(eh),
                    tail: Pc(et),
                },
                EdgeStat {
                    min_tdep: tdep,
                    count,
                    cross_count,
                    sample_addr: addr,
                    sample_tids: (t0, t1),
                },
            );
        }
        for (anc, n) in nested {
            p.merge_nested(id, Pc(anc), n);
        }
    }
    PartialProfile::from(p)
}

/// Small pc/kind domains force edge-key collisions across generated
/// profiles, so the min-over-lexicographic-triple tie-breaking is
/// exercised constantly rather than by luck. (The vendored proptest shim
/// caps tuples at arity six, hence the nested pair flattened by map.)
fn arb_partial() -> impl Strategy<Value = PartialProfile> {
    let edge = (
        (0u8..3, 0u32..6, 0u32..6, 1u64..60),
        (1u64..6, 0u64..3, 0u32..12, 0u32..2, 0u32..2),
    )
        .prop_map(
            |((k, eh, et, tdep), (count, cross, addr, t0, t1))| -> EdgeTuple {
                (k, eh, et, tdep, count, cross, addr, t0, t1)
            },
        );
    let construct = (
        0u32..8,
        1u64..100,
        1u64..4,
        proptest::collection::vec(edge, 0..5),
        proptest::collection::vec((0u32..8, 1u64..5), 0..3),
    );
    let counters = (0u64..16, 0u64..16, 0u64..16, 0u64..16, 0u64..16, 0u64..16)
        .prop_map(|(a, b, c, d, e, f)| [a, b, c, d, e, f]);
    (proptest::collection::vec(construct, 0..5), counters)
        .prop_map(|(cs, counters)| build(cs, counters))
}

/// Equality that also covers the shadow-layout telemetry, which the
/// derived `PartialEq` on [`DepProfile`] deliberately excludes.
fn assert_fully_equal(a: DepProfile, b: DepProfile) {
    prop_assert_eq!(&a.shadow_stats, &b.shadow_stats);
    prop_assert_eq!(a, b);
}

proptest! {
    #[test]
    fn merge_is_commutative(a in arb_partial(), b in arb_partial()) {
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_fully_equal(ab.seal(), ba.seal());
    }

    #[test]
    fn merge_is_associative(
        a in arb_partial(),
        b in arb_partial(),
        c in arb_partial(),
    ) {
        // (a · b) · c
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        // a · (b · c)
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_fully_equal(left.seal(), right.seal());
    }

    #[test]
    fn empty_partial_is_the_identity(a in arb_partial()) {
        let mut left = PartialProfile::new();
        left.merge(&a);
        let mut right = a.clone();
        right.merge(&PartialProfile::new());
        assert_fully_equal(left.seal(), a.clone().seal());
        assert_fully_equal(right.seal(), a.seal());
    }
}
