//! Pins the zero-allocation steady state of the dependence-detection hot
//! path with a counting global allocator: once pages are faulted and the
//! profile's edge maps are warm, `ShadowMemory::on_read`,
//! `ShadowMemory::on_write` and `DepProfile::record_dependence` must not
//! touch the heap at all — the property the paged layout, the inline read
//! sets and the callback write API exist to provide.
//!
//! The whole check lives in **one** `#[test]` so no sibling test thread
//! can allocate through the shared global allocator mid-measurement.

use alchemist_core::shadow::{Access, ShadowMemory};
use alchemist_core::{ConstructKind, ConstructPool, DepKind, DepProfile, INLINE_READERS};
use alchemist_obs::{Counter, Hist, Metrics, ShardMetrics, Stage};
use alchemist_vm::{Pc, Tid, Time};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// `System`, with every allocation (and reallocation) counted.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// Runs one steady-state pass up to five times and returns the fewest
/// allocations observed in a single pass. The counter is process-global,
/// so the libtest harness thread can occasionally charge a stray
/// allocation to the measured window; a real hot-path allocation repeats
/// on every pass, harness noise does not.
fn min_allocs_over_attempts<F: FnMut()>(mut f: F) -> u64 {
    let mut best = u64::MAX;
    for _ in 0..5 {
        let before = allocs();
        f();
        best = best.min(allocs() - before);
        if best == 0 {
            break;
        }
    }
    best
}

fn acc(pc: u32, t: Time) -> Access<u32> {
    Access {
        pc: Pc(pc),
        t,
        tid: Tid::MAIN,
        node: 0,
    }
}

#[test]
fn steady_state_hot_path_performs_no_heap_allocation() {
    // --- Shadow memory: reads and writes over a warmed page. -------------
    let mut shadow: ShadowMemory<u32> = ShadowMemory::new(INLINE_READERS);
    // Warm-up: fault the page and push every cell through a full
    // read-set/eviction/clear cycle, staying within the inline capacity.
    let mut emitted = 0u64;
    for i in 0..4 * 64u64 {
        let addr = (i % 64) as u32;
        if i % 4 == 3 {
            shadow.on_write(addr, acc(1, i), &mut |_, _| emitted += 1);
        } else {
            shadow.on_read(addr, acc(10 + (i % 3) as u32, i));
        }
    }

    let shadow_allocs = min_allocs_over_attempts(|| {
        for i in 0..100_000u64 {
            let addr = (i % 64) as u32;
            let t = 1_000 + i;
            if i % 4 == 3 {
                shadow.on_write(addr, acc((i % 7) as u32, t), &mut |_, _| emitted += 1);
            } else {
                shadow.on_read(addr, acc(10 + (i % INLINE_READERS as u64) as u32, t));
            }
        }
    });
    assert_eq!(
        shadow_allocs, 0,
        "steady-state on_read/on_write allocated {shadow_allocs} times \
         over 100k events (emitted {emitted} deps)"
    );
    assert!(emitted > 0, "the measured loop really detected dependences");
    assert_eq!(shadow.stats().read_set_spills, 0);

    // --- record_dependence: warm edge maps, repeated updates. ------------
    let mut pool = ConstructPool::new(1024, 64);
    let method = pool.push_instance(Pc(0), ConstructKind::Method, None, 0);
    let lp = pool.push_instance(Pc(10), ConstructKind::Loop, Some(method), 1);
    pool.complete_instance(lp, 50);
    pool.complete_instance(method, 60);

    let mut profile = DepProfile::new();
    // Warm-up: create every static edge the loop below will touch.
    for e in 0..16u32 {
        for kind in [DepKind::Raw, DepKind::War, DepKind::Waw] {
            profile.record_dependence(
                &pool,
                kind,
                Pc(100 + e),
                lp,
                5,
                Pc(500 + e),
                45,
                e,
                Tid::MAIN,
                Tid::MAIN,
            );
        }
    }

    let record_allocs = min_allocs_over_attempts(|| {
        for i in 0..100_000u64 {
            let e = (i % 16) as u32;
            let kind = match i % 3 {
                0 => DepKind::Raw,
                1 => DepKind::War,
                _ => DepKind::Waw,
            };
            profile.record_dependence(
                &pool,
                kind,
                Pc(100 + e),
                lp,
                5 + (i % 40),
                Pc(500 + e),
                45,
                e,
                Tid::MAIN,
                Tid::MAIN,
            );
        }
    });
    assert_eq!(
        record_allocs, 0,
        "steady-state record_dependence allocated {record_allocs} times over 100k updates"
    );

    // --- Metrics: every hot-path recording operation is allocation-free. -
    // Counters, stage spans and histograms are fixed atomic arrays; only
    // the per-shard and per-thread merges may allocate, and those run once
    // at join time — so pre-warm them, then hammer the hot operations.
    let metrics = Metrics::new();
    metrics.record_shard(ShardMetrics {
        shard: 0,
        ..ShardMetrics::default()
    });
    metrics.record_thread_quanta(0, 1);
    let metrics_allocs = min_allocs_over_attempts(|| {
        for i in 0..100_000u64 {
            metrics.incr(Counter::ProfileEvents);
            metrics.add(Counter::ProfileDeps, i % 3);
            metrics.observe_ns(Hist::DecodeChunkNs, i * 37);
            metrics.record_span(Stage::Decode, i % 1000);
            if i % 1000 == 999 {
                // Warm shard/tid rows merge in place.
                metrics.record_shard(ShardMetrics {
                    shard: 0,
                    events: i,
                    ..ShardMetrics::default()
                });
                metrics.record_thread_quanta(0, 1);
            }
        }
    });
    assert_eq!(
        metrics_allocs, 0,
        "steady-state metrics recording allocated {metrics_allocs} times over 100k operations"
    );
    assert!(metrics.get(Counter::ProfileEvents) >= 100_000);

    // --- Sanity: the counter itself works (a fresh page must count). -----
    let before = allocs();
    shadow.on_read(7 * alchemist_core::PAGE_WORDS as u32, acc(1, 1)); // new page
    assert!(
        allocs() > before,
        "faulting an untouched page must allocate (counter is live)"
    );
}
