//! Profile reports: the paper's user-facing output.
//!
//! * [`ProfileReport::render`] prints the ranked construct list with RAW
//!   edges, in the style of the paper's Fig. 2;
//! * [`ProfileReport::render_war_waw`] prints the WAR/WAW profile (Fig. 3);
//! * [`ProfileReport::fig6_series`] produces the normalized
//!   (size, violating-RAW) points plotted in Fig. 6;
//! * [`ProfileReport::remove_with_nested`] implements the paper's iterative
//!   refinement: after deciding to parallelize construct `C`, remove `C`
//!   and every construct that has exactly one nested instance per instance
//!   of `C` (those are parallelized along with `C`), then re-rank — this is
//!   how Fig. 6(b) is derived from Fig. 6(a).

use crate::construct::{ConstructKind, DepKind};
use crate::fxhash::FxHashMap;
use crate::profile::DepProfile;
use crate::shadow::{ShadowStats, INLINE_READERS};
use alchemist_vm::{Module, Pc};
use std::fmt::Write as _;

/// One dependence edge, resolved to source lines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdgeReport {
    /// Dependence kind.
    pub kind: DepKind,
    /// Head (earlier) instruction.
    pub head_pc: Pc,
    /// Tail (later) instruction.
    pub tail_pc: Pc,
    /// Source line of the head.
    pub head_line: u32,
    /// Source line of the tail.
    pub tail_line: u32,
    /// Minimum observed dependence distance.
    pub min_tdep: u64,
    /// Times the edge was exercised.
    pub count: u64,
    /// `true` when `min_tdep <= Tdur` (hinders parallelization).
    pub violating: bool,
    /// The conflicting address (at the minimum-distance exercise).
    pub var_addr: u32,
    /// Name of the global variable containing [`EdgeReport::var_addr`], if
    /// it is a global (the paper reports conflicts per variable, e.g.
    /// "conflicts on `ivec`").
    pub var: Option<String>,
    /// Exercises whose head and tail ran on different program threads.
    /// Such exercises are already parallel in the source; an edge with
    /// `cross_count == count` never serializes anything.
    pub cross_count: u64,
}

/// One construct's resolved profile.
#[derive(Debug, Clone, PartialEq)]
pub struct ConstructReport {
    /// Static head pc.
    pub head: Pc,
    /// Construct kind.
    pub kind: ConstructKind,
    /// Human-readable label (`Method flush_block`, `Loop (main, 14)`).
    pub label: String,
    /// Source line of the head.
    pub line: u32,
    /// Total instructions across instances.
    pub ttotal: u64,
    /// Completed instances.
    pub inst: u64,
    /// Mean instance duration.
    pub tdur_mean: u64,
    /// All edges, RAW first, then WAR, then WAW; violating first within a
    /// kind, then by ascending distance.
    pub edges: Vec<EdgeReport>,
    /// Distinct violating static RAW edges.
    pub violating_raw: usize,
    /// Distinct violating static WAR edges.
    pub violating_war: usize,
    /// Distinct violating static WAW edges.
    pub violating_waw: usize,
    /// `ttotal` normalized to the run's total instructions.
    pub norm_size: f64,
    /// `violating_raw` normalized to the run's total violating RAW edges.
    pub norm_violations: f64,
    /// Instances nested within other constructs (ancestor head -> count).
    pub nested_in: FxHashMap<Pc, u64>,
}

impl ConstructReport {
    /// Edges of one kind.
    pub fn edges_of(&self, kind: DepKind) -> impl Iterator<Item = &EdgeReport> {
        self.edges.iter().filter(move |e| e.kind == kind)
    }

    /// Whether every RAW distance exceeds the duration — the paper's
    /// headline criterion for a parallelization candidate.
    pub fn is_candidate(&self) -> bool {
        self.violating_raw == 0
    }
}

/// A point of the Fig. 6 scatter data.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig6Point {
    /// Construct label.
    pub label: String,
    /// Rank (1-based, by size).
    pub rank: usize,
    /// Normalized instruction count.
    pub norm_size: f64,
    /// Normalized violating static RAW count.
    pub norm_violations: f64,
    /// Raw violating static RAW count.
    pub violating_raw: usize,
}

/// The whole-run report: constructs ranked by total instructions.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileReport {
    constructs: Vec<ConstructReport>,
    /// Total instructions of the profiled run.
    pub total_steps: u64,
    /// Total distinct violating static RAW edges across constructs.
    pub total_violating_raw: usize,
    /// Reads the profiler's shadow memory dropped at the per-address reader
    /// cap; non-zero means the WAR edge set may be incomplete.
    pub dropped_readers: u64,
    /// Shadow-memory layout telemetry from the profiled run: pages faulted
    /// in and read-set spills past the inline capacity (the PR-3 cap audit
    /// extended to the paged, allocation-free layout).
    pub shadow_stats: ShadowStats,
    /// Dependences whose head and tail ran on the same program thread.
    pub intra_thread_deps: u64,
    /// Dependences whose head and tail ran on different program threads
    /// (zero for single-threaded programs).
    pub cross_thread_deps: u64,
    /// Memory events per address shard when the profile came from a
    /// sharded replay (empty for sequential/live runs). Drives the render
    /// imbalance note.
    pub shard_events: Vec<u64>,
    /// Caller-supplied caveats rendered as trailing `note:` lines — e.g.
    /// the CLI's salvage note when a profile came from a `--recover`
    /// replay that dropped corrupt chunks.
    pub notes: Vec<String>,
}

impl ProfileReport {
    /// Builds a report from a finished profile.
    pub fn new(profile: &DepProfile, module: &Module) -> Self {
        let total_violating_raw = profile.total_violating(DepKind::Raw).max(1);
        let total_steps = profile.total_steps.max(1);
        let mut constructs: Vec<ConstructReport> = profile
            .constructs()
            .map(|c| {
                let tdur = c.tdur_mean();
                let mut edges: Vec<EdgeReport> = c
                    .edges
                    .iter()
                    .map(|(k, s)| EdgeReport {
                        kind: k.kind,
                        head_pc: k.head,
                        tail_pc: k.tail,
                        head_line: module.line_at(k.head),
                        tail_line: module.line_at(k.tail),
                        min_tdep: s.min_tdep,
                        count: s.count,
                        violating: s.min_tdep <= tdur,
                        var_addr: s.sample_addr,
                        var: module
                            .globals
                            .iter()
                            .find(|g| {
                                g.offset <= s.sample_addr && s.sample_addr < g.offset + g.words
                            })
                            .map(|g| g.name.clone()),
                        cross_count: s.cross_count,
                    })
                    .collect();
                edges.sort_by_key(|e| (e.kind, !e.violating, e.min_tdep, e.head_pc, e.tail_pc));
                ConstructReport {
                    head: c.id.head,
                    kind: c.id.kind,
                    label: c.id.label(module),
                    line: module.line_at(c.id.head),
                    ttotal: c.ttotal,
                    inst: c.inst,
                    tdur_mean: tdur,
                    violating_raw: c.violating_count(DepKind::Raw),
                    violating_war: c.violating_count(DepKind::War),
                    violating_waw: c.violating_count(DepKind::Waw),
                    norm_size: c.ttotal as f64 / total_steps as f64,
                    norm_violations: c.violating_count(DepKind::Raw) as f64
                        / total_violating_raw as f64,
                    nested_in: c.nested_in.clone(),
                    edges,
                }
            })
            .collect();
        constructs.sort_by(|a, b| b.ttotal.cmp(&a.ttotal).then(a.head.cmp(&b.head)));
        ProfileReport {
            constructs,
            total_steps: profile.total_steps,
            total_violating_raw: profile.total_violating(DepKind::Raw),
            dropped_readers: profile.dropped_readers,
            shadow_stats: profile.shadow_stats,
            intra_thread_deps: profile.intra_thread_deps,
            cross_thread_deps: profile.cross_thread_deps,
            shard_events: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a caveat rendered as a trailing `note:` line. Used for
    /// facts the profile cannot see itself, like a salvaged replay having
    /// dropped corrupt chunks (an incomplete profile must never print as
    /// silently complete).
    pub fn with_note(mut self, note: impl Into<String>) -> Self {
        self.notes.push(note.into());
        self
    }

    /// Attaches per-shard memory-event counts from a sharded replay, so
    /// [`render`](ProfileReport::render) can flag a lopsided `addr % jobs`
    /// partition.
    pub fn with_shard_events(mut self, shard_events: Vec<u64>) -> Self {
        self.shard_events = shard_events;
        self
    }

    /// `max/min` of the per-shard memory-event counts, with the min clamped
    /// to 1 so an empty shard yields a large-but-finite ratio. `None` when
    /// the profile did not come from a sharded replay (fewer than 2 shards).
    pub fn shard_imbalance(&self) -> Option<f64> {
        if self.shard_events.len() < 2 {
            return None;
        }
        let max = *self.shard_events.iter().max().unwrap();
        let min = *self.shard_events.iter().min().unwrap();
        Some(max as f64 / min.max(1) as f64)
    }

    /// Constructs ranked by total instructions, largest first.
    pub fn ranked(&self) -> &[ConstructReport] {
        &self.constructs
    }

    /// The `n` largest constructs.
    pub fn top(&self, n: usize) -> &[ConstructReport] {
        &self.constructs[..n.min(self.constructs.len())]
    }

    /// Finds a construct whose label contains `needle`.
    pub fn find(&self, needle: &str) -> Option<&ConstructReport> {
        self.constructs.iter().find(|c| c.label.contains(needle))
    }

    /// Finds the construct headed at `pc`.
    pub fn by_head(&self, pc: Pc) -> Option<&ConstructReport> {
        self.constructs.iter().find(|c| c.head == pc)
    }

    /// The paper's refinement step: remove construct `head` plus every
    /// construct all of whose instances sit inside `head` with exactly one
    /// instance per `head` instance (they get parallelized "for free"),
    /// then re-rank and re-normalize. Returns the reduced report.
    pub fn remove_with_nested(&self, head: Pc) -> ProfileReport {
        let target_inst = self.by_head(head).map(|c| c.inst).unwrap_or(0);
        let keep: Vec<ConstructReport> = self
            .constructs
            .iter()
            .filter(|c| {
                if c.head == head {
                    return false;
                }
                let inside = c.nested_in.get(&head).copied().unwrap_or(0);
                // Exactly one instance per instance of the removed
                // construct, and no instances outside it.
                !(inside == c.inst && c.inst == target_inst)
            })
            .cloned()
            .collect();
        let total_violating_raw: usize = keep.iter().map(|c| c.violating_raw).sum();
        let mut report = ProfileReport {
            constructs: keep,
            total_steps: self.total_steps,
            total_violating_raw,
            dropped_readers: self.dropped_readers,
            shadow_stats: self.shadow_stats,
            intra_thread_deps: self.intra_thread_deps,
            cross_thread_deps: self.cross_thread_deps,
            shard_events: self.shard_events.clone(),
            notes: self.notes.clone(),
        };
        let denom = total_violating_raw.max(1) as f64;
        for c in &mut report.constructs {
            c.norm_violations = c.violating_raw as f64 / denom;
        }
        report
    }

    /// Normalized (size, violating-RAW) series for the `n` largest
    /// constructs — the data behind Fig. 6.
    pub fn fig6_series(&self, n: usize) -> Vec<Fig6Point> {
        self.top(n)
            .iter()
            .enumerate()
            .map(|(i, c)| Fig6Point {
                label: c.label.clone(),
                rank: i + 1,
                norm_size: c.norm_size,
                norm_violations: c.norm_violations,
                violating_raw: c.violating_raw,
            })
            .collect()
    }

    /// Renders the ranked RAW profile in the paper's Fig. 2 style.
    pub fn render(&self, top_n: usize) -> String {
        let mut out = String::new();
        for (i, c) in self.top(top_n).iter().enumerate() {
            let _ = writeln!(
                out,
                "{:>2}. {:<28} Tdur={:<12} inst={}",
                i + 1,
                c.label,
                c.ttotal,
                c.inst
            );
            for e in c.edges_of(DepKind::Raw) {
                let var = e.var.as_deref().unwrap_or("?");
                let _ = writeln!(
                    out,
                    "      RAW: line {:>4} -> line {:<4} ({var}) Tdep={:<10} x{:<6}{}{}",
                    e.head_line,
                    e.tail_line,
                    e.min_tdep,
                    e.count,
                    if e.violating { "  [VIOLATING]" } else { "" },
                    if e.cross_count > 0 {
                        format!("  [cross-thread x{}]", e.cross_count)
                    } else {
                        String::new()
                    }
                );
            }
        }
        if self.dropped_readers > 0 {
            let _ = writeln!(
                out,
                "note: {} read(s) dropped at the per-address reader cap; \
                 WAR edges may be undercounted",
                self.dropped_readers
            );
        }
        if self.cross_thread_deps > 0 {
            let _ = writeln!(
                out,
                "cross-thread: {} of {} dependences crossed program threads \
                 (already parallel in the source; they never serialize the \
                 what-if schedule)",
                self.cross_thread_deps,
                self.cross_thread_deps + self.intra_thread_deps
            );
        }
        if self.shadow_stats.read_set_spills > 0 {
            let _ = writeln!(
                out,
                "note: {} read-set spill(s) past the inline capacity of \
                 {INLINE_READERS}; results are exact but those cells left \
                 the allocation-free inline path",
                self.shadow_stats.read_set_spills
            );
        }
        if let Some(ratio) = self.shard_imbalance() {
            if ratio > 2.0 {
                let _ = writeln!(out, "note: shard imbalance max/min = {ratio:.1}");
            }
        }
        for note in &self.notes {
            let _ = writeln!(out, "note: {note}");
        }
        out
    }

    /// Renders the WAR/WAW profile in the paper's Fig. 3 style for one
    /// construct.
    pub fn render_war_waw(&self, head: Pc) -> String {
        let mut out = String::new();
        let Some(c) = self.by_head(head) else {
            return out;
        };
        let _ = writeln!(out, "{:<28} Tdur={:<12} inst={}", c.label, c.ttotal, c.inst);
        for kind in [DepKind::Waw, DepKind::War] {
            for e in c.edges_of(kind) {
                let var = e.var.as_deref().unwrap_or("?");
                let _ = writeln!(
                    out,
                    "      {}: line {:>4} -> line {:<4} ({var}) Tdep={:<10} x{:<6}{}{}",
                    kind,
                    e.head_line,
                    e.tail_line,
                    e.min_tdep,
                    e.count,
                    if e.violating { "  [VIOLATING]" } else { "" },
                    if e.cross_count > 0 {
                        format!("  [cross-thread x{}]", e.cross_count)
                    } else {
                        String::new()
                    }
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiler::{AlchemistProfiler, ProfileConfig};
    use alchemist_vm::{compile_source, run, ExecConfig};

    fn report_for(src: &str) -> ProfileReport {
        let module = compile_source(src).unwrap();
        let mut prof = AlchemistProfiler::new(&module, ProfileConfig::default());
        let outcome = run(&module, &ExecConfig::default(), &mut prof).unwrap();
        let profile = prof.into_profile(outcome.steps);
        ProfileReport::new(&profile, &module)
    }

    const GZIP_MINI: &str = "
        int buf[8];
        int count;
        int out[64];
        int outcnt;
        void flush_block() {
            int i;
            for (i = 0; i < count; i++) out[outcnt++] = buf[i] * 3;
            count = 0;
        }
        int main() {
            int j;
            for (j = 0; j < 40; j++) {
                if (count == 8) flush_block();
                buf[count++] = j;
            }
            flush_block();
            return outcnt;
        }";

    #[test]
    fn main_ranks_first_by_size() {
        let r = report_for(GZIP_MINI);
        assert_eq!(r.ranked()[0].label, "Method main");
        assert!(r.ranked()[0].norm_size > 0.99);
        assert_eq!(r.ranked()[0].inst, 1);
    }

    #[test]
    fn ranking_is_monotone_in_ttotal() {
        let r = report_for(GZIP_MINI);
        let sizes: Vec<u64> = r.ranked().iter().map(|c| c.ttotal).collect();
        let mut sorted = sizes.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        assert_eq!(sizes, sorted);
    }

    #[test]
    fn flush_block_has_cross_call_dependences() {
        let r = report_for(GZIP_MINI);
        let fb = r.find("Method flush_block").expect("flush_block profiled");
        assert_eq!(fb.inst, 5, "four in-loop flushes plus the final one");
        assert!(
            fb.edges_of(DepKind::Raw).count() > 0,
            "outcnt/count flow across calls"
        );
        // The outcnt self-dependence (outcnt++ to outcnt++) appears.
        assert!(fb.edges_of(DepKind::Waw).count() > 0);
    }

    #[test]
    fn fig6_series_is_normalized() {
        let r = report_for(GZIP_MINI);
        let pts = r.fig6_series(5);
        assert!(!pts.is_empty());
        for p in &pts {
            assert!((0.0..=1.0).contains(&p.norm_size), "{p:?}");
            assert!((0.0..=1.0).contains(&p.norm_violations), "{p:?}");
        }
        assert_eq!(pts[0].rank, 1);
    }

    #[test]
    fn render_contains_tdur_and_edges() {
        let r = report_for(GZIP_MINI);
        let text = r.render(10);
        assert!(text.contains("Method main"), "{text}");
        assert!(text.contains("Tdur="));
        assert!(text.contains("RAW: line"));
    }

    #[test]
    fn render_notes_capped_read_sets() {
        let src = "int g; int a; int b; int c;
             int main() { g = 1; a = g; b = g; c = g; g = 2; return g; }";
        let module = compile_source(src).unwrap();
        let cfg = ProfileConfig {
            reader_cap: 1,
            ..Default::default()
        };
        let mut prof = AlchemistProfiler::new(&module, cfg);
        let outcome = run(&module, &ExecConfig::default(), &mut prof).unwrap();
        let capped = ProfileReport::new(&prof.into_profile(outcome.steps), &module);
        assert!(capped.dropped_readers > 0);
        assert!(
            capped
                .render(10)
                .contains("dropped at the per-address reader cap"),
            "{}",
            capped.render(10)
        );
        let clean = report_for(src);
        assert_eq!(clean.dropped_readers, 0);
        assert!(!clean.render(10).contains("dropped"));
    }

    #[test]
    fn render_notes_shard_imbalance_only_past_2x() {
        let r = report_for(GZIP_MINI);
        assert_eq!(r.shard_imbalance(), None, "sequential profile: no note");
        assert!(!r.render(5).contains("shard imbalance"));

        let balanced = r.clone().with_shard_events(vec![100, 120, 90]);
        assert!(!balanced.render(5).contains("shard imbalance"));

        let lopsided = r.clone().with_shard_events(vec![300, 100, 90]);
        assert!(
            lopsided
                .render(5)
                .contains("note: shard imbalance max/min = 3.3"),
            "{}",
            lopsided.render(5)
        );

        // An empty shard stays finite (min clamps to 1)...
        let empty_shard = r.clone().with_shard_events(vec![40, 0]);
        assert_eq!(empty_shard.shard_imbalance(), Some(40.0));
        // ...and the note survives refinement.
        let main_head = lopsided.find("Method main").unwrap().head;
        assert!(lopsided
            .remove_with_nested(main_head)
            .render(5)
            .contains("shard imbalance"));
    }

    #[test]
    fn with_note_renders_trailing_note_lines_and_survives_refinement() {
        let r = report_for(GZIP_MINI);
        assert!(!r.render(5).contains("salvaged replay"));
        let salvaged = r.with_note("salvaged replay: 2 of 9 chunk(s) skipped");
        let text = salvaged.render(5);
        assert!(
            text.contains("note: salvaged replay: 2 of 9 chunk(s) skipped"),
            "{text}"
        );
        let main_head = salvaged.find("Method main").unwrap().head;
        assert!(salvaged
            .remove_with_nested(main_head)
            .render(5)
            .contains("salvaged replay"));
    }

    #[test]
    fn render_war_waw_lists_waw_edges() {
        let r = report_for(GZIP_MINI);
        let fb = r.find("flush_block").unwrap();
        let text = r.render_war_waw(fb.head);
        assert!(text.contains("WAW: line"), "{text}");
    }

    #[test]
    fn remove_with_nested_drops_target() {
        let r = report_for(GZIP_MINI);
        let main_head = r.find("Method main").unwrap().head;
        let reduced = r.remove_with_nested(main_head);
        assert!(reduced.find("Method main").is_none());
        // The top-level `for` loop has exactly one instance... no: it has
        // 41 instances (iterations). It must survive.
        assert!(reduced
            .ranked()
            .iter()
            .any(|c| c.kind == ConstructKind::Loop));
    }

    #[test]
    fn remove_with_nested_drops_single_instance_children() {
        // g runs once inside main: removing main removes g as well.
        let r = report_for(
            "int x;
             void g() { x = 1; }
             int main() { g(); return x; }",
        );
        let main_head = r.find("Method main").unwrap().head;
        let reduced = r.remove_with_nested(main_head);
        assert!(
            reduced.find("Method g").is_none(),
            "single-instance nested construct removed with its parent"
        );
    }

    #[test]
    fn removal_renormalizes_violations() {
        let r = report_for(GZIP_MINI);
        let main_head = r.find("Method main").unwrap().head;
        let reduced = r.remove_with_nested(main_head);
        let sum: f64 = reduced.ranked().iter().map(|c| c.norm_violations).sum();
        if reduced.total_violating_raw > 0 {
            assert!((sum - 1.0).abs() < 1e-9, "normalized violations sum to 1");
        }
    }

    #[test]
    fn candidate_flag_requires_zero_violating_raw() {
        let r = report_for(
            "int a[16];
             int main() { int i; for (i = 0; i < 16; i++) a[i] = i; return a[0]; }",
        );
        let lp = r
            .ranked()
            .iter()
            .find(|c| c.kind == ConstructKind::Loop)
            .unwrap();
        assert!(lp.is_candidate(), "independent loop is a candidate: {lp:?}");
    }
}
