//! Construct identities.
//!
//! A *construct* in the paper's sense is an aggregate program region that
//! could be spawned as a future: a procedure, a loop (each iteration being
//! one instance), or a conditional. Statically, a construct is identified by
//! the program counter of its *head* — the function entry or the predicate
//! (conditional branch) that starts it.

use alchemist_vm::{Module, Pc, PredKind};
use std::fmt;

/// What kind of region a construct is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ConstructKind {
    /// A procedure (one instance per call).
    Method,
    /// A loop (one instance per iteration, per the paper's rule 4).
    Loop,
    /// A conditional (`if`, `&&`, ternary).
    Branch,
}

impl fmt::Display for ConstructKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConstructKind::Method => write!(f, "Method"),
            ConstructKind::Loop => write!(f, "Loop"),
            ConstructKind::Branch => write!(f, "Branch"),
        }
    }
}

/// A static construct: its head pc and kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConstructId {
    /// Head instruction: function entry or predicate pc.
    pub head: Pc,
    /// Region kind.
    pub kind: ConstructKind,
}

impl ConstructId {
    /// Creates a construct id.
    pub fn new(head: Pc, kind: ConstructKind) -> Self {
        ConstructId { head, kind }
    }

    /// A human-readable label in the paper's style, e.g.
    /// `Method flush_block` or `Loop (main, 14)`.
    pub fn label(&self, module: &Module) -> String {
        match self.kind {
            ConstructKind::Method => {
                let func = module
                    .func_at(self.head)
                    .map(|f| module.funcs[f.0 as usize].name.clone())
                    .unwrap_or_else(|| "?".to_owned());
                format!("Method {func}")
            }
            kind => {
                let func = module
                    .func_at(self.head)
                    .map(|f| module.funcs[f.0 as usize].name.clone())
                    .unwrap_or_else(|| "?".to_owned());
                format!("{kind} ({func}, {})", module.line_at(self.head))
            }
        }
    }

    /// The construct kind for a predicate classification.
    pub fn kind_of_pred(kind: PredKind) -> ConstructKind {
        match kind {
            PredKind::Loop => ConstructKind::Loop,
            PredKind::Branch => ConstructKind::Branch,
        }
    }
}

/// The three dependence kinds the profiler records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DepKind {
    /// Read-after-write (true/flow dependence).
    Raw,
    /// Write-after-read (anti dependence).
    War,
    /// Write-after-write (output dependence).
    Waw,
}

impl fmt::Display for DepKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DepKind::Raw => write!(f, "RAW"),
            DepKind::War => write!(f, "WAR"),
            DepKind::Waw => write!(f, "WAW"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alchemist_vm::compile_source;

    #[test]
    fn kinds_display() {
        assert_eq!(ConstructKind::Method.to_string(), "Method");
        assert_eq!(ConstructKind::Loop.to_string(), "Loop");
        assert_eq!(DepKind::Raw.to_string(), "RAW");
        assert_eq!(DepKind::War.to_string(), "WAR");
        assert_eq!(DepKind::Waw.to_string(), "WAW");
    }

    #[test]
    fn method_label_uses_function_name() {
        let m = compile_source("int main() { return 0; }").unwrap();
        let id = ConstructId::new(m.funcs[0].entry, ConstructKind::Method);
        assert_eq!(id.label(&m), "Method main");
    }

    #[test]
    fn loop_label_includes_function_and_line() {
        let m =
            compile_source("int main() {\n int i;\n for (i = 0; i < 3; i++) { }\n return 0;\n}")
                .unwrap();
        // Find the loop predicate.
        let pred = (0..m.ops.len() as u32)
            .map(Pc)
            .find(|&pc| m.analysis.predicate_kind(pc) == Some(PredKind::Loop))
            .expect("for loop produces a loop predicate");
        let id = ConstructId::new(pred, ConstructKind::Loop);
        let label = id.label(&m);
        assert!(label.starts_with("Loop (main, "), "{label}");
    }
}
