//! # alchemist-core
//!
//! The Alchemist dependence-distance profiler (CGO 2009), reproduced.
//!
//! Given a mini-C program (see `alchemist-lang`/`alchemist-vm` for the
//! execution substrate that stands in for Valgrind), Alchemist profiles —
//! in a single run and for **every** construct (procedure, loop iteration,
//! conditional) — the RAW, WAR and WAW dependences between the construct
//! and its *continuation*, together with their time-ordered distances
//! `Tdep`. A construct whose duration `Tdur` is smaller than every RAW
//! distance can be spawned as a future and joined before the first
//! conflicting read; WAR/WAW violations pinpoint where privatization is
//! needed.
//!
//! The implementation follows the paper's structure:
//!
//! * [`index`] — the execution-indexing stack and tree (Fig. 4/5),
//! * [`pool`] — the bounded construct pool with lazy retirement (Table I),
//! * [`shadow`] — online dependence detection over shadow memory,
//! * [`profile`] — the per-construct profile and the bottom-up update walk
//!   (Table II),
//! * [`partial`] — mergeable partial profiles (the order-independent
//!   multi-run merge algebra behind `.alcp` artifacts),
//! * [`profiler`] — the event sink gluing the above to the VM,
//! * [`report`] — ranked-candidate reports (Fig. 2/3/6, Tables III/IV),
//! * [`shard`] — address-sharded parallel replay of recorded event streams,
//! * [`oracle`] — a brute-force reference profiler used to validate the
//!   online algorithm in tests.
//!
//! ## Quick start
//!
//! ```
//! use alchemist_core::profile_source;
//!
//! let outcome = profile_source(
//!     "int g;
//!      void work() { g += 1; }
//!      int main() { work(); work(); return g; }",
//!     vec![],
//! ).unwrap();
//! let text = outcome.report().render(10);
//! assert!(text.contains("Method main"));
//! ```

#![warn(missing_docs)]

pub mod aggregate;
pub mod construct;
pub mod fxhash;
pub mod index;
pub mod oracle;
pub mod partial;
pub mod pool;
pub mod profile;
pub mod profiler;
pub mod report;
pub mod runner;
pub mod shadow;
pub mod shard;
pub mod stats;

pub use aggregate::{input_dependent_edges, merge_profiles, profile_many};
pub use construct::{ConstructId, ConstructKind, DepKind};
pub use fxhash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use index::{IndexStack, StackEntry};
pub use partial::PartialProfile;
pub use pool::{ConstructPool, Node, NodeId, NodeRef, PoolStats};
pub use profile::{ConstructProfile, DepProfile, EdgeKey, EdgeStat};
pub use profiler::{AlchemistProfiler, IndexMode, ProfileConfig};
pub use report::{ConstructReport, EdgeReport, Fig6Point, ProfileReport};
pub use runner::{profile_batches, profile_events, profile_module, profile_source, ProfileOutcome};
pub use shadow::{ShadowStats, INLINE_READERS, PAGE_SHIFT, PAGE_WORDS};
pub use shard::{
    merge_shard_profiles, partition_batch, profile_batches_par, profile_batches_par_spec,
    profile_batches_par_with, profile_events_par, run_sharded, run_sharded_batched,
    run_sharded_batched_spec, run_sharded_batched_with, run_sharded_spec, shard_batch_counts,
    shard_batch_counts_spec, shard_event_counts, shard_event_counts_spec, ShardError, ShardFilter,
    ShardSpec, ShardTuning, CANDIDATE_SHIFTS, MAX_SHARD_IMBALANCE, SHARD_CHANNEL_DEPTH,
    SHARD_FLUSH_EVENTS,
};
pub use stats::{constructs_to_csv, edges_to_csv, DistanceHistogram};
