//! Multi-run profile aggregation.
//!
//! The paper's usability claim is built on "gathering and analyzing
//! *profile runs*" (plural): dependence profiles are input-dependent
//! ("as with any profiling technique, the completeness of the dependencies
//! identified by Alchemist is a function of the test inputs"), so a
//! credible parallelization decision merges profiles from several inputs.
//!
//! Aggregation semantics:
//!
//! * construct durations and instance counts accumulate (so `tdur_mean`
//!   becomes the across-run mean);
//! * per-edge `min_tdep` takes the minimum across runs — the most
//!   constraining observation wins, exactly like within one run;
//! * exercise counts and nesting statistics sum;
//! * an edge present in *any* run is present in the union (a construct is
//!   only a candidate if it is clean on **every** input).

use crate::construct::DepKind;
use crate::partial::PartialProfile;
use crate::profile::DepProfile;
use crate::profiler::ProfileConfig;
use crate::runner::{profile_module, ProfileError};
use alchemist_vm::{ExecConfig, Module};

/// Merges `other` into `base` with the union/min semantics above.
///
/// This is the [`PartialProfile`] merge
/// applied directly to sealed profiles; see that module for the
/// order-independence guarantee.
pub fn merge_profiles(base: &mut DepProfile, other: &DepProfile) {
    crate::partial::merge_into(base, other);
}

/// Profiles `module` once per input buffer and returns the aggregated
/// profile (plus per-run profiles for inspection).
///
/// # Errors
///
/// Returns the first run's trap, if any input makes the program fault.
pub fn profile_many(
    module: &Module,
    inputs: &[Vec<i64>],
    config: ProfileConfig,
) -> Result<(DepProfile, Vec<DepProfile>), ProfileError> {
    let mut aggregated = PartialProfile::new();
    let mut runs = Vec::with_capacity(inputs.len());
    for input in inputs {
        let exec_cfg = ExecConfig::with_input(input.clone());
        let (profile, ..) = profile_module(module, &exec_cfg, config.clone())?;
        aggregated.merge(&PartialProfile::from(profile.clone()));
        runs.push(profile);
    }
    Ok((aggregated.seal(), runs))
}

/// Edges of `kind` on `head` that appear in the aggregate but not in every
/// individual run — the input-dependent dependences the paper warns about.
pub fn input_dependent_edges(
    aggregated: &DepProfile,
    runs: &[DepProfile],
    head: alchemist_vm::Pc,
    kind: DepKind,
) -> Vec<crate::profile::EdgeKey> {
    let Some(agg) = aggregated.construct(head) else {
        return Vec::new();
    };
    agg.edges
        .keys()
        .filter(|k| k.kind == kind)
        .filter(|k| {
            !runs.iter().all(|r| {
                r.construct(head)
                    .map(|c| c.edges.contains_key(k))
                    .unwrap_or(false)
            })
        })
        .copied()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use alchemist_vm::compile_source;

    /// The shared conflict only triggers when the input contains a value
    /// above the threshold.
    const INPUT_SENSITIVE: &str = "
        int flag;
        int sink;
        void scan(int i) {
            if (input(i) > 100) flag = i;
        }
        int main() {
            int i;
            int n = input_len();
            for (i = 0; i < n; i++) scan(i);
            sink = flag;
            return sink;
        }";

    #[test]
    fn aggregation_unions_edges_across_inputs() {
        let module = compile_source(INPUT_SENSITIVE).unwrap();
        let benign = vec![1i64, 2, 3, 4];
        let hot = vec![1i64, 200, 3, 200];
        let (agg, runs) = profile_many(&module, &[benign, hot], ProfileConfig::default()).unwrap();
        let scan_head = module.func_by_name("scan").unwrap().1.entry;
        // The benign run never writes flag inside scan -> no WAW there.
        let benign_edges = runs[0]
            .construct(scan_head)
            .map(|c| c.edges.len())
            .unwrap_or(0);
        let hot_edges = runs[1].construct(scan_head).unwrap().edges.len();
        assert!(hot_edges > benign_edges, "{benign_edges} vs {hot_edges}");
        // The aggregate contains the hot run's edges.
        assert_eq!(agg.construct(scan_head).unwrap().edges.len(), hot_edges);
        // And flags them as input-dependent.
        let dependent =
            input_dependent_edges(&agg, &runs, scan_head, crate::construct::DepKind::Waw);
        assert!(
            !dependent.is_empty(),
            "the flag WAW appears in one run only"
        );
    }

    #[test]
    fn aggregation_accumulates_durations() {
        let module = compile_source(
            "int g; int main() { int i; int n = input_len(); \
             for (i = 0; i < n; i++) g += i; return g; }",
        )
        .unwrap();
        let (agg, runs) =
            profile_many(&module, &[vec![0; 4], vec![0; 8]], ProfileConfig::default()).unwrap();
        assert_eq!(agg.total_steps, runs[0].total_steps + runs[1].total_steps);
        let main_head = module.funcs[module.main.0 as usize].entry;
        let agg_main = agg.construct(main_head).unwrap();
        assert_eq!(agg_main.inst, 2, "one instance per run");
        assert_eq!(agg_main.ttotal, agg.total_steps);
    }

    #[test]
    fn merged_min_tdep_takes_the_minimum() {
        let module = compile_source(
            "int g;
             void w() { g = 1; }
             int main() {
                 int i; int n = input_len();
                 w();
                 for (i = 0; i < n; i++) i = i;
                 return g;
             }",
        )
        .unwrap();
        // Short continuation vs long continuation: the RAW distance from
        // w's write to the final read differs; the aggregate keeps the min.
        let (agg, runs) = profile_many(
            &module,
            &[vec![0; 2], vec![0; 60]],
            ProfileConfig::default(),
        )
        .unwrap();
        let w_head = module.func_by_name("w").unwrap().1.entry;
        let min_each: Vec<u64> = runs
            .iter()
            .map(|r| {
                r.construct(w_head)
                    .unwrap()
                    .edges
                    .values()
                    .map(|s| s.min_tdep)
                    .min()
                    .unwrap()
            })
            .collect();
        let agg_min = agg
            .construct(w_head)
            .unwrap()
            .edges
            .values()
            .map(|s| s.min_tdep)
            .min()
            .unwrap();
        assert_eq!(agg_min, *min_each.iter().min().unwrap());
        assert!(min_each[0] < min_each[1], "{min_each:?}");
    }
}
