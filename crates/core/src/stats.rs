//! Profile statistics: dependence-distance distributions and CSV export.
//!
//! The paper's analysis hinges on *where dependence distances fall relative
//! to construct durations* (Fig. 1's `Tdep - Tdur` argument). The
//! [`DistanceHistogram`] summarizes a construct's edge distances in
//! duration-relative buckets, making the Fig. 2 "two clusters" pattern
//! (short-distance violating edges vs cross-instance slack) quantitative.
//! CSV exporters feed external plotting for the Fig. 6 scatter data.

use crate::construct::DepKind;
use crate::report::{ConstructReport, ProfileReport};
use std::fmt;
use std::fmt::Write as _;

/// Distance distribution of one construct's edges, bucketed by the ratio
/// `Tdep / Tdur` (duration-relative, so constructs of different sizes
/// compare directly).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DistanceHistogram {
    /// `Tdep <= Tdur/4` — deeply violating.
    pub quarter: usize,
    /// `Tdur/4 < Tdep <= Tdur` — violating.
    pub within: usize,
    /// `Tdur < Tdep <= 4*Tdur` — spawnable with a short join stall.
    pub near: usize,
    /// `Tdep > 4*Tdur` — ample slack.
    pub far: usize,
}

impl DistanceHistogram {
    /// Builds the histogram over one construct's edges of `kind`.
    pub fn of(construct: &ConstructReport, kind: DepKind) -> Self {
        let tdur = construct.tdur_mean.max(1);
        let mut h = DistanceHistogram::default();
        for e in construct.edges_of(kind) {
            if e.min_tdep * 4 <= tdur {
                h.quarter += 1;
            } else if e.min_tdep <= tdur {
                h.within += 1;
            } else if e.min_tdep <= tdur * 4 {
                h.near += 1;
            } else {
                h.far += 1;
            }
        }
        h
    }

    /// Total edges counted.
    pub fn total(&self) -> usize {
        self.quarter + self.within + self.near + self.far
    }

    /// Violating edges (`Tdep <= Tdur`).
    pub fn violating(&self) -> usize {
        self.quarter + self.within
    }
}

impl fmt::Display for DistanceHistogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "<=T/4: {}  <=T: {}  <=4T: {}  >4T: {}",
            self.quarter, self.within, self.near, self.far
        )
    }
}

/// Exports the ranked construct table as CSV (one row per construct), for
/// plotting Fig. 6-style scatter charts externally.
pub fn constructs_to_csv(report: &ProfileReport) -> String {
    let mut out = String::from(
        "rank,label,kind,line,ttotal,inst,tdur_mean,norm_size,\
         violating_raw,violating_war,violating_waw,norm_violations\n",
    );
    for (i, c) in report.ranked().iter().enumerate() {
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{},{:.6},{},{},{},{:.6}",
            i + 1,
            csv_escape(&c.label),
            c.kind,
            c.line,
            c.ttotal,
            c.inst,
            c.tdur_mean,
            c.norm_size,
            c.violating_raw,
            c.violating_war,
            c.violating_waw,
            c.norm_violations,
        );
    }
    out
}

/// Exports every dependence edge as CSV (one row per construct × edge).
pub fn edges_to_csv(report: &ProfileReport) -> String {
    let mut out = String::from("construct,kind,head_line,tail_line,var,min_tdep,count,violating\n");
    for c in report.ranked() {
        for e in &c.edges {
            let _ = writeln!(
                out,
                "{},{},{},{},{},{},{},{}",
                csv_escape(&c.label),
                e.kind,
                e.head_line,
                e.tail_line,
                csv_escape(e.var.as_deref().unwrap_or("")),
                e.min_tdep,
                e.count,
                e.violating,
            );
        }
    }
    out
}

fn csv_escape(s: &str) -> String {
    if s.contains(',') || s.contains('"') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiler::{AlchemistProfiler, ProfileConfig};
    use alchemist_vm::{compile_source, run, ExecConfig};

    fn report_for(src: &str) -> ProfileReport {
        let module = compile_source(src).unwrap();
        let mut prof = AlchemistProfiler::new(&module, ProfileConfig::default());
        let outcome = run(&module, &ExecConfig::default(), &mut prof).unwrap();
        let profile = prof.into_profile(outcome.steps);
        ProfileReport::new(&profile, &module)
    }

    const SRC: &str = "
        int near_; int far_; int sink;
        void work() { near_ = 1; far_ = 2; }
        int main() {
            int i;
            work();
            sink += near_;                       // short distance
            for (i = 0; i < 300; i++) sink += i; // long continuation
            sink += far_;                        // long distance
            return sink;
        }";

    #[test]
    fn histogram_separates_near_and_far() {
        let report = report_for(SRC);
        let work = report.find("Method work").unwrap();
        let h = DistanceHistogram::of(work, DepKind::Raw);
        assert_eq!(h.total(), 2);
        assert_eq!(h.violating(), 1, "{h}");
        assert_eq!(h.far, 1, "{h}");
        assert_eq!(
            h.violating(),
            work.violating_raw,
            "histogram agrees with the report's violating count"
        );
    }

    #[test]
    fn histogram_display_lists_buckets() {
        let h = DistanceHistogram {
            quarter: 1,
            within: 2,
            near: 3,
            far: 4,
        };
        assert_eq!(h.to_string(), "<=T/4: 1  <=T: 2  <=4T: 3  >4T: 4");
        assert_eq!(h.total(), 10);
        assert_eq!(h.violating(), 3);
    }

    #[test]
    fn construct_csv_has_header_and_rows() {
        let report = report_for(SRC);
        let csv = constructs_to_csv(&report);
        let mut lines = csv.lines();
        assert!(lines.next().unwrap().starts_with("rank,label,kind"));
        assert_eq!(csv.lines().count(), report.ranked().len() + 1);
        assert!(csv.contains("Method work"));
    }

    #[test]
    fn edge_csv_contains_variables() {
        let report = report_for(SRC);
        let csv = edges_to_csv(&report);
        assert!(csv.contains("near_"), "{csv}");
        assert!(csv.contains("far_"), "{csv}");
        assert!(csv.contains("true") && csv.contains("false"));
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        assert_eq!(csv_escape("plain"), "plain");
        assert_eq!(csv_escape("a,b"), "\"a,b\"");
        assert_eq!(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
        // Labels like `Loop (main, 14)` contain commas and must be quoted.
        let report = report_for(SRC);
        let csv = constructs_to_csv(&report);
        assert!(csv.contains("\"Loop (main,"), "{csv}");
    }
}
