//! The bounded construct pool (Table I of the paper).
//!
//! Every dynamic construct instance is a node of the execution index tree.
//! Maintaining the whole tree would be prohibitively expensive, so the paper
//! bounds memory with a *construct pool* and a **lazy retirement** rule:
//!
//! > if a construct instance `C` has ended for a period longer than
//! > `Tdur(C)`, it is safe to remove the instance from the index tree,
//! > because any dependence between a point in `C` and a future point must
//! > satisfy `Tdep > Tdur(C)` and hence does not affect the profiling
//! > result.
//!
//! Completed nodes are appended to the tail of a retirement queue and reuse
//! is attempted from the head, so a completed construct stays accessible for
//! as long as pool pressure allows (the paper's "lazy retiring strategy").
//!
//! Reused nodes bump a **generation counter**; stale references held by the
//! shadow memory or by child nodes detect reuse by comparing generations.
//! This makes the paper's timestamp-window check
//! (`c.Tenter <= Th < c.Texit`) explicit and exact.

use crate::construct::ConstructKind;
use alchemist_vm::{Pc, Time};
use std::collections::VecDeque;

/// Handle to a pool node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId(pub u32);

/// A generation-tagged node reference, safe against reuse.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeRef {
    /// The pool slot.
    pub id: NodeId,
    /// The generation the reference was taken at.
    pub gen: u32,
}

/// One construct instance in the index tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Node {
    /// Head pc of the static construct this instance belongs to.
    pub label: Pc,
    /// Construct kind (for reporting).
    pub kind: ConstructKind,
    /// Timestamp of the instance's start.
    pub t_enter: Time,
    /// Timestamp of the instance's end; `None` while active.
    pub t_exit: Option<Time>,
    /// Parent instance in the index tree (the enclosing construct);
    /// `None` for the root (`main`).
    pub parent: Option<NodeRef>,
    /// Reuse generation.
    pub gen: u32,
}

impl Node {
    fn fresh() -> Self {
        Node {
            label: Pc(0),
            kind: ConstructKind::Method,
            t_enter: 0,
            t_exit: None,
            parent: None,
            gen: 0,
        }
    }
}

/// Statistics about pool behaviour (for the pool-size ablation, E13).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Nodes ever allocated (peak live footprint).
    pub allocated: usize,
    /// Times a completed node was reclaimed and reused.
    pub reused: u64,
    /// Times the pool had to grow beyond its configured capacity because no
    /// queued node was retirable (0 with a generous capacity, as the paper
    /// reports for its 1M-entry pool).
    pub overflow_growths: u64,
}

/// The construct pool: node storage plus the retirement queue.
#[derive(Debug)]
pub struct ConstructPool {
    nodes: Vec<Node>,
    /// Never-used slots available for allocation.
    free: Vec<NodeId>,
    /// Completed instances, oldest first, awaiting reuse.
    retired: VecDeque<NodeId>,
    /// Upper bound on nodes allocated before reuse is attempted.
    capacity: usize,
    /// How many queue entries to inspect when looking for a retirable node.
    scan_cap: usize,
    stats: PoolStats,
}

impl ConstructPool {
    /// Creates a pool that prefers staying within `capacity` nodes.
    ///
    /// `scan_cap` bounds how many completed nodes are examined per
    /// allocation when searching for one that satisfies the retirement
    /// condition (the paper scans unboundedly; a small cap gives the same
    /// behaviour in practice at O(1) cost).
    pub fn new(capacity: usize, scan_cap: usize) -> Self {
        ConstructPool {
            nodes: Vec::new(),
            free: Vec::new(),
            retired: VecDeque::new(),
            capacity: capacity.max(1),
            scan_cap: scan_cap.max(1),
            stats: PoolStats::default(),
        }
    }

    /// Read-only access to a node.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0 as usize]
    }

    /// Resolves a generation-tagged reference; `None` if the node was
    /// retired and reused since the reference was taken.
    pub fn resolve(&self, r: NodeRef) -> Option<&Node> {
        let n = self.nodes.get(r.id.0 as usize)?;
        (n.gen == r.gen).then_some(n)
    }

    /// Pool behaviour counters.
    pub fn stats(&self) -> PoolStats {
        self.stats
    }

    /// Whether the retirement condition holds for `node` at time `now`:
    /// the instance has been complete for at least its own duration.
    fn retirable(node: &Node, now: Time) -> bool {
        match node.t_exit {
            Some(exit) => now.saturating_sub(exit) >= exit.saturating_sub(node.t_enter),
            None => false,
        }
    }

    /// Starts a new construct instance at time `now`, reusing a retired
    /// node when possible. Returns a generation-tagged reference.
    pub fn push_instance(
        &mut self,
        label: Pc,
        kind: ConstructKind,
        parent: Option<NodeRef>,
        now: Time,
    ) -> NodeRef {
        let id = self.acquire(now);
        let node = &mut self.nodes[id.0 as usize];
        node.label = label;
        node.kind = kind;
        node.t_enter = now;
        node.t_exit = None;
        node.parent = parent;
        let gen = node.gen;
        NodeRef { id, gen }
    }

    /// Marks an instance complete at time `now` and queues it for reuse.
    ///
    /// # Panics
    ///
    /// Panics if the reference is stale (an instance may only be completed
    /// by the indexing stack that created it).
    pub fn complete_instance(&mut self, r: NodeRef, now: Time) {
        let node = &mut self.nodes[r.id.0 as usize];
        assert_eq!(node.gen, r.gen, "completing a stale node reference");
        debug_assert!(node.t_exit.is_none(), "node completed twice");
        node.t_exit = Some(now);
        self.retired.push_back(r.id);
    }

    fn acquire(&mut self, now: Time) -> NodeId {
        if let Some(id) = self.free.pop() {
            return id;
        }
        if self.nodes.len() < self.capacity {
            let id = NodeId(self.nodes.len() as u32);
            self.nodes.push(Node::fresh());
            self.stats.allocated = self.nodes.len();
            return id;
        }
        // At capacity: scan the oldest completed nodes for a retirable one.
        let limit = self.scan_cap.min(self.retired.len());
        for i in 0..limit {
            let id = self.retired[i];
            if Self::retirable(&self.nodes[id.0 as usize], now) {
                self.retired.remove(i);
                let node = &mut self.nodes[id.0 as usize];
                node.gen = node.gen.wrapping_add(1);
                self.stats.reused += 1;
                return id;
            }
        }
        // Nothing retirable: grow beyond capacity (the paper's fixed pool
        // would overflow here; growing keeps the profile exact).
        self.stats.overflow_growths += 1;
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node::fresh());
        self.stats.allocated = self.nodes.len();
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(cap: usize) -> ConstructPool {
        ConstructPool::new(cap, 64)
    }

    #[test]
    fn push_then_resolve_round_trips() {
        let mut p = pool(4);
        let r = p.push_instance(Pc(10), ConstructKind::Loop, None, 5);
        let n = p.resolve(r).expect("live node resolves");
        assert_eq!(n.label, Pc(10));
        assert_eq!(n.t_enter, 5);
        assert_eq!(n.t_exit, None);
        assert!(n.parent.is_none());
    }

    #[test]
    fn parent_links_are_kept() {
        let mut p = pool(4);
        let a = p.push_instance(Pc(1), ConstructKind::Method, None, 0);
        let b = p.push_instance(Pc(2), ConstructKind::Loop, Some(a), 1);
        assert_eq!(p.resolve(b).unwrap().parent, Some(a));
    }

    #[test]
    fn completed_node_still_resolves_until_reused() {
        let mut p = pool(1);
        let a = p.push_instance(Pc(1), ConstructKind::Loop, None, 0);
        p.complete_instance(a, 10);
        assert!(p.resolve(a).is_some(), "lazy retirement keeps node visible");
    }

    #[test]
    fn reuse_waits_for_retirement_window() {
        // Node lived [0, 10]; it must not be reused before t=20.
        let mut p = pool(1);
        let a = p.push_instance(Pc(1), ConstructKind::Loop, None, 0);
        p.complete_instance(a, 10);
        let b = p.push_instance(Pc(2), ConstructKind::Loop, None, 15);
        // Not retirable at 15: pool must grow instead of reusing.
        assert_ne!(a.id, b.id);
        assert_eq!(p.stats().overflow_growths, 1);
        assert!(p.resolve(a).is_some(), "old node untouched by growth");
    }

    #[test]
    fn reuse_happens_after_window_and_invalidates_refs() {
        let mut p = pool(1);
        let a = p.push_instance(Pc(1), ConstructKind::Loop, None, 0);
        p.complete_instance(a, 10);
        // At t=20 the node completed 10 ago with duration 10: retirable.
        let b = p.push_instance(Pc(2), ConstructKind::Loop, None, 20);
        assert_eq!(a.id, b.id, "slot reused");
        assert!(p.resolve(a).is_none(), "stale generation detected");
        assert!(p.resolve(b).is_some());
        assert_eq!(p.stats().reused, 1);
        assert_eq!(p.stats().overflow_growths, 0);
    }

    #[test]
    fn zero_duration_instances_retire_immediately() {
        let mut p = pool(1);
        let a = p.push_instance(Pc(1), ConstructKind::Branch, None, 5);
        p.complete_instance(a, 5);
        let b = p.push_instance(Pc(2), ConstructKind::Branch, None, 5);
        assert_eq!(a.id, b.id);
    }

    #[test]
    fn oldest_retirable_is_preferred() {
        let mut p = pool(2);
        let a = p.push_instance(Pc(1), ConstructKind::Loop, None, 0);
        let b = p.push_instance(Pc(2), ConstructKind::Loop, None, 0);
        p.complete_instance(a, 2);
        p.complete_instance(b, 4);
        // Both retirable at t=100; the queue head (a) is reused first.
        let c = p.push_instance(Pc(3), ConstructKind::Loop, None, 100);
        assert_eq!(c.id, a.id);
    }

    #[test]
    fn scan_skips_non_retirable_head() {
        let mut p = pool(2);
        // a: long duration [0,100]; b: short [90,91].
        let a = p.push_instance(Pc(1), ConstructKind::Loop, None, 0);
        let b = p.push_instance(Pc(2), ConstructKind::Loop, None, 90);
        p.complete_instance(a, 100);
        p.complete_instance(b, 91);
        // t=110: a needs 100 quiet ticks (not until 200); b needed 1.
        let c = p.push_instance(Pc(3), ConstructKind::Loop, None, 110);
        assert_eq!(c.id, b.id, "scan passes over the unretirable head");
        assert!(p.resolve(a).is_some(), "head left in place");
    }

    #[test]
    #[should_panic(expected = "stale node reference")]
    fn completing_stale_reference_panics() {
        let mut p = pool(1);
        let a = p.push_instance(Pc(1), ConstructKind::Loop, None, 0);
        p.complete_instance(a, 1);
        let _b = p.push_instance(Pc(2), ConstructKind::Loop, None, 10);
        p.complete_instance(a, 20); // a's slot was reused
    }

    #[test]
    fn stats_track_allocation() {
        let mut p = pool(8);
        for i in 0..5 {
            let r = p.push_instance(Pc(i), ConstructKind::Branch, None, i as Time);
            p.complete_instance(r, i as Time);
        }
        assert!(p.stats().allocated <= 5);
    }
}
