//! Shadow memory for online dependence detection.
//!
//! Every profiled memory word carries shadow state: the last write access
//! and the set of distinct read sites since that write. Each access is
//! tagged with its instruction, timestamp and the construct instance (index
//! tree node) that was executing — enough to classify and attribute RAW,
//! WAR and WAW dependences the moment the second access occurs:
//!
//! * a **read** forms a RAW edge with the last write;
//! * a **write** forms a WAW edge with the last write and a WAR edge with
//!   every recorded read since that write, then clears the read set.
//!
//! Keeping all *distinct read pcs* (rather than only the most recent read)
//! preserves the static WAR edge set the paper reports in Table IV; the set
//! is capped per address to bound memory, replacing the stalest entry on
//! overflow.

use crate::pool::NodeRef;
use alchemist_vm::{Pc, Time};
use std::collections::HashMap;

/// One recorded access, tagged with attribution data `T` (the construct
/// instance for the profiler, a task id for the parallel simulator).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Access<T = NodeRef> {
    /// The accessing instruction.
    pub pc: Pc,
    /// When it happened.
    pub t: Time,
    /// Attribution tag: the construct instance (or task) executing at the
    /// time of the access.
    pub node: T,
}

/// A dependence detected between two accesses to the same address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DetectedDep<T = NodeRef> {
    /// The earlier access (the dependence head).
    pub head: Access<T>,
    /// Tail instruction.
    pub tail_pc: Pc,
    /// Tail timestamp.
    pub tail_t: Time,
    /// The conflicting address (for resolving the variable name).
    pub addr: u32,
}

#[derive(Debug, Clone)]
struct Cell<T> {
    last_write: Option<Access<T>>,
    /// Distinct read sites since the last write (tiny in practice).
    reads: Vec<Access<T>>,
}

impl<T> Default for Cell<T> {
    fn default() -> Self {
        Cell {
            last_write: None,
            reads: Vec::new(),
        }
    }
}

/// Shadow state for the whole profiled address range.
///
/// Addresses below the *dense limit* (the global segment, whose size is
/// known up front) are backed by a flat vector — the common case for every
/// profiled access — while higher addresses (frame memory, only traced
/// with [`trace_frame_memory`](crate::ProfileConfig::trace_frame_memory))
/// fall back to a hash map. This mirrors the constant-factor indexing
/// optimizations the paper cites from the PLDI'08 work.
#[derive(Debug)]
pub struct ShadowMemory<T = NodeRef> {
    dense: Vec<Option<Cell<T>>>,
    sparse: HashMap<u32, Cell<T>>,
    reader_cap: usize,
    /// Addresses with shadow state (dense cells in use + sparse entries),
    /// maintained incrementally so [`ShadowMemory::len`] is O(1).
    occupied: usize,
    /// Count of reads dropped because a cell's read set was full.
    pub dropped_readers: u64,
}

impl<T: Copy> ShadowMemory<T> {
    /// Creates shadow memory keeping at most `reader_cap` distinct read
    /// sites per address between writes (sparse backing only).
    pub fn new(reader_cap: usize) -> Self {
        Self::with_dense_limit(reader_cap, 0)
    }

    /// Like [`ShadowMemory::new`], with addresses `0..dense_limit` backed
    /// by a flat vector for O(1) access.
    pub fn with_dense_limit(reader_cap: usize, dense_limit: u32) -> Self {
        let mut dense = Vec::new();
        dense.resize_with(dense_limit as usize, || None);
        ShadowMemory {
            dense,
            sparse: HashMap::new(),
            reader_cap: reader_cap.max(1),
            occupied: 0,
            dropped_readers: 0,
        }
    }

    /// Number of addresses with shadow state.
    pub fn len(&self) -> usize {
        self.occupied
    }

    /// Whether no address has been accessed yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn cell(&mut self, addr: u32) -> &mut Cell<T> {
        if (addr as usize) < self.dense.len() {
            let slot = &mut self.dense[addr as usize];
            if slot.is_none() {
                self.occupied += 1;
            }
            slot.get_or_insert_with(Cell::default)
        } else {
            match self.sparse.entry(addr) {
                std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
                std::collections::hash_map::Entry::Vacant(v) => {
                    self.occupied += 1;
                    v.insert(Cell::default())
                }
            }
        }
    }

    /// Records a read; returns the RAW dependence it completes, if any.
    pub fn on_read(&mut self, addr: u32, access: Access<T>) -> Option<DetectedDep<T>> {
        let reader_cap = self.reader_cap;
        let mut dropped = false;
        let cell = self.cell(addr);
        // Track the read for future WAR detection.
        if let Some(existing) = cell.reads.iter_mut().find(|r| r.pc == access.pc) {
            // Same site read again: keep the later (more constraining) one.
            *existing = access;
        } else if cell.reads.len() < reader_cap {
            cell.reads.push(access);
        } else {
            // Replace the stalest entry; ties on the timestamp break by
            // lowest pc so sequential and sharded replay evict identically
            // (Vec order is an accident of insertion history).
            dropped = true;
            if let Some(oldest) = cell.reads.iter_mut().min_by_key(|r| (r.t, r.pc)) {
                *oldest = access;
            }
        }
        let dep = cell.last_write.map(|head| DetectedDep {
            head,
            tail_pc: access.pc,
            tail_t: access.t,
            addr,
        });
        if dropped {
            self.dropped_readers += 1;
        }
        dep
    }

    /// Records a write; returns the WAW dependence (with the previous
    /// write) and all WAR dependences (with reads since that write).
    pub fn on_write(
        &mut self,
        addr: u32,
        access: Access<T>,
    ) -> (Option<DetectedDep<T>>, Vec<DetectedDep<T>>) {
        let cell = self.cell(addr);
        let waw = cell.last_write.map(|head| DetectedDep {
            head,
            tail_pc: access.pc,
            tail_t: access.t,
            addr,
        });
        let wars = cell
            .reads
            .drain(..)
            .map(|head| DetectedDep {
                head,
                tail_pc: access.pc,
                tail_t: access.t,
                addr,
            })
            .collect();
        cell.last_write = Some(access);
        (waw, wars)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::NodeId;

    fn acc(pc: u32, t: Time) -> Access {
        Access {
            pc: Pc(pc),
            t,
            node: NodeRef {
                id: NodeId(0),
                gen: 0,
            },
        }
    }

    #[test]
    fn read_after_write_detects_raw() {
        let mut s = ShadowMemory::new(8);
        let (waw, wars) = s.on_write(100, acc(1, 10));
        assert!(waw.is_none() && wars.is_empty());
        let raw = s.on_read(100, acc(2, 15)).expect("RAW detected");
        assert_eq!(raw.head.pc, Pc(1));
        assert_eq!(raw.tail_pc, Pc(2));
        assert_eq!(raw.tail_t, 15);
    }

    #[test]
    fn read_without_prior_write_is_not_raw() {
        let mut s = ShadowMemory::new(8);
        assert!(s.on_read(5, acc(1, 1)).is_none());
        assert_eq!(s.len(), 1);
        assert!(!s.is_empty());
    }

    #[test]
    fn write_after_write_detects_waw() {
        let mut s = ShadowMemory::new(8);
        s.on_write(7, acc(1, 1));
        let (waw, _) = s.on_write(7, acc(2, 9));
        let waw = waw.expect("WAW detected");
        assert_eq!(waw.head.pc, Pc(1));
        assert_eq!(waw.tail_pc, Pc(2));
    }

    #[test]
    fn write_after_reads_detects_all_distinct_wars() {
        let mut s = ShadowMemory::new(8);
        s.on_write(7, acc(1, 1));
        s.on_read(7, acc(10, 2));
        s.on_read(7, acc(11, 3));
        s.on_read(7, acc(10, 4)); // same site again: updated, not duplicated
        let (_, wars) = s.on_write(7, acc(2, 9));
        assert_eq!(wars.len(), 2);
        let heads: Vec<_> = wars.iter().map(|w| (w.head.pc, w.head.t)).collect();
        assert!(
            heads.contains(&(Pc(10), 4)),
            "same-site read keeps later time"
        );
        assert!(heads.contains(&(Pc(11), 3)));
    }

    #[test]
    fn reads_cleared_after_write() {
        let mut s = ShadowMemory::new(8);
        s.on_read(7, acc(10, 2));
        let (_, wars1) = s.on_write(7, acc(1, 5));
        assert_eq!(wars1.len(), 1);
        let (_, wars2) = s.on_write(7, acc(2, 6));
        assert!(wars2.is_empty(), "read set cleared by the first write");
    }

    #[test]
    fn addresses_are_independent() {
        let mut s = ShadowMemory::new(8);
        s.on_write(1, acc(1, 1));
        assert!(s.on_read(2, acc(2, 2)).is_none());
        assert!(s.on_read(1, acc(3, 3)).is_some());
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn len_matches_a_full_rescan() {
        // The occupancy counter must agree with the O(n) scan it replaced,
        // across dense hits, sparse hits and repeated touches.
        let mut s: ShadowMemory = ShadowMemory::with_dense_limit(4, 16);
        for (addr, pc) in [(0u32, 1u32), (3, 2), (3, 3), (100, 4), (100, 5), (7, 6)] {
            if pc % 2 == 0 {
                s.on_read(addr, acc(pc, pc as Time));
            } else {
                s.on_write(addr, acc(pc, pc as Time));
            }
            let scan = s.dense.iter().filter(|c| c.is_some()).count() + s.sparse.len();
            assert_eq!(s.len(), scan, "after touching {addr}");
        }
        assert_eq!(s.len(), 4); // 0, 3, 7 dense; 100 sparse
    }

    #[test]
    fn eviction_ties_break_by_lowest_pc() {
        // Two reads at the same timestamp: the one with the lower pc is the
        // deterministic victim, regardless of insertion order.
        for (first, second) in [(10u32, 11u32), (11, 10)] {
            let mut s = ShadowMemory::new(2);
            s.on_read(1, acc(first, 5));
            s.on_read(1, acc(second, 5));
            s.on_read(1, acc(12, 6)); // evicts pc=10 (t=5 tie, lowest pc)
            let (_, wars) = s.on_write(1, acc(2, 9));
            let pcs: Vec<_> = wars.iter().map(|w| w.head.pc).collect();
            assert!(
                pcs.contains(&Pc(11)) && pcs.contains(&Pc(12)) && !pcs.contains(&Pc(10)),
                "insertion order {first},{second}: survivors {pcs:?}"
            );
        }
    }

    #[test]
    fn reader_cap_replaces_stalest() {
        let mut s = ShadowMemory::new(2);
        s.on_read(1, acc(10, 1));
        s.on_read(1, acc(11, 2));
        s.on_read(1, acc(12, 3)); // evicts pc=10 (t=1)
        assert_eq!(s.dropped_readers, 1);
        let (_, wars) = s.on_write(1, acc(2, 9));
        let pcs: Vec<_> = wars.iter().map(|w| w.head.pc).collect();
        assert!(pcs.contains(&Pc(11)) && pcs.contains(&Pc(12)));
        assert!(!pcs.contains(&Pc(10)));
    }
}
