//! Shadow memory for online dependence detection.
//!
//! Every profiled memory word carries shadow state: the last write access
//! and the set of distinct read sites since that write. Each access is
//! tagged with its instruction, timestamp and the construct instance (index
//! tree node) that was executing — enough to classify and attribute RAW,
//! WAR and WAW dependences the moment the second access occurs:
//!
//! * a **read** forms a RAW edge with the last write;
//! * a **write** forms a WAW edge with the last write and a WAR edge with
//!   every recorded read since that write, then clears the read set.
//!
//! Keeping all *distinct read pcs* (rather than only the most recent read)
//! preserves the static WAR edge set the paper reports in Table IV; the set
//! is capped per address to bound memory, replacing the stalest entry on
//! overflow.
//!
//! # Paged layout
//!
//! Shadow cells live in a **two-level paged table**: the address's top bits
//! ([`PAGE_SHIFT`]) select a page, the low bits a cell within it. Pages
//! hold [`PAGE_WORDS`] cells each and are allocated on first touch, so
//! untouched address ranges cost nothing, and every lookup after the first
//! touch is two array indexings — no hashing, for dense globals and high
//! frame addresses alike. (Earlier revisions backed the global segment
//! with a flat vector and spilled high addresses into a `HashMap`; the
//! paged table subsumes both.) [`ShadowMemory::with_dense_limit`]
//! pre-sizes the page-table spine for a known-dense prefix so the spine
//! never reallocates mid-run; the pages themselves always fault lazily.
//!
//! # Allocation-free hot path
//!
//! The per-address read set is an inline small-vector ([`INLINE_READERS`]
//! slots — the default `reader_cap`): as long as a cell's read set stays
//! within the inline capacity, [`ShadowMemory::on_read`] and
//! [`ShadowMemory::on_write`] perform **no heap allocation** after the
//! page is faulted in. A `reader_cap` above the inline capacity spills
//! that cell's set to a heap vector (counted in
//! [`ShadowStats::read_set_spills`]); the spill storage is retained across
//! write-clears, so each cell pays for the spill at most once. Writes
//! report their dependences through a caller-supplied callback instead of
//! returning a `Vec`, so detection itself never allocates.
//!
//! # Determinism rules
//!
//! Results are independent of the backing layout by construction — paging
//! affects *where* a cell lives, never what it records. The rules that
//! matter for replay parity are all per-cell:
//!
//! * a read from an already-recorded pc replaces that entry (keeping the
//!   later, more constraining timestamp), never growing the set;
//! * at the cap, the **stalest** entry (minimum `(t, pc)` — timestamp
//!   ties break toward the lowest pc) is evicted, so sequential and
//!   address-sharded replay pick identical victims regardless of
//!   insertion order, and `dropped_readers` advances identically;
//! * a write emits the WAW edge first, then the WAR edges in read-set
//!   order (insertion order, as evolved under the two rules above).

use crate::construct::DepKind;
use crate::pool::NodeRef;
use alchemist_vm::{Pc, Tid, Time};
use std::mem::MaybeUninit;

/// Log2 of [`PAGE_WORDS`]: address bits consumed by the in-page offset.
pub const PAGE_SHIFT: u32 = 12;

/// Shadow cells per page (4 Ki cells). One page covers a 4096-word-aligned
/// address range; the whole table is `Vec<Option<Box<[Cell]>>>` indexed by
/// `addr >> PAGE_SHIFT`.
pub const PAGE_WORDS: usize = 1 << PAGE_SHIFT;

const PAGE_MASK: u32 = (PAGE_WORDS as u32) - 1;

/// Inline capacity of a cell's read set: read sets at or below this many
/// distinct sites (the default `reader_cap`) never touch the heap.
pub const INLINE_READERS: usize = 8;

/// One recorded access, tagged with attribution data `T` (the construct
/// instance for the profiler, a task id for the parallel simulator).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Access<T = NodeRef> {
    /// The accessing instruction.
    pub pc: Pc,
    /// When it happened.
    pub t: Time,
    /// Thread that performed the access ([`Tid::MAIN`] for single-threaded
    /// runs). Dependence heads carry it so a later access can classify the
    /// edge as intra- or cross-thread.
    pub tid: Tid,
    /// Attribution tag: the construct instance (or task) executing at the
    /// time of the access.
    pub node: T,
}

/// A dependence detected between two accesses to the same address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DetectedDep<T = NodeRef> {
    /// The earlier access (the dependence head).
    pub head: Access<T>,
    /// Tail instruction.
    pub tail_pc: Pc,
    /// Tail timestamp.
    pub tail_t: Time,
    /// The conflicting address (for resolving the variable name).
    pub addr: u32,
}

/// Allocation-telemetry counters for one [`ShadowMemory`].
///
/// These describe *how* the layout behaved (memory faulted in, inline
/// capacity exceeded), not *what* was detected — two runs with identical
/// dependence output can differ here (e.g. sequential vs sharded replay
/// fault pages independently), so the counters are excluded from profile
/// equality and merged additively across shards.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShadowStats {
    /// Pages faulted in on first touch; each holds [`PAGE_WORDS`] cells.
    pub pages_allocated: u64,
    /// Times a read set outgrew [`INLINE_READERS`] and moved to a heap
    /// vector (possible only when `reader_cap` exceeds the inline
    /// capacity). Counts spill *events*, which bound — but can exceed —
    /// the actual allocations: a cell that spills again after a
    /// write-clear reuses its retained spill capacity.
    pub read_set_spills: u64,
}

/// The per-cell read set: an in-crate small-vector of accesses.
///
/// Elements live in the inline buffer while `len <= INLINE_READERS` and in
/// `spill` beyond that. A write-clear resets `len` (and `spill`) but keeps
/// the spill vector's capacity, so a cell spills at most once per
/// capacity level even under repeated fill/clear cycles.
struct ReadSet<T: Copy> {
    /// Total recorded reads; the storage invariant keys off this.
    len: u32,
    /// Inline storage; only `inline[..len]` is initialized, and only while
    /// `len <= INLINE_READERS`.
    inline: [MaybeUninit<Access<T>>; INLINE_READERS],
    /// Heap storage once the set outgrows the inline buffer; holds *all*
    /// `len` elements then (the inline buffer is dead past the spill).
    spill: Vec<Access<T>>,
}

impl<T: Copy> ReadSet<T> {
    fn new() -> Self {
        ReadSet {
            len: 0,
            // SAFETY: an array of `MaybeUninit` is trivially "initialized".
            inline: unsafe { MaybeUninit::uninit().assume_init() },
            spill: Vec::new(),
        }
    }

    #[inline]
    fn len(&self) -> usize {
        self.len as usize
    }

    #[inline]
    fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn as_slice(&self) -> &[Access<T>] {
        if self.len() <= INLINE_READERS {
            // SAFETY: the storage invariant guarantees `inline[..len]` is
            // initialized while `len <= INLINE_READERS`.
            unsafe {
                std::slice::from_raw_parts(self.inline.as_ptr() as *const Access<T>, self.len())
            }
        } else {
            &self.spill
        }
    }

    #[inline]
    fn as_mut_slice(&mut self) -> &mut [Access<T>] {
        if self.len() <= INLINE_READERS {
            // SAFETY: as in `as_slice`.
            unsafe {
                std::slice::from_raw_parts_mut(
                    self.inline.as_mut_ptr() as *mut Access<T>,
                    self.len(),
                )
            }
        } else {
            &mut self.spill
        }
    }

    /// Appends an access. Returns `true` when this push spilled the set
    /// from the inline buffer to the heap (the caller counts it).
    #[inline]
    fn push(&mut self, access: Access<T>) -> bool {
        let n = self.len();
        let spilled = if n < INLINE_READERS {
            self.inline[n].write(access);
            false
        } else {
            let first = n == INLINE_READERS;
            if first {
                // SAFETY: at the spill point all INLINE_READERS inline
                // slots are initialized.
                let inline = unsafe {
                    std::slice::from_raw_parts(
                        self.inline.as_ptr() as *const Access<T>,
                        INLINE_READERS,
                    )
                };
                self.spill.clear();
                self.spill.extend_from_slice(inline);
            }
            self.spill.push(access);
            first
        };
        self.len += 1;
        spilled
    }

    /// Empties the set, retaining any spill capacity for reuse.
    #[inline]
    fn clear(&mut self) {
        self.len = 0;
        self.spill.clear();
    }
}

impl<T: Copy + std::fmt::Debug> std::fmt::Debug for ReadSet<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.as_slice()).finish()
    }
}

#[derive(Debug)]
struct Cell<T: Copy> {
    last_write: Option<Access<T>>,
    /// Distinct read sites since the last write (tiny in practice).
    reads: ReadSet<T>,
}

impl<T: Copy> Cell<T> {
    fn new() -> Self {
        Cell {
            last_write: None,
            reads: ReadSet::new(),
        }
    }

    /// Whether any access was ever recorded here. Once true, stays true: a
    /// write pins `last_write`, and reads are only cleared *by* a write.
    #[inline]
    fn touched(&self) -> bool {
        self.last_write.is_some() || !self.reads.is_empty()
    }
}

/// Shadow state for the whole profiled address range, in the two-level
/// paged layout described in the [module docs](self).
#[derive(Debug)]
pub struct ShadowMemory<T: Copy = NodeRef> {
    /// Page table: `pages[addr >> PAGE_SHIFT]`, faulted in on first touch.
    pages: Vec<Option<Box<[Cell<T>]>>>,
    reader_cap: usize,
    /// Addresses with shadow state (touched cells), maintained
    /// incrementally so [`ShadowMemory::len`] is O(1).
    occupied: usize,
    /// Layout telemetry (pages faulted, read-set spills).
    stats: ShadowStats,
    /// Count of reads dropped because a cell's read set was full.
    pub dropped_readers: u64,
}

impl<T: Copy> ShadowMemory<T> {
    /// Creates shadow memory keeping at most `reader_cap` distinct read
    /// sites per address between writes. Every page — dense globals and
    /// high frame addresses alike — is faulted in on first touch.
    pub fn new(reader_cap: usize) -> Self {
        Self::with_dense_limit(reader_cap, 0)
    }

    /// Like [`ShadowMemory::new`], additionally pre-sizing the page
    /// *table* (the outer spine of `Option` slots, not the pages
    /// themselves) to cover addresses `0..dense_limit` — e.g. the global
    /// segment, whose size is known up front — so the spine never
    /// reallocates while the hot loop runs over that range. Cells are
    /// still faulted in page-at-a-time on first touch; a program that
    /// never touches an address range never pays for it. Detection
    /// results are identical either way.
    pub fn with_dense_limit(reader_cap: usize, dense_limit: u32) -> Self {
        let spine = (dense_limit as usize).div_ceil(PAGE_WORDS);
        let mut pages = Vec::new();
        pages.resize_with(spine, || None);
        ShadowMemory {
            pages,
            reader_cap: reader_cap.max(1),
            occupied: 0,
            stats: ShadowStats::default(),
            dropped_readers: 0,
        }
    }

    /// Number of addresses with shadow state.
    pub fn len(&self) -> usize {
        self.occupied
    }

    /// Whether no address has been accessed yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Layout telemetry: pages faulted in, read-set spills.
    pub fn stats(&self) -> ShadowStats {
        self.stats
    }

    /// Allocates the cells of page `page` (growing the page table as
    /// needed). Off the hot path: each page faults at most once.
    #[cold]
    #[inline(never)]
    fn fault_in(&mut self, page: usize) {
        if page >= self.pages.len() {
            self.pages.resize_with(page + 1, || None);
        }
        let slot = &mut self.pages[page];
        debug_assert!(slot.is_none(), "page {page} faulted twice");
        let mut cells = Vec::with_capacity(PAGE_WORDS);
        cells.resize_with(PAGE_WORDS, Cell::new);
        *slot = Some(cells.into_boxed_slice());
        self.stats.pages_allocated += 1;
    }

    /// The cell for `addr`, faulting its page in if needed.
    #[inline]
    fn cell(&mut self, addr: u32) -> &mut Cell<T> {
        let page = (addr >> PAGE_SHIFT) as usize;
        if page >= self.pages.len() || self.pages[page].is_none() {
            self.fault_in(page);
        }
        // Both indexings are in bounds: `fault_in` grew the table and
        // populated the page.
        let cells = self.pages[page].as_mut().expect("page faulted in");
        &mut cells[(addr & PAGE_MASK) as usize]
    }

    /// Records a read; returns the RAW dependence it completes, if any.
    ///
    /// Allocation-free while the cell's read set stays within
    /// [`INLINE_READERS`] and the page is already faulted in.
    pub fn on_read(&mut self, addr: u32, access: Access<T>) -> Option<DetectedDep<T>> {
        let reader_cap = self.reader_cap;
        let mut dropped = false;
        let mut spilled = false;
        let cell = self.cell(addr);
        let was_touched = cell.touched();
        // Track the read for future WAR detection.
        if let Some(existing) = cell
            .reads
            .as_mut_slice()
            .iter_mut()
            .find(|r| r.pc == access.pc)
        {
            // Same site read again: keep the later (more constraining) one.
            *existing = access;
        } else if cell.reads.len() < reader_cap {
            spilled = cell.reads.push(access);
        } else {
            // Replace the stalest entry; ties on the timestamp break by
            // lowest pc so sequential and sharded replay evict identically
            // (set order is an accident of insertion history).
            dropped = true;
            if let Some(oldest) = cell
                .reads
                .as_mut_slice()
                .iter_mut()
                .min_by_key(|r| (r.t, r.pc))
            {
                *oldest = access;
            }
        }
        let dep = cell.last_write.map(|head| DetectedDep {
            head,
            tail_pc: access.pc,
            tail_t: access.t,
            addr,
        });
        if !was_touched {
            self.occupied += 1;
        }
        if dropped {
            self.dropped_readers += 1;
        }
        if spilled {
            self.stats.read_set_spills += 1;
        }
        dep
    }

    /// Records a write, reporting each dependence it completes through
    /// `emit`: the WAW edge with the previous write first (if any), then
    /// one WAR edge per recorded read since that write, in read-set order.
    /// The read set is cleared and the write becomes the cell's
    /// `last_write` regardless of what `emit` does.
    ///
    /// The callback form keeps the hot path allocation-free: dependences
    /// stream straight into the caller's profile with no intermediate
    /// `Vec`.
    pub fn on_write<F>(&mut self, addr: u32, access: Access<T>, emit: &mut F)
    where
        F: FnMut(DepKind, DetectedDep<T>),
    {
        let cell = self.cell(addr);
        let was_touched = cell.touched();
        if let Some(head) = cell.last_write {
            emit(
                DepKind::Waw,
                DetectedDep {
                    head,
                    tail_pc: access.pc,
                    tail_t: access.t,
                    addr,
                },
            );
        }
        for head in cell.reads.as_slice() {
            emit(
                DepKind::War,
                DetectedDep {
                    head: *head,
                    tail_pc: access.pc,
                    tail_t: access.t,
                    addr,
                },
            );
        }
        cell.reads.clear();
        cell.last_write = Some(access);
        if !was_touched {
            self.occupied += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::NodeId;

    fn acc(pc: u32, t: Time) -> Access {
        Access {
            pc: Pc(pc),
            t,
            tid: Tid::MAIN,
            node: NodeRef {
                id: NodeId(0),
                gen: 0,
            },
        }
    }

    /// Collects `on_write`'s callback output as `(waw, wars)` — the shape
    /// the old return-based API had, which the tests assert against.
    fn write_collect(
        s: &mut ShadowMemory,
        addr: u32,
        access: Access,
    ) -> (Option<DetectedDep>, Vec<DetectedDep>) {
        let mut waw = None;
        let mut wars = Vec::new();
        s.on_write(addr, access, &mut |kind, dep| match kind {
            DepKind::Waw => {
                assert!(waw.is_none(), "at most one WAW per write");
                waw = Some(dep);
            }
            DepKind::War => wars.push(dep),
            DepKind::Raw => panic!("writes never emit RAW"),
        });
        (waw, wars)
    }

    #[test]
    fn read_after_write_detects_raw() {
        let mut s = ShadowMemory::new(8);
        let (waw, wars) = write_collect(&mut s, 100, acc(1, 10));
        assert!(waw.is_none() && wars.is_empty());
        let raw = s.on_read(100, acc(2, 15)).expect("RAW detected");
        assert_eq!(raw.head.pc, Pc(1));
        assert_eq!(raw.tail_pc, Pc(2));
        assert_eq!(raw.tail_t, 15);
    }

    #[test]
    fn read_without_prior_write_is_not_raw() {
        let mut s = ShadowMemory::new(8);
        assert!(s.on_read(5, acc(1, 1)).is_none());
        assert_eq!(s.len(), 1);
        assert!(!s.is_empty());
    }

    #[test]
    fn write_after_write_detects_waw() {
        let mut s = ShadowMemory::new(8);
        write_collect(&mut s, 7, acc(1, 1));
        let (waw, _) = write_collect(&mut s, 7, acc(2, 9));
        let waw = waw.expect("WAW detected");
        assert_eq!(waw.head.pc, Pc(1));
        assert_eq!(waw.tail_pc, Pc(2));
    }

    #[test]
    fn write_after_reads_detects_all_distinct_wars() {
        let mut s = ShadowMemory::new(8);
        write_collect(&mut s, 7, acc(1, 1));
        s.on_read(7, acc(10, 2));
        s.on_read(7, acc(11, 3));
        s.on_read(7, acc(10, 4)); // same site again: updated, not duplicated
        let (_, wars) = write_collect(&mut s, 7, acc(2, 9));
        assert_eq!(wars.len(), 2);
        let heads: Vec<_> = wars.iter().map(|w| (w.head.pc, w.head.t)).collect();
        assert!(
            heads.contains(&(Pc(10), 4)),
            "same-site read keeps later time"
        );
        assert!(heads.contains(&(Pc(11), 3)));
    }

    #[test]
    fn reads_cleared_after_write() {
        let mut s = ShadowMemory::new(8);
        s.on_read(7, acc(10, 2));
        let (_, wars1) = write_collect(&mut s, 7, acc(1, 5));
        assert_eq!(wars1.len(), 1);
        let (_, wars2) = write_collect(&mut s, 7, acc(2, 6));
        assert!(wars2.is_empty(), "read set cleared by the first write");
    }

    #[test]
    fn addresses_are_independent() {
        let mut s = ShadowMemory::new(8);
        write_collect(&mut s, 1, acc(1, 1));
        assert!(s.on_read(2, acc(2, 2)).is_none());
        assert!(s.on_read(1, acc(3, 3)).is_some());
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn len_matches_a_full_rescan() {
        // The occupancy counter must agree with an O(n) scan of touched
        // cells, across pre-faulted pages, lazily faulted pages and
        // repeated touches of the same address.
        let mut s: ShadowMemory = ShadowMemory::with_dense_limit(4, 16);
        let far = 3 * PAGE_WORDS as u32 + 5; // a lazily faulted page
        for (addr, pc) in [(0u32, 1u32), (3, 2), (3, 3), (far, 4), (far, 5), (7, 6)] {
            if pc % 2 == 0 {
                s.on_read(addr, acc(pc, pc as Time));
            } else {
                write_collect(&mut s, addr, acc(pc, pc as Time));
            }
            let scan: usize = s
                .pages
                .iter()
                .flatten()
                .map(|cells| cells.iter().filter(|c| c.touched()).count())
                .sum();
            assert_eq!(s.len(), scan, "after touching {addr}");
        }
        assert_eq!(s.len(), 4); // 0, 3, 7 on page 0; one far cell
    }

    #[test]
    fn pages_fault_on_first_touch_only() {
        let mut s: ShadowMemory = ShadowMemory::new(8);
        assert_eq!(s.stats().pages_allocated, 0);
        s.on_read(3, acc(1, 1)); // page 0
        assert_eq!(s.stats().pages_allocated, 1);
        s.on_read(7, acc(2, 2)); // page 0 again: no new fault
        assert_eq!(s.stats().pages_allocated, 1);
        let far = 5 * PAGE_WORDS as u32;
        write_collect(&mut s, far, acc(3, 3)); // page 5
        assert_eq!(s.stats().pages_allocated, 2);
        // Intermediate pages (1..5) stay unallocated.
        assert_eq!(s.pages.iter().filter(|p| p.is_some()).count(), 2);
    }

    #[test]
    fn dense_limit_sizes_the_spine_without_faulting() {
        let s: ShadowMemory = ShadowMemory::with_dense_limit(8, PAGE_WORDS as u32 + 1);
        assert_eq!(s.pages.len(), 2, "two spine slots cover 4097 words");
        assert_eq!(s.stats().pages_allocated, 0, "no page faulted yet");
        assert_eq!(s.len(), 0);
        let exact: ShadowMemory = ShadowMemory::with_dense_limit(8, PAGE_WORDS as u32);
        assert_eq!(exact.pages.len(), 1);
    }

    #[test]
    fn read_sets_spill_above_inline_capacity() {
        // reader_cap above INLINE_READERS forces the spill path; detection
        // output is unaffected.
        let cap = INLINE_READERS + 4;
        let mut s = ShadowMemory::new(cap);
        for i in 0..cap as u32 {
            s.on_read(1, acc(10 + i, i as Time));
        }
        assert_eq!(s.stats().read_set_spills, 1, "one spill event");
        assert_eq!(s.dropped_readers, 0, "cap not hit");
        let (_, wars) = write_collect(&mut s, 1, acc(2, 99));
        assert_eq!(wars.len(), cap, "every distinct site kept");
        // The spilled vector is reused: filling the same cell again does
        // not count another spill.
        for i in 0..cap as u32 {
            s.on_read(1, acc(10 + i, 50 + i as Time));
        }
        assert_eq!(s.stats().read_set_spills, 2, "spill re-counted per event");
        let (_, wars) = write_collect(&mut s, 1, acc(2, 200));
        assert_eq!(wars.len(), cap);
    }

    #[test]
    fn inline_read_sets_never_spill() {
        let mut s = ShadowMemory::new(INLINE_READERS);
        for round in 0..3u64 {
            for i in 0..INLINE_READERS as u32 {
                s.on_read(1, acc(10 + i, round * 100 + i as Time));
            }
            write_collect(&mut s, 1, acc(2, round * 100 + 50));
        }
        assert_eq!(s.stats().read_set_spills, 0);
        assert_eq!(s.dropped_readers, 0);
    }

    #[test]
    fn eviction_ties_break_by_lowest_pc() {
        // Two reads at the same timestamp: the one with the lower pc is the
        // deterministic victim, regardless of insertion order.
        for (first, second) in [(10u32, 11u32), (11, 10)] {
            let mut s = ShadowMemory::new(2);
            s.on_read(1, acc(first, 5));
            s.on_read(1, acc(second, 5));
            s.on_read(1, acc(12, 6)); // evicts pc=10 (t=5 tie, lowest pc)
            let (_, wars) = write_collect(&mut s, 1, acc(2, 9));
            let pcs: Vec<_> = wars.iter().map(|w| w.head.pc).collect();
            assert!(
                pcs.contains(&Pc(11)) && pcs.contains(&Pc(12)) && !pcs.contains(&Pc(10)),
                "insertion order {first},{second}: survivors {pcs:?}"
            );
        }
    }

    #[test]
    fn reader_cap_replaces_stalest() {
        let mut s = ShadowMemory::new(2);
        s.on_read(1, acc(10, 1));
        s.on_read(1, acc(11, 2));
        s.on_read(1, acc(12, 3)); // evicts pc=10 (t=1)
        assert_eq!(s.dropped_readers, 1);
        let (_, wars) = write_collect(&mut s, 1, acc(2, 9));
        let pcs: Vec<_> = wars.iter().map(|w| w.head.pc).collect();
        assert!(pcs.contains(&Pc(11)) && pcs.contains(&Pc(12)));
        assert!(!pcs.contains(&Pc(10)));
    }

    #[test]
    fn waw_emitted_before_wars() {
        let mut s = ShadowMemory::new(8);
        write_collect(&mut s, 1, acc(1, 1));
        s.on_read(1, acc(10, 2));
        s.on_read(1, acc(11, 3));
        let mut kinds = Vec::new();
        s.on_write(1, acc(2, 9), &mut |kind, _| kinds.push(kind));
        assert_eq!(kinds, [DepKind::Waw, DepKind::War, DepKind::War]);
    }
}
