//! One-call profiling entry points.

use crate::pool::PoolStats;
use crate::profile::DepProfile;
use crate::profiler::{AlchemistProfiler, ProfileConfig};
use crate::report::ProfileReport;
use alchemist_vm::{
    compile_source, Event, EventBatch, ExecConfig, ExecOutcome, Module, TraceSink, Trap,
};
use std::error::Error;
use std::fmt;

/// Why a profiling run failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProfileError {
    /// The source did not compile.
    Frontend(alchemist_lang::LangError),
    /// The program trapped at run time.
    Runtime(Trap),
}

impl fmt::Display for ProfileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProfileError::Frontend(e) => write!(f, "{e}"),
            ProfileError::Runtime(e) => write!(f, "{e}"),
        }
    }
}

impl Error for ProfileError {}

impl From<alchemist_lang::LangError> for ProfileError {
    fn from(e: alchemist_lang::LangError) -> Self {
        ProfileError::Frontend(e)
    }
}

impl From<Trap> for ProfileError {
    fn from(e: Trap) -> Self {
        ProfileError::Runtime(e)
    }
}

/// Everything produced by one profiled run.
#[derive(Debug)]
pub struct ProfileOutcome {
    /// The dependence profile.
    pub profile: DepProfile,
    /// The program's execution result (steps, output, exit value).
    pub exec: ExecOutcome,
    /// Construct-pool behaviour.
    pub pool_stats: PoolStats,
    /// Deepest construct nesting observed.
    pub max_depth: usize,
    /// The compiled module (kept for report rendering).
    pub module: Module,
}

impl ProfileOutcome {
    /// Builds the ranked report for this run.
    pub fn report(&self) -> ProfileReport {
        ProfileReport::new(&self.profile, &self.module)
    }
}

/// Profiles an already-compiled module.
///
/// # Errors
///
/// Returns the [`Trap`] if the program faults at run time.
pub fn profile_module(
    module: &Module,
    exec_config: &ExecConfig,
    profile_config: ProfileConfig,
) -> Result<(DepProfile, ExecOutcome, PoolStats, usize), Trap> {
    let mut prof = AlchemistProfiler::new(module, profile_config);
    let outcome = alchemist_vm::run(module, exec_config, &mut prof)?;
    let pool_stats = prof.pool_stats();
    let max_depth = prof.max_depth();
    let profile = prof.into_profile(outcome.steps);
    Ok((profile, outcome, pool_stats, max_depth))
}

/// Profiles a *replayed* event stream instead of a live run.
///
/// This is the offline entry point for recorded traces: any source of
/// [`Event`]s — a `RecordingSink`, a decoded `.alct` trace — drives the
/// same [`AlchemistProfiler`] the interpreter would, so the resulting
/// [`DepProfile`] is identical to live instrumentation of the run that
/// produced the events. `total_steps` is the recorded run's final
/// retired-instruction count (a trace stores it in its footer).
///
/// # Examples
///
/// ```
/// use alchemist_core::{profile_events, profile_source, ProfileConfig};
/// use alchemist_vm::{compile_source, run, ExecConfig, RecordingSink};
///
/// let src = "int g; int main() { int i; for (i = 0; i < 4; i++) g += i; return g; }";
/// let module = compile_source(src).unwrap();
/// let mut rec = RecordingSink::default();
/// let out = run(&module, &ExecConfig::default(), &mut rec).unwrap();
///
/// let (offline, _, _) = profile_events(
///     &module,
///     rec.events.iter().copied(),
///     out.steps,
///     ProfileConfig::default(),
/// );
/// let live = profile_source(src, vec![]).unwrap();
/// assert_eq!(offline, live.profile);
/// ```
pub fn profile_events<I>(
    module: &Module,
    events: I,
    total_steps: u64,
    profile_config: ProfileConfig,
) -> (DepProfile, PoolStats, usize)
where
    I: IntoIterator<Item = Event>,
{
    let mut prof = AlchemistProfiler::new(module, profile_config);
    for ev in events {
        ev.dispatch(&mut prof);
    }
    let pool_stats = prof.pool_stats();
    let max_depth = prof.max_depth();
    (prof.into_profile(total_steps), pool_stats, max_depth)
}

/// Batched twin of [`profile_events`]: drives the profiler with one bulk
/// [`TraceSink::on_batch`] call per [`EventBatch`] instead of one callback
/// per event.
///
/// The batches jointly carry a recorded run's event stream in order (e.g.
/// from `alchemist_trace::decode_batches_par`); the resulting
/// [`DepProfile`] equals both the per-event replay and live
/// instrumentation of that run.
pub fn profile_batches(
    module: &Module,
    batches: &[EventBatch],
    total_steps: u64,
    profile_config: ProfileConfig,
) -> (DepProfile, PoolStats, usize) {
    let mut prof = AlchemistProfiler::new(module, profile_config);
    for batch in batches {
        prof.on_batch(batch);
    }
    let pool_stats = prof.pool_stats();
    let max_depth = prof.max_depth();
    (prof.into_profile(total_steps), pool_stats, max_depth)
}

/// Compiles and profiles mini-C source with default settings.
///
/// # Errors
///
/// Returns a [`ProfileError`] on compile errors or runtime traps.
///
/// # Examples
///
/// ```
/// let outcome = alchemist_core::profile_source(
///     "int g; int main() { int i; for (i = 0; i < 8; i++) g += i; return g; }",
///     vec![],
/// ).unwrap();
/// assert_eq!(outcome.exec.exit_value, 28);
/// assert!(outcome.profile.len() >= 2);
/// ```
pub fn profile_source(src: &str, input: Vec<i64>) -> Result<ProfileOutcome, ProfileError> {
    let module = compile_source(src)?;
    let exec_config = ExecConfig::with_input(input);
    let (profile, exec, pool_stats, max_depth) =
        profile_module(&module, &exec_config, ProfileConfig::default())?;
    Ok(ProfileOutcome {
        profile,
        exec,
        pool_stats,
        max_depth,
        module,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_source_end_to_end() {
        let outcome = profile_source(
            "int acc;
             int square(int x) { return x * x; }
             int main() { int i; for (i = 0; i < 6; i++) acc += square(i); return acc; }",
            vec![],
        )
        .unwrap();
        assert_eq!(outcome.exec.exit_value, 55);
        let report = outcome.report();
        assert!(report.find("Method square").is_some());
        assert!(report.find("Method main").is_some());
    }

    #[test]
    fn frontend_errors_are_propagated() {
        let err = profile_source("int main() { return x; }", vec![]).unwrap_err();
        assert!(matches!(err, ProfileError::Frontend(_)));
        assert!(err.to_string().contains("undefined variable"));
    }

    #[test]
    fn runtime_traps_are_propagated() {
        let err = profile_source("int a[2]; int main() { return a[5]; }", vec![]).unwrap_err();
        assert!(matches!(err, ProfileError::Runtime(_)));
        assert!(err.to_string().contains("out of bounds"));
    }

    #[test]
    fn input_reaches_the_program() {
        let outcome = profile_source(
            "int main() { return input(0) + input(1) + input_len(); }",
            vec![20, 30],
        )
        .unwrap();
        assert_eq!(outcome.exec.exit_value, 52);
    }
}
