//! Mergeable partial profiles.
//!
//! A [`DepProfile`] as produced by one run (or one replay, or one shard)
//! is an *endpoint*: it answers queries but says nothing about how to
//! combine runs. This module splits that role in two. A [`PartialProfile`]
//! is the mergeable accumulation state — per-run, per-chunk or per-shard —
//! and sealing it yields the plain [`DepProfile`] every report and
//! analysis consumes. The split makes multi-run aggregation (the paper's
//! "gathering and analyzing profile runs", plural) a first-class algebra
//! instead of an ad-hoc loop, and it is what lets `.alcp` artifacts from
//! separate processes be combined offline.
//!
//! ## Order independence
//!
//! `merge` is **commutative** and **associative**, and the empty partial
//! is its **identity**: merging any number of partials yields the same
//! sealed profile in whatever order and grouping the merges happen. The
//! guarantee falls out of the per-field semantics:
//!
//! * counters (`total_steps`, `dropped_readers`, thread classifications,
//!   shadow telemetry, `count`/`cross_count`, `ttotal`/`inst`, nesting
//!   counts) **sum** — addition is commutative/associative with identity 0;
//! * per-edge minima take the **minimum** of the whole
//!   `(min_tdep, sample_addr, sample_tids)` triple under its lexicographic
//!   total order — `min` over a total order is commutative/associative,
//!   and an absent edge is its identity;
//! * construct and edge maps **union**, applying the rules above per key.
//!
//! The same tie-break rule is used online by
//! [`DepProfile::record_dependence`], so a sealed merge of per-run
//! partials is bit-for-bit the profile of the aggregated run (pinned for
//! every workload by `tests/profile_artifact.rs`, and property-tested for
//! arbitrary splits by `crates/core/tests/partial_props.rs`).

use crate::profile::DepProfile;

/// A mergeable, not-yet-sealed dependence profile.
///
/// Build one from each run ([`PartialProfile::from`] a [`DepProfile`]),
/// [`merge`](PartialProfile::merge) them in any order, then
/// [`seal`](PartialProfile::seal) the result.
///
/// ```
/// use alchemist_core::{profile_source, PartialProfile};
///
/// let src = "int g; int main() { int i; int n = input_len();
///            for (i = 0; i < n; i++) g += i; return g; }";
/// let a = profile_source(src, vec![0; 4]).unwrap().profile;
/// let b = profile_source(src, vec![0; 8]).unwrap().profile;
///
/// let mut fwd = PartialProfile::from(a.clone());
/// fwd.merge(&PartialProfile::from(b.clone()));
/// let mut rev = PartialProfile::from(b);
/// rev.merge(&PartialProfile::from(a));
/// assert_eq!(fwd.seal(), rev.seal());
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PartialProfile {
    inner: DepProfile,
}

impl PartialProfile {
    /// The empty partial — the identity of [`merge`](PartialProfile::merge).
    pub fn new() -> Self {
        PartialProfile::default()
    }

    /// Merges another partial into this one (union/min/sum semantics; see
    /// the module docs for the order-independence guarantee).
    pub fn merge(&mut self, other: &PartialProfile) {
        merge_into(&mut self.inner, &other.inner);
    }

    /// Read-only view of the accumulated state.
    pub fn as_profile(&self) -> &DepProfile {
        &self.inner
    }

    /// Whether nothing has been accumulated yet.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty() && self.inner.total_steps == 0
    }

    /// Seals the accumulation into a queryable [`DepProfile`].
    pub fn seal(self) -> DepProfile {
        self.inner
    }
}

impl From<DepProfile> for PartialProfile {
    /// Reopens a finished profile as one mergeable partial.
    fn from(profile: DepProfile) -> Self {
        PartialProfile { inner: profile }
    }
}

/// The merge primitive shared by [`PartialProfile::merge`] and
/// [`crate::aggregate::merge_profiles`]: folds `other` into `base` with
/// union/min/sum semantics.
pub(crate) fn merge_into(base: &mut DepProfile, other: &DepProfile) {
    base.total_steps += other.total_steps;
    base.dropped_readers += other.dropped_readers;
    // Layout telemetry sums like dropped_readers, so the spill audit in
    // reports stays live for aggregated profiles too.
    base.shadow_stats.pages_allocated += other.shadow_stats.pages_allocated;
    base.shadow_stats.read_set_spills += other.shadow_stats.read_set_spills;
    // Thread-classification counters sum like the edge counts they refine.
    base.intra_thread_deps += other.intra_thread_deps;
    base.cross_thread_deps += other.cross_thread_deps;
    for c in other.constructs() {
        base.merge_duration(c.id, c.ttotal, c.inst);
        for (key, stat) in &c.edges {
            base.merge_edge(c.id, *key, *stat);
        }
        for (ancestor, count) in &c.nested_in {
            base.merge_nested(c.id, *ancestor, *count);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::construct::{ConstructId, ConstructKind, DepKind};
    use crate::profile::{EdgeKey, EdgeStat};
    use alchemist_vm::Pc;

    fn sample() -> PartialProfile {
        let mut p = DepProfile::new();
        p.total_steps = 100;
        p.merge_duration(ConstructId::new(Pc(3), ConstructKind::Loop), 40, 4);
        p.merge_edge(
            ConstructId::new(Pc(3), ConstructKind::Loop),
            EdgeKey {
                kind: DepKind::Raw,
                head: Pc(10),
                tail: Pc(20),
            },
            EdgeStat {
                min_tdep: 7,
                count: 2,
                cross_count: 0,
                sample_addr: 5,
                sample_tids: (0, 0),
            },
        );
        PartialProfile::from(p)
    }

    #[test]
    fn empty_partial_is_identity() {
        let a = sample();
        let mut left = PartialProfile::new();
        left.merge(&a);
        let mut right = a.clone();
        right.merge(&PartialProfile::new());
        assert_eq!(left.seal(), right.seal());
    }

    #[test]
    fn merge_is_commutative() {
        let a = sample();
        let mut b = DepProfile::new();
        b.total_steps = 7;
        b.merge_edge(
            ConstructId::new(Pc(3), ConstructKind::Loop),
            EdgeKey {
                kind: DepKind::Raw,
                head: Pc(10),
                tail: Pc(20),
            },
            EdgeStat {
                min_tdep: 7,
                count: 1,
                cross_count: 1,
                sample_addr: 2,
                sample_tids: (1, 0),
            },
        );
        let b = PartialProfile::from(b);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        let ab = ab.seal();
        assert_eq!(ab, ba.seal());
        // The distance tie resolved to the lower sample address either way.
        let c = ab.construct(Pc(3)).unwrap();
        assert_eq!(c.edges.values().next().unwrap().sample_addr, 2);
    }

    #[test]
    fn seal_exposes_the_accumulated_profile() {
        let p = sample();
        assert!(!p.is_empty());
        assert_eq!(p.as_profile().total_steps, 100);
        let sealed = p.seal();
        assert_eq!(sealed.construct(Pc(3)).unwrap().inst, 4);
    }
}
