//! The online Alchemist profiler, as a [`TraceSink`].
//!
//! Wires the three mechanisms together:
//!
//! * VM control events drive the [`IndexStack`] (instrumentation rules),
//! * VM memory events update the [`ShadowMemory`], and
//! * every detected dependence is pushed through
//!   [`DepProfile::record_dependence`] (the Table II bottom-up walk).
//!
//! By default only *globally visible* memory (the global segment) is
//! profiled: in the futures execution model the paper targets, a spawned
//! construct gets its own stack, so frame-local reuse of stack addresses
//! between unrelated calls is not a real dependence. Set
//! [`ProfileConfig::trace_frame_memory`] to include frame memory (useful
//! for the indexing ablation).

use crate::construct::{ConstructId, DepKind};
use crate::index::IndexStack;
use crate::pool::{ConstructPool, PoolStats};
use crate::profile::DepProfile;
use crate::shadow::{Access, ShadowMemory};
use alchemist_lang::hir::FuncId;
use alchemist_vm::{BlockId, EventBatch, Module, Pc, Tid, Time, TraceSink};

/// How much dynamic context the index tree captures.
///
/// [`IndexMode::Full`] is Alchemist; [`IndexMode::CallContextOnly`] is the
/// baseline the paper argues against in section III ("Inadequacy of
/// Context Sensitivity"): only procedure constructs are indexed, so
/// loop-carried dependences cannot be separated from same-iteration ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IndexMode {
    /// Full execution indexing: procedures, loop iterations, conditionals.
    #[default]
    Full,
    /// Calling-context indexing only (the paper's \[2]/\[6]/\[8]-style
    /// baseline).
    CallContextOnly,
}

/// Profiler tuning knobs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileConfig {
    /// Construct-pool capacity before reuse is attempted (paper: 1M).
    pub pool_capacity: usize,
    /// Retirement-queue entries scanned per allocation.
    pub pool_scan_cap: usize,
    /// Distinct read sites kept per address between writes.
    pub reader_cap: usize,
    /// Also profile frame (stack) memory, not just globals.
    pub trace_frame_memory: bool,
    /// Record nesting statistics (needed for the Fig. 6(b) removal step).
    pub track_nesting: bool,
    /// Context captured by the index (the E14 ablation knob).
    pub index_mode: IndexMode,
}

impl Default for ProfileConfig {
    fn default() -> Self {
        ProfileConfig {
            pool_capacity: 1_000_000,
            pool_scan_cap: 64,
            reader_cap: 8,
            trace_frame_memory: false,
            track_nesting: true,
            index_mode: IndexMode::Full,
        }
    }
}

/// The online profiler. Create with [`AlchemistProfiler::new`], pass to
/// [`alchemist_vm::run`], then call [`AlchemistProfiler::into_profile`].
///
/// # Examples
///
/// ```
/// use alchemist_core::{AlchemistProfiler, ProfileConfig};
/// use alchemist_vm::{compile_source, run, ExecConfig};
///
/// let module = compile_source(
///     "int g; int main() { int i; for (i = 0; i < 4; i++) g += i; return g; }",
/// )?;
/// let mut prof = AlchemistProfiler::new(&module, ProfileConfig::default());
/// let outcome = run(&module, &ExecConfig::default(), &mut prof).unwrap();
/// let profile = prof.into_profile(outcome.steps);
/// assert!(profile.len() >= 2); // main + the loop, at least
/// # Ok::<(), alchemist_lang::LangError>(())
/// ```
#[derive(Debug)]
pub struct AlchemistProfiler<'m> {
    module: &'m Module,
    config: ProfileConfig,
    /// One index stack per thread, indexed by dense tid and grown lazily on
    /// a thread's first event. Every stack shares the pool, shadow and
    /// profile, so dependences *between* threads land in the same maps as
    /// intra-thread ones; single-threaded runs only ever touch
    /// `stacks[0]`, keeping their profiles bit-identical to the
    /// pre-threading profiler.
    stacks: Vec<IndexStack>,
    pool: ConstructPool,
    shadow: ShadowMemory,
    profile: DepProfile,
}

impl<'m> AlchemistProfiler<'m> {
    /// Creates a profiler for one run of `module`.
    pub fn new(module: &'m Module, config: ProfileConfig) -> Self {
        AlchemistProfiler {
            module,
            stacks: vec![IndexStack::new(config.track_nesting)],
            pool: ConstructPool::new(config.pool_capacity, config.pool_scan_cap),
            shadow: ShadowMemory::with_dense_limit(config.reader_cap, module.global_words),
            profile: DepProfile::new(),
            config,
        }
    }

    fn traced(&self, addr: u32) -> bool {
        self.config.trace_frame_memory || addr < self.module.global_words
    }

    /// Index of `tid`'s stack, growing the vector on a thread's first
    /// event. The scheduler hands out dense tids, so direct indexing is
    /// both exact and cheap.
    #[inline]
    fn stack_index(&mut self, tid: Tid) -> usize {
        let idx = tid.0 as usize;
        if idx >= self.stacks.len() {
            let track = self.config.track_nesting;
            self.stacks.resize_with(idx + 1, || IndexStack::new(track));
        }
        idx
    }

    /// Records one already-bounds-checked memory access: updates the
    /// shadow and streams every completed dependence into the profile.
    /// Shared by the per-event callbacks and the batched fast path, so
    /// the two cannot drift.
    #[inline]
    fn memory_access(&mut self, is_read: bool, t: Time, addr: u32, pc: Pc, tid: Tid) {
        let idx = self.stack_index(tid);
        let access = Access {
            pc,
            t,
            tid,
            node: self.stacks[idx].current(),
        };
        if is_read {
            if let Some(dep) = self.shadow.on_read(addr, access) {
                record_detected(
                    &self.pool,
                    &mut self.profile,
                    DepKind::Raw,
                    &dep,
                    pc,
                    t,
                    tid,
                );
            }
        } else {
            // Split borrows: the shadow streams each detected dependence
            // straight into the profile through the callback — no Vec, no
            // per-event allocation.
            let (shadow, profile, pool) = (&mut self.shadow, &mut self.profile, &self.pool);
            shadow.on_write(addr, access, &mut |kind, dep| {
                record_detected(pool, profile, kind, &dep, pc, t, tid);
            });
        }
    }

    /// Pool behaviour counters (for the pool ablation).
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.stats()
    }

    /// Deepest construct nesting observed on any thread (the paper's `L`).
    pub fn max_depth(&self) -> usize {
        self.stacks.iter().map(|s| s.max_depth).max().unwrap_or(0)
    }

    /// Finishes the run and extracts the profile. `total_steps` is the
    /// run's final instruction count (used for normalization in reports).
    pub fn into_profile(mut self, total_steps: u64) -> DepProfile {
        // Close anything left open (a trap, or a thread never joined), in
        // tid order so the result is deterministic.
        for stack in &mut self.stacks {
            stack.finalize(&mut self.pool, &mut self.profile, total_steps);
        }
        self.profile.total_steps = total_steps;
        self.profile.dropped_readers = self.shadow.dropped_readers;
        self.profile.shadow_stats = self.shadow.stats();
        self.profile
    }
}

impl TraceSink for AlchemistProfiler<'_> {
    fn on_enter_function(&mut self, t: Time, func: FuncId, _fp: u32, tid: Tid) {
        let head = self.module.funcs[func.0 as usize].entry;
        let idx = self.stack_index(tid);
        self.stacks[idx].enter_function(&mut self.pool, &mut self.profile, head, t);
    }

    fn on_exit_function(&mut self, t: Time, _func: FuncId, tid: Tid) {
        let idx = self.stack_index(tid);
        self.stacks[idx].exit_function(&mut self.pool, &mut self.profile, t);
    }

    fn on_block_entry(&mut self, t: Time, block: BlockId, tid: Tid) {
        if self.config.index_mode == IndexMode::CallContextOnly {
            return;
        }
        let idx = self.stack_index(tid);
        self.stacks[idx].block_entry(&mut self.pool, &mut self.profile, block, t);
    }

    fn on_predicate(&mut self, t: Time, pc: Pc, block: BlockId, _taken: bool, tid: Tid) {
        if self.config.index_mode == IndexMode::CallContextOnly {
            return;
        }
        let kind = self
            .module
            .analysis
            .predicate_kind(pc)
            .map(ConstructId::kind_of_pred)
            .expect("predicate event from a non-predicate instruction");
        let ipdom = self.module.analysis.block(block).ipdom;
        let idx = self.stack_index(tid);
        self.stacks[idx].predicate(&mut self.pool, &mut self.profile, pc, kind, ipdom, t);
    }

    fn on_read(&mut self, t: Time, addr: u32, pc: Pc, tid: Tid) {
        if self.traced(addr) {
            self.memory_access(true, t, addr, pc, tid);
        }
    }

    fn on_write(&mut self, t: Time, addr: u32, pc: Pc, tid: Tid) {
        if self.traced(addr) {
            self.memory_access(false, t, addr, pc, tid);
        }
    }

    fn on_batch(&mut self, batch: &EventBatch) {
        // Bulk path, pinned explicitly: one virtual call per batch even
        // when the profiler sits behind `dyn TraceSink` (a `MultiSink`
        // fan-out), with the rows consumed column-direct.
        //
        // Memory rows — the bulk of any trace — take a monomorphic fast
        // path: the `traced()` bound check is hoisted out of the loop
        // (`trace_frame_memory` and `global_words` cannot change
        // mid-batch), and consecutive memory rows are consumed in a tight
        // run that touches only the shadow, pool and profile. Control rows
        // fall through to the per-event handlers, which need the full
        // indexing machinery anyway.
        let trace_all = self.config.trace_frame_memory;
        let limit = self.module.global_words;
        let n = batch.len();
        let mut i = 0;
        while i < n {
            let tag = batch.tag(i);
            if tag.is_memory() {
                // Run of memory rows.
                let mut j = i;
                while j < n && batch.tag(j).is_memory() {
                    let addr = batch.addr(j);
                    if trace_all || addr < limit {
                        self.memory_access(
                            batch.tag(j) == alchemist_vm::EventTag::Read,
                            batch.time(j),
                            addr,
                            Pc(batch.pc(j)),
                            batch.tid(j),
                        );
                    }
                    j += 1;
                }
                i = j;
            } else {
                match batch.get(i) {
                    alchemist_vm::Event::Enter { t, func, fp, tid } => {
                        self.on_enter_function(t, func, fp, tid);
                    }
                    alchemist_vm::Event::Exit { t, func, tid } => {
                        self.on_exit_function(t, func, tid);
                    }
                    alchemist_vm::Event::Block { t, block, tid } => {
                        self.on_block_entry(t, block, tid);
                    }
                    alchemist_vm::Event::Predicate {
                        t,
                        pc,
                        block,
                        taken,
                        tid,
                    } => self.on_predicate(t, pc, block, taken, tid),
                    // Exhaustive on purpose: a new Event variant must fail
                    // to compile here, not fall into a stale catch-all.
                    alchemist_vm::Event::Read { .. } | alchemist_vm::Event::Write { .. } => {
                        unreachable!("memory rows handled by the run above")
                    }
                }
                i += 1;
            }
        }
    }
}

/// Forwards one detected dependence into the profile — the single site
/// threading a `DetectedDep` into `record_dependence`'s argument list.
#[inline]
fn record_detected(
    pool: &ConstructPool,
    profile: &mut DepProfile,
    kind: DepKind,
    dep: &crate::shadow::DetectedDep,
    tail_pc: Pc,
    tail_t: Time,
    tail_tid: Tid,
) {
    profile.record_dependence(
        pool,
        kind,
        dep.head.pc,
        dep.head.node,
        dep.head.t,
        tail_pc,
        tail_t,
        dep.addr,
        dep.head.tid,
        tail_tid,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::construct::ConstructKind;
    use alchemist_vm::{compile_source, run, ExecConfig};

    fn profile_src(src: &str) -> (DepProfile, Module) {
        let module = compile_source(src).unwrap();
        let mut prof = AlchemistProfiler::new(&module, ProfileConfig::default());
        let outcome = run(&module, &ExecConfig::default(), &mut prof).unwrap();
        (prof.into_profile(outcome.steps), module)
    }

    fn profile_src_with(src: &str, config: ProfileConfig, input: Vec<i64>) -> (DepProfile, Module) {
        let module = compile_source(src).unwrap();
        let mut prof = AlchemistProfiler::new(&module, config);
        let outcome = run(&module, &ExecConfig::with_input(input), &mut prof).unwrap();
        (prof.into_profile(outcome.steps), module)
    }

    #[test]
    fn main_is_profiled_once_with_full_duration() {
        let (p, m) = profile_src("int main() { return 0; }");
        let main = p.construct(m.funcs[0].entry).unwrap();
        assert_eq!(main.inst, 1);
        assert_eq!(main.id.kind, ConstructKind::Method);
        assert_eq!(main.ttotal, p.total_steps);
    }

    #[test]
    fn loop_iterations_counted_as_instances() {
        let (p, m) =
            profile_src("int g; int main() { int i; for (i = 0; i < 5; i++) g++; return g; }");
        let lp = p
            .constructs()
            .find(|c| c.id.kind == ConstructKind::Loop)
            .expect("loop construct profiled");
        // The for predicate executes 6 times; 6 instances are opened and
        // closed (the final, falsified test still brackets an instance).
        assert_eq!(lp.inst, 6);
        let _ = m;
    }

    #[test]
    fn cross_iteration_raw_is_detected_on_loop() {
        // g += i: the write at iteration i is read at iteration i+1 — a
        // cross-boundary RAW for the loop construct.
        let (p, _m) =
            profile_src("int g; int main() { int i; for (i = 0; i < 5; i++) g += 1; return g; }");
        let lp = p
            .constructs()
            .find(|c| c.id.kind == ConstructKind::Loop)
            .unwrap();
        assert!(
            lp.edges.keys().any(|k| k.kind == DepKind::Raw),
            "loop-carried RAW on g must cross iteration boundary"
        );
        assert!(
            lp.edges.keys().any(|k| k.kind == DepKind::Waw),
            "loop-carried WAW on g"
        );
    }

    #[test]
    fn independent_iterations_have_no_cross_deps() {
        // Each iteration writes a distinct cell: no cross-iteration edges
        // on the loop construct.
        let (p, _m) = profile_src(
            "int a[8]; int main() { int i; for (i = 0; i < 8; i++) a[i] = i; return a[3]; }",
        );
        let lp = p
            .constructs()
            .find(|c| c.id.kind == ConstructKind::Loop)
            .unwrap();
        let cross_on_array: Vec<_> = lp
            .edges
            .keys()
            .filter(|k| matches!(k.kind, DepKind::Waw | DepKind::War))
            .collect();
        assert!(
            cross_on_array.is_empty(),
            "disjoint writes must not alias: {cross_on_array:?}"
        );
    }

    #[test]
    fn frame_memory_ignored_by_default_but_traceable() {
        let src = "int main() { int x = 0; int i; \
                    for (i = 0; i < 4; i++) x += i; return x; }";
        let (p_default, _) = profile_src(src);
        let loop_default = p_default
            .constructs()
            .find(|c| c.id.kind == ConstructKind::Loop)
            .unwrap();
        assert_eq!(loop_default.edges.len(), 0, "locals not traced by default");
        let cfg = ProfileConfig {
            trace_frame_memory: true,
            ..Default::default()
        };
        let (p_frames, _) = profile_src_with(src, cfg, vec![]);
        let loop_frames = p_frames
            .constructs()
            .find(|c| c.id.kind == ConstructKind::Loop)
            .unwrap();
        assert!(
            loop_frames.edges.keys().any(|k| k.kind == DepKind::Raw),
            "with frame tracing the x accumulation shows up"
        );
    }

    #[test]
    fn procedure_to_continuation_raw_detected() {
        // Paper Fig. 1/2 shape: f writes a global, the continuation reads it.
        let (p, m) = profile_src(
            "int out;
             void f() { out = 42; }
             int main() { f(); return out; }",
        );
        let f = p.construct(m.func_by_name("f").unwrap().1.entry).unwrap();
        let raw: Vec<_> = f.edges.keys().filter(|k| k.kind == DepKind::Raw).collect();
        assert_eq!(raw.len(), 1, "exactly the out write->read edge");
        // The distance is tiny (return + read), hence violating.
        assert_eq!(f.violating_count(DepKind::Raw), 1);
    }

    #[test]
    fn intra_construct_dependences_are_discarded() {
        // Both accesses inside f in the same call: nothing recorded for f.
        let (p, m) = profile_src(
            "int g;
             void f() { g = 1; g = g + 1; }
             int main() { f(); return 0; }",
        );
        let f = p.construct(m.func_by_name("f").unwrap().1.entry).unwrap();
        assert!(
            f.edges.is_empty(),
            "write->read inside one call is intra-construct: {:?}",
            f.edges.keys().collect::<Vec<_>>()
        );
    }

    #[test]
    fn dependence_between_calls_attributed_to_first_call() {
        // f() called twice; the second call reads what the first wrote.
        // The edge belongs to Method f (crosses its boundary).
        let (p, m) = profile_src(
            "int g;
             void f() { g = g + 1; }
             int main() { f(); f(); return g; }",
        );
        let f = p.construct(m.func_by_name("f").unwrap().1.entry).unwrap();
        assert!(f.edges.keys().any(|k| k.kind == DepKind::Raw));
        assert_eq!(f.inst, 2);
    }

    #[test]
    fn waw_and_war_detected_across_calls() {
        let (p, m) = profile_src(
            "int g; int h;
             void f() { g = 7; h = g; }
             int main() { f(); f(); return g + h; }",
        );
        let f = p.construct(m.func_by_name("f").unwrap().1.entry).unwrap();
        assert!(
            f.edges.keys().any(|k| k.kind == DepKind::Waw),
            "g written twice"
        );
        assert!(
            f.edges.keys().any(|k| k.kind == DepKind::War),
            "g read (call 1, h = g) then written (call 2)"
        );
    }

    #[test]
    fn pool_stats_and_depth_reported() {
        let module = compile_source(
            "int g; int main() { int i; for (i = 0; i < 50; i++) g += i; return g; }",
        )
        .unwrap();
        let mut prof = AlchemistProfiler::new(&module, ProfileConfig::default());
        let outcome = run(&module, &ExecConfig::default(), &mut prof).unwrap();
        assert!(prof.max_depth() >= 2);
        assert!(prof.pool_stats().allocated >= 2);
        let _ = prof.into_profile(outcome.steps);
    }

    #[test]
    fn tiny_pool_still_produces_a_profile() {
        let cfg = ProfileConfig {
            pool_capacity: 2,
            ..Default::default()
        };
        let (p, _m) = profile_src_with(
            "int g; int main() { int i; for (i = 0; i < 40; i++) g += i; return g; }",
            cfg,
            vec![],
        );
        assert!(p.total_steps > 0);
        assert!(p.len() >= 2);
    }

    #[test]
    fn capped_read_sets_surface_in_the_profile() {
        // Three distinct read sites of `g` between writes; a cap of 1
        // forces evictions, and the profile must say so.
        let src = "int g; int a; int b; int c;
             int main() { g = 1; a = g; b = g; c = g; g = 2; return g; }";
        let cfg = ProfileConfig {
            reader_cap: 1,
            ..Default::default()
        };
        let (p, _m) = profile_src_with(src, cfg, vec![]);
        assert!(
            p.dropped_readers > 0,
            "cap of 1 with 3 read sites must drop reads"
        );
        let (p_uncapped, _m) = profile_src(src);
        assert_eq!(p_uncapped.dropped_readers, 0, "default cap is not hit");
    }

    #[test]
    fn total_steps_recorded() {
        let (p, _m) = profile_src("int main() { return 1; }");
        assert_eq!(p.total_steps, 2);
    }

    #[test]
    fn call_context_only_mode_sees_no_loop_constructs() {
        let src = "int g;
            void bump() { g += 1; }
            int main() { int i; for (i = 0; i < 6; i++) bump(); return g; }";
        let cfg = ProfileConfig {
            index_mode: crate::profiler::IndexMode::CallContextOnly,
            ..Default::default()
        };
        let (p, m) = profile_src_with(src, cfg, vec![]);
        assert!(
            p.constructs().all(|c| c.id.kind == ConstructKind::Method),
            "only procedures indexed in call-context mode"
        );
        // The cross-iteration dependence is still visible on `bump` (it
        // crosses the call boundary), so the method profile survives...
        let bump = p
            .construct(m.func_by_name("bump").unwrap().1.entry)
            .unwrap();
        assert!(bump.edges.keys().any(|k| k.kind == DepKind::Raw));
    }

    #[test]
    fn call_context_only_mode_misses_loop_carried_deps() {
        // The dependence is loop-carried but INLINE (no call): full
        // indexing attributes it to the loop construct; the context-only
        // baseline has no construct to hang it on at all (main is active).
        let src = "int g; int main() { int i; for (i = 0; i < 6; i++) g += i; return g; }";
        let (full, _) = profile_src(src);
        let full_loop_edges: usize = full
            .constructs()
            .filter(|c| c.id.kind == ConstructKind::Loop)
            .map(|c| c.edges.len())
            .sum();
        assert!(full_loop_edges > 0, "full mode sees the loop-carried RAW");

        let cfg = ProfileConfig {
            index_mode: crate::profiler::IndexMode::CallContextOnly,
            ..Default::default()
        };
        let (ctx, _) = profile_src_with(src, cfg, vec![]);
        let total_edges: usize = ctx.constructs().map(|c| c.edges.len()).sum();
        assert_eq!(
            total_edges, 0,
            "context-only profiling cannot attribute the loop-carried dep"
        );
    }
}
