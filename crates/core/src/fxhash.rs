//! A small, fast, non-cryptographic hasher for the profile's hot maps.
//!
//! The dependence-profile maps ([`DepProfile`](crate::DepProfile)'s
//! construct table, each construct's edge map) are keyed by tiny
//! fixed-size keys (`Pc`, `EdgeKey`) and hit on every recorded dependence,
//! so the default SipHash — keyed and DoS-resistant, but several times
//! slower on short keys — is pure overhead there: the keys come from the
//! profiled program's code layout, not from untrusted input. This module
//! implements the Firefox/rustc "Fx" multiply-rotate hash in-crate (the
//! build is offline, so `rustc-hash` cannot be a dependency).
//!
//! The hash is **not** collision-resistant against adversarial keys; use
//! it only for maps whose keys the profiler itself produces.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` using the Fx hash (drop-in for the profile's hot maps).
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using the Fx hash.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

/// Builds [`FxHasher`]s; the default state is the only state.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// The Fx multiply-rotate hasher: one rotate, one xor, one multiply per
/// word of input.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, mut bytes: &[u8]) {
        while bytes.len() >= 8 {
            self.add_to_hash(u64::from_le_bytes(bytes[..8].try_into().unwrap()));
            bytes = &bytes[8..];
        }
        if bytes.len() >= 4 {
            self.add_to_hash(u64::from(u32::from_le_bytes(
                bytes[..4].try_into().unwrap(),
            )));
            bytes = &bytes[4..];
        }
        for &b in bytes {
            self.add_to_hash(u64::from(b));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of<T: Hash>(v: &T) -> u64 {
        let mut h = FxHasher::default();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn equal_keys_hash_equal() {
        assert_eq!(hash_of(&42u32), hash_of(&42u32));
        assert_eq!(hash_of(&(1u32, 2u64)), hash_of(&(1u32, 2u64)));
    }

    #[test]
    fn nearby_keys_differ() {
        // Not a distribution test — just a sanity check that the mix step
        // actually runs (the all-zero hasher would collide everything).
        let hashes: Vec<u64> = (0u32..64).map(|i| hash_of(&i)).collect();
        let mut dedup = hashes.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), hashes.len(), "64 small keys collide");
    }

    #[test]
    fn byte_stream_matches_wordwise_writes() {
        // `write` consumes 8-byte words first; a 12-byte input exercises
        // the word, dword and tail paths together.
        let mut h = FxHasher::default();
        h.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12]);
        let stream = h.finish();
        let mut h2 = FxHasher::default();
        h2.write_u64(u64::from_le_bytes([1, 2, 3, 4, 5, 6, 7, 8]));
        h2.write_u32(u32::from_le_bytes([9, 10, 11, 12]));
        assert_eq!(stream, h2.finish());
    }

    #[test]
    fn fx_map_behaves_like_a_map() {
        let mut m: FxHashMap<(u32, u32), u64> = FxHashMap::default();
        for i in 0..1000u32 {
            m.insert((i, i.wrapping_mul(7)), u64::from(i));
        }
        assert_eq!(m.len(), 1000);
        for i in 0..1000u32 {
            assert_eq!(m[&(i, i.wrapping_mul(7))], u64::from(i));
        }
    }
}
