//! The dependence profile and its online update algorithm (Table II).
//!
//! The profile is keyed by *static* construct (head pc). Each entry
//! accumulates:
//!
//! * `Ttotal` — total instructions spent in instances of the construct
//!   (recursion-safe: nested instances of the same construct are counted
//!   once, per the paper's nesting-counter fix),
//! * `inst` — number of completed instances, and
//! * one record per exercised dependence edge `(kind, head pc, tail pc)`
//!   with the **minimum** observed `Tdep` (the paper keeps the minimum
//!   because it bounds the exploitable concurrency) and an exercise count.
//!
//! [`DepProfile::record_dependence`] is the paper's `Profile()` procedure:
//! starting from the construct instance enclosing the dependence head, walk
//! parent links upward and update every *completed* enclosing construct,
//! stopping at the first active (still-running) instance — for it and all
//! its ancestors the dependence is intra-construct — or at a retired node.

use crate::construct::{ConstructId, DepKind};
use crate::fxhash::FxHashMap;
use crate::pool::{ConstructPool, NodeRef};
use crate::shadow::ShadowStats;
use alchemist_vm::{Pc, Tid, Time};

/// Statistics for one static dependence edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeStat {
    /// Minimum observed distance `t(tail) - t(head)`.
    pub min_tdep: u64,
    /// How many times the edge was exercised against this construct.
    pub count: u64,
    /// Exercises whose head and tail ran on *different* threads. A nonzero
    /// value means the edge is already cut by the program's own thread
    /// decomposition (see the parallel simulator, which excludes such edges
    /// from the serialization cost).
    pub cross_count: u64,
    /// A conflicting address observed for the edge (resolves to the
    /// variable name in reports).
    pub sample_addr: u32,
    /// `(head thread, tail thread)` observed at the minimum-distance
    /// exercise. Ties on `(min_tdep, sample_addr)` keep the
    /// lexicographically smallest pair, so the sample is independent of
    /// observation order (sequential replay and sharded merges agree).
    pub sample_tids: (u32, u32),
}

/// Key of a static dependence edge within a construct's profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EdgeKey {
    /// Dependence kind.
    pub kind: DepKind,
    /// Head (earlier access) instruction.
    pub head: Pc,
    /// Tail (later access) instruction.
    pub tail: Pc,
}

/// Accumulated profile of one static construct.
#[derive(Debug, Clone, PartialEq)]
pub struct ConstructProfile {
    /// The construct's identity.
    pub id: ConstructId,
    /// Total instructions across instances (outermost instances only, so
    /// recursion is not double-counted).
    pub ttotal: u64,
    /// Completed instance count.
    pub inst: u64,
    /// Dependence edges crossing this construct's boundary. Fx-hashed:
    /// this map is hit once per recorded dependence per enclosing
    /// construct, and its keys come from the profiled program's code
    /// layout, so the hot path skips SipHash.
    pub edges: FxHashMap<EdgeKey, EdgeStat>,
    /// Live nesting depth (recursion counter; transient during profiling).
    nesting: u32,
    /// Instances nested within other static constructs:
    /// `nested_in[ancestor_head] = count`. Used for the paper's Fig. 6(b)
    /// "remove constructs with a single nested instance" step.
    pub nested_in: FxHashMap<Pc, u64>,
}

impl ConstructProfile {
    fn new(id: ConstructId) -> Self {
        ConstructProfile {
            id,
            ttotal: 0,
            inst: 0,
            edges: FxHashMap::default(),
            nesting: 0,
            nested_in: FxHashMap::default(),
        }
    }

    /// Mean instance duration in instructions (the `Tdur` used to classify
    /// violating dependences). Zero when no instance completed.
    pub fn tdur_mean(&self) -> u64 {
        self.ttotal.checked_div(self.inst).unwrap_or(0)
    }

    /// Edges of `kind` whose minimum distance does not exceed the mean
    /// duration — the paper's *violating* dependences (`Tdep <= Tdur`).
    pub fn violating(&self, kind: DepKind) -> impl Iterator<Item = (&EdgeKey, &EdgeStat)> {
        let tdur = self.tdur_mean();
        self.edges
            .iter()
            .filter(move |(k, s)| k.kind == kind && s.min_tdep <= tdur)
    }

    /// Number of distinct violating static edges of `kind`.
    pub fn violating_count(&self, kind: DepKind) -> usize {
        self.violating(kind).count()
    }

    /// Number of distinct static edges of `kind` (violating or not).
    pub fn edge_count(&self, kind: DepKind) -> usize {
        self.edges.keys().filter(|k| k.kind == kind).count()
    }
}

/// The whole-program dependence profile.
#[derive(Debug, Clone, Default)]
pub struct DepProfile {
    constructs: FxHashMap<Pc, ConstructProfile>,
    /// Total instructions executed by the profiled run.
    pub total_steps: u64,
    /// Reads the shadow memory dropped because a per-address read set hit
    /// its cap ([`crate::ProfileConfig::reader_cap`]). Non-zero means the
    /// WAR edge set may be incomplete; reports surface this so a capped run
    /// is never mistaken for a clean one.
    pub dropped_readers: u64,
    /// Shadow-memory layout telemetry (pages faulted, read-set spills)
    /// from the run that produced this profile. **Excluded from
    /// equality**: the detected dependences are layout-independent, but
    /// these counters are not (a sharded replay faults pages per shard),
    /// and parity means "same profile", not "same allocations".
    pub shadow_stats: ShadowStats,
    /// Detected dependences whose head and tail ran on the same thread.
    /// Classified once per detected dependence, *before* the bottom-up
    /// construct walk, so the count is attribution-independent (a
    /// dependence internal to every open construct still counts here).
    pub intra_thread_deps: u64,
    /// Detected dependences whose head and tail ran on different threads —
    /// sharing the program's own thread decomposition already exposes.
    pub cross_thread_deps: u64,
}

impl PartialEq for DepProfile {
    fn eq(&self, other: &Self) -> bool {
        // `shadow_stats` deliberately not compared — see its field docs.
        self.constructs == other.constructs
            && self.total_steps == other.total_steps
            && self.dropped_readers == other.dropped_readers
            && self.intra_thread_deps == other.intra_thread_deps
            && self.cross_thread_deps == other.cross_thread_deps
    }
}

impl DepProfile {
    /// Creates an empty profile.
    pub fn new() -> Self {
        DepProfile::default()
    }

    /// The profile entry for a construct, if it ever started an instance.
    pub fn construct(&self, head: Pc) -> Option<&ConstructProfile> {
        self.constructs.get(&head)
    }

    /// Iterates all constructs in arbitrary order.
    pub fn constructs(&self) -> impl Iterator<Item = &ConstructProfile> {
        self.constructs.values()
    }

    /// Number of profiled static constructs.
    pub fn len(&self) -> usize {
        self.constructs.len()
    }

    /// Whether no construct was profiled.
    pub fn is_empty(&self) -> bool {
        self.constructs.is_empty()
    }

    fn entry(&mut self, id: ConstructId) -> &mut ConstructProfile {
        self.constructs
            .entry(id.head)
            .or_insert_with(|| ConstructProfile::new(id))
    }

    /// Notes that an instance of `id` started (push). Maintains the
    /// recursion nesting counter.
    pub fn on_push(&mut self, id: ConstructId) {
        self.entry(id).nesting += 1;
    }

    /// Notes that an instance of `id` completed (pop), running from
    /// `t_enter` to `t_exit`; `ancestors` are the static heads of the
    /// instances still open on the indexing stack (for nesting statistics).
    pub fn on_pop(
        &mut self,
        id: ConstructId,
        t_enter: Time,
        t_exit: Time,
        ancestors: impl Iterator<Item = Pc>,
    ) {
        let e = self.entry(id);
        e.inst += 1;
        debug_assert!(e.nesting > 0, "pop without matching push");
        e.nesting = e.nesting.saturating_sub(1);
        // Recursion fix (paper, "Recursion"): aggregate Ttotal only for the
        // outermost live instance of this static construct.
        if e.nesting == 0 {
            e.ttotal += t_exit.saturating_sub(t_enter);
        }
        for a in ancestors {
            if a != id.head {
                *e.nested_in.entry(a).or_insert(0) += 1;
            }
        }
    }

    /// The paper's `Profile()` procedure (Table II): records a dependence
    /// of `kind` from `(head_pc, t_head)` to `(tail_pc, t_tail)`, where
    /// `head_node` is the construct instance that encloses the head access.
    ///
    /// Walks bottom-up through completed enclosing instances, adding or
    /// tightening the edge in each one's profile; stops at the first active
    /// instance (intra-construct from there up) or at a node whose slot was
    /// retired and reused (its window guarantee makes the edge irrelevant).
    ///
    /// `src_tid`/`dst_tid` are the threads of the head and tail accesses;
    /// they classify the dependence as intra- or cross-thread (global
    /// counters, incremented once per call) and feed each touched edge's
    /// [`EdgeStat::cross_count`] and [`EdgeStat::sample_tids`].
    #[allow(clippy::too_many_arguments)]
    pub fn record_dependence(
        &mut self,
        pool: &ConstructPool,
        kind: DepKind,
        head_pc: Pc,
        head_node: NodeRef,
        t_head: Time,
        tail_pc: Pc,
        t_tail: Time,
        addr: u32,
        src_tid: Tid,
        dst_tid: Tid,
    ) {
        let cross = src_tid != dst_tid;
        if cross {
            self.cross_thread_deps += 1;
        } else {
            self.intra_thread_deps += 1;
        }
        let tids = (src_tid.0, dst_tid.0);
        let tdep = t_tail.saturating_sub(t_head);
        let mut cur = Some(head_node);
        while let Some(r) = cur {
            // Stale generation: node retired and reused. Stop (Table II's
            // `c.Tenter <= Th < c.Texit` fails for the new occupant).
            let Some(node) = pool.resolve(r) else { break };
            // Active instance: the dependence is internal to it and to all
            // of its ancestors.
            let Some(t_exit) = node.t_exit else { break };
            debug_assert!(
                node.t_enter <= t_head && t_head < t_exit.max(node.t_enter + 1),
                "head access outside its enclosing instance window"
            );
            let id = ConstructId::new(node.label, node.kind);
            let e = self.entry(id);
            let stat = e
                .edges
                .entry(EdgeKey {
                    kind,
                    head: head_pc,
                    tail: tail_pc,
                })
                .or_insert(EdgeStat {
                    min_tdep: u64::MAX,
                    count: 0,
                    cross_count: 0,
                    sample_addr: addr,
                    sample_tids: tids,
                });
            stat.count += 1;
            stat.cross_count += cross as u64;
            // Ties on the minimum distance keep the lowest address (then
            // the lowest thread pair), so the result is independent of
            // observation order — sequential replay and an address-sharded
            // parallel merge agree exactly.
            if (tdep, addr, tids) < (stat.min_tdep, stat.sample_addr, stat.sample_tids) {
                stat.min_tdep = tdep;
                stat.sample_addr = addr;
                stat.sample_tids = tids;
            }
            cur = node.parent;
        }
    }

    /// Total violating static edges of `kind` across all constructs
    /// (Fig. 6's normalization denominator).
    pub fn total_violating(&self, kind: DepKind) -> usize {
        self.constructs
            .values()
            .map(|c| c.violating_count(kind))
            .sum()
    }

    /// Adds `ttotal`/`inst` directly to a construct's duration statistics
    /// (used by offline profile builders such as the oracle).
    pub fn merge_duration(&mut self, id: ConstructId, ttotal: u64, inst: u64) {
        let e = self.entry(id);
        e.ttotal += ttotal;
        e.inst += inst;
    }

    /// Merges an edge statistic into a construct's profile, keeping the
    /// minimum distance and summing counts.
    pub fn merge_edge(&mut self, construct: ConstructId, key: EdgeKey, stat: EdgeStat) {
        let e = self.entry(construct);
        let s = e.edges.entry(key).or_insert(EdgeStat {
            min_tdep: u64::MAX,
            count: 0,
            cross_count: 0,
            sample_addr: stat.sample_addr,
            sample_tids: stat.sample_tids,
        });
        s.count += stat.count;
        s.cross_count += stat.cross_count;
        // Same tie rule as `record_dependence`: equal distances keep the
        // lowest address, then the lowest thread pair, making the merge
        // commutative and shard-order independent.
        if (stat.min_tdep, stat.sample_addr, stat.sample_tids)
            < (s.min_tdep, s.sample_addr, s.sample_tids)
        {
            s.min_tdep = stat.min_tdep;
            s.sample_addr = stat.sample_addr;
            s.sample_tids = stat.sample_tids;
        }
    }

    /// Merges a nesting count (descendant instances observed inside an
    /// ancestor construct).
    pub fn merge_nested(&mut self, descendant: ConstructId, ancestor: Pc, count: u64) {
        *self
            .entry(descendant)
            .nested_in
            .entry(ancestor)
            .or_insert(0) += count;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::construct::ConstructKind;
    use crate::pool::ConstructPool;

    fn cid(pc: u32, kind: ConstructKind) -> ConstructId {
        ConstructId::new(Pc(pc), kind)
    }

    #[test]
    fn ttotal_and_inst_accumulate() {
        let mut p = DepProfile::new();
        let id = cid(5, ConstructKind::Loop);
        for i in 0..3u64 {
            p.on_push(id);
            p.on_pop(id, i * 10, i * 10 + 4, std::iter::empty());
        }
        let c = p.construct(Pc(5)).unwrap();
        assert_eq!(c.inst, 3);
        assert_eq!(c.ttotal, 12);
        assert_eq!(c.tdur_mean(), 4);
    }

    #[test]
    fn recursion_counts_outermost_only() {
        let mut p = DepProfile::new();
        let f = cid(7, ConstructKind::Method);
        // f calls f: push f@0, push f@2, pop f@8 (inner), pop f@10 (outer).
        p.on_push(f);
        p.on_push(f);
        p.on_pop(f, 2, 8, std::iter::empty());
        p.on_pop(f, 0, 10, std::iter::empty());
        let c = p.construct(Pc(7)).unwrap();
        assert_eq!(c.inst, 2, "both instances counted");
        assert_eq!(c.ttotal, 10, "inner duration not double-counted");
    }

    #[test]
    fn record_dependence_updates_completed_ancestors_only() {
        let mut pool = ConstructPool::new(16, 4);
        let mut p = DepProfile::new();
        // main (active) > loop iteration (completed) > if (completed).
        let main = pool.push_instance(Pc(0), ConstructKind::Method, None, 0);
        p.on_push(cid(0, ConstructKind::Method));
        let it = pool.push_instance(Pc(10), ConstructKind::Loop, Some(main), 5);
        p.on_push(cid(10, ConstructKind::Loop));
        let iff = pool.push_instance(Pc(20), ConstructKind::Branch, Some(it), 6);
        p.on_push(cid(20, ConstructKind::Branch));
        // Head access at t=7 inside `iff`.
        pool.complete_instance(iff, 8);
        p.on_pop(cid(20, ConstructKind::Branch), 6, 8, std::iter::empty());
        pool.complete_instance(it, 9);
        p.on_pop(cid(10, ConstructKind::Loop), 5, 9, std::iter::empty());
        // Tail at t=12; main still active.
        p.record_dependence(
            &pool,
            DepKind::Raw,
            Pc(100),
            iff,
            7,
            Pc(200),
            12,
            3,
            Tid::MAIN,
            Tid::MAIN,
        );

        let key = EdgeKey {
            kind: DepKind::Raw,
            head: Pc(100),
            tail: Pc(200),
        };
        assert_eq!(
            p.construct(Pc(20)).unwrap().edges[&key],
            EdgeStat {
                min_tdep: 5,
                count: 1,
                cross_count: 0,
                sample_addr: 3,
                sample_tids: (0, 0),
            }
        );
        assert_eq!(
            p.construct(Pc(10)).unwrap().edges[&key],
            EdgeStat {
                min_tdep: 5,
                count: 1,
                cross_count: 0,
                sample_addr: 3,
                sample_tids: (0, 0),
            }
        );
        assert!(
            p.construct(Pc(0)).unwrap().edges.is_empty(),
            "active main must not record (intra-construct)"
        );
    }

    #[test]
    fn min_tdep_is_kept() {
        let mut pool = ConstructPool::new(16, 4);
        let mut p = DepProfile::new();
        let n = pool.push_instance(Pc(10), ConstructKind::Loop, None, 0);
        p.on_push(cid(10, ConstructKind::Loop));
        pool.complete_instance(n, 10);
        p.on_pop(cid(10, ConstructKind::Loop), 0, 10, std::iter::empty());
        let m = Tid::MAIN;
        p.record_dependence(&pool, DepKind::Raw, Pc(1), n, 5, Pc(2), 50, 7, m, m); // 45
        p.record_dependence(&pool, DepKind::Raw, Pc(1), n, 8, Pc(2), 20, 9, m, m); // 12
        p.record_dependence(&pool, DepKind::Raw, Pc(1), n, 2, Pc(2), 90, 7, m, m); // 88
        let key = EdgeKey {
            kind: DepKind::Raw,
            head: Pc(1),
            tail: Pc(2),
        };
        let stat = p.construct(Pc(10)).unwrap().edges[&key];
        assert_eq!(stat.min_tdep, 12);
        assert_eq!(stat.count, 3);
        assert_eq!(stat.sample_addr, 9, "address follows the minimum");
    }

    #[test]
    fn retired_nodes_stop_the_walk() {
        let mut pool = ConstructPool::new(1, 4);
        let mut p = DepProfile::new();
        let a = pool.push_instance(Pc(10), ConstructKind::Loop, None, 0);
        p.on_push(cid(10, ConstructKind::Loop));
        pool.complete_instance(a, 10);
        p.on_pop(cid(10, ConstructKind::Loop), 0, 10, std::iter::empty());
        // Force reuse of a's slot at t=30 (completed 20 ago > duration 10).
        let _b = pool.push_instance(Pc(99), ConstructKind::Loop, None, 30);
        // A dependence whose head ref is the stale `a` must be dropped.
        p.record_dependence(
            &pool,
            DepKind::Raw,
            Pc(1),
            a,
            5,
            Pc(2),
            31,
            0,
            Tid::MAIN,
            Tid::MAIN,
        );
        assert!(p.construct(Pc(10)).unwrap().edges.is_empty());
    }

    #[test]
    fn violating_classification_uses_mean_duration() {
        let mut p = DepProfile::new();
        let id = cid(3, ConstructKind::Method);
        p.on_push(id);
        p.on_pop(id, 0, 100, std::iter::empty()); // Tdur = 100
        let c = p.entry(id);
        c.edges.insert(
            EdgeKey {
                kind: DepKind::Raw,
                head: Pc(1),
                tail: Pc(2),
            },
            EdgeStat {
                min_tdep: 50,
                count: 1,
                cross_count: 0,
                sample_addr: 0,
                sample_tids: (0, 0),
            }, // violating (50 <= 100)
        );
        c.edges.insert(
            EdgeKey {
                kind: DepKind::Raw,
                head: Pc(1),
                tail: Pc(3),
            },
            EdgeStat {
                min_tdep: 150,
                count: 1,
                cross_count: 0,
                sample_addr: 0,
                sample_tids: (0, 0),
            }, // fine (150 > 100)
        );
        c.edges.insert(
            EdgeKey {
                kind: DepKind::War,
                head: Pc(4),
                tail: Pc(5),
            },
            EdgeStat {
                min_tdep: 10,
                count: 1,
                cross_count: 0,
                sample_addr: 0,
                sample_tids: (0, 0),
            }, // violating, different kind
        );
        let c = p.construct(Pc(3)).unwrap();
        assert_eq!(c.violating_count(DepKind::Raw), 1);
        assert_eq!(c.violating_count(DepKind::War), 1);
        assert_eq!(c.violating_count(DepKind::Waw), 0);
        assert_eq!(c.edge_count(DepKind::Raw), 2);
        assert_eq!(p.total_violating(DepKind::Raw), 1);
    }

    #[test]
    fn cross_thread_dependences_are_classified() {
        let mut pool = ConstructPool::new(16, 4);
        let mut p = DepProfile::new();
        let n = pool.push_instance(Pc(10), ConstructKind::Loop, None, 0);
        p.on_push(cid(10, ConstructKind::Loop));
        pool.complete_instance(n, 10);
        p.on_pop(cid(10, ConstructKind::Loop), 0, 10, std::iter::empty());
        // One intra-thread exercise, two cross-thread ones.
        p.record_dependence(
            &pool,
            DepKind::Raw,
            Pc(1),
            n,
            5,
            Pc(2),
            50,
            7,
            Tid(1),
            Tid(1),
        );
        p.record_dependence(
            &pool,
            DepKind::Raw,
            Pc(1),
            n,
            8,
            Pc(2),
            20,
            7,
            Tid(0),
            Tid(2),
        );
        p.record_dependence(
            &pool,
            DepKind::Raw,
            Pc(1),
            n,
            2,
            Pc(2),
            90,
            7,
            Tid(2),
            Tid(0),
        );
        assert_eq!(p.intra_thread_deps, 1);
        assert_eq!(p.cross_thread_deps, 2);
        let key = EdgeKey {
            kind: DepKind::Raw,
            head: Pc(1),
            tail: Pc(2),
        };
        let stat = p.construct(Pc(10)).unwrap().edges[&key];
        assert_eq!(stat.count, 3);
        assert_eq!(stat.cross_count, 2);
        assert_eq!(stat.min_tdep, 12);
        assert_eq!(stat.sample_tids, (0, 2), "tids follow the minimum");
    }

    #[test]
    fn sample_tids_tie_break_is_order_independent() {
        // Two exercises with identical (tdep, addr) but different thread
        // pairs: the lexicographically smallest pair wins either way round.
        let exercises = [(Tid(3), Tid(1)), (Tid(1), Tid(4))];
        for order in [[0usize, 1], [1, 0]] {
            let mut pool = ConstructPool::new(16, 4);
            let mut p = DepProfile::new();
            let n = pool.push_instance(Pc(10), ConstructKind::Loop, None, 0);
            p.on_push(cid(10, ConstructKind::Loop));
            pool.complete_instance(n, 10);
            p.on_pop(cid(10, ConstructKind::Loop), 0, 10, std::iter::empty());
            for &i in &order {
                let (s, d) = exercises[i];
                p.record_dependence(&pool, DepKind::Raw, Pc(1), n, 5, Pc(2), 25, 7, s, d);
            }
            let key = EdgeKey {
                kind: DepKind::Raw,
                head: Pc(1),
                tail: Pc(2),
            };
            let stat = p.construct(Pc(10)).unwrap().edges[&key];
            assert_eq!(stat.sample_tids, (1, 4), "order {order:?}");
        }
    }

    #[test]
    fn merge_edge_sums_cross_counts_commutatively() {
        let id = cid(10, ConstructKind::Loop);
        let key = EdgeKey {
            kind: DepKind::War,
            head: Pc(1),
            tail: Pc(2),
        };
        let a = EdgeStat {
            min_tdep: 9,
            count: 4,
            cross_count: 1,
            sample_addr: 3,
            sample_tids: (0, 1),
        };
        let b = EdgeStat {
            min_tdep: 9,
            count: 2,
            cross_count: 2,
            sample_addr: 3,
            sample_tids: (0, 0),
        };
        let mut fwd = DepProfile::new();
        fwd.merge_edge(id, key, a);
        fwd.merge_edge(id, key, b);
        let mut rev = DepProfile::new();
        rev.merge_edge(id, key, b);
        rev.merge_edge(id, key, a);
        let f = fwd.construct(Pc(10)).unwrap().edges[&key];
        assert_eq!(f, rev.construct(Pc(10)).unwrap().edges[&key]);
        assert_eq!(f.count, 6);
        assert_eq!(f.cross_count, 3);
        assert_eq!(f.sample_tids, (0, 0), "smallest pair wins the tie");
    }

    #[test]
    fn nesting_statistics_recorded() {
        let mut p = DepProfile::new();
        let inner = cid(10, ConstructKind::Loop);
        let outer = Pc(1);
        p.on_push(inner);
        p.on_pop(inner, 0, 5, [outer].into_iter());
        p.on_push(inner);
        p.on_pop(inner, 6, 9, [outer].into_iter());
        let c = p.construct(Pc(10)).unwrap();
        assert_eq!(c.nested_in[&outer], 2);
    }
}
