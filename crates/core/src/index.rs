//! The execution-indexing stack (instrumentation rules, Fig. 5 of the paper).
//!
//! The stack's state *is* the execution index of the current point: the
//! chain of construct instances (procedures, loop iterations, conditionals)
//! the point is nested in. Popped instances stay reachable through the
//! [`ConstructPool`] parent links, which is how the index **tree** needed
//! for attributing dependences to already-completed constructs is
//! maintained.
//!
//! Rules implemented here, with the event that triggers each:
//!
//! 1. *Enter procedure* → push a `Method` entry (a **barrier**: predicate
//!    matching never crosses it, which keeps recursion frames separate).
//! 2. *Exit procedure* → pop entries up to and including the barrier
//!    (predicates left open by `return`-out-of-loop close here; this is the
//!    paper's handling of irregular control flow).
//! 3. /4. *Predicate at `p`* → if an instance of `p` is already open in the
//!    current frame, pop it and everything above it (for a loop predicate
//!    this ends the previous iteration — rule 4; the generalization to any
//!    predicate also bounds the stack for `if (..) break`-style regions
//!    whose post-dominator is outside the loop). Then push a new instance.
//! 5. *Statement `s`* → on entry to basic block `s`, pop every predicate
//!    whose immediate post-dominator is `s`.

use crate::construct::{ConstructId, ConstructKind};
use crate::pool::{ConstructPool, NodeRef};
use crate::profile::DepProfile;
use alchemist_vm::{BlockId, Pc, Time};

/// One open construct instance on the indexing stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StackEntry {
    /// The instance's pool node.
    pub node: NodeRef,
    /// Static head pc.
    pub head: Pc,
    /// Construct kind.
    pub kind: ConstructKind,
    /// Immediate post-dominator of the predicate's block (`None` for
    /// procedures and for predicates that only close at function exit).
    pub ipdom: Option<BlockId>,
    /// `true` for procedure entries (rule barriers).
    pub is_barrier: bool,
}

/// The indexing stack.
#[derive(Debug)]
pub struct IndexStack {
    entries: Vec<StackEntry>,
    /// Deepest nesting observed (the paper's `L`).
    pub max_depth: usize,
    /// Whether to record nesting statistics on pops (Fig. 6(b) support).
    pub track_nesting: bool,
}

impl IndexStack {
    /// Creates an empty stack.
    pub fn new(track_nesting: bool) -> Self {
        IndexStack {
            entries: Vec::with_capacity(64),
            max_depth: 0,
            track_nesting,
        }
    }

    /// Current nesting depth.
    pub fn depth(&self) -> usize {
        self.entries.len()
    }

    /// The innermost open construct instance.
    ///
    /// # Panics
    ///
    /// Panics if the stack is empty (no function has been entered).
    pub fn current(&self) -> NodeRef {
        self.entries.last().expect("indexing stack is empty").node
    }

    /// The open instances from outermost to innermost (the execution index
    /// of the current point, as in Fig. 4 of the paper).
    pub fn index(&self) -> impl Iterator<Item = &StackEntry> {
        self.entries.iter()
    }

    #[allow(clippy::too_many_arguments)]
    fn push(
        &mut self,
        pool: &mut ConstructPool,
        profile: &mut DepProfile,
        head: Pc,
        kind: ConstructKind,
        ipdom: Option<BlockId>,
        is_barrier: bool,
        t: Time,
    ) {
        let parent = self.entries.last().map(|e| e.node);
        let node = pool.push_instance(head, kind, parent, t);
        profile.on_push(ConstructId::new(head, kind));
        self.entries.push(StackEntry {
            node,
            head,
            kind,
            ipdom,
            is_barrier,
        });
        self.max_depth = self.max_depth.max(self.entries.len());
    }

    fn pop_one(&mut self, pool: &mut ConstructPool, profile: &mut DepProfile, t: Time) {
        let entry = self.entries.pop().expect("pop on empty indexing stack");
        let t_enter = pool.node(entry.node.id).t_enter;
        pool.complete_instance(entry.node, t);
        let id = ConstructId::new(entry.head, entry.kind);
        if self.track_nesting {
            profile.on_pop(id, t_enter, t, self.entries.iter().map(|e| e.head));
        } else {
            profile.on_pop(id, t_enter, t, std::iter::empty());
        }
    }

    /// Rule 1: a procedure with entry pc `head` was entered.
    pub fn enter_function(
        &mut self,
        pool: &mut ConstructPool,
        profile: &mut DepProfile,
        head: Pc,
        t: Time,
    ) {
        self.push(pool, profile, head, ConstructKind::Method, None, true, t);
    }

    /// Rule 2: the current procedure returns. Pops any predicates it left
    /// open, then the procedure entry itself.
    pub fn exit_function(&mut self, pool: &mut ConstructPool, profile: &mut DepProfile, t: Time) {
        loop {
            let was_barrier = self
                .entries
                .last()
                .expect("function exit without entry")
                .is_barrier;
            self.pop_one(pool, profile, t);
            if was_barrier {
                return;
            }
        }
    }

    /// Rules 3/4: the predicate at `head` executed.
    pub fn predicate(
        &mut self,
        pool: &mut ConstructPool,
        profile: &mut DepProfile,
        head: Pc,
        kind: ConstructKind,
        ipdom: Option<BlockId>,
        t: Time,
    ) {
        // Find an open instance of the same predicate in the current frame.
        let mut found = None;
        for (i, e) in self.entries.iter().enumerate().rev() {
            if e.is_barrier {
                break;
            }
            if e.head == head {
                found = Some(i);
                break;
            }
        }
        if let Some(i) = found {
            // Re-execution: the previous instance's region is over (for a
            // loop predicate this is the end of the previous iteration).
            while self.entries.len() > i {
                self.pop_one(pool, profile, t);
            }
        }
        self.push(pool, profile, head, kind, ipdom, false, t);
    }

    /// Rule 5: control entered basic block `block`. Pops every predicate
    /// whose immediate post-dominator is this block.
    pub fn block_entry(
        &mut self,
        pool: &mut ConstructPool,
        profile: &mut DepProfile,
        block: BlockId,
        t: Time,
    ) {
        while let Some(top) = self.entries.last() {
            if top.is_barrier || top.ipdom != Some(block) {
                break;
            }
            self.pop_one(pool, profile, t);
        }
    }

    /// Closes everything still open (used when a run traps mid-execution).
    pub fn finalize(&mut self, pool: &mut ConstructPool, profile: &mut DepProfile, t: Time) {
        while !self.entries.is_empty() {
            self.pop_one(pool, profile, t);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fixture {
        stack: IndexStack,
        pool: ConstructPool,
        profile: DepProfile,
    }

    impl Fixture {
        fn new() -> Self {
            Fixture {
                stack: IndexStack::new(true),
                pool: ConstructPool::new(1024, 64),
                profile: DepProfile::new(),
            }
        }

        fn enter(&mut self, pc: u32, t: Time) {
            self.stack
                .enter_function(&mut self.pool, &mut self.profile, Pc(pc), t);
        }

        fn exit(&mut self, t: Time) {
            self.stack
                .exit_function(&mut self.pool, &mut self.profile, t);
        }

        fn pred(&mut self, pc: u32, ipdom: Option<u32>, t: Time) {
            self.stack.predicate(
                &mut self.pool,
                &mut self.profile,
                Pc(pc),
                ConstructKind::Loop,
                ipdom.map(BlockId),
                t,
            );
        }

        fn block(&mut self, b: u32, t: Time) {
            self.stack
                .block_entry(&mut self.pool, &mut self.profile, BlockId(b), t);
        }

        fn heads(&self) -> Vec<u32> {
            self.stack.index().map(|e| e.head.0).collect()
        }
    }

    #[test]
    fn procedure_nesting_mirrors_call_structure() {
        // Fig. 4(a): A calls B.
        let mut f = Fixture::new();
        f.enter(100, 0); // A
        f.enter(200, 5); // B
        assert_eq!(f.heads(), vec![100, 200]);
        f.exit(9); // B returns
        assert_eq!(f.heads(), vec![100]);
        f.exit(12); // A returns
        assert_eq!(f.stack.depth(), 0);
        let a = f.profile.construct(Pc(100)).unwrap();
        assert_eq!((a.inst, a.ttotal), (1, 12));
        let b = f.profile.construct(Pc(200)).unwrap();
        assert_eq!((b.inst, b.ttotal), (1, 4));
    }

    #[test]
    fn nested_ifs_pop_at_their_ipdoms() {
        // Fig. 4(b): if(2){ s3; if(4) s5; } inside C.
        let mut f = Fixture::new();
        f.enter(1, 0); // C
        f.pred(2, Some(9), 1); // outer if, joins at block 9
        f.pred(4, Some(8), 3); // inner if, joins at block 8
        assert_eq!(f.heads(), vec![1, 2, 4]);
        f.block(8, 6); // inner join: pops construct 4 only
        assert_eq!(f.heads(), vec![1, 2]);
        f.block(9, 7); // outer join
        assert_eq!(f.heads(), vec![1]);
    }

    #[test]
    fn one_block_can_close_multiple_constructs() {
        // Two nested ifs sharing a join block.
        let mut f = Fixture::new();
        f.enter(1, 0);
        f.pred(2, Some(9), 1);
        f.pred(4, Some(9), 2);
        f.block(9, 5);
        assert_eq!(f.heads(), vec![1], "rule 5 pops while the top matches");
        assert_eq!(f.profile.construct(Pc(4)).unwrap().inst, 1);
        assert_eq!(f.profile.construct(Pc(2)).unwrap().inst, 1);
    }

    #[test]
    fn loop_iterations_become_sibling_instances() {
        // Fig. 4(c): three executions of loop predicate 2; iteration i+1
        // must be a sibling (not a child) of iteration i.
        let mut f = Fixture::new();
        f.enter(1, 0); // D
        f.pred(2, Some(50), 1); // iteration 1
        let n1 = f.stack.current();
        f.pred(2, Some(50), 10); // iteration 2: pops #1, pushes #2
        let n2 = f.stack.current();
        assert_eq!(f.heads(), vec![1, 2]);
        assert_ne!(n1, n2);
        let p1 = f.pool.resolve(n1).expect("iteration 1 retained");
        let p2 = f.pool.resolve(n2).unwrap();
        assert_eq!(
            p1.parent, p2.parent,
            "iterations share the enclosing construct as parent"
        );
        assert_eq!(
            p1.t_exit,
            Some(10),
            "previous iteration closed at re-execution"
        );
        // Loop exit via rule 5.
        f.block(50, 20);
        assert_eq!(f.heads(), vec![1]);
        assert_eq!(f.profile.construct(Pc(2)).unwrap().inst, 2);
    }

    #[test]
    fn nested_loop_iterations_nest_under_outer_iteration() {
        // Fig. 4(c): inner loop 4 iterations are children of the current
        // iteration of outer loop 2.
        let mut f = Fixture::new();
        f.enter(1, 0);
        f.pred(2, Some(50), 1); // outer iter 1
        let outer = f.stack.current();
        f.pred(4, Some(40), 2); // inner iter 1
        f.pred(4, Some(40), 5); // inner iter 2
        let inner2 = f.stack.current();
        assert_eq!(f.pool.resolve(inner2).unwrap().parent, Some(outer));
        f.block(40, 8); // inner loop exits
        f.pred(2, Some(50), 9); // outer iter 2: pops iter 1
        assert_eq!(f.heads(), vec![1, 2]);
        assert_eq!(f.profile.construct(Pc(4)).unwrap().inst, 2);
    }

    #[test]
    fn predicate_reexecution_pops_everything_above() {
        // while(1) { if(a) break; if(b) break; } — header has no predicate;
        // re-executing `a` must close the dangling `b` and `a` regions.
        let mut f = Fixture::new();
        f.enter(1, 0);
        f.pred(10, None, 1); // if(a), ipdom escapes the loop
        f.pred(20, None, 2); // if(b)
        assert_eq!(f.heads(), vec![1, 10, 20]);
        f.pred(10, None, 5); // next iteration
        assert_eq!(f.heads(), vec![1, 10], "stack stays bounded");
        assert_eq!(f.profile.construct(Pc(20)).unwrap().inst, 1);
        assert_eq!(f.profile.construct(Pc(10)).unwrap().inst, 1);
    }

    #[test]
    fn function_exit_closes_open_predicates() {
        // return from inside a loop: rule 2 cleans up.
        let mut f = Fixture::new();
        f.enter(1, 0);
        f.pred(2, Some(50), 1);
        f.pred(4, Some(40), 2);
        f.exit(9);
        assert_eq!(f.stack.depth(), 0);
        assert_eq!(f.profile.construct(Pc(2)).unwrap().inst, 1);
        assert_eq!(f.profile.construct(Pc(4)).unwrap().inst, 1);
    }

    #[test]
    fn barriers_isolate_recursive_frames() {
        // f's loop predicate open, f calls f, inner f runs the same
        // predicate: the inner execution must NOT pop the outer iteration.
        let mut f = Fixture::new();
        f.enter(1, 0); // outer f
        f.pred(2, Some(50), 1); // outer iteration
        f.enter(1, 3); // inner f (recursion)
        f.pred(2, Some(50), 4); // inner iteration: new instance
        assert_eq!(f.heads(), vec![1, 2, 1, 2]);
        f.pred(2, Some(50), 6); // inner loop iterates: pops only inner
        assert_eq!(f.heads(), vec![1, 2, 1, 2]);
        assert_eq!(f.profile.construct(Pc(2)).unwrap().inst, 1);
        f.exit(8); // inner f returns (pops its iteration + barrier)
        assert_eq!(f.heads(), vec![1, 2]);
        // Block entry in the outer frame now closes the outer iteration.
        f.block(50, 9);
        assert_eq!(f.heads(), vec![1]);
    }

    #[test]
    fn recursion_ttotal_not_double_counted() {
        let mut f = Fixture::new();
        f.enter(7, 0);
        f.enter(7, 2);
        f.exit(8); // inner: [2,8] — must not add to ttotal yet
        f.exit(10); // outer: [0,10]
        let c = f.profile.construct(Pc(7)).unwrap();
        assert_eq!(c.inst, 2);
        assert_eq!(c.ttotal, 10);
    }

    #[test]
    fn rule5_does_not_cross_barriers() {
        // A predicate in the caller must not be popped by a callee block
        // that happens to carry the same (global) block id... which cannot
        // collide in practice, but the barrier must stop rule 5 regardless.
        let mut f = Fixture::new();
        f.enter(1, 0);
        f.pred(2, Some(33), 1);
        f.enter(9, 2); // call
        f.block(33, 3); // block entry inside callee
        assert_eq!(f.heads(), vec![1, 2, 9], "caller predicate survives");
    }

    #[test]
    fn finalize_closes_all() {
        let mut f = Fixture::new();
        f.enter(1, 0);
        f.pred(2, Some(5), 1);
        f.enter(3, 2);
        f.stack.finalize(&mut f.pool, &mut f.profile, 10);
        assert_eq!(f.stack.depth(), 0);
        assert_eq!(f.stack.max_depth, 3);
    }

    #[test]
    fn index_path_matches_paper_notation() {
        // The index of an execution point is the root-to-point path.
        let mut f = Fixture::new();
        f.enter(1, 0); // D
        f.pred(2, Some(50), 1);
        f.pred(4, Some(40), 2);
        // Index of a point inside: [D, 2, 4] — compare Fig. 4(c).
        assert_eq!(f.heads(), vec![1, 2, 4]);
    }
}
