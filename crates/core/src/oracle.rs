//! A brute-force reference profiler.
//!
//! Replays a recorded event stream with **no resource bounds**: the full
//! index tree is kept alive forever and the per-address reader sets are
//! unbounded. It exists to validate the online profiler:
//!
//! * with a generous pool and reader cap, the online profiler must produce
//!   *exactly* the oracle's profile;
//! * with a tiny pool, the online profile must be a subset whose recorded
//!   distances are never smaller than the oracle's (retirement may only
//!   drop information, never invent it).
//!
//! The implementation shares no code with the production data structures
//! beyond the instrumentation-rule semantics themselves.

use crate::construct::{ConstructId, ConstructKind, DepKind};
use crate::profile::{DepProfile, EdgeKey, EdgeStat};
use alchemist_vm::{Event, Module, Pc, Tid, Time};
use std::collections::HashMap;

#[derive(Debug, Clone)]
struct ONode {
    label: Pc,
    kind: ConstructKind,
    t_enter: Time,
    t_exit: Option<Time>,
    parent: Option<usize>,
}

#[derive(Debug, Clone, Copy)]
struct OEntry {
    node: usize,
    head: Pc,
    ipdom: Option<alchemist_vm::BlockId>,
    is_barrier: bool,
}

#[derive(Debug, Default)]
struct OCell {
    last_write: Option<(Pc, Time, usize, Tid)>,
    reads: Vec<(Pc, Time, usize, Tid)>,
}

/// Replays `events` (from a [`RecordingSink`](alchemist_vm::RecordingSink))
/// and computes the unbounded reference profile.
///
/// `total_steps` is the executed instruction count of the run.
pub fn oracle_profile(module: &Module, events: &[Event], total_steps: u64) -> DepProfile {
    let mut tree: Vec<ONode> = Vec::new();
    // One index stack per thread (dense tids), grown on first event;
    // single-threaded runs only ever use stacks[0].
    let mut stacks: Vec<Vec<OEntry>> = vec![Vec::new()];
    let mut shadow: HashMap<u32, OCell> = HashMap::new();
    let mut profile = DepProfile::new();
    // (kind, head pc, tail pc, construct) -> (min_tdep, count), built
    // directly, then poured into the DepProfile at the end.
    let mut edges: HashMap<(Pc, EdgeKey), EdgeStat> = HashMap::new();
    let mut durations: HashMap<Pc, (u64, u64, ConstructKind)> = HashMap::new();
    let mut nesting: HashMap<Pc, u32> = HashMap::new();
    let mut nested_in: HashMap<(Pc, Pc), u64> = HashMap::new();

    let pop = |tree: &mut Vec<ONode>,
               stack: &mut Vec<OEntry>,
               t: Time,
               durations: &mut HashMap<Pc, (u64, u64, ConstructKind)>,
               nesting: &mut HashMap<Pc, u32>,
               nested_in: &mut HashMap<(Pc, Pc), u64>| {
        let e = stack.pop().expect("oracle pop on empty stack");
        tree[e.node].t_exit = Some(t);
        let node = &tree[e.node];
        let d = durations.entry(e.head).or_insert((0, 0, node.kind));
        d.1 += 1;
        let level = nesting.entry(e.head).or_insert(0);
        *level = level.saturating_sub(1);
        if *level == 0 {
            d.0 += t.saturating_sub(node.t_enter);
        }
        for a in stack.iter() {
            if a.head != e.head {
                *nested_in.entry((e.head, a.head)).or_insert(0) += 1;
            }
        }
    };

    let push = |tree: &mut Vec<ONode>,
                stack: &mut Vec<OEntry>,
                head: Pc,
                kind: ConstructKind,
                ipdom: Option<alchemist_vm::BlockId>,
                is_barrier: bool,
                t: Time,
                nesting: &mut HashMap<Pc, u32>| {
        let parent = stack.last().map(|e| e.node);
        tree.push(ONode {
            label: head,
            kind,
            t_enter: t,
            t_exit: None,
            parent,
        });
        *nesting.entry(head).or_insert(0) += 1;
        stack.push(OEntry {
            node: tree.len() - 1,
            head,
            ipdom,
            is_barrier,
        });
    };

    let mut intra_deps = 0u64;
    let mut cross_deps = 0u64;
    let mut record = |tree: &[ONode],
                      edges: &mut HashMap<(Pc, EdgeKey), EdgeStat>,
                      kind: DepKind,
                      head_pc: Pc,
                      head_node: usize,
                      t_head: Time,
                      tail_pc: Pc,
                      t_tail: Time,
                      addr: u32,
                      src_tid: Tid,
                      dst_tid: Tid| {
        let cross = src_tid != dst_tid;
        if cross {
            cross_deps += 1;
        } else {
            intra_deps += 1;
        }
        let tids = (src_tid.0, dst_tid.0);
        let tdep = t_tail.saturating_sub(t_head);
        let mut cur = Some(head_node);
        while let Some(i) = cur {
            let n = &tree[i];
            if n.t_exit.is_none() {
                break; // active: intra-construct from here up
            }
            let key = EdgeKey {
                kind,
                head: head_pc,
                tail: tail_pc,
            };
            let stat = edges.entry((n.label, key)).or_insert(EdgeStat {
                min_tdep: u64::MAX,
                count: 0,
                cross_count: 0,
                sample_addr: addr,
                sample_tids: tids,
            });
            stat.count += 1;
            stat.cross_count += cross as u64;
            // Same order-independent tie rule as the online profiler:
            // equal minimum distances keep the lowest address, then the
            // lowest thread pair.
            if (tdep, addr, tids) < (stat.min_tdep, stat.sample_addr, stat.sample_tids) {
                stat.min_tdep = tdep;
                stat.sample_addr = addr;
                stat.sample_tids = tids;
            }
            cur = n.parent;
        }
    };

    let traced = |addr: u32| addr < module.global_words;

    fn stack_for(stacks: &mut Vec<Vec<OEntry>>, tid: Tid) -> &mut Vec<OEntry> {
        let idx = tid.0 as usize;
        if idx >= stacks.len() {
            stacks.resize_with(idx + 1, Vec::new);
        }
        &mut stacks[idx]
    }

    for ev in events {
        match *ev {
            Event::Enter { t, func, tid, .. } => {
                let head = module.funcs[func.0 as usize].entry;
                push(
                    &mut tree,
                    stack_for(&mut stacks, tid),
                    head,
                    ConstructKind::Method,
                    None,
                    true,
                    t,
                    &mut nesting,
                );
            }
            Event::Exit { t, tid, .. } => {
                let stack = stack_for(&mut stacks, tid);
                loop {
                    let barrier = stack.last().expect("exit without entry").is_barrier;
                    pop(
                        &mut tree,
                        stack,
                        t,
                        &mut durations,
                        &mut nesting,
                        &mut nested_in,
                    );
                    if barrier {
                        break;
                    }
                }
            }
            Event::Predicate {
                t, pc, block, tid, ..
            } => {
                let kind = module
                    .analysis
                    .predicate_kind(pc)
                    .map(ConstructId::kind_of_pred)
                    .expect("predicate event from non-predicate pc");
                let ipdom = module.analysis.block(block).ipdom;
                let stack = stack_for(&mut stacks, tid);
                let mut found = None;
                for (i, e) in stack.iter().enumerate().rev() {
                    if e.is_barrier {
                        break;
                    }
                    if e.head == pc {
                        found = Some(i);
                        break;
                    }
                }
                if let Some(i) = found {
                    while stack.len() > i {
                        pop(
                            &mut tree,
                            stack,
                            t,
                            &mut durations,
                            &mut nesting,
                            &mut nested_in,
                        );
                    }
                }
                push(&mut tree, stack, pc, kind, ipdom, false, t, &mut nesting);
            }
            Event::Block { t, block, tid } => {
                let stack = stack_for(&mut stacks, tid);
                while let Some(top) = stack.last() {
                    if top.is_barrier || top.ipdom != Some(block) {
                        break;
                    }
                    pop(
                        &mut tree,
                        stack,
                        t,
                        &mut durations,
                        &mut nesting,
                        &mut nested_in,
                    );
                }
            }
            Event::Read { t, addr, pc, tid } => {
                if !traced(addr) {
                    continue;
                }
                let node = stack_for(&mut stacks, tid)
                    .last()
                    .expect("read outside any function")
                    .node;
                let cell = shadow.entry(addr).or_default();
                if let Some((wpc, wt, wnode, wtid)) = cell.last_write {
                    record(
                        &tree,
                        &mut edges,
                        DepKind::Raw,
                        wpc,
                        wnode,
                        wt,
                        pc,
                        t,
                        addr,
                        wtid,
                        tid,
                    );
                }
                if let Some(r) = cell.reads.iter_mut().find(|r| r.0 == pc) {
                    *r = (pc, t, node, tid);
                } else {
                    cell.reads.push((pc, t, node, tid));
                }
            }
            Event::Write { t, addr, pc, tid } => {
                if !traced(addr) {
                    continue;
                }
                let node = stack_for(&mut stacks, tid)
                    .last()
                    .expect("write outside any function")
                    .node;
                let cell = shadow.entry(addr).or_default();
                if let Some((wpc, wt, wnode, wtid)) = cell.last_write {
                    record(
                        &tree,
                        &mut edges,
                        DepKind::Waw,
                        wpc,
                        wnode,
                        wt,
                        pc,
                        t,
                        addr,
                        wtid,
                        tid,
                    );
                }
                // Same callback-style flow as `ShadowMemory::on_write`:
                // the reads are consumed in place, then cleared — no
                // intermediate collection.
                for &(rpc, rt, rnode, rtid) in &cell.reads {
                    record(
                        &tree,
                        &mut edges,
                        DepKind::War,
                        rpc,
                        rnode,
                        rt,
                        pc,
                        t,
                        addr,
                        rtid,
                        tid,
                    );
                }
                cell.reads.clear();
                cell.last_write = Some((pc, t, node, tid));
            }
        }
    }
    // Close any still-open constructs (trap case), in tid order.
    for stack in &mut stacks {
        while !stack.is_empty() {
            pop(
                &mut tree,
                stack,
                total_steps,
                &mut durations,
                &mut nesting,
                &mut nested_in,
            );
        }
    }

    // Pour the collected data into a DepProfile.
    let kind_of: HashMap<Pc, ConstructKind> = durations.iter().map(|(h, d)| (*h, d.2)).collect();
    for (head, (ttotal, inst, kind)) in &durations {
        profile.merge_duration(ConstructId::new(*head, *kind), *ttotal, *inst);
    }
    profile.total_steps = total_steps;
    profile.intra_thread_deps = intra_deps;
    profile.cross_thread_deps = cross_deps;
    for ((construct, key), stat) in edges {
        let kind = kind_of
            .get(&construct)
            .copied()
            .unwrap_or(ConstructKind::Branch);
        profile.merge_edge(ConstructId::new(construct, kind), key, stat);
    }
    for ((desc, anc), count) in nested_in {
        let kind = kind_of.get(&desc).copied().unwrap_or(ConstructKind::Branch);
        profile.merge_nested(ConstructId::new(desc, kind), anc, count);
    }
    profile
}

#[cfg(test)]
mod tests {
    use super::*;
    use alchemist_vm::{compile_source, run, ExecConfig, RecordingSink};

    fn oracle_for(src: &str) -> (DepProfile, Module) {
        let module = compile_source(src).unwrap();
        let mut rec = RecordingSink::default();
        let outcome = run(&module, &ExecConfig::default(), &mut rec).unwrap();
        let profile = oracle_profile(&module, &rec.events, outcome.steps);
        (profile, module)
    }

    #[test]
    fn oracle_profiles_main() {
        let (p, m) = oracle_for("int main() { return 0; }");
        let main = p.construct(m.funcs[0].entry).unwrap();
        assert_eq!(main.inst, 1);
        assert_eq!(main.ttotal, p.total_steps);
    }

    #[test]
    fn oracle_detects_cross_call_raw() {
        let (p, m) =
            oracle_for("int g; void f() { g = g + 1; } int main() { f(); f(); return g; }");
        let f = p.construct(m.func_by_name("f").unwrap().1.entry).unwrap();
        assert!(f.edges.keys().any(|k| k.kind == DepKind::Raw));
    }

    #[test]
    fn oracle_counts_loop_iterations() {
        let (p, _m) =
            oracle_for("int g; int main() { int i; for (i = 0; i < 5; i++) g++; return g; }");
        let lp = p
            .constructs()
            .find(|c| c.id.kind == ConstructKind::Loop)
            .unwrap();
        assert_eq!(lp.inst, 6);
    }
}
