//! A brute-force reference profiler.
//!
//! Replays a recorded event stream with **no resource bounds**: the full
//! index tree is kept alive forever and the per-address reader sets are
//! unbounded. It exists to validate the online profiler:
//!
//! * with a generous pool and reader cap, the online profiler must produce
//!   *exactly* the oracle's profile;
//! * with a tiny pool, the online profile must be a subset whose recorded
//!   distances are never smaller than the oracle's (retirement may only
//!   drop information, never invent it).
//!
//! The implementation shares no code with the production data structures
//! beyond the instrumentation-rule semantics themselves.

use crate::construct::{ConstructId, ConstructKind, DepKind};
use crate::profile::{DepProfile, EdgeKey, EdgeStat};
use alchemist_vm::{Event, Module, Pc, Time};
use std::collections::HashMap;

#[derive(Debug, Clone)]
struct ONode {
    label: Pc,
    kind: ConstructKind,
    t_enter: Time,
    t_exit: Option<Time>,
    parent: Option<usize>,
}

#[derive(Debug, Clone, Copy)]
struct OEntry {
    node: usize,
    head: Pc,
    ipdom: Option<alchemist_vm::BlockId>,
    is_barrier: bool,
}

#[derive(Debug, Default)]
struct OCell {
    last_write: Option<(Pc, Time, usize)>,
    reads: Vec<(Pc, Time, usize)>,
}

/// Replays `events` (from a [`RecordingSink`](alchemist_vm::RecordingSink))
/// and computes the unbounded reference profile.
///
/// `total_steps` is the executed instruction count of the run.
pub fn oracle_profile(module: &Module, events: &[Event], total_steps: u64) -> DepProfile {
    let mut tree: Vec<ONode> = Vec::new();
    let mut stack: Vec<OEntry> = Vec::new();
    let mut shadow: HashMap<u32, OCell> = HashMap::new();
    let mut profile = DepProfile::new();
    // (kind, head pc, tail pc, construct) -> (min_tdep, count), built
    // directly, then poured into the DepProfile at the end.
    let mut edges: HashMap<(Pc, EdgeKey), EdgeStat> = HashMap::new();
    let mut durations: HashMap<Pc, (u64, u64, ConstructKind)> = HashMap::new();
    let mut nesting: HashMap<Pc, u32> = HashMap::new();
    let mut nested_in: HashMap<(Pc, Pc), u64> = HashMap::new();

    let pop = |tree: &mut Vec<ONode>,
               stack: &mut Vec<OEntry>,
               t: Time,
               durations: &mut HashMap<Pc, (u64, u64, ConstructKind)>,
               nesting: &mut HashMap<Pc, u32>,
               nested_in: &mut HashMap<(Pc, Pc), u64>| {
        let e = stack.pop().expect("oracle pop on empty stack");
        tree[e.node].t_exit = Some(t);
        let node = &tree[e.node];
        let d = durations.entry(e.head).or_insert((0, 0, node.kind));
        d.1 += 1;
        let level = nesting.entry(e.head).or_insert(0);
        *level = level.saturating_sub(1);
        if *level == 0 {
            d.0 += t.saturating_sub(node.t_enter);
        }
        for a in stack.iter() {
            if a.head != e.head {
                *nested_in.entry((e.head, a.head)).or_insert(0) += 1;
            }
        }
    };

    let push = |tree: &mut Vec<ONode>,
                stack: &mut Vec<OEntry>,
                head: Pc,
                kind: ConstructKind,
                ipdom: Option<alchemist_vm::BlockId>,
                is_barrier: bool,
                t: Time,
                nesting: &mut HashMap<Pc, u32>| {
        let parent = stack.last().map(|e| e.node);
        tree.push(ONode {
            label: head,
            kind,
            t_enter: t,
            t_exit: None,
            parent,
        });
        *nesting.entry(head).or_insert(0) += 1;
        stack.push(OEntry {
            node: tree.len() - 1,
            head,
            ipdom,
            is_barrier,
        });
    };

    let record = |tree: &[ONode],
                  edges: &mut HashMap<(Pc, EdgeKey), EdgeStat>,
                  kind: DepKind,
                  head_pc: Pc,
                  head_node: usize,
                  t_head: Time,
                  tail_pc: Pc,
                  t_tail: Time,
                  addr: u32| {
        let tdep = t_tail.saturating_sub(t_head);
        let mut cur = Some(head_node);
        while let Some(i) = cur {
            let n = &tree[i];
            if n.t_exit.is_none() {
                break; // active: intra-construct from here up
            }
            let key = EdgeKey {
                kind,
                head: head_pc,
                tail: tail_pc,
            };
            let stat = edges.entry((n.label, key)).or_insert(EdgeStat {
                min_tdep: u64::MAX,
                count: 0,
                sample_addr: addr,
            });
            stat.count += 1;
            // Same order-independent tie rule as the online profiler:
            // equal minimum distances keep the lowest address.
            if tdep < stat.min_tdep || (tdep == stat.min_tdep && addr < stat.sample_addr) {
                stat.min_tdep = tdep;
                stat.sample_addr = addr;
            }
            cur = n.parent;
        }
    };

    let traced = |addr: u32| addr < module.global_words;

    for ev in events {
        match *ev {
            Event::Enter { t, func, .. } => {
                let head = module.funcs[func.0 as usize].entry;
                push(
                    &mut tree,
                    &mut stack,
                    head,
                    ConstructKind::Method,
                    None,
                    true,
                    t,
                    &mut nesting,
                );
            }
            Event::Exit { t, .. } => loop {
                let barrier = stack.last().expect("exit without entry").is_barrier;
                pop(
                    &mut tree,
                    &mut stack,
                    t,
                    &mut durations,
                    &mut nesting,
                    &mut nested_in,
                );
                if barrier {
                    break;
                }
            },
            Event::Predicate { t, pc, block, .. } => {
                let kind = module
                    .analysis
                    .predicate_kind(pc)
                    .map(ConstructId::kind_of_pred)
                    .expect("predicate event from non-predicate pc");
                let ipdom = module.analysis.block(block).ipdom;
                let mut found = None;
                for (i, e) in stack.iter().enumerate().rev() {
                    if e.is_barrier {
                        break;
                    }
                    if e.head == pc {
                        found = Some(i);
                        break;
                    }
                }
                if let Some(i) = found {
                    while stack.len() > i {
                        pop(
                            &mut tree,
                            &mut stack,
                            t,
                            &mut durations,
                            &mut nesting,
                            &mut nested_in,
                        );
                    }
                }
                push(
                    &mut tree,
                    &mut stack,
                    pc,
                    kind,
                    ipdom,
                    false,
                    t,
                    &mut nesting,
                );
            }
            Event::Block { t, block } => {
                while let Some(top) = stack.last() {
                    if top.is_barrier || top.ipdom != Some(block) {
                        break;
                    }
                    pop(
                        &mut tree,
                        &mut stack,
                        t,
                        &mut durations,
                        &mut nesting,
                        &mut nested_in,
                    );
                }
            }
            Event::Read { t, addr, pc } => {
                if !traced(addr) {
                    continue;
                }
                let node = stack.last().expect("read outside any function").node;
                let cell = shadow.entry(addr).or_default();
                if let Some((wpc, wt, wnode)) = cell.last_write {
                    record(&tree, &mut edges, DepKind::Raw, wpc, wnode, wt, pc, t, addr);
                }
                if let Some(r) = cell.reads.iter_mut().find(|r| r.0 == pc) {
                    *r = (pc, t, node);
                } else {
                    cell.reads.push((pc, t, node));
                }
            }
            Event::Write { t, addr, pc } => {
                if !traced(addr) {
                    continue;
                }
                let node = stack.last().expect("write outside any function").node;
                let cell = shadow.entry(addr).or_default();
                if let Some((wpc, wt, wnode)) = cell.last_write {
                    record(&tree, &mut edges, DepKind::Waw, wpc, wnode, wt, pc, t, addr);
                }
                // Same callback-style flow as `ShadowMemory::on_write`:
                // the reads are consumed in place, then cleared — no
                // intermediate collection.
                for &(rpc, rt, rnode) in &cell.reads {
                    record(&tree, &mut edges, DepKind::War, rpc, rnode, rt, pc, t, addr);
                }
                cell.reads.clear();
                cell.last_write = Some((pc, t, node));
            }
        }
    }
    // Close any still-open constructs (trap case).
    while !stack.is_empty() {
        pop(
            &mut tree,
            &mut stack,
            total_steps,
            &mut durations,
            &mut nesting,
            &mut nested_in,
        );
    }

    // Pour the collected data into a DepProfile.
    let kind_of: HashMap<Pc, ConstructKind> = durations.iter().map(|(h, d)| (*h, d.2)).collect();
    for (head, (ttotal, inst, kind)) in &durations {
        profile.merge_duration(ConstructId::new(*head, *kind), *ttotal, *inst);
    }
    profile.total_steps = total_steps;
    for ((construct, key), stat) in edges {
        let kind = kind_of
            .get(&construct)
            .copied()
            .unwrap_or(ConstructKind::Branch);
        profile.merge_edge(ConstructId::new(construct, kind), key, stat);
    }
    for ((desc, anc), count) in nested_in {
        let kind = kind_of.get(&desc).copied().unwrap_or(ConstructKind::Branch);
        profile.merge_nested(ConstructId::new(desc, kind), anc, count);
    }
    profile
}

#[cfg(test)]
mod tests {
    use super::*;
    use alchemist_vm::{compile_source, run, ExecConfig, RecordingSink};

    fn oracle_for(src: &str) -> (DepProfile, Module) {
        let module = compile_source(src).unwrap();
        let mut rec = RecordingSink::default();
        let outcome = run(&module, &ExecConfig::default(), &mut rec).unwrap();
        let profile = oracle_profile(&module, &rec.events, outcome.steps);
        (profile, module)
    }

    #[test]
    fn oracle_profiles_main() {
        let (p, m) = oracle_for("int main() { return 0; }");
        let main = p.construct(m.funcs[0].entry).unwrap();
        assert_eq!(main.inst, 1);
        assert_eq!(main.ttotal, p.total_steps);
    }

    #[test]
    fn oracle_detects_cross_call_raw() {
        let (p, m) =
            oracle_for("int g; void f() { g = g + 1; } int main() { f(); f(); return g; }");
        let f = p.construct(m.func_by_name("f").unwrap().1.entry).unwrap();
        assert!(f.edges.keys().any(|k| k.kind == DepKind::Raw));
    }

    #[test]
    fn oracle_counts_loop_iterations() {
        let (p, _m) =
            oracle_for("int g; int main() { int i; for (i = 0; i < 5; i++) g++; return g; }");
        let lp = p
            .constructs()
            .find(|c| c.id.kind == ConstructKind::Loop)
            .unwrap();
        assert_eq!(lp.inst, 6);
    }
}
