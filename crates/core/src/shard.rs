//! Address-sharded parallel replay.
//!
//! The offline analyses ([`profile_events`], task
//! extraction) are pure functions of a recorded event stream, which makes
//! them parallelizable without touching the capture side. The scheme is the
//! classic shadow-memory sharding used by parallel memory profilers:
//!
//! * memory events are partitioned by `addr % jobs` — every address's full
//!   access history lands on exactly one shard, so per-address shadow state
//!   (last write, read set, cap evictions) evolves *identically* to the
//!   sequential run;
//! * control events (enter/exit/block/predicate) are broadcast to all
//!   shards, so every shard maintains an identical execution-index tree and
//!   construct pool — dependence attribution needs the tree, and the tree
//!   is cheap next to shadow lookups;
//! * per-shard [`DepProfile`]s are merged deterministically: duration,
//!   instance and nesting statistics are control-derived and therefore
//!   identical in every shard (shard 0's copy is kept); dependence edges are
//!   disjoint per dynamic occurrence and union with min/sum semantics via
//!   [`DepProfile::merge_edge`], whose lowest-address tie rule makes the
//!   merge commutative.
//!
//! The result is **equal** (`==`) to the sequential and live profiles: the
//! determinism guarantee the `replay --jobs N` CLI path and the CI parity
//! gate assert for every bundled workload.
//!
//! Memory note: `addr % jobs` interleaves *addresses*, so with the paged
//! shadow layout every worker tends to fault its own copy of each touched
//! page (only `1/jobs` of a page's cells live per worker) — sharded
//! replay's shadow footprint is roughly `jobs ×` the sequential run's.
//! That is the deliberate trade for load balance: partitioning by page
//! (`(addr >> PAGE_SHIFT) % jobs`) would dedup the pages but put a small
//! program's entire global segment (often a single page) on one shard,
//! serializing the replay. Bounded by `jobs × touched pages`, the
//! duplication is cheap at the job counts the CLI targets; revisit the
//! granularity if job counts grow past tens.

use crate::pool::PoolStats;
use crate::profile::DepProfile;
use crate::profiler::{AlchemistProfiler, ProfileConfig};
use crate::runner::{profile_batches, profile_events};
use alchemist_lang::hir::FuncId;
use alchemist_obs::{span_opt, Counter, Metrics, ShardMetrics, Stage};
use alchemist_vm::{BlockId, Event, EventBatch, Module, Pc, Tid, Time, TraceSink};
use std::time::Instant;

/// The shard owning `addr` when the address space is split `jobs` ways.
#[inline]
pub fn shard_of(addr: u32, jobs: u32) -> u32 {
    addr % jobs.max(1)
}

/// A [`TraceSink`] adapter that forwards every control event to `inner` but
/// only the memory events whose address belongs to one shard.
///
/// Wrapping any sequential analysis sink in a `ShardFilter` per worker is
/// all it takes to shard it: the inner sink observes the exact sub-stream
/// the sequential run would deliver for its addresses, in the same order
/// and with the same timestamps.
#[derive(Debug)]
pub struct ShardFilter<S> {
    shard: u32,
    jobs: u32,
    inner: S,
    /// Reused sub-batch for the `on_batch` bulk path.
    scratch: EventBatch,
}

impl<S> ShardFilter<S> {
    /// Wraps `inner` as shard `shard` of `jobs`.
    ///
    /// # Panics
    ///
    /// Panics if `shard >= jobs` (the filter would drop every memory event).
    pub fn new(shard: u32, jobs: u32, inner: S) -> Self {
        assert!(shard < jobs, "shard {shard} out of range for {jobs} jobs");
        ShardFilter {
            shard,
            jobs,
            inner,
            scratch: EventBatch::new(),
        }
    }

    /// Unwraps the inner sink.
    pub fn into_inner(self) -> S {
        self.inner
    }

    #[inline]
    fn owns(&self, addr: u32) -> bool {
        shard_of(addr, self.jobs) == self.shard
    }
}

impl<S: TraceSink> TraceSink for ShardFilter<S> {
    fn on_enter_function(&mut self, t: Time, func: FuncId, fp: u32, tid: Tid) {
        self.inner.on_enter_function(t, func, fp, tid);
    }
    fn on_exit_function(&mut self, t: Time, func: FuncId, tid: Tid) {
        self.inner.on_exit_function(t, func, tid);
    }
    fn on_block_entry(&mut self, t: Time, block: BlockId, tid: Tid) {
        self.inner.on_block_entry(t, block, tid);
    }
    fn on_predicate(&mut self, t: Time, pc: Pc, block: BlockId, taken: bool, tid: Tid) {
        self.inner.on_predicate(t, pc, block, taken, tid);
    }
    fn on_read(&mut self, t: Time, addr: u32, pc: Pc, tid: Tid) {
        if self.owns(addr) {
            self.inner.on_read(t, addr, pc, tid);
        }
    }
    fn on_write(&mut self, t: Time, addr: u32, pc: Pc, tid: Tid) {
        if self.owns(addr) {
            self.inner.on_write(t, addr, pc, tid);
        }
    }
    fn on_batch(&mut self, batch: &EventBatch) {
        // Single pass: copy the shard's sub-stream (all control rows plus
        // owned memory rows) into the reusable scratch batch, then hand the
        // inner sink one bulk call.
        self.scratch.clear();
        for i in 0..batch.len() {
            if !batch.tag(i).is_memory() || self.owns(batch.addr(i)) {
                self.scratch.push_index(batch, i);
            }
        }
        let scratch = std::mem::take(&mut self.scratch);
        self.inner.on_batch(&scratch);
        self.scratch = scratch; // keep the capacity for the next batch
    }
}

/// Splits one batch into `jobs` per-shard sub-batches in a single pass:
/// control rows are appended to every sub-batch, memory rows only to the
/// shard owning their address ([`shard_of`]). Concatenating sub-batch `k`
/// across a batch stream therefore reproduces exactly the event sub-stream
/// a [`ShardFilter`] for shard `k` would deliver.
pub fn partition_batch(batch: &EventBatch, jobs: u32) -> Vec<EventBatch> {
    let jobs = jobs.max(1);
    // Size sub-batches from one cheap tag scan — every sub-batch carries
    // all control rows plus its share of the memory rows. Capacity at
    // `batch.len()` each would pin ~jobs× the stream's memory.
    let memory = batch.tags().iter().filter(|t| t.is_memory()).count();
    let control = batch.len() - memory;
    let capacity = control + memory / jobs as usize + 1;
    let mut subs: Vec<EventBatch> = (0..jobs)
        .map(|_| EventBatch::with_capacity(capacity))
        .collect();
    for i in 0..batch.len() {
        if batch.tag(i).is_memory() {
            subs[shard_of(batch.addr(i), jobs) as usize].push_index(batch, i);
        } else {
            for sub in &mut subs {
                sub.push_index(batch, i);
            }
        }
    }
    subs
}

/// Runs one sink per address shard over `events` on scoped worker threads
/// and returns the finished sinks in shard order.
///
/// This is the shared fan-out primitive behind [`profile_events_par`] and
/// `alchemist_parsim::extract_tasks_from_events_par`: `make_sink(k)`
/// builds the sequential analysis sink for shard `k`, each worker wraps it
/// in a [`ShardFilter`] and dispatches the whole stream, and the caller
/// merges the returned sinks however its analysis requires.
///
/// # Panics
///
/// Propagates a panic from any worker.
pub fn run_sharded<S, F>(events: &[Event], jobs: usize, make_sink: F) -> Vec<S>
where
    S: TraceSink + Send,
    F: Fn(u32) -> S + Sync,
{
    let jobs = jobs.clamp(1, u32::MAX as usize);
    std::thread::scope(|s| {
        let make_sink = &make_sink;
        let handles: Vec<_> = (0..jobs)
            .map(|k| {
                s.spawn(move || {
                    let mut filter = ShardFilter::new(k as u32, jobs as u32, make_sink(k as u32));
                    for ev in events {
                        ev.dispatch(&mut filter);
                    }
                    filter.into_inner()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("shard worker panicked"))
            .collect()
    })
}

/// Batched twin of [`run_sharded`]: runs one sink per address shard over a
/// stream of [`EventBatch`]es.
///
/// Unlike the per-event path — where every worker scans the *whole* stream
/// behind a [`ShardFilter`] (O(jobs × N) filtering) — this splits each
/// batch into per-shard sub-batches **once**, in a single pass
/// ([`partition_batch`]), then lets every worker consume only its own
/// sub-batches via bulk [`TraceSink::on_batch`] calls. Each worker's sink
/// observes exactly the sub-stream the filter would deliver, so analyses
/// merge identically.
///
/// Sub-batches stream to the workers through bounded channels, so only
/// O(jobs) of them are in flight at once — peak memory stays near the
/// input stream's, instead of retaining a full per-shard copy.
///
/// # Panics
///
/// Propagates a panic from any worker.
pub fn run_sharded_batched<S, F>(batches: &[EventBatch], jobs: usize, make_sink: F) -> Vec<S>
where
    S: TraceSink + Send,
    F: Fn(u32) -> S + Sync,
{
    run_sharded_batched_with(batches, jobs, None, make_sink)
}

/// [`run_sharded_batched`] with self-instrumentation: when `metrics` is
/// `Some`, the partition/send loop runs under a `shard_partition` stage
/// span, the sender's per-shard channel-send wait and the workers'
/// recv-wait / busy time / delivered row counts are folded into per-shard
/// [`ShardMetrics`] at join, and the batch/sub-batch counters are bumped.
/// All timing is one clock pair per *sub-batch* (thousands of events), and
/// with `None` this *is* [`run_sharded_batched`] — no clock reads at all.
///
/// # Panics
///
/// Propagates a panic from any worker.
pub fn run_sharded_batched_with<S, F>(
    batches: &[EventBatch],
    jobs: usize,
    metrics: Option<&Metrics>,
    make_sink: F,
) -> Vec<S>
where
    S: TraceSink + Send,
    F: Fn(u32) -> S + Sync,
{
    let jobs = jobs.clamp(1, u32::MAX as usize);
    std::thread::scope(|s| {
        let make_sink = &make_sink;
        let (senders, handles): (Vec<_>, Vec<_>) = (0..jobs)
            .map(|k| {
                let (tx, rx) = std::sync::mpsc::sync_channel::<EventBatch>(4);
                let handle = s.spawn(move || {
                    let mut sink = make_sink(k as u32);
                    let Some(m) = metrics else {
                        while let Ok(sub) = rx.recv() {
                            sink.on_batch(&sub);
                        }
                        return sink;
                    };
                    let mut sm = ShardMetrics {
                        shard: k,
                        ..ShardMetrics::default()
                    };
                    loop {
                        let t0 = Instant::now();
                        let Ok(sub) = rx.recv() else { break };
                        sm.recv_wait_ns += t0.elapsed().as_nanos() as u64;
                        sm.events += sub.len() as u64;
                        sm.mem_events += sub.tags().iter().filter(|t| t.is_memory()).count() as u64;
                        let t1 = Instant::now();
                        sink.on_batch(&sub);
                        sm.busy_ns += t1.elapsed().as_nanos() as u64;
                    }
                    m.record_shard(sm);
                    sink
                });
                (tx, handle)
            })
            .unzip();
        // One partitioning pass over the stream, instead of one filtered
        // scan per worker; workers consume concurrently as batches split.
        {
            let _partition_span = span_opt(metrics, Stage::ShardPartition);
            let mut send_wait: Vec<u64> = vec![0; if metrics.is_some() { jobs } else { 0 }];
            let mut sent = 0u64;
            for batch in batches {
                for (k, sub) in partition_batch(batch, jobs as u32).into_iter().enumerate() {
                    if !sub.is_empty() {
                        sent += 1;
                        if metrics.is_some() {
                            let t0 = Instant::now();
                            senders[k].send(sub).expect("shard worker hung up");
                            send_wait[k] += t0.elapsed().as_nanos() as u64;
                        } else {
                            senders[k].send(sub).expect("shard worker hung up");
                        }
                    }
                }
            }
            if let Some(m) = metrics {
                m.add(Counter::ShardBatchesPartitioned, batches.len() as u64);
                m.add(Counter::ShardSubBatchesSent, sent);
                for (k, ns) in send_wait.into_iter().enumerate() {
                    m.record_shard(ShardMetrics {
                        shard: k,
                        send_wait_ns: ns,
                        ..ShardMetrics::default()
                    });
                }
            }
        }
        drop(senders); // close the channels so workers finish
        handles
            .into_iter()
            .map(|h| h.join().expect("shard worker panicked"))
            .collect()
    })
}

/// Memory events per shard for a `jobs`-way split (control events are
/// broadcast and not counted). Used by benches and `replay --jobs` to show
/// how balanced the address partition is.
pub fn shard_event_counts(events: &[Event], jobs: usize) -> Vec<u64> {
    let jobs = jobs.max(1);
    let mut counts = vec![0u64; jobs];
    for ev in events {
        if let Event::Read { addr, .. } | Event::Write { addr, .. } = *ev {
            counts[shard_of(addr, jobs as u32) as usize] += 1;
        }
    }
    counts
}

/// [`shard_event_counts`] over a batch stream: one pass over the tag and
/// address columns, no row reconstruction.
pub fn shard_batch_counts(batches: &[EventBatch], jobs: usize) -> Vec<u64> {
    let jobs = jobs.max(1);
    let mut counts = vec![0u64; jobs];
    for batch in batches {
        for i in 0..batch.len() {
            if batch.tag(i).is_memory() {
                counts[shard_of(batch.addr(i), jobs as u32) as usize] += 1;
            }
        }
    }
    counts
}

/// Merges per-shard profiles into the sequential-equivalent whole.
///
/// Shard 0 contributes everything (its control-derived statistics are
/// identical to every other shard's); the remaining shards contribute only
/// their dependence edges, dropped-reader counts and shadow-layout
/// telemetry (summed: each worker faults its own pages, so the merged
/// counters describe the fleet's total allocations, not the sequential
/// run's — which is why they are excluded from profile equality).
pub fn merge_shard_profiles(shards: Vec<DepProfile>) -> DepProfile {
    let mut iter = shards.into_iter();
    let mut base = iter.next().unwrap_or_default();
    for shard in iter {
        base.dropped_readers += shard.dropped_readers;
        base.shadow_stats.pages_allocated += shard.shadow_stats.pages_allocated;
        base.shadow_stats.read_set_spills += shard.shadow_stats.read_set_spills;
        // Dependence detections partition by address exactly like the
        // memory events that produce them, so the thread-classification
        // counters sum to the sequential run's.
        base.intra_thread_deps += shard.intra_thread_deps;
        base.cross_thread_deps += shard.cross_thread_deps;
        for c in shard.constructs() {
            for (key, stat) in &c.edges {
                base.merge_edge(c.id, *key, *stat);
            }
        }
    }
    base
}

/// Parallel variant of [`profile_events`]: replays a
/// recorded event stream through `jobs` address shards on scoped worker
/// threads and merges the per-shard profiles.
///
/// Produces a [`DepProfile`] **equal** to the sequential replay (and hence
/// to live instrumentation of the run that recorded `events`), plus the
/// pool statistics and maximum depth — which are control-derived and
/// identical in every shard. `jobs <= 1` falls back to the sequential path.
///
/// # Examples
///
/// ```
/// use alchemist_core::{profile_events, profile_events_par, ProfileConfig};
/// use alchemist_vm::{compile_source, run, ExecConfig, RecordingSink};
///
/// let src = "int g; int main() { int i; for (i = 0; i < 9; i++) g += i; return g; }";
/// let module = compile_source(src).unwrap();
/// let mut rec = RecordingSink::default();
/// let out = run(&module, &ExecConfig::default(), &mut rec).unwrap();
///
/// let (seq, _, _) = profile_events(
///     &module, rec.events.iter().copied(), out.steps, ProfileConfig::default());
/// let (par, _, _) = profile_events_par(
///     &module, &rec.events, out.steps, ProfileConfig::default(), 4);
/// assert_eq!(par, seq);
/// ```
pub fn profile_events_par(
    module: &Module,
    events: &[Event],
    total_steps: u64,
    config: ProfileConfig,
    jobs: usize,
) -> (DepProfile, PoolStats, usize) {
    if jobs <= 1 {
        return profile_events(module, events.iter().copied(), total_steps, config);
    }
    let profilers = run_sharded(events, jobs, |_| {
        AlchemistProfiler::new(module, config.clone())
    });
    finish_shard_profilers(profilers, total_steps, None)
}

/// Extracts per-shard profiles from finished profilers and merges them.
/// When `metrics` is `Some`, each shard's shadow-layout telemetry (pages
/// faulted, read-set spills) is recorded per shard and the merge runs under
/// a `merge` stage span.
fn finish_shard_profilers(
    profilers: Vec<AlchemistProfiler<'_>>,
    total_steps: u64,
    metrics: Option<&Metrics>,
) -> (DepProfile, PoolStats, usize) {
    let mut shards: Vec<(DepProfile, PoolStats, usize)> = profilers
        .into_iter()
        .map(|prof| {
            let pool_stats = prof.pool_stats();
            let max_depth = prof.max_depth();
            (prof.into_profile(total_steps), pool_stats, max_depth)
        })
        .collect();
    let (pool_stats, max_depth) = (shards[0].1, shards[0].2);
    debug_assert!(
        shards
            .iter()
            .all(|(_, ps, d)| (*ps, *d) == (pool_stats, max_depth)),
        "control-derived statistics must be identical across shards"
    );
    if let Some(m) = metrics {
        for (k, (profile, _, _)) in shards.iter().enumerate() {
            m.record_shard(ShardMetrics {
                shard: k,
                pages_allocated: profile.shadow_stats.pages_allocated,
                read_set_spills: profile.shadow_stats.read_set_spills,
                ..ShardMetrics::default()
            });
        }
    }
    let profiles = shards.drain(..).map(|(p, _, _)| p).collect();
    let _merge_span = span_opt(metrics, Stage::Merge);
    (merge_shard_profiles(profiles), pool_stats, max_depth)
}

/// Batched twin of [`profile_events_par`]: profiles a stream of
/// [`EventBatch`]es through `jobs` address shards via
/// [`run_sharded_batched`] (single-pass partitioning, bulk dispatch) and
/// merges the per-shard profiles.
///
/// Produces a [`DepProfile`] **equal** to the sequential batched replay,
/// the per-event replay and live instrumentation of the recorded run.
/// `jobs <= 1` falls back to the sequential batched path.
///
/// # Examples
///
/// ```
/// use alchemist_core::{profile_batches_par, profile_events, ProfileConfig};
/// use alchemist_vm::{compile_source, run, EventBatch, ExecConfig, RecordingSink};
///
/// let src = "int g; int main() { int i; for (i = 0; i < 9; i++) g += i; return g; }";
/// let module = compile_source(src).unwrap();
/// let mut rec = RecordingSink::default();
/// let out = run(&module, &ExecConfig::default(), &mut rec).unwrap();
///
/// let (seq, _, _) = profile_events(
///     &module, rec.events.iter().copied(), out.steps, ProfileConfig::default());
/// let batches: Vec<EventBatch> = rec.events.chunks(16).map(EventBatch::from_events).collect();
/// let (par, _, _) = profile_batches_par(
///     &module, &batches, out.steps, ProfileConfig::default(), 4);
/// assert_eq!(par, seq);
/// ```
pub fn profile_batches_par(
    module: &Module,
    batches: &[EventBatch],
    total_steps: u64,
    config: ProfileConfig,
    jobs: usize,
) -> (DepProfile, PoolStats, usize) {
    profile_batches_par_with(module, batches, total_steps, config, jobs, None)
}

/// [`profile_batches_par`] with self-instrumentation: when `metrics` is
/// `Some`, the sharded fan-out records per-shard channel waits, busy time,
/// delivered row counts and shadow telemetry (via
/// [`run_sharded_batched_with`]), the merge runs under a `merge` stage
/// span, and the `profile.events` / `profile.deps` counters are bumped
/// with the stream's event count and the merged dependence-detection
/// total. The produced profile is **equal** to the uninstrumented one.
pub fn profile_batches_par_with(
    module: &Module,
    batches: &[EventBatch],
    total_steps: u64,
    config: ProfileConfig,
    jobs: usize,
    metrics: Option<&Metrics>,
) -> (DepProfile, PoolStats, usize) {
    let result = if jobs <= 1 {
        profile_batches(module, batches, total_steps, config)
    } else {
        let profilers = run_sharded_batched_with(batches, jobs, metrics, |_| {
            AlchemistProfiler::new(module, config.clone())
        });
        finish_shard_profilers(profilers, total_steps, metrics)
    };
    if let Some(m) = metrics {
        m.add(
            Counter::ProfileEvents,
            batches.iter().map(|b| b.len() as u64).sum(),
        );
        m.add(
            Counter::ProfileDeps,
            result.0.intra_thread_deps + result.0.cross_thread_deps,
        );
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use alchemist_vm::{compile_source, run, CountingSink, ExecConfig, RecordingSink};

    const CHURN: &str = "int a[16]; int sum;
        void mix(int k) {
            int i;
            for (i = 0; i < 16; i++) a[i] = a[(i + k) % 16] + i;
        }
        int main() {
            int r;
            for (r = 0; r < 6; r++) { mix(r); sum += a[r]; }
            return sum;
        }";

    fn record(src: &str) -> (alchemist_vm::Module, Vec<Event>, u64) {
        let module = compile_source(src).unwrap();
        let mut rec = RecordingSink::default();
        let out = run(&module, &ExecConfig::default(), &mut rec).unwrap();
        (module, rec.events, out.steps)
    }

    #[test]
    fn shard_filter_partitions_memory_and_broadcasts_control() {
        let (_m, events, _) = record(CHURN);
        let jobs = 3;
        let mut totals = CountingSink::default();
        for ev in &events {
            ev.dispatch(&mut totals);
        }
        let mut mem_seen = 0;
        for k in 0..jobs {
            let mut f = ShardFilter::new(k, jobs, CountingSink::default());
            for ev in &events {
                ev.dispatch(&mut f);
            }
            let c = f.into_inner();
            assert_eq!(c.enters, totals.enters, "control broadcast");
            assert_eq!(c.predicates, totals.predicates, "control broadcast");
            mem_seen += c.reads + c.writes;
        }
        assert_eq!(
            mem_seen,
            totals.reads + totals.writes,
            "memory events partition exactly"
        );
    }

    #[test]
    fn shard_counts_cover_all_memory_events() {
        let (_m, events, _) = record(CHURN);
        let mut totals = CountingSink::default();
        for ev in &events {
            ev.dispatch(&mut totals);
        }
        for jobs in [1usize, 2, 5] {
            let counts = shard_event_counts(&events, jobs);
            assert_eq!(counts.len(), jobs);
            assert_eq!(counts.iter().sum::<u64>(), totals.reads + totals.writes);
        }
    }

    #[test]
    fn parallel_profile_equals_sequential_for_any_job_count() {
        let (module, events, steps) = record(CHURN);
        let (seq, seq_pool, seq_depth) = profile_events(
            &module,
            events.iter().copied(),
            steps,
            ProfileConfig::default(),
        );
        for jobs in [1usize, 2, 3, 4, 7, 16] {
            let (par, pool, depth) =
                profile_events_par(&module, &events, steps, ProfileConfig::default(), jobs);
            assert_eq!(par, seq, "jobs={jobs}");
            assert_eq!(pool, seq_pool, "jobs={jobs}");
            assert_eq!(depth, seq_depth, "jobs={jobs}");
        }
    }

    #[test]
    fn parallel_profile_matches_under_tiny_reader_cap() {
        // Cap evictions are per-address state; sharding must not change
        // which reads are dropped or how many.
        let (module, events, steps) = record(CHURN);
        let cfg = ProfileConfig {
            reader_cap: 1,
            ..Default::default()
        };
        let (seq, _, _) = profile_events(&module, events.iter().copied(), steps, cfg.clone());
        let (par, _, _) = profile_events_par(&module, &events, steps, cfg, 4);
        assert_eq!(par.dropped_readers, seq.dropped_readers);
        assert_eq!(par, seq);
    }

    #[test]
    fn more_jobs_than_addresses_is_fine() {
        let (module, events, steps) = record("int g; int main() { g = 1; return g; }");
        let (seq, _, _) = profile_events(
            &module,
            events.iter().copied(),
            steps,
            ProfileConfig::default(),
        );
        let (par, _, _) = profile_events_par(&module, &events, steps, ProfileConfig::default(), 64);
        assert_eq!(par, seq);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn shard_filter_rejects_out_of_range_shard() {
        let _ = ShardFilter::new(4, 4, CountingSink::default());
    }

    /// Batches the recorded stream into blocks of `size` events.
    fn to_batches(events: &[Event], size: usize) -> Vec<EventBatch> {
        events.chunks(size).map(EventBatch::from_events).collect()
    }

    #[test]
    fn partition_batch_matches_the_shard_filter_substream() {
        let (_m, events, _) = record(CHURN);
        let batch = EventBatch::from_events(&events);
        for jobs in [1u32, 2, 3, 5] {
            let subs = partition_batch(&batch, jobs);
            assert_eq!(subs.len(), jobs as usize);
            for (k, sub) in subs.iter().enumerate() {
                // The filter's per-event sub-stream is the ground truth.
                let mut f =
                    ShardFilter::new(k as u32, jobs, alchemist_vm::RecordingSink::default());
                for ev in &events {
                    ev.dispatch(&mut f);
                }
                let expect = f.into_inner().events;
                let got: Vec<Event> = sub.iter().collect();
                assert_eq!(got, expect, "jobs={jobs} shard={k}");
            }
        }
    }

    #[test]
    fn shard_filter_on_batch_equals_per_event_filtering() {
        let (_m, events, _) = record(CHURN);
        for jobs in [2u32, 3] {
            for k in 0..jobs {
                let mut per_event =
                    ShardFilter::new(k, jobs, alchemist_vm::RecordingSink::default());
                for ev in &events {
                    ev.dispatch(&mut per_event);
                }
                let mut batched = ShardFilter::new(k, jobs, alchemist_vm::RecordingSink::default());
                for batch in to_batches(&events, 17) {
                    batched.on_batch(&batch);
                }
                assert_eq!(
                    batched.into_inner().events,
                    per_event.into_inner().events,
                    "jobs={jobs} shard={k}"
                );
            }
        }
    }

    #[test]
    fn batched_profile_equals_sequential_for_any_job_count() {
        let (module, events, steps) = record(CHURN);
        let (seq, seq_pool, seq_depth) = profile_events(
            &module,
            events.iter().copied(),
            steps,
            ProfileConfig::default(),
        );
        for batch_size in [16usize, 4096] {
            let batches = to_batches(&events, batch_size);
            for jobs in [1usize, 2, 3, 7] {
                let (par, pool, depth) =
                    profile_batches_par(&module, &batches, steps, ProfileConfig::default(), jobs);
                assert_eq!(par, seq, "batch_size={batch_size} jobs={jobs}");
                assert_eq!(pool, seq_pool, "batch_size={batch_size} jobs={jobs}");
                assert_eq!(depth, seq_depth, "batch_size={batch_size} jobs={jobs}");
            }
        }
    }

    #[test]
    fn instrumented_sharded_profile_equals_uninstrumented() {
        let (module, events, steps) = record(CHURN);
        let batches = to_batches(&events, 16);
        let jobs = 3usize;
        let (plain, _, _) =
            profile_batches_par(&module, &batches, steps, ProfileConfig::default(), jobs);
        let m = Metrics::new();
        let (instr, _, _) = profile_batches_par_with(
            &module,
            &batches,
            steps,
            ProfileConfig::default(),
            jobs,
            Some(&m),
        );
        assert_eq!(instr, plain);

        // Counters describe the stream and the merged profile.
        let total_events: u64 = batches.iter().map(|b| b.len() as u64).sum();
        assert_eq!(m.get(Counter::ProfileEvents), total_events);
        assert_eq!(
            m.get(Counter::ProfileDeps),
            plain.intra_thread_deps + plain.cross_thread_deps
        );
        assert_eq!(
            m.get(Counter::ShardBatchesPartitioned),
            batches.len() as u64
        );
        assert!(m.get(Counter::ShardSubBatchesSent) >= batches.len() as u64);

        // Per-shard rows: one per shard, mem rows partition exactly, and
        // every shard carries its shadow telemetry.
        let shards = m.shards();
        assert_eq!(shards.len(), jobs);
        let expect_counts = shard_batch_counts(&batches, jobs);
        for (k, sm) in shards.iter().enumerate() {
            assert_eq!(sm.shard, k);
            assert_eq!(sm.mem_events, expect_counts[k], "shard {k}");
            assert!(sm.events >= sm.mem_events);
        }
        let pages: u64 = shards.iter().map(|s| s.pages_allocated).sum();
        assert_eq!(pages, plain.shadow_stats.pages_allocated);

        // Stage spans fired exactly once each.
        assert_eq!(m.stage(Stage::ShardPartition).1, 1);
        assert_eq!(m.stage(Stage::Merge).1, 1);
    }

    #[test]
    fn shard_batch_counts_agree_with_event_counts() {
        let (_m, events, _) = record(CHURN);
        let batches = to_batches(&events, 9);
        for jobs in [1usize, 2, 5] {
            assert_eq!(
                shard_batch_counts(&batches, jobs),
                shard_event_counts(&events, jobs),
                "jobs={jobs}"
            );
        }
    }
}
