//! Address-sharded parallel replay.
//!
//! The offline analyses ([`profile_events`], task
//! extraction) are pure functions of a recorded event stream, which makes
//! them parallelizable without touching the capture side. The scheme is the
//! classic shadow-memory sharding used by parallel memory profilers:
//!
//! * memory events are partitioned by a block-cyclic address split chosen
//!   by [`ShardSpec`] — every address's full access history lands on
//!   exactly one shard, so per-address shadow state (last write, read set,
//!   cap evictions) evolves *identically* to the sequential run;
//! * control events (enter/exit/block/predicate) are broadcast to all
//!   shards, so every shard maintains an identical execution-index tree and
//!   construct pool — dependence attribution needs the tree, and the tree
//!   is cheap next to shadow lookups;
//! * per-shard [`DepProfile`]s are merged deterministically: duration,
//!   instance and nesting statistics are control-derived and therefore
//!   identical in every shard (shard 0's copy is kept); dependence edges are
//!   disjoint per dynamic occurrence and union with min/sum semantics via
//!   [`DepProfile::merge_edge`], whose lowest-address tie rule makes the
//!   merge commutative.
//!
//! The result is **equal** (`==`) to the sequential and live profiles: the
//! determinism guarantee the `replay --jobs N` CLI path and the CI parity
//! gate assert for every bundled workload.
//!
//! Memory note: the partition starts page-granular —
//! `(addr >> PAGE_SHIFT) % jobs` with the page size matched to
//! [`ShadowMemory`](crate::shadow::ShadowMemory)'s
//! [`PAGE_WORDS`](crate::shadow::PAGE_WORDS)-cell
//! pages — so each worker faults only the shadow pages it owns and the
//! fleet's `pages_allocated` sums to the sequential run's instead of
//! multiplying by `jobs`. Page ownership is only kept when the stream's
//! page traffic actually spreads: [`ShardSpec::for_batches`] measures the
//! per-shard balance at a ladder of block sizes
//! ([`CANDIDATE_SHIFTS`]: 4096 → 512 → 64 → 8 → 1 words) and takes the
//! coarsest stride whose max/min shard load stays within
//! [`MAX_SHARD_IMBALANCE`]. Small single-threaded programs concentrate
//! their globals and frame slots on one or two pages, so the ladder
//! deliberately falls through to finer strides — ultimately `addr % jobs`,
//! which rebalances perfectly but re-introduces the `jobs ×` page
//! duplication. That duplication is bounded by `jobs × touched pages` and
//! is the right trade below tens of jobs; streams that genuinely spread
//! (threaded workloads whose spawned stacks live on their own pages, big
//! multi-page arrays) keep whole-page ownership automatically.

use crate::pool::PoolStats;
use crate::profile::DepProfile;
use crate::profiler::{AlchemistProfiler, ProfileConfig};
use crate::runner::{profile_batches, profile_events};
use crate::shadow::PAGE_SHIFT;
use alchemist_lang::hir::FuncId;
use alchemist_obs::{span_opt, Counter, Metrics, ShardMetrics, Stage};
use alchemist_vm::{BlockId, Event, EventBatch, Module, Pc, Tid, Time, TraceSink};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

/// A shard replay worker died mid-stream.
///
/// Workers run under [`catch_unwind`], so one shard's panic (an analysis
/// bug, a poisoned sink) no longer aborts the whole replay: the panicking
/// shard is reported here — with its id, how many events it had consumed
/// and the panic payload — while the surviving shards drain their queues
/// and join cleanly. Only the *first* failing shard (lowest id) is
/// returned; the merged result is unusable either way once any address
/// shard is missing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardError {
    /// Shard id of the worker that panicked.
    pub shard: u32,
    /// Events the worker had consumed before dying.
    pub events: u64,
    /// The panic payload, stringified (`&str` / `String` payloads verbatim,
    /// anything else as `<non-string panic payload>`).
    pub payload: String,
}

impl std::fmt::Display for ShardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "shard worker {} panicked after {} events: {}",
            self.shard, self.events, self.payload
        )
    }
}

impl std::error::Error for ShardError {}

/// Stringifies a panic payload for [`ShardError::payload`].
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Joins every worker, collecting finished sinks; if any worker panicked,
/// returns the lowest-id failure *after* all handles joined (surviving
/// shards always drain cleanly, no thread is left detached).
fn join_shards<S>(
    handles: Vec<std::thread::ScopedJoinHandle<'_, Result<S, (u64, String)>>>,
) -> Result<Vec<S>, ShardError> {
    let mut sinks = Vec::with_capacity(handles.len());
    let mut first_err: Option<ShardError> = None;
    for (k, handle) in handles.into_iter().enumerate() {
        let joined = match handle.join() {
            Ok(result) => result,
            // The worker body is wrapped in catch_unwind, so a join error
            // means the panic escaped the wrapper (e.g. a panicking Drop
            // during unwind) — still report it rather than re-panic.
            Err(payload) => Err((0, panic_message(payload))),
        };
        match joined {
            Ok(sink) => sinks.push(sink),
            Err((events, payload)) => {
                first_err.get_or_insert(ShardError {
                    shard: k as u32,
                    events,
                    payload,
                });
            }
        }
    }
    match first_err {
        None => Ok(sinks),
        Some(err) => Err(err),
    }
}

/// Block-size ladder (log2 words) the partition chooser walks, coarsest
/// first: whole shadow pages, then 512-, 64- and 8-word blocks, down to
/// single-word interleaving (`addr % jobs`, the pre-page-partition scheme).
pub const CANDIDATE_SHIFTS: [u32; 5] = [PAGE_SHIFT, 9, 6, 3, 0];

/// A candidate stride is accepted when `max <= MAX_SHARD_IMBALANCE * min`
/// over its per-shard memory-event counts — the same `>2x` threshold the
/// report's `shard imbalance` note uses.
pub const MAX_SHARD_IMBALANCE: u64 = 2;

/// The chooser samples at most ~this many rows (deterministic stride over
/// the stream) so spec selection stays a fraction of one decode pass even
/// at tens of millions of events.
const CHOOSER_SAMPLE_ROWS: usize = 1 << 21;

/// How a recorded stream's address space is split across replay workers: a
/// block-cyclic partition `(addr >> shift) % jobs`.
///
/// `shift = PAGE_SHIFT` gives whole-page ownership (each worker faults
/// only its own shadow pages); `shift = 0` is single-word interleaving
/// (best balance, `jobs ×` page duplication). [`ShardSpec::for_batches`] /
/// [`ShardSpec::for_events`] pick the coarsest balanced stride for a
/// concrete stream; the choice is a pure function of the stream and `jobs`,
/// so sequential/parallel parity holds for every choice.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardSpec {
    jobs: u32,
    shift: u32,
}

impl ShardSpec {
    /// A spec with an explicit block size (`1 << shift` words). `jobs` is
    /// clamped to at least 1, `shift` to at most 31.
    pub fn with_shift(jobs: u32, shift: u32) -> Self {
        ShardSpec {
            jobs: jobs.max(1),
            shift: shift.min(31),
        }
    }

    /// Worker count of the partition.
    pub fn jobs(&self) -> u32 {
        self.jobs
    }

    /// Log2 of the block size in words.
    pub fn shift(&self) -> u32 {
        self.shift
    }

    /// Block size in words (`1 << shift`).
    pub fn block_words(&self) -> u32 {
        1 << self.shift
    }

    /// The shard owning `addr`.
    #[inline]
    pub fn shard_of(&self, addr: u32) -> u32 {
        (addr >> self.shift) % self.jobs
    }

    /// Chooses the coarsest balanced stride for a batched stream: walks
    /// [`CANDIDATE_SHIFTS`] coarsest-first and returns the first whose
    /// per-shard memory-event counts stay within [`MAX_SHARD_IMBALANCE`];
    /// if none qualifies, the stride minimizing the *largest* shard (the
    /// replay's critical path), coarsest-first on ties.
    pub fn for_batches(batches: &[EventBatch], jobs: u32) -> Self {
        if jobs <= 1 {
            return Self::with_shift(jobs, PAGE_SHIFT);
        }
        let total: usize = batches.iter().map(|b| b.len()).sum();
        let stride = (total / CHOOSER_SAMPLE_ROWS).max(1);
        let addrs = batches
            .iter()
            .flat_map(|b| (0..b.len()).map(move |i| (b, i)))
            .step_by(stride)
            .filter(|(b, i)| b.tag(*i).is_memory())
            .map(|(b, i)| b.addr(i));
        Self::with_shift(jobs, choose_shift(jobs, addrs))
    }

    /// [`ShardSpec::for_batches`] over a per-event stream.
    pub fn for_events(events: &[Event], jobs: u32) -> Self {
        if jobs <= 1 {
            return Self::with_shift(jobs, PAGE_SHIFT);
        }
        let stride = (events.len() / CHOOSER_SAMPLE_ROWS).max(1);
        let addrs = events.iter().step_by(stride).filter_map(|ev| match *ev {
            Event::Read { addr, .. } | Event::Write { addr, .. } => Some(addr),
            _ => None,
        });
        Self::with_shift(jobs, choose_shift(jobs, addrs))
    }
}

/// One counting pass over (sampled) memory addresses, tallying every
/// candidate stride at once, then the ladder walk described on
/// [`ShardSpec::for_batches`].
fn choose_shift(jobs: u32, addrs: impl Iterator<Item = u32>) -> u32 {
    let j = jobs as usize;
    let mut counts = vec![0u64; CANDIDATE_SHIFTS.len() * j];
    for addr in addrs {
        for (si, &shift) in CANDIDATE_SHIFTS.iter().enumerate() {
            counts[si * j + ((addr >> shift) % jobs) as usize] += 1;
        }
    }
    let row_max_min = |si: usize| {
        let row = &counts[si * j..(si + 1) * j];
        // Invariant: `jobs >= 1` (clamped by every caller), so each row has
        // at least one cell and the fallbacks below never fire — they exist
        // only to keep the closure total.
        (
            *row.iter().max().unwrap_or(&0),
            *row.iter().min().unwrap_or(&0),
        )
    };
    for (si, &shift) in CANDIDATE_SHIFTS.iter().enumerate() {
        let (max, min) = row_max_min(si);
        if max <= MAX_SHARD_IMBALANCE * min {
            return shift;
        }
    }
    // Nothing balances (hot frame slots usually guarantee that for small
    // single-threaded programs): minimize the critical path instead.
    let mut best = (u64::MAX, CANDIDATE_SHIFTS[0]);
    for (si, &shift) in CANDIDATE_SHIFTS.iter().enumerate() {
        let (max, _) = row_max_min(si);
        if max < best.0 {
            best = (max, shift);
        }
    }
    best.1
}

/// Default bound on in-flight sub-batches per shard channel.
pub const SHARD_CHANNEL_DEPTH: usize = 16;

/// Default flush threshold: a per-shard sub-batch is handed off once it has
/// accumulated at least this many rows, so per-send channel cost amortizes
/// over thousands of events.
pub const SHARD_FLUSH_EVENTS: usize = 4096;

/// Tunables for the batched fan-out's channel hand-off (the CLI exposes
/// them as `replay --shard-depth` / `--shard-flush`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardTuning {
    /// Bounded channel capacity, in sub-batches, per shard
    /// ([`SHARD_CHANNEL_DEPTH`] by default). Peak buffered memory is
    /// `jobs × channel_depth × flush_events` rows.
    pub channel_depth: usize,
    /// Minimum rows accumulated before a sub-batch is sent
    /// ([`SHARD_FLUSH_EVENTS`] by default; the stream's tail flushes
    /// whatever remains).
    pub flush_events: usize,
}

impl Default for ShardTuning {
    fn default() -> Self {
        ShardTuning {
            channel_depth: SHARD_CHANNEL_DEPTH,
            flush_events: SHARD_FLUSH_EVENTS,
        }
    }
}

impl ShardTuning {
    fn normalized(self) -> Self {
        ShardTuning {
            channel_depth: self.channel_depth.max(1),
            flush_events: self.flush_events.max(1),
        }
    }
}

/// A [`TraceSink`] adapter that forwards every control event to `inner` but
/// only the memory events whose address belongs to one shard.
///
/// Wrapping any sequential analysis sink in a `ShardFilter` per worker is
/// all it takes to shard it: the inner sink observes the exact sub-stream
/// the sequential run would deliver for its addresses, in the same order
/// and with the same timestamps.
#[derive(Debug)]
pub struct ShardFilter<S> {
    shard: u32,
    spec: ShardSpec,
    inner: S,
    /// Reused sub-batch for the `on_batch` bulk path.
    scratch: EventBatch,
}

impl<S> ShardFilter<S> {
    /// Wraps `inner` as shard `shard` of `spec`.
    ///
    /// # Panics
    ///
    /// Panics if `shard >= spec.jobs()` (the filter would drop every
    /// memory event).
    pub fn new(shard: u32, spec: ShardSpec, inner: S) -> Self {
        assert!(
            shard < spec.jobs(),
            "shard {shard} out of range for {} jobs",
            spec.jobs()
        );
        ShardFilter {
            shard,
            spec,
            inner,
            scratch: EventBatch::new(),
        }
    }

    /// Unwraps the inner sink.
    pub fn into_inner(self) -> S {
        self.inner
    }

    #[inline]
    fn owns(&self, addr: u32) -> bool {
        self.spec.shard_of(addr) == self.shard
    }
}

impl<S: TraceSink> TraceSink for ShardFilter<S> {
    fn on_enter_function(&mut self, t: Time, func: FuncId, fp: u32, tid: Tid) {
        self.inner.on_enter_function(t, func, fp, tid);
    }
    fn on_exit_function(&mut self, t: Time, func: FuncId, tid: Tid) {
        self.inner.on_exit_function(t, func, tid);
    }
    fn on_block_entry(&mut self, t: Time, block: BlockId, tid: Tid) {
        self.inner.on_block_entry(t, block, tid);
    }
    fn on_predicate(&mut self, t: Time, pc: Pc, block: BlockId, taken: bool, tid: Tid) {
        self.inner.on_predicate(t, pc, block, taken, tid);
    }
    fn on_read(&mut self, t: Time, addr: u32, pc: Pc, tid: Tid) {
        if self.owns(addr) {
            self.inner.on_read(t, addr, pc, tid);
        }
    }
    fn on_write(&mut self, t: Time, addr: u32, pc: Pc, tid: Tid) {
        if self.owns(addr) {
            self.inner.on_write(t, addr, pc, tid);
        }
    }
    fn on_batch(&mut self, batch: &EventBatch) {
        // Single pass: copy the shard's sub-stream (all control rows plus
        // owned memory rows) into the reusable scratch batch, then hand the
        // inner sink one bulk call.
        self.scratch.clear();
        for i in 0..batch.len() {
            if !batch.tag(i).is_memory() || self.owns(batch.addr(i)) {
                self.scratch.push_index(batch, i);
            }
        }
        let scratch = std::mem::take(&mut self.scratch);
        self.inner.on_batch(&scratch);
        self.scratch = scratch; // keep the capacity for the next batch
    }
}

/// Appends one batch's rows to per-shard accumulators in a single pass:
/// control rows go to every accumulator, memory rows only to the shard
/// owning their address under `spec`.
fn partition_into(batch: &EventBatch, spec: ShardSpec, accs: &mut [EventBatch]) {
    for i in 0..batch.len() {
        if batch.tag(i).is_memory() {
            accs[spec.shard_of(batch.addr(i)) as usize].push_index(batch, i);
        } else {
            for acc in accs.iter_mut() {
                acc.push_index(batch, i);
            }
        }
    }
}

/// Splits one batch into `spec.jobs()` per-shard sub-batches in a single
/// pass: control rows are appended to every sub-batch, memory rows only to
/// the shard owning their address ([`ShardSpec::shard_of`]). Concatenating
/// sub-batch `k` across a batch stream therefore reproduces exactly the
/// event sub-stream a [`ShardFilter`] for shard `k` would deliver.
pub fn partition_batch(batch: &EventBatch, spec: ShardSpec) -> Vec<EventBatch> {
    let jobs = spec.jobs();
    // Size sub-batches from one cheap tag scan — every sub-batch carries
    // all control rows plus its share of the memory rows. Capacity at
    // `batch.len()` each would pin ~jobs× the stream's memory.
    let memory = batch.tags().iter().filter(|t| t.is_memory()).count();
    let control = batch.len() - memory;
    let capacity = control + memory / jobs as usize + 1;
    let mut subs: Vec<EventBatch> = (0..jobs)
        .map(|_| EventBatch::with_capacity(capacity))
        .collect();
    partition_into(batch, spec, &mut subs);
    subs
}

/// Runs one sink per address shard over `events` on scoped worker threads
/// and returns the finished sinks in shard order. The partition is chosen
/// by [`ShardSpec::for_events`].
///
/// This is the shared fan-out primitive behind [`profile_events_par`] and
/// `alchemist_parsim::extract_tasks_from_events_par`: `make_sink(k)`
/// builds the sequential analysis sink for shard `k`, each worker wraps it
/// in a [`ShardFilter`] and dispatches the whole stream, and the caller
/// merges the returned sinks however its analysis requires.
///
/// # Errors
///
/// [`ShardError`] if any worker panicked; the surviving workers are joined
/// first, so no thread outlives the call.
pub fn run_sharded<S, F>(events: &[Event], jobs: usize, make_sink: F) -> Result<Vec<S>, ShardError>
where
    S: TraceSink + Send,
    F: Fn(u32) -> S + Sync,
{
    let jobs = jobs.clamp(1, u32::MAX as usize);
    let spec = ShardSpec::for_events(events, jobs as u32);
    run_sharded_spec(events, spec, make_sink)
}

/// [`run_sharded`] with an explicit, caller-chosen partition.
///
/// # Errors
///
/// [`ShardError`] if any worker panicked; the surviving workers are joined
/// first, so no thread outlives the call.
pub fn run_sharded_spec<S, F>(
    events: &[Event],
    spec: ShardSpec,
    make_sink: F,
) -> Result<Vec<S>, ShardError>
where
    S: TraceSink + Send,
    F: Fn(u32) -> S + Sync,
{
    std::thread::scope(|s| {
        let make_sink = &make_sink;
        let handles: Vec<_> = (0..spec.jobs())
            .map(|k| {
                s.spawn(move || {
                    let mut done = 0u64;
                    let result = catch_unwind(AssertUnwindSafe(|| {
                        let mut filter = ShardFilter::new(k, spec, make_sink(k));
                        for ev in events {
                            ev.dispatch(&mut filter);
                            done += 1;
                        }
                        filter.into_inner()
                    }));
                    result.map_err(|payload| (done, panic_message(payload)))
                })
            })
            .collect();
        join_shards(handles)
    })
}

/// Batched twin of [`run_sharded`]: runs one sink per address shard over a
/// stream of [`EventBatch`]es.
///
/// Unlike the per-event path — where every worker scans the *whole* stream
/// behind a [`ShardFilter`] (O(jobs × N) filtering) — this splits each
/// batch into per-shard sub-batches **once**, in a single pass, then lets
/// every worker consume only its own sub-batches via bulk
/// [`TraceSink::on_batch`] calls. Each worker's sink observes exactly the
/// sub-stream the filter would deliver, so analyses merge identically.
///
/// Sub-batches accumulate sender-side until they hold at least
/// [`SHARD_FLUSH_EVENTS`] rows, then stream to the workers through bounded
/// channels whose consumed batches are pooled back to the sender — the
/// hand-off costs one channel round-trip per *thousands* of events and
/// steady-state partitioning allocates nothing. Peak in-flight memory is
/// `jobs × SHARD_CHANNEL_DEPTH` sub-batches.
///
/// # Errors
///
/// [`ShardError`] if any worker panicked. A dead worker's channel simply
/// stops accepting sends — the sender keeps feeding the surviving shards,
/// which drain and join cleanly before the error is returned.
pub fn run_sharded_batched<S, F>(
    batches: &[EventBatch],
    jobs: usize,
    make_sink: F,
) -> Result<Vec<S>, ShardError>
where
    S: TraceSink + Send,
    F: Fn(u32) -> S + Sync,
{
    run_sharded_batched_with(batches, jobs, ShardTuning::default(), None, make_sink)
}

/// [`run_sharded_batched`] with explicit hand-off tuning and optional
/// self-instrumentation: when `metrics` is `Some`, the partition/send loop
/// runs under a `shard_partition` stage span, the sender's per-shard
/// channel-send wait and the workers' recv-wait / busy time / delivered
/// row counts are folded into per-shard [`ShardMetrics`] at join, and the
/// batch/sub-batch counters are bumped. All timing is one clock pair per
/// *sub-batch* (thousands of events), and with `None` this *is*
/// [`run_sharded_batched`] — no clock reads at all.
///
/// # Errors
///
/// [`ShardError`] if any worker panicked (see [`run_sharded_batched`]).
pub fn run_sharded_batched_with<S, F>(
    batches: &[EventBatch],
    jobs: usize,
    tuning: ShardTuning,
    metrics: Option<&Metrics>,
    make_sink: F,
) -> Result<Vec<S>, ShardError>
where
    S: TraceSink + Send,
    F: Fn(u32) -> S + Sync,
{
    let jobs = jobs.clamp(1, u32::MAX as usize);
    let spec = ShardSpec::for_batches(batches, jobs as u32);
    run_sharded_batched_spec(batches, spec, tuning, metrics, make_sink)
}

/// [`run_sharded_batched_with`] with an explicit, caller-chosen partition
/// (callers that display or log the partition compute it once via
/// [`ShardSpec::for_batches`] and pass it here, keeping the two in sync).
///
/// # Errors
///
/// [`ShardError`] if any worker panicked (see [`run_sharded_batched`]).
pub fn run_sharded_batched_spec<S, F>(
    batches: &[EventBatch],
    spec: ShardSpec,
    tuning: ShardTuning,
    metrics: Option<&Metrics>,
    make_sink: F,
) -> Result<Vec<S>, ShardError>
where
    S: TraceSink + Send,
    F: Fn(u32) -> S + Sync,
{
    let jobs = spec.jobs() as usize;
    let tuning = tuning.normalized();
    std::thread::scope(|s| {
        let make_sink = &make_sink;
        // Consumed sub-batches flow back to the sender through an unbounded
        // return channel and get refilled in place: the steady state
        // recycles `jobs × channel_depth + jobs` batches with no allocation.
        let (pool_tx, pool_rx) = std::sync::mpsc::channel::<EventBatch>();
        let (senders, handles): (Vec<_>, Vec<_>) = (0..jobs)
            .map(|k| {
                let (tx, rx) = std::sync::mpsc::sync_channel::<EventBatch>(tuning.channel_depth);
                let pool_tx = pool_tx.clone();
                let handle = s.spawn(move || {
                    // A panic anywhere below drops `rx`, which the sender
                    // observes as a disconnected channel — not a deadlock.
                    let mut done = 0u64;
                    let result = catch_unwind(AssertUnwindSafe(|| {
                        let mut sink = make_sink(k as u32);
                        let Some(m) = metrics else {
                            while let Ok(mut sub) = rx.recv() {
                                done += sub.len() as u64;
                                sink.on_batch(&sub);
                                sub.clear();
                                let _ = pool_tx.send(sub); // sender may have finished
                            }
                            return sink;
                        };
                        let mut sm = ShardMetrics {
                            shard: k,
                            ..ShardMetrics::default()
                        };
                        loop {
                            let t0 = Instant::now();
                            let Ok(mut sub) = rx.recv() else { break };
                            sm.recv_wait_ns += t0.elapsed().as_nanos() as u64;
                            done += sub.len() as u64;
                            sm.events += sub.len() as u64;
                            sm.mem_events +=
                                sub.tags().iter().filter(|t| t.is_memory()).count() as u64;
                            let t1 = Instant::now();
                            sink.on_batch(&sub);
                            sm.busy_ns += t1.elapsed().as_nanos() as u64;
                            sub.clear();
                            let _ = pool_tx.send(sub);
                        }
                        m.record_shard(sm);
                        sink
                    }));
                    result.map_err(|payload| (done, panic_message(payload)))
                });
                (tx, handle)
            })
            .unzip();
        // Workers hold the remaining pool_tx clones.
        drop(pool_tx);
        // One partitioning pass over the stream, instead of one filtered
        // scan per worker; workers consume concurrently as batches fill.
        {
            let _partition_span = span_opt(metrics, Stage::ShardPartition);
            let mut acc: Vec<EventBatch> = (0..jobs)
                .map(|_| EventBatch::with_capacity(tuning.flush_events))
                .collect();
            let mut send_wait: Vec<u64> = vec![0; if metrics.is_some() { jobs } else { 0 }];
            // A send to a panicked worker fails with a disconnect (the
            // worker dropped its receiver during unwind). The sub-batch is
            // dropped and the shard marked dead — the panic itself is
            // reported at join, and the other shards keep streaming.
            let mut dead: Vec<bool> = vec![false; jobs];
            let mut sent = 0u64;
            let timed_send =
                |k: usize, sub: EventBatch, send_wait: &mut [u64], dead: &mut [bool]| {
                    if dead[k] {
                        return;
                    }
                    if metrics.is_some() {
                        let t0 = Instant::now();
                        dead[k] = senders[k].send(sub).is_err();
                        send_wait[k] += t0.elapsed().as_nanos() as u64;
                    } else {
                        dead[k] = senders[k].send(sub).is_err();
                    }
                };
            for batch in batches {
                partition_into(batch, spec, &mut acc);
                for (k, slot) in acc.iter_mut().enumerate() {
                    if slot.len() < tuning.flush_events {
                        continue;
                    }
                    let fresh = pool_rx
                        .try_recv()
                        .unwrap_or_else(|_| EventBatch::with_capacity(tuning.flush_events));
                    let full = std::mem::replace(slot, fresh);
                    sent += 1;
                    timed_send(k, full, &mut send_wait, &mut dead);
                }
            }
            for (k, rest) in acc.into_iter().enumerate() {
                if !rest.is_empty() {
                    sent += 1;
                    timed_send(k, rest, &mut send_wait, &mut dead);
                }
            }
            if let Some(m) = metrics {
                m.add(Counter::ShardBatchesPartitioned, batches.len() as u64);
                m.add(Counter::ShardSubBatchesSent, sent);
                for (k, ns) in send_wait.into_iter().enumerate() {
                    m.record_shard(ShardMetrics {
                        shard: k,
                        send_wait_ns: ns,
                        ..ShardMetrics::default()
                    });
                }
            }
        }
        drop(senders); // close the channels so workers finish
        join_shards(handles)
    })
}

/// Memory events per shard under the partition [`ShardSpec::for_events`]
/// would choose for a `jobs`-way split (control events are broadcast and
/// not counted). Used by benches and `replay --jobs` to show how balanced
/// the address partition is.
pub fn shard_event_counts(events: &[Event], jobs: usize) -> Vec<u64> {
    let jobs = jobs.clamp(1, u32::MAX as usize);
    shard_event_counts_spec(events, ShardSpec::for_events(events, jobs as u32))
}

/// [`shard_event_counts`] under an explicit partition.
pub fn shard_event_counts_spec(events: &[Event], spec: ShardSpec) -> Vec<u64> {
    let mut counts = vec![0u64; spec.jobs() as usize];
    for ev in events {
        if let Event::Read { addr, .. } | Event::Write { addr, .. } = *ev {
            counts[spec.shard_of(addr) as usize] += 1;
        }
    }
    counts
}

/// [`shard_event_counts`] over a batch stream: one pass over the tag and
/// address columns, no row reconstruction.
pub fn shard_batch_counts(batches: &[EventBatch], jobs: usize) -> Vec<u64> {
    let jobs = jobs.clamp(1, u32::MAX as usize);
    shard_batch_counts_spec(batches, ShardSpec::for_batches(batches, jobs as u32))
}

/// [`shard_batch_counts`] under an explicit partition.
pub fn shard_batch_counts_spec(batches: &[EventBatch], spec: ShardSpec) -> Vec<u64> {
    let mut counts = vec![0u64; spec.jobs() as usize];
    for batch in batches {
        for i in 0..batch.len() {
            if batch.tag(i).is_memory() {
                counts[spec.shard_of(batch.addr(i)) as usize] += 1;
            }
        }
    }
    counts
}

/// Merges per-shard profiles into the sequential-equivalent whole.
///
/// Shard 0 contributes everything (its control-derived statistics are
/// identical to every other shard's); the remaining shards contribute only
/// their dependence edges, dropped-reader counts and shadow-layout
/// telemetry (summed: under a page-granular spec each page faults in
/// exactly one worker and the sum equals the sequential run's; under
/// finer strides workers fault overlapping pages and the sum reports the
/// fleet's total — either way the counters are excluded from profile
/// equality).
pub fn merge_shard_profiles(shards: Vec<DepProfile>) -> DepProfile {
    let mut iter = shards.into_iter();
    // Invariant: callers pass one profile per shard and `jobs >= 1`; the
    // default only materializes for an (accepted, degenerate) empty input.
    let mut base = iter.next().unwrap_or_default();
    for shard in iter {
        base.dropped_readers += shard.dropped_readers;
        base.shadow_stats.pages_allocated += shard.shadow_stats.pages_allocated;
        base.shadow_stats.read_set_spills += shard.shadow_stats.read_set_spills;
        // Dependence detections partition by address exactly like the
        // memory events that produce them, so the thread-classification
        // counters sum to the sequential run's.
        base.intra_thread_deps += shard.intra_thread_deps;
        base.cross_thread_deps += shard.cross_thread_deps;
        for c in shard.constructs() {
            for (key, stat) in &c.edges {
                base.merge_edge(c.id, *key, *stat);
            }
        }
    }
    base
}

/// Parallel variant of [`profile_events`]: replays a
/// recorded event stream through `jobs` address shards on scoped worker
/// threads and merges the per-shard profiles.
///
/// Produces a [`DepProfile`] **equal** to the sequential replay (and hence
/// to live instrumentation of the run that recorded `events`), plus the
/// pool statistics and maximum depth — which are control-derived and
/// identical in every shard. `jobs <= 1` falls back to the sequential path.
///
/// # Errors
///
/// [`ShardError`] if any shard worker panicked (see [`run_sharded`]).
///
/// # Examples
///
/// ```
/// use alchemist_core::{profile_events, profile_events_par, ProfileConfig};
/// use alchemist_vm::{compile_source, run, ExecConfig, RecordingSink};
///
/// let src = "int g; int main() { int i; for (i = 0; i < 9; i++) g += i; return g; }";
/// let module = compile_source(src).unwrap();
/// let mut rec = RecordingSink::default();
/// let out = run(&module, &ExecConfig::default(), &mut rec).unwrap();
///
/// let (seq, _, _) = profile_events(
///     &module, rec.events.iter().copied(), out.steps, ProfileConfig::default());
/// let (par, _, _) = profile_events_par(
///     &module, &rec.events, out.steps, ProfileConfig::default(), 4).unwrap();
/// assert_eq!(par, seq);
/// ```
pub fn profile_events_par(
    module: &Module,
    events: &[Event],
    total_steps: u64,
    config: ProfileConfig,
    jobs: usize,
) -> Result<(DepProfile, PoolStats, usize), ShardError> {
    if jobs <= 1 {
        return Ok(profile_events(
            module,
            events.iter().copied(),
            total_steps,
            config,
        ));
    }
    let profilers = run_sharded(events, jobs, |_| {
        AlchemistProfiler::new(module, config.clone())
    })?;
    Ok(finish_shard_profilers(profilers, total_steps, None))
}

/// Extracts per-shard profiles from finished profilers and merges them.
/// When `metrics` is `Some`, each shard's shadow-layout telemetry (pages
/// faulted, read-set spills) is recorded per shard and the merge runs under
/// a `merge` stage span.
fn finish_shard_profilers(
    profilers: Vec<AlchemistProfiler<'_>>,
    total_steps: u64,
    metrics: Option<&Metrics>,
) -> (DepProfile, PoolStats, usize) {
    let mut shards: Vec<(DepProfile, PoolStats, usize)> = profilers
        .into_iter()
        .map(|prof| {
            let pool_stats = prof.pool_stats();
            let max_depth = prof.max_depth();
            (prof.into_profile(total_steps), pool_stats, max_depth)
        })
        .collect();
    // Invariant: the fan-out produced exactly `jobs >= 1` profilers, so
    // shard 0 always exists here.
    let (pool_stats, max_depth) = (shards[0].1, shards[0].2);
    debug_assert!(
        shards
            .iter()
            .all(|(_, ps, d)| (*ps, *d) == (pool_stats, max_depth)),
        "control-derived statistics must be identical across shards"
    );
    if let Some(m) = metrics {
        for (k, (profile, _, _)) in shards.iter().enumerate() {
            m.record_shard(ShardMetrics {
                shard: k,
                pages_allocated: profile.shadow_stats.pages_allocated,
                read_set_spills: profile.shadow_stats.read_set_spills,
                ..ShardMetrics::default()
            });
        }
    }
    let profiles = shards.drain(..).map(|(p, _, _)| p).collect();
    let _merge_span = span_opt(metrics, Stage::Merge);
    (merge_shard_profiles(profiles), pool_stats, max_depth)
}

/// Batched twin of [`profile_events_par`]: profiles a stream of
/// [`EventBatch`]es through `jobs` address shards via
/// [`run_sharded_batched`] (single-pass partitioning, bulk dispatch) and
/// merges the per-shard profiles.
///
/// Produces a [`DepProfile`] **equal** to the sequential batched replay,
/// the per-event replay and live instrumentation of the recorded run.
/// `jobs <= 1` falls back to the sequential batched path.
///
/// # Errors
///
/// [`ShardError`] if any shard worker panicked (see
/// [`run_sharded_batched`]).
///
/// # Examples
///
/// ```
/// use alchemist_core::{profile_batches_par, profile_events, ProfileConfig};
/// use alchemist_vm::{compile_source, run, EventBatch, ExecConfig, RecordingSink};
///
/// let src = "int g; int main() { int i; for (i = 0; i < 9; i++) g += i; return g; }";
/// let module = compile_source(src).unwrap();
/// let mut rec = RecordingSink::default();
/// let out = run(&module, &ExecConfig::default(), &mut rec).unwrap();
///
/// let (seq, _, _) = profile_events(
///     &module, rec.events.iter().copied(), out.steps, ProfileConfig::default());
/// let batches: Vec<EventBatch> = rec.events.chunks(16).map(EventBatch::from_events).collect();
/// let (par, _, _) = profile_batches_par(
///     &module, &batches, out.steps, ProfileConfig::default(), 4).unwrap();
/// assert_eq!(par, seq);
/// ```
pub fn profile_batches_par(
    module: &Module,
    batches: &[EventBatch],
    total_steps: u64,
    config: ProfileConfig,
    jobs: usize,
) -> Result<(DepProfile, PoolStats, usize), ShardError> {
    profile_batches_par_with(module, batches, total_steps, config, jobs, None)
}

/// [`profile_batches_par`] with self-instrumentation: when `metrics` is
/// `Some`, the sharded fan-out records per-shard channel waits, busy time,
/// delivered row counts and shadow telemetry (via
/// [`run_sharded_batched_with`]), the merge runs under a `merge` stage
/// span, and the `profile.events` / `profile.deps` counters are bumped
/// with the stream's event count and the merged dependence-detection
/// total. The produced profile is **equal** to the uninstrumented one.
///
/// # Errors
///
/// [`ShardError`] if any shard worker panicked (see
/// [`run_sharded_batched`]).
pub fn profile_batches_par_with(
    module: &Module,
    batches: &[EventBatch],
    total_steps: u64,
    config: ProfileConfig,
    jobs: usize,
    metrics: Option<&Metrics>,
) -> Result<(DepProfile, PoolStats, usize), ShardError> {
    let jobs = jobs.clamp(1, u32::MAX as usize);
    let spec = ShardSpec::for_batches(batches, jobs as u32);
    profile_batches_par_spec(
        module,
        batches,
        total_steps,
        config,
        spec,
        ShardTuning::default(),
        metrics,
    )
}

/// [`profile_batches_par_with`] with an explicit partition and hand-off
/// tuning — the CLI computes the [`ShardSpec`] once (to display it) and
/// passes its `--shard-depth` / `--shard-flush` values through here.
///
/// # Errors
///
/// [`ShardError`] if any shard worker panicked (see
/// [`run_sharded_batched`]).
pub fn profile_batches_par_spec(
    module: &Module,
    batches: &[EventBatch],
    total_steps: u64,
    config: ProfileConfig,
    spec: ShardSpec,
    tuning: ShardTuning,
    metrics: Option<&Metrics>,
) -> Result<(DepProfile, PoolStats, usize), ShardError> {
    let result = if spec.jobs() <= 1 {
        profile_batches(module, batches, total_steps, config)
    } else {
        let profilers = run_sharded_batched_spec(batches, spec, tuning, metrics, |_| {
            AlchemistProfiler::new(module, config.clone())
        })?;
        finish_shard_profilers(profilers, total_steps, metrics)
    };
    if let Some(m) = metrics {
        m.add(
            Counter::ProfileEvents,
            batches.iter().map(|b| b.len() as u64).sum(),
        );
        m.add(
            Counter::ProfileDeps,
            result.0.intra_thread_deps + result.0.cross_thread_deps,
        );
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use alchemist_vm::{compile_source, run, CountingSink, ExecConfig, RecordingSink};

    const CHURN: &str = "int a[16]; int sum;
        void mix(int k) {
            int i;
            for (i = 0; i < 16; i++) a[i] = a[(i + k) % 16] + i;
        }
        int main() {
            int r;
            for (r = 0; r < 6; r++) { mix(r); sum += a[r]; }
            return sum;
        }";

    fn record(src: &str) -> (alchemist_vm::Module, Vec<Event>, u64) {
        let module = compile_source(src).unwrap();
        let mut rec = RecordingSink::default();
        let out = run(&module, &ExecConfig::default(), &mut rec).unwrap();
        (module, rec.events, out.steps)
    }

    /// Specs covering the ladder's extremes and a middle stride; parity and
    /// partition properties must hold for every one of them.
    fn specs(jobs: u32) -> Vec<ShardSpec> {
        [PAGE_SHIFT, 6, 0]
            .into_iter()
            .map(|shift| ShardSpec::with_shift(jobs, shift))
            .collect()
    }

    #[test]
    fn shard_filter_partitions_memory_and_broadcasts_control() {
        let (_m, events, _) = record(CHURN);
        let jobs = 3;
        let mut totals = CountingSink::default();
        for ev in &events {
            ev.dispatch(&mut totals);
        }
        for spec in specs(jobs) {
            let mut mem_seen = 0;
            for k in 0..jobs {
                let mut f = ShardFilter::new(k, spec, CountingSink::default());
                for ev in &events {
                    ev.dispatch(&mut f);
                }
                let c = f.into_inner();
                assert_eq!(c.enters, totals.enters, "control broadcast");
                assert_eq!(c.predicates, totals.predicates, "control broadcast");
                mem_seen += c.reads + c.writes;
            }
            assert_eq!(
                mem_seen,
                totals.reads + totals.writes,
                "memory events partition exactly (shift {})",
                spec.shift()
            );
        }
    }

    #[test]
    fn shard_counts_cover_all_memory_events() {
        let (_m, events, _) = record(CHURN);
        let mut totals = CountingSink::default();
        for ev in &events {
            ev.dispatch(&mut totals);
        }
        for jobs in [1usize, 2, 5] {
            let counts = shard_event_counts(&events, jobs);
            assert_eq!(counts.len(), jobs);
            assert_eq!(counts.iter().sum::<u64>(), totals.reads + totals.writes);
        }
    }

    #[test]
    fn chooser_keeps_page_granularity_when_pages_balance() {
        // Four equally hot pages: page-granular ownership is balanced, so
        // the ladder should stop at PAGE_SHIFT.
        let jobs = 4u32;
        let addrs: Vec<u32> = (0..4096u32)
            .map(|i| (i % 4) * (1 << PAGE_SHIFT) + (i * 7) % 4096)
            .collect();
        assert_eq!(choose_shift(jobs, addrs.into_iter()), PAGE_SHIFT);
    }

    #[test]
    fn chooser_falls_through_when_one_page_dominates() {
        // Everything on page 0, spread within the page: every coarse stride
        // is pathologically clustered and the ladder must fall through to a
        // finer one that balances (word interleave balances perfectly here).
        let jobs = 4u32;
        let addrs: Vec<u32> = (0..4096u32).collect();
        let shift = choose_shift(jobs, addrs.clone().into_iter());
        assert!(shift < PAGE_SHIFT, "page stride kept despite clustering");
        let spec = ShardSpec::with_shift(jobs, shift);
        let mut counts = vec![0u64; jobs as usize];
        for a in addrs {
            counts[spec.shard_of(a) as usize] += 1;
        }
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        assert!(max <= MAX_SHARD_IMBALANCE * min, "{counts:?}");
    }

    #[test]
    fn chooser_minimizes_critical_path_when_nothing_balances() {
        // One address takes 90% of the traffic: no stride can balance, so
        // the chooser must pick the stride with the smallest largest shard
        // rather than panic or default blindly.
        let jobs = 4u32;
        let mut addrs = vec![5u32; 900];
        addrs.extend((0..100u32).map(|i| i * 11));
        let shift = choose_shift(jobs, addrs.iter().copied());
        let best_max = CANDIDATE_SHIFTS
            .iter()
            .map(|&s| {
                let spec = ShardSpec::with_shift(jobs, s);
                let mut counts = vec![0u64; jobs as usize];
                for &a in &addrs {
                    counts[spec.shard_of(a) as usize] += 1;
                }
                *counts.iter().max().unwrap()
            })
            .min()
            .unwrap();
        let spec = ShardSpec::with_shift(jobs, shift);
        let mut counts = vec![0u64; jobs as usize];
        for &a in &addrs {
            counts[spec.shard_of(a) as usize] += 1;
        }
        assert_eq!(*counts.iter().max().unwrap(), best_max);
    }

    #[test]
    fn single_job_spec_is_page_granular_and_trivial() {
        let spec = ShardSpec::for_events(&[], 1);
        assert_eq!(spec.jobs(), 1);
        assert_eq!(spec.shift(), PAGE_SHIFT);
        assert_eq!(spec.shard_of(0xFFFF_FFFF), 0);
    }

    #[test]
    fn parallel_profile_equals_sequential_for_any_job_count() {
        let (module, events, steps) = record(CHURN);
        let (seq, seq_pool, seq_depth) = profile_events(
            &module,
            events.iter().copied(),
            steps,
            ProfileConfig::default(),
        );
        for jobs in [1usize, 2, 3, 4, 7, 16] {
            let (par, pool, depth) =
                profile_events_par(&module, &events, steps, ProfileConfig::default(), jobs)
                    .unwrap();
            assert_eq!(par, seq, "jobs={jobs}");
            assert_eq!(pool, seq_pool, "jobs={jobs}");
            assert_eq!(depth, seq_depth, "jobs={jobs}");
        }
    }

    #[test]
    fn parallel_profile_matches_under_tiny_reader_cap() {
        // Cap evictions are per-address state; sharding must not change
        // which reads are dropped or how many.
        let (module, events, steps) = record(CHURN);
        let cfg = ProfileConfig {
            reader_cap: 1,
            ..Default::default()
        };
        let (seq, _, _) = profile_events(&module, events.iter().copied(), steps, cfg.clone());
        let (par, _, _) = profile_events_par(&module, &events, steps, cfg, 4).unwrap();
        assert_eq!(par.dropped_readers, seq.dropped_readers);
        assert_eq!(par, seq);
    }

    #[test]
    fn more_jobs_than_addresses_is_fine() {
        let (module, events, steps) = record("int g; int main() { g = 1; return g; }");
        let (seq, _, _) = profile_events(
            &module,
            events.iter().copied(),
            steps,
            ProfileConfig::default(),
        );
        let (par, _, _) =
            profile_events_par(&module, &events, steps, ProfileConfig::default(), 64).unwrap();
        assert_eq!(par, seq);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn shard_filter_rejects_out_of_range_shard() {
        let _ = ShardFilter::new(
            4,
            ShardSpec::with_shift(4, PAGE_SHIFT),
            CountingSink::default(),
        );
    }

    /// Batches the recorded stream into blocks of `size` events.
    fn to_batches(events: &[Event], size: usize) -> Vec<EventBatch> {
        events.chunks(size).map(EventBatch::from_events).collect()
    }

    #[test]
    fn partition_batch_matches_the_shard_filter_substream() {
        let (_m, events, _) = record(CHURN);
        let batch = EventBatch::from_events(&events);
        for jobs in [1u32, 2, 3, 5] {
            for spec in specs(jobs) {
                let subs = partition_batch(&batch, spec);
                assert_eq!(subs.len(), jobs as usize);
                for (k, sub) in subs.iter().enumerate() {
                    // The filter's per-event sub-stream is the ground truth.
                    let mut f =
                        ShardFilter::new(k as u32, spec, alchemist_vm::RecordingSink::default());
                    for ev in &events {
                        ev.dispatch(&mut f);
                    }
                    let expect = f.into_inner().events;
                    let got: Vec<Event> = sub.iter().collect();
                    assert_eq!(got, expect, "jobs={jobs} shift={} shard={k}", spec.shift());
                }
            }
        }
    }

    #[test]
    fn shard_filter_on_batch_equals_per_event_filtering() {
        let (_m, events, _) = record(CHURN);
        for jobs in [2u32, 3] {
            for spec in specs(jobs) {
                for k in 0..jobs {
                    let mut per_event =
                        ShardFilter::new(k, spec, alchemist_vm::RecordingSink::default());
                    for ev in &events {
                        ev.dispatch(&mut per_event);
                    }
                    let mut batched =
                        ShardFilter::new(k, spec, alchemist_vm::RecordingSink::default());
                    for batch in to_batches(&events, 17) {
                        batched.on_batch(&batch);
                    }
                    assert_eq!(
                        batched.into_inner().events,
                        per_event.into_inner().events,
                        "jobs={jobs} shift={} shard={k}",
                        spec.shift()
                    );
                }
            }
        }
    }

    #[test]
    fn batched_profile_equals_sequential_for_any_job_count() {
        let (module, events, steps) = record(CHURN);
        let (seq, seq_pool, seq_depth) = profile_events(
            &module,
            events.iter().copied(),
            steps,
            ProfileConfig::default(),
        );
        for batch_size in [16usize, 4096] {
            let batches = to_batches(&events, batch_size);
            for jobs in [1usize, 2, 3, 7] {
                let (par, pool, depth) =
                    profile_batches_par(&module, &batches, steps, ProfileConfig::default(), jobs)
                        .unwrap();
                assert_eq!(par, seq, "batch_size={batch_size} jobs={jobs}");
                assert_eq!(pool, seq_pool, "batch_size={batch_size} jobs={jobs}");
                assert_eq!(depth, seq_depth, "batch_size={batch_size} jobs={jobs}");
            }
        }
    }

    #[test]
    fn batched_profile_equals_sequential_under_every_ladder_stride() {
        // The chooser picks ONE spec per stream, but parity must hold for
        // every spec it could ever pick (any pure address partition works).
        let (module, events, steps) = record(CHURN);
        let (seq, _, _) = profile_events(
            &module,
            events.iter().copied(),
            steps,
            ProfileConfig::default(),
        );
        let batches = to_batches(&events, 64);
        for &shift in &CANDIDATE_SHIFTS {
            let spec = ShardSpec::with_shift(3, shift);
            let (par, _, _) = profile_batches_par_spec(
                &module,
                &batches,
                steps,
                ProfileConfig::default(),
                spec,
                ShardTuning::default(),
                None,
            )
            .unwrap();
            assert_eq!(par, seq, "shift={shift}");
        }
    }

    #[test]
    fn tiny_flush_threshold_and_depth_still_merge_exactly() {
        // Degenerate tuning (flush every row, depth 1) maximizes channel
        // traffic; the merged profile must not change.
        let (module, events, steps) = record(CHURN);
        let (seq, _, _) = profile_events(
            &module,
            events.iter().copied(),
            steps,
            ProfileConfig::default(),
        );
        let batches = to_batches(&events, 16);
        let tuning = ShardTuning {
            channel_depth: 1,
            flush_events: 1,
        };
        let spec = ShardSpec::for_batches(&batches, 3);
        let (par, _, _) = profile_batches_par_spec(
            &module,
            &batches,
            steps,
            ProfileConfig::default(),
            spec,
            tuning,
            None,
        )
        .unwrap();
        assert_eq!(par, seq);
    }

    #[test]
    fn instrumented_sharded_profile_equals_uninstrumented() {
        let (module, events, steps) = record(CHURN);
        let batches = to_batches(&events, 16);
        let jobs = 3usize;
        let (plain, _, _) =
            profile_batches_par(&module, &batches, steps, ProfileConfig::default(), jobs).unwrap();
        let m = Metrics::new();
        let (instr, _, _) = profile_batches_par_with(
            &module,
            &batches,
            steps,
            ProfileConfig::default(),
            jobs,
            Some(&m),
        )
        .unwrap();
        assert_eq!(instr, plain);

        // Counters describe the stream and the merged profile.
        let total_events: u64 = batches.iter().map(|b| b.len() as u64).sum();
        assert_eq!(m.get(Counter::ProfileEvents), total_events);
        assert_eq!(
            m.get(Counter::ProfileDeps),
            plain.intra_thread_deps + plain.cross_thread_deps
        );
        assert_eq!(
            m.get(Counter::ShardBatchesPartitioned),
            batches.len() as u64
        );
        // Fat hand-off: sub-batches accumulate to the flush threshold, so
        // far fewer sends than input batches — but at least one flush per
        // shard that received anything.
        let sent = m.get(Counter::ShardSubBatchesSent);
        assert!(sent >= 1 && sent <= (batches.len() * jobs) as u64, "{sent}");

        // Per-shard rows: one per shard, mem rows partition exactly, and
        // every shard carries its shadow telemetry.
        let shards = m.shards();
        assert_eq!(shards.len(), jobs);
        let expect_counts = shard_batch_counts(&batches, jobs);
        for (k, sm) in shards.iter().enumerate() {
            assert_eq!(sm.shard, k);
            assert_eq!(sm.mem_events, expect_counts[k], "shard {k}");
            assert!(sm.events >= sm.mem_events);
        }
        let pages: u64 = shards.iter().map(|s| s.pages_allocated).sum();
        assert_eq!(pages, plain.shadow_stats.pages_allocated);

        // Stage spans fired exactly once each.
        assert_eq!(m.stage(Stage::ShardPartition).1, 1);
        assert_eq!(m.stage(Stage::Merge).1, 1);
    }

    #[test]
    fn fat_handoff_sends_few_fat_sub_batches() {
        // With the default 4096-row flush threshold, a multi-thousand-event
        // stream split into small input batches must still reach each
        // worker in a handful of fat sends, not one send per input batch.
        let (module, events, steps) = record(CHURN);
        let batches = to_batches(&events, 64);
        let jobs = 2usize;
        let m = Metrics::new();
        let _ = profile_batches_par_with(
            &module,
            &batches,
            steps,
            ProfileConfig::default(),
            jobs,
            Some(&m),
        )
        .unwrap();
        let sent = m.get(Counter::ShardSubBatchesSent);
        let delivered: u64 = m.shards().iter().map(|s| s.events).sum();
        assert!(sent > 0);
        // Average rows per send is bounded below by the stream size over
        // the worst-case send count: ceil(rows_k / flush) + 1 per shard.
        let min_avg = delivered / (2 * (delivered / SHARD_FLUSH_EVENTS as u64 + jobs as u64));
        assert!(
            delivered / sent >= min_avg.max(64),
            "sent={sent} delivered={delivered}"
        );
    }

    #[test]
    fn shard_batch_counts_agree_with_event_counts() {
        let (_m, events, _) = record(CHURN);
        let batches = to_batches(&events, 9);
        for jobs in [1usize, 2, 5] {
            assert_eq!(
                shard_batch_counts(&batches, jobs),
                shard_event_counts(&events, jobs),
                "jobs={jobs}"
            );
        }
    }

    /// A sink that panics on the first control event when armed.
    #[derive(Debug)]
    struct Bomb {
        armed: bool,
    }

    impl TraceSink for Bomb {
        fn on_block_entry(&mut self, _t: Time, _block: BlockId, _tid: Tid) {
            if self.armed {
                panic!("shard bomb detonated");
            }
        }
    }

    #[test]
    fn panicking_worker_is_a_typed_error_on_the_event_path() {
        let (_m, events, _) = record(CHURN);
        let err = run_sharded(&events, 3, |k| Bomb { armed: k == 1 }).unwrap_err();
        assert_eq!(err.shard, 1);
        assert!(err.payload.contains("shard bomb"), "{}", err.payload);
        let msg = err.to_string();
        assert!(msg.contains("shard worker 1 panicked"), "{msg}");
    }

    #[test]
    fn panicking_worker_is_a_typed_error_on_the_batched_path() {
        let (_m, events, _) = record(CHURN);
        let batches = to_batches(&events, 16);
        // Degenerate tuning maximizes post-mortem sends: the sender must
        // absorb the dead shard's disconnected channel (not panic, not
        // deadlock) while the surviving shards drain to completion.
        let tuning = ShardTuning {
            channel_depth: 1,
            flush_events: 1,
        };
        let spec = ShardSpec::with_shift(3, 0);
        let err =
            run_sharded_batched_spec(&batches, spec, tuning, None, |k| Bomb { armed: k == 0 })
                .unwrap_err();
        assert_eq!(err.shard, 0);
        assert!(err.payload.contains("shard bomb"), "{}", err.payload);
    }

    #[test]
    fn healthy_fanout_still_returns_every_sink() {
        let (_m, events, _) = record(CHURN);
        let sinks = run_sharded(&events, 4, |_| Bomb { armed: false }).unwrap();
        assert_eq!(sinks.len(), 4);
        let batches = to_batches(&events, 16);
        let sinks = run_sharded_batched(&batches, 4, |_| Bomb { armed: false }).unwrap();
        assert_eq!(sinks.len(), 4);
    }

    #[test]
    fn non_string_panic_payloads_are_reported_generically() {
        #[derive(Debug)]
        struct IntBomb;
        impl TraceSink for IntBomb {
            fn on_block_entry(&mut self, _t: Time, _block: BlockId, _tid: Tid) {
                std::panic::panic_any(42u32);
            }
        }
        let (_m, events, _) = record(CHURN);
        let err = run_sharded(&events, 2, |_| IntBomb).unwrap_err();
        assert_eq!(err.payload, "<non-string panic payload>");
    }
}
