//! Source positions and spans.
//!
//! Every token and AST node carries a [`Span`] so that profiles can be
//! attributed back to source locations, mirroring how the paper reports
//! constructs as e.g. `Loop (main, 3404)`.

use std::fmt;

/// A position in a source file: 1-based line and column plus byte offset.
///
/// # Examples
///
/// ```
/// use alchemist_lang::Pos;
/// let p = Pos::new(3, 7, 42);
/// assert_eq!(p.line, 3);
/// assert_eq!(format!("{p}"), "3:7");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Pos {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number.
    pub col: u32,
    /// 0-based byte offset into the source text.
    pub offset: u32,
}

impl Pos {
    /// Creates a position from a line, column and byte offset.
    pub fn new(line: u32, col: u32, offset: u32) -> Self {
        Pos { line, col, offset }
    }

    /// The start of a file: line 1, column 1, offset 0.
    pub fn start() -> Self {
        Pos::new(1, 1, 0)
    }
}

impl Default for Pos {
    fn default() -> Self {
        Pos::start()
    }
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// A half-open region of source text, `[lo, hi)`.
///
/// # Examples
///
/// ```
/// use alchemist_lang::{Pos, Span};
/// let s = Span::new(Pos::new(1, 1, 0), Pos::new(1, 5, 4));
/// assert_eq!(s.lo.line, 1);
/// assert_eq!(format!("{s}"), "1:1");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Span {
    /// Start of the region (inclusive).
    pub lo: Pos,
    /// End of the region (exclusive).
    pub hi: Pos,
}

impl Span {
    /// Creates a span covering `[lo, hi)`.
    pub fn new(lo: Pos, hi: Pos) -> Self {
        Span { lo, hi }
    }

    /// A degenerate span at a single position.
    pub fn at(pos: Pos) -> Self {
        Span { lo: pos, hi: pos }
    }

    /// The smallest span covering both `self` and `other`.
    pub fn merge(self, other: Span) -> Span {
        Span {
            lo: if self.lo.offset <= other.lo.offset {
                self.lo
            } else {
                other.lo
            },
            hi: if self.hi.offset >= other.hi.offset {
                self.hi
            } else {
                other.hi
            },
        }
    }

    /// The source line on which the span starts.
    pub fn line(&self) -> u32 {
        self.lo.line
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pos_display_is_line_colon_col() {
        assert_eq!(Pos::new(10, 2, 99).to_string(), "10:2");
    }

    #[test]
    fn default_pos_is_file_start() {
        assert_eq!(Pos::default(), Pos::start());
        assert_eq!(Pos::start().offset, 0);
    }

    #[test]
    fn span_merge_covers_both() {
        let a = Span::new(Pos::new(1, 1, 0), Pos::new(1, 4, 3));
        let b = Span::new(Pos::new(2, 1, 10), Pos::new(2, 6, 15));
        let m = a.merge(b);
        assert_eq!(m.lo, a.lo);
        assert_eq!(m.hi, b.hi);
        // Merge is symmetric.
        assert_eq!(b.merge(a), m);
    }

    #[test]
    fn span_line_is_start_line() {
        let s = Span::new(Pos::new(7, 3, 30), Pos::new(9, 1, 50));
        assert_eq!(s.line(), 7);
    }
}
