//! The mini-C lexer.
//!
//! Supports decimal and hexadecimal integer literals, `//` line comments and
//! `/* ... */` block comments (non-nesting, as in C).

use crate::error::{LangError, Phase, Result};
use crate::pos::{Pos, Span};
use crate::token::{Token, TokenKind};

/// Streaming tokenizer over a source string.
///
/// # Examples
///
/// ```
/// use alchemist_lang::{Lexer, TokenKind};
/// let toks = Lexer::new("x += 2;").tokenize()?;
/// assert_eq!(toks.len(), 4); // x, +=, 2, ;  (EOF excluded by tokenize)
/// assert_eq!(toks[1].kind, TokenKind::PlusEq);
/// # Ok::<(), alchemist_lang::LangError>(())
/// ```
#[derive(Debug)]
pub struct Lexer<'src> {
    src: &'src [u8],
    pos: Pos,
}

impl<'src> Lexer<'src> {
    /// Creates a lexer over `src`.
    pub fn new(src: &'src str) -> Self {
        Lexer {
            src: src.as_bytes(),
            pos: Pos::start(),
        }
    }

    /// Tokenizes the whole input, excluding the trailing EOF token.
    ///
    /// # Errors
    ///
    /// Returns a [`LangError`] on unknown characters, malformed literals or
    /// unterminated block comments.
    pub fn tokenize(mut self) -> Result<Vec<Token>> {
        let mut out = Vec::new();
        loop {
            let tok = self.next_token()?;
            if tok.kind == TokenKind::Eof {
                return Ok(out);
            }
            out.push(tok);
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos.offset as usize).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos.offset as usize + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos.offset += 1;
        if b == b'\n' {
            self.pos.line += 1;
            self.pos.col = 1;
        } else {
            self.pos.col += 1;
        }
        Some(b)
    }

    fn skip_trivia(&mut self) -> Result<()> {
        loop {
            match self.peek() {
                Some(b' ' | b'\t' | b'\r' | b'\n') => {
                    self.bump();
                }
                Some(b'/') if self.peek2() == Some(b'/') => {
                    while let Some(b) = self.peek() {
                        if b == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some(b'/') if self.peek2() == Some(b'*') => {
                    let start = self.pos;
                    self.bump();
                    self.bump();
                    loop {
                        match (self.peek(), self.peek2()) {
                            (Some(b'*'), Some(b'/')) => {
                                self.bump();
                                self.bump();
                                break;
                            }
                            (Some(_), _) => {
                                self.bump();
                            }
                            (None, _) => {
                                return Err(LangError::new(
                                    Phase::Lex,
                                    Span::at(start),
                                    "unterminated block comment",
                                ));
                            }
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn lex_number(&mut self) -> Result<Token> {
        let start = self.pos;
        let mut value: i64 = 0;
        if self.peek() == Some(b'0') && matches!(self.peek2(), Some(b'x' | b'X')) {
            self.bump();
            self.bump();
            let digits_start = self.pos;
            while let Some(b) = self.peek() {
                let d = match b {
                    b'0'..=b'9' => (b - b'0') as i64,
                    b'a'..=b'f' => (b - b'a' + 10) as i64,
                    b'A'..=b'F' => (b - b'A' + 10) as i64,
                    _ => break,
                };
                value = value
                    .checked_mul(16)
                    .and_then(|v| v.checked_add(d))
                    .ok_or_else(|| {
                        LangError::new(
                            Phase::Lex,
                            Span::new(start, self.pos),
                            "integer literal overflows i64",
                        )
                    })?;
                self.bump();
            }
            if self.pos.offset == digits_start.offset {
                return Err(LangError::new(
                    Phase::Lex,
                    Span::new(start, self.pos),
                    "hex literal requires at least one digit",
                ));
            }
        } else {
            while let Some(b @ b'0'..=b'9') = self.peek() {
                let d = (b - b'0') as i64;
                value = value
                    .checked_mul(10)
                    .and_then(|v| v.checked_add(d))
                    .ok_or_else(|| {
                        LangError::new(
                            Phase::Lex,
                            Span::new(start, self.pos),
                            "integer literal overflows i64",
                        )
                    })?;
                self.bump();
            }
        }
        Ok(Token::new(
            TokenKind::Int(value),
            Span::new(start, self.pos),
        ))
    }

    fn lex_ident(&mut self) -> Token {
        let start = self.pos;
        let begin = self.pos.offset as usize;
        while let Some(b) = self.peek() {
            if b.is_ascii_alphanumeric() || b == b'_' {
                self.bump();
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.src[begin..self.pos.offset as usize])
            .expect("identifiers are ASCII");
        let kind = TokenKind::keyword(text).unwrap_or_else(|| TokenKind::Ident(text.to_owned()));
        Token::new(kind, Span::new(start, self.pos))
    }

    /// Produces the next token, or [`TokenKind::Eof`] at end of input.
    ///
    /// # Errors
    ///
    /// Returns a [`LangError`] on characters outside the language.
    pub fn next_token(&mut self) -> Result<Token> {
        use TokenKind::*;
        self.skip_trivia()?;
        let start = self.pos;
        let Some(b) = self.peek() else {
            return Ok(Token::new(Eof, Span::at(start)));
        };
        if b.is_ascii_digit() {
            return self.lex_number();
        }
        if b.is_ascii_alphabetic() || b == b'_' {
            return Ok(self.lex_ident());
        }
        self.bump();
        // Longest-match for multi-character operators.
        let kind = match b {
            b'(' => LParen,
            b')' => RParen,
            b'{' => LBrace,
            b'}' => RBrace,
            b'[' => LBracket,
            b']' => RBracket,
            b';' => Semi,
            b',' => Comma,
            b'?' => Question,
            b':' => Colon,
            b'~' => Tilde,
            b'+' => match self.peek() {
                Some(b'+') => {
                    self.bump();
                    PlusPlus
                }
                Some(b'=') => {
                    self.bump();
                    PlusEq
                }
                _ => Plus,
            },
            b'-' => match self.peek() {
                Some(b'-') => {
                    self.bump();
                    MinusMinus
                }
                Some(b'=') => {
                    self.bump();
                    MinusEq
                }
                _ => Minus,
            },
            b'*' => self.with_eq(StarEq, Star),
            b'/' => self.with_eq(SlashEq, Slash),
            b'%' => self.with_eq(PercentEq, Percent),
            b'^' => self.with_eq(CaretEq, Caret),
            b'!' => self.with_eq(Ne, Bang),
            b'=' => self.with_eq(EqEq, Eq),
            b'&' => match self.peek() {
                Some(b'&') => {
                    self.bump();
                    AndAnd
                }
                Some(b'=') => {
                    self.bump();
                    AmpEq
                }
                _ => Amp,
            },
            b'|' => match self.peek() {
                Some(b'|') => {
                    self.bump();
                    OrOr
                }
                Some(b'=') => {
                    self.bump();
                    PipeEq
                }
                _ => Pipe,
            },
            b'<' => match self.peek() {
                Some(b'<') => {
                    self.bump();
                    self.with_eq(ShlEq, Shl)
                }
                Some(b'=') => {
                    self.bump();
                    Le
                }
                _ => Lt,
            },
            b'>' => match self.peek() {
                Some(b'>') => {
                    self.bump();
                    self.with_eq(ShrEq, Shr)
                }
                Some(b'=') => {
                    self.bump();
                    Ge
                }
                _ => Gt,
            },
            other => {
                return Err(LangError::new(
                    Phase::Lex,
                    Span::new(start, self.pos),
                    format!("unexpected character `{}`", other as char),
                ));
            }
        };
        Ok(Token::new(kind, Span::new(start, self.pos)))
    }

    fn with_eq(&mut self, if_eq: TokenKind, otherwise: TokenKind) -> TokenKind {
        if self.peek() == Some(b'=') {
            self.bump();
            if_eq
        } else {
            otherwise
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        Lexer::new(src)
            .tokenize()
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn lexes_simple_statement() {
        use TokenKind::*;
        assert_eq!(
            kinds("x = y + 12;"),
            vec![
                Ident("x".into()),
                Eq,
                Ident("y".into()),
                Plus,
                Int(12),
                Semi
            ]
        );
    }

    #[test]
    fn lexes_hex_and_decimal() {
        use TokenKind::*;
        assert_eq!(kinds("0x1F 255 0"), vec![Int(31), Int(255), Int(0)]);
    }

    #[test]
    fn rejects_hex_without_digits() {
        let err = Lexer::new("0x").tokenize().unwrap_err();
        assert!(err.message().contains("hex literal"));
    }

    #[test]
    fn rejects_overflowing_literal() {
        let err = Lexer::new("99999999999999999999999")
            .tokenize()
            .unwrap_err();
        assert!(err.message().contains("overflows"));
    }

    #[test]
    fn lexes_all_compound_operators() {
        use TokenKind::*;
        assert_eq!(
            kinds("<<= >>= << >> <= >= == != && || += -= *= /= %= &= |= ^= ++ --"),
            vec![
                ShlEq, ShrEq, Shl, Shr, Le, Ge, EqEq, Ne, AndAnd, OrOr, PlusEq, MinusEq, StarEq,
                SlashEq, PercentEq, AmpEq, PipeEq, CaretEq, PlusPlus, MinusMinus
            ]
        );
    }

    #[test]
    fn skips_line_and_block_comments() {
        use TokenKind::*;
        assert_eq!(
            kinds("a // comment\n /* multi \n line */ b"),
            vec![Ident("a".into()), Ident("b".into())]
        );
    }

    #[test]
    fn unterminated_block_comment_errors() {
        let err = Lexer::new("a /* never ends").tokenize().unwrap_err();
        assert!(err.message().contains("unterminated"));
    }

    #[test]
    fn tracks_line_numbers() {
        let toks = Lexer::new("a\nb\n  c").tokenize().unwrap();
        assert_eq!(toks[0].span.lo.line, 1);
        assert_eq!(toks[1].span.lo.line, 2);
        assert_eq!(toks[2].span.lo.line, 3);
        assert_eq!(toks[2].span.lo.col, 3);
    }

    #[test]
    fn keywords_are_not_identifiers() {
        use TokenKind::*;
        assert_eq!(kinds("while whilex"), vec![KwWhile, Ident("whilex".into())]);
    }

    #[test]
    fn rejects_unknown_character() {
        let err = Lexer::new("a @ b").tokenize().unwrap_err();
        assert!(err.message().contains('@'));
        assert_eq!(err.span().lo.col, 3);
    }
}
