//! Pretty-printer: AST → mini-C source.
//!
//! Used by tooling and by the round-trip property tests
//! (`parse(print(ast)) == ast` modulo spans). Output is fully
//! parenthesized, so printing never has to reason about precedence.

use crate::ast::*;
use std::fmt::Write as _;

/// Renders a whole program as compilable mini-C source.
pub fn print_program(p: &Program) -> String {
    let mut out = String::new();
    for g in &p.globals {
        match (g.array_size, g.init) {
            (Some(n), _) => {
                let _ = writeln!(out, "int {}[{n}];", g.name);
            }
            (None, Some(v)) => {
                let _ = writeln!(out, "int {} = {v};", g.name);
            }
            (None, None) => {
                let _ = writeln!(out, "int {};", g.name);
            }
        }
    }
    for f in &p.functions {
        let ret = if f.is_void { "void" } else { "int" };
        let params: Vec<String> = f
            .params
            .iter()
            .map(|p| {
                if p.is_array {
                    format!("int {}[]", p.name)
                } else {
                    format!("int {}", p.name)
                }
            })
            .collect();
        let _ = writeln!(out, "{ret} {}({}) {{", f.name, params.join(", "));
        print_block_inner(&f.body, 1, &mut out);
        out.push_str("}\n");
    }
    out
}

fn indent(depth: usize, out: &mut String) {
    for _ in 0..depth {
        out.push_str("    ");
    }
}

fn print_block_inner(b: &Block, depth: usize, out: &mut String) {
    for s in &b.stmts {
        print_stmt(s, depth, out);
    }
}

fn print_stmt(s: &Stmt, depth: usize, out: &mut String) {
    indent(depth, out);
    match s {
        Stmt::Local {
            name,
            array_size,
            init,
            ..
        } => match (array_size, init) {
            (Some(n), _) => {
                let _ = writeln!(out, "int {name}[{n}];");
            }
            (None, Some(e)) => {
                let _ = writeln!(out, "int {name} = {};", print_expr(e));
            }
            (None, None) => {
                let _ = writeln!(out, "int {name};");
            }
        },
        Stmt::Expr(e) => {
            let _ = writeln!(out, "{};", print_expr(e));
        }
        Stmt::If {
            cond,
            then_blk,
            else_blk,
            ..
        } => {
            let _ = writeln!(out, "if ({}) {{", print_expr(cond));
            print_block_inner(then_blk, depth + 1, out);
            indent(depth, out);
            match else_blk {
                Some(e) => {
                    out.push_str("} else {\n");
                    print_block_inner(e, depth + 1, out);
                    indent(depth, out);
                    out.push_str("}\n");
                }
                None => out.push_str("}\n"),
            }
        }
        Stmt::While { cond, body, .. } => {
            let _ = writeln!(out, "while ({}) {{", print_expr(cond));
            print_block_inner(body, depth + 1, out);
            indent(depth, out);
            out.push_str("}\n");
        }
        Stmt::DoWhile { body, cond, .. } => {
            out.push_str("do {\n");
            print_block_inner(body, depth + 1, out);
            indent(depth, out);
            let _ = writeln!(out, "}} while ({});", print_expr(cond));
        }
        Stmt::For {
            init,
            cond,
            step,
            body,
            ..
        } => {
            out.push_str("for (");
            match init.as_deref() {
                Some(Stmt::Local {
                    name,
                    init: Some(e),
                    array_size: None,
                    ..
                }) => {
                    let _ = write!(out, "int {name} = {}", print_expr(e));
                }
                Some(Stmt::Expr(e)) => {
                    let _ = write!(out, "{}", print_expr(e));
                }
                Some(other) => unreachable!("invalid for-init statement {other:?}"),
                None => {}
            }
            out.push_str("; ");
            if let Some(c) = cond {
                let _ = write!(out, "{}", print_expr(c));
            }
            out.push_str("; ");
            if let Some(st) = step {
                let _ = write!(out, "{}", print_expr(st));
            }
            out.push_str(") {\n");
            print_block_inner(body, depth + 1, out);
            indent(depth, out);
            out.push_str("}\n");
        }
        Stmt::Spawn { body, .. } => {
            out.push_str("spawn {\n");
            print_block_inner(body, depth + 1, out);
            indent(depth, out);
            out.push_str("}\n");
        }
        Stmt::Join(_) => out.push_str("join;\n"),
        Stmt::Break(_) => out.push_str("break;\n"),
        Stmt::Continue(_) => out.push_str("continue;\n"),
        Stmt::Return { value, .. } => match value {
            Some(e) => {
                let _ = writeln!(out, "return {};", print_expr(e));
            }
            None => out.push_str("return;\n"),
        },
        Stmt::Block(b) => {
            out.push_str("{\n");
            print_block_inner(b, depth + 1, out);
            indent(depth, out);
            out.push_str("}\n");
        }
    }
}

/// Renders one expression (fully parenthesized).
pub fn print_expr(e: &Expr) -> String {
    match e {
        Expr::Int(v, _) => format!("{v}"),
        Expr::Var(name, _) => name.clone(),
        Expr::Index { name, index, .. } => {
            format!("{name}[{}]", print_expr(index))
        }
        Expr::Call { name, args, .. } => {
            let args: Vec<String> = args.iter().map(print_expr).collect();
            format!("{name}({})", args.join(", "))
        }
        Expr::Unary { op, expr, .. } => format!("({op}{})", print_expr(expr)),
        Expr::Binary { op, lhs, rhs, .. } => {
            format!("({} {op} {})", print_expr(lhs), print_expr(rhs))
        }
        Expr::Ternary {
            cond,
            then_expr,
            else_expr,
            ..
        } => format!(
            "({} ? {} : {})",
            print_expr(cond),
            print_expr(then_expr),
            print_expr(else_expr)
        ),
        Expr::Assign {
            target, op, value, ..
        } => {
            let t = match &target.index {
                Some(i) => format!("{}[{}]", target.name, print_expr(i)),
                None => target.name.clone(),
            };
            match op {
                Some(op) => format!("({t} {op}= {})", print_expr(value)),
                None => format!("({t} = {})", print_expr(value)),
            }
        }
        Expr::IncDec {
            target,
            inc,
            prefix,
            ..
        } => {
            let t = match &target.index {
                Some(i) => format!("{}[{}]", target.name, print_expr(i)),
                None => target.name.clone(),
            };
            let op = if *inc { "++" } else { "--" };
            if *prefix {
                format!("({op}{t})")
            } else {
                format!("({t}{op})")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    /// Strips spans so printed-and-reparsed trees compare equal.
    fn normalize(p: &Program) -> String {
        // Compare via a second print: print is deterministic, so
        // print(parse(print(x))) == print(x) iff the trees match.
        print_program(p)
    }

    fn roundtrip(src: &str) {
        let p1 = parse_program(src).expect("original parses");
        let text = print_program(&p1);
        let p2 = parse_program(&text)
            .unwrap_or_else(|e| panic!("printed source fails to parse: {e}\n{text}"));
        assert_eq!(normalize(&p1), normalize(&p2), "roundtrip drifted:\n{text}");
    }

    #[test]
    fn roundtrips_globals_and_signatures() {
        roundtrip(
            "int a; int b = -3; int buf[7]; void f(int x, int a[]) { } int main() { return 0; }",
        );
    }

    #[test]
    fn roundtrips_control_flow() {
        roundtrip(
            "int main() {
                int i;
                for (i = 0; i < 10; i++) {
                    if (i % 2 == 0) continue;
                    if (i > 7) break;
                }
                while (i > 0) { i--; }
                do { i++; } while (i < 3);
                { int shadow = 1; i += shadow; }
                return i;
            }",
        );
    }

    #[test]
    fn roundtrips_expressions() {
        roundtrip(
            "int a[4];
             int main() {
                int x = 1;
                x = a[x + 1] * 3 - -x;
                x += x << 2 ^ (x & 5);
                a[x & 3] |= x ? 1 : 2;
                x = ++x + a[0]--;
                return x || a[1] && x;
            }",
        );
    }

    #[test]
    fn roundtrips_for_variants() {
        roundtrip(
            "int main() {
                for (;;) { break; }
                for (int j = 0; j < 2; j++) { }
                int k;
                for (k = 9; ; k--) { if (k < 3) break; }
                return 0;
            }",
        );
    }

    #[test]
    fn printed_source_compiles() {
        let src = "int g; int f(int n) { return n + g; } int main() { g = f(2); return g; }";
        let printed = print_program(&parse_program(src).unwrap());
        crate::resolver::compile_to_hir(&printed).expect("printed source resolves");
    }
}
