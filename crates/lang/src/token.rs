//! Tokens of the mini-C language.

use crate::pos::Span;
use std::fmt;

/// The kind of a lexical token.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum TokenKind {
    /// An integer literal, e.g. `42` or `0x1f`.
    Int(i64),
    /// An identifier, e.g. `flush_block`.
    Ident(String),

    // Keywords.
    /// `int`
    KwInt,
    /// `void`
    KwVoid,
    /// `if`
    KwIf,
    /// `else`
    KwElse,
    /// `while`
    KwWhile,
    /// `do`
    KwDo,
    /// `for`
    KwFor,
    /// `break`
    KwBreak,
    /// `continue`
    KwContinue,
    /// `return`
    KwReturn,
    /// `spawn`
    KwSpawn,
    /// `join`
    KwJoin,

    // Punctuation.
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `?`
    Question,
    /// `:`
    Colon,

    // Operators.
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `&`
    Amp,
    /// `|`
    Pipe,
    /// `^`
    Caret,
    /// `~`
    Tilde,
    /// `!`
    Bang,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    EqEq,
    /// `!=`
    Ne,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `=`
    Eq,
    /// `+=`
    PlusEq,
    /// `-=`
    MinusEq,
    /// `*=`
    StarEq,
    /// `/=`
    SlashEq,
    /// `%=`
    PercentEq,
    /// `&=`
    AmpEq,
    /// `|=`
    PipeEq,
    /// `^=`
    CaretEq,
    /// `<<=`
    ShlEq,
    /// `>>=`
    ShrEq,
    /// `++`
    PlusPlus,
    /// `--`
    MinusMinus,

    /// End of input.
    Eof,
}

impl TokenKind {
    /// Returns the keyword kind for `ident`, if it is a reserved word.
    pub fn keyword(ident: &str) -> Option<TokenKind> {
        Some(match ident {
            "int" => TokenKind::KwInt,
            "void" => TokenKind::KwVoid,
            "if" => TokenKind::KwIf,
            "else" => TokenKind::KwElse,
            "while" => TokenKind::KwWhile,
            "do" => TokenKind::KwDo,
            "for" => TokenKind::KwFor,
            "break" => TokenKind::KwBreak,
            "continue" => TokenKind::KwContinue,
            "return" => TokenKind::KwReturn,
            "spawn" => TokenKind::KwSpawn,
            "join" => TokenKind::KwJoin,
            _ => return None,
        })
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use TokenKind::*;
        match self {
            Int(v) => write!(f, "{v}"),
            Ident(s) => write!(f, "{s}"),
            KwInt => write!(f, "int"),
            KwVoid => write!(f, "void"),
            KwIf => write!(f, "if"),
            KwElse => write!(f, "else"),
            KwWhile => write!(f, "while"),
            KwDo => write!(f, "do"),
            KwFor => write!(f, "for"),
            KwBreak => write!(f, "break"),
            KwContinue => write!(f, "continue"),
            KwReturn => write!(f, "return"),
            KwSpawn => write!(f, "spawn"),
            KwJoin => write!(f, "join"),
            LParen => write!(f, "("),
            RParen => write!(f, ")"),
            LBrace => write!(f, "{{"),
            RBrace => write!(f, "}}"),
            LBracket => write!(f, "["),
            RBracket => write!(f, "]"),
            Semi => write!(f, ";"),
            Comma => write!(f, ","),
            Question => write!(f, "?"),
            Colon => write!(f, ":"),
            Plus => write!(f, "+"),
            Minus => write!(f, "-"),
            Star => write!(f, "*"),
            Slash => write!(f, "/"),
            Percent => write!(f, "%"),
            Amp => write!(f, "&"),
            Pipe => write!(f, "|"),
            Caret => write!(f, "^"),
            Tilde => write!(f, "~"),
            Bang => write!(f, "!"),
            Shl => write!(f, "<<"),
            Shr => write!(f, ">>"),
            Lt => write!(f, "<"),
            Le => write!(f, "<="),
            Gt => write!(f, ">"),
            Ge => write!(f, ">="),
            EqEq => write!(f, "=="),
            Ne => write!(f, "!="),
            AndAnd => write!(f, "&&"),
            OrOr => write!(f, "||"),
            Eq => write!(f, "="),
            PlusEq => write!(f, "+="),
            MinusEq => write!(f, "-="),
            StarEq => write!(f, "*="),
            SlashEq => write!(f, "/="),
            PercentEq => write!(f, "%="),
            AmpEq => write!(f, "&="),
            PipeEq => write!(f, "|="),
            CaretEq => write!(f, "^="),
            ShlEq => write!(f, "<<="),
            ShrEq => write!(f, ">>="),
            PlusPlus => write!(f, "++"),
            MinusMinus => write!(f, "--"),
            Eof => write!(f, "<eof>"),
        }
    }
}

/// A token together with its source span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokenKind,
    /// Where it appears in the source.
    pub span: Span,
}

impl Token {
    /// Creates a token.
    pub fn new(kind: TokenKind, span: Span) -> Self {
        Token { kind, span }
    }
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords_resolve() {
        assert_eq!(TokenKind::keyword("while"), Some(TokenKind::KwWhile));
        assert_eq!(TokenKind::keyword("frobnicate"), None);
    }

    #[test]
    fn display_round_trips_punctuation() {
        assert_eq!(TokenKind::ShlEq.to_string(), "<<=");
        assert_eq!(TokenKind::AndAnd.to_string(), "&&");
        assert_eq!(TokenKind::Int(-3).to_string(), "-3");
    }
}
