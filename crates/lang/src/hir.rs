//! Resolved intermediate representation.
//!
//! The [`resolve`](crate::resolve) pass lowers the syntactic
//! [`Program`](crate::ast::Program) into this form: every variable reference
//! is resolved to a global or frame slot, every call to a function id or
//! intrinsic, and all semantic rules are checked. The bytecode compiler in
//! `alchemist-vm` consumes this representation directly.

use crate::ast::{BinOp, UnOp};
use crate::pos::Span;
use std::fmt;

/// Index of a function within [`HProgram::functions`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FuncId(pub u32);

/// Index of a global within [`HProgram::globals`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GlobalId(pub u32);

/// Index of a local slot within a function frame (params come first).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LocalId(pub u32);

impl fmt::Display for FuncId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fn#{}", self.0)
    }
}

impl fmt::Display for GlobalId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g#{}", self.0)
    }
}

impl fmt::Display for LocalId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l#{}", self.0)
    }
}

/// Where a resolved variable lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VarSite {
    /// A file-scope variable.
    Global(GlobalId),
    /// A frame slot of the current function.
    Local(LocalId),
}

/// The storage class of a resolved variable reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Storage {
    /// One word holding the value itself.
    Scalar,
    /// `size` contiguous words owned by this declaration.
    Array {
        /// Number of words.
        size: u32,
    },
    /// One word holding the base address of an array owned elsewhere
    /// (an `int a[]` parameter).
    ArrayRef,
}

impl Storage {
    /// Whether the variable is indexable (`a[i]` is legal).
    pub fn is_array(self) -> bool {
        !matches!(self, Storage::Scalar)
    }

    /// Number of frame/global words the declaration occupies.
    pub fn words(self) -> u32 {
        match self {
            Storage::Scalar | Storage::ArrayRef => 1,
            Storage::Array { size } => size,
        }
    }
}

/// A resolved variable reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HVar {
    /// Where the variable lives.
    pub site: VarSite,
    /// How it is stored.
    pub storage: Storage,
    /// Source location of the reference.
    pub span: Span,
}

/// A resolved global declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HGlobal {
    /// Source name.
    pub name: String,
    /// Scalar or array storage (never `ArrayRef` at file scope).
    pub storage: Storage,
    /// Initial value for scalars (arrays are zero-initialized).
    pub init: i64,
    /// Declaration site.
    pub span: Span,
}

/// A resolved local slot (parameters occupy the first slots).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HLocal {
    /// Source name.
    pub name: String,
    /// Scalar, in-frame array, or array-reference parameter.
    pub storage: Storage,
    /// Declaration site.
    pub span: Span,
}

/// A resolved function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HFunction {
    /// Source name.
    pub name: String,
    /// Number of parameters (the first `param_count` locals).
    pub param_count: u32,
    /// All frame slots: parameters first, then declared locals in order of
    /// first appearance.
    pub locals: Vec<HLocal>,
    /// `true` if declared `void`.
    pub is_void: bool,
    /// The resolved body.
    pub body: HBlock,
    /// Signature location (used to label the procedure construct).
    pub span: Span,
}

impl HFunction {
    /// Total words needed for one activation frame.
    pub fn frame_words(&self) -> u32 {
        self.locals.iter().map(|l| l.storage.words()).sum()
    }
}

/// A resolved statement block.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HBlock {
    /// Statements in order.
    pub stmts: Vec<HStmt>,
}

/// A resolved statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HStmt {
    /// Evaluate for effect.
    Expr(HExpr),
    /// Initialize a scalar local (from a declaration with initializer).
    Init {
        /// The local being initialized.
        local: LocalId,
        /// Initializer value.
        value: HExpr,
        /// Declaration site.
        span: Span,
    },
    /// Conditional construct.
    If {
        /// Condition (predicate instruction site).
        cond: HExpr,
        /// Then branch.
        then_blk: HBlock,
        /// Else branch, if any.
        else_blk: Option<HBlock>,
        /// Location of the `if` predicate.
        span: Span,
    },
    /// `while` loop construct.
    While {
        /// Condition.
        cond: HExpr,
        /// Body.
        body: HBlock,
        /// Location of the loop predicate.
        span: Span,
    },
    /// `do { .. } while` loop construct.
    DoWhile {
        /// Body.
        body: HBlock,
        /// Condition.
        cond: HExpr,
        /// Location of the `do` keyword.
        span: Span,
    },
    /// `for` loop construct (init hoisted by the resolver).
    For {
        /// Initialization, if any.
        init: Option<Box<HStmt>>,
        /// Condition; `None` means always true.
        cond: Option<HExpr>,
        /// Step expression.
        step: Option<HExpr>,
        /// Body.
        body: HBlock,
        /// Location of the `for` predicate.
        span: Span,
    },
    /// Start `func` (a synthesized, void, parameterless thread body) on a
    /// new thread.
    Spawn {
        /// The synthesized thread-body function.
        func: FuncId,
        /// Location of the `spawn` keyword.
        span: Span,
    },
    /// Wait until every thread spawned by the current thread has finished.
    Join(Span),
    /// Exit the innermost loop.
    Break(Span),
    /// Jump to the innermost loop's next iteration.
    Continue(Span),
    /// Return from the function.
    Return {
        /// Returned value (implicitly 0 for `int` functions falling off the end).
        value: Option<HExpr>,
        /// Source location.
        span: Span,
    },
    /// A nested block (scoping already handled; kept for spans).
    Block(HBlock),
}

/// An actual argument of a resolved call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HArg {
    /// A by-value scalar argument.
    Scalar(HExpr),
    /// An array passed by reference.
    Array(HVar),
}

/// Built-in functions provided by the VM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Intrinsic {
    /// `print(x)`: append `x` to the program output; returns `x`.
    Print,
    /// `input(i)`: read word `i` of the input buffer (0 past the end).
    Input,
    /// `input_len()`: number of words in the input buffer.
    InputLen,
    /// `output(i, x)`: append `x` to the output buffer; returns the new length.
    Output,
}

impl Intrinsic {
    /// Resolves an intrinsic by source name.
    pub fn by_name(name: &str) -> Option<Intrinsic> {
        Some(match name {
            "print" => Intrinsic::Print,
            "input" => Intrinsic::Input,
            "input_len" => Intrinsic::InputLen,
            "output" => Intrinsic::Output,
            _ => return None,
        })
    }

    /// Number of arguments the intrinsic takes.
    pub fn arity(self) -> usize {
        match self {
            Intrinsic::Print | Intrinsic::Input => 1,
            Intrinsic::InputLen => 0,
            Intrinsic::Output => 2,
        }
    }

    /// Source-level name.
    pub fn name(self) -> &'static str {
        match self {
            Intrinsic::Print => "print",
            Intrinsic::Input => "input",
            Intrinsic::InputLen => "input_len",
            Intrinsic::Output => "output",
        }
    }
}

/// A resolved expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HExpr {
    /// Integer literal.
    Int(i64, Span),
    /// Scalar load.
    Load(HVar),
    /// Array element load.
    LoadIndex {
        /// The array.
        var: HVar,
        /// Element index.
        index: Box<HExpr>,
        /// Source location.
        span: Span,
    },
    /// Call to a user function.
    Call {
        /// Callee.
        func: FuncId,
        /// Arguments.
        args: Vec<HArg>,
        /// `true` when the callee is `void` (result must not be used).
        is_void: bool,
        /// Source location.
        span: Span,
    },
    /// Call to a VM intrinsic.
    CallIntrinsic {
        /// Which intrinsic.
        which: Intrinsic,
        /// Arguments (always scalars).
        args: Vec<HExpr>,
        /// Source location.
        span: Span,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand.
        expr: Box<HExpr>,
        /// Source location.
        span: Span,
    },
    /// Binary operation; `&&`/`||` short-circuit and act as predicates.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<HExpr>,
        /// Right operand.
        rhs: Box<HExpr>,
        /// Source location.
        span: Span,
    },
    /// Conditional expression (a construct, like `if`).
    Ternary {
        /// Condition.
        cond: Box<HExpr>,
        /// Value when true.
        then_expr: Box<HExpr>,
        /// Value when false.
        else_expr: Box<HExpr>,
        /// Source location.
        span: Span,
    },
    /// Assignment; compound forms load, combine, store.
    Assign {
        /// Target variable.
        var: HVar,
        /// Element index for array targets.
        index: Option<Box<HExpr>>,
        /// `Some(op)` for `op=` forms.
        op: Option<BinOp>,
        /// Right-hand side.
        value: Box<HExpr>,
        /// Source location.
        span: Span,
    },
    /// Increment/decrement.
    IncDec {
        /// Target variable.
        var: HVar,
        /// Element index for array targets.
        index: Option<Box<HExpr>>,
        /// `true` for `++`.
        inc: bool,
        /// `true` for prefix form.
        prefix: bool,
        /// Source location.
        span: Span,
    },
}

impl HExpr {
    /// The source span of the expression.
    pub fn span(&self) -> Span {
        match self {
            HExpr::Int(_, span) => *span,
            HExpr::Load(v) => v.span,
            HExpr::LoadIndex { span, .. }
            | HExpr::Call { span, .. }
            | HExpr::CallIntrinsic { span, .. }
            | HExpr::Unary { span, .. }
            | HExpr::Binary { span, .. }
            | HExpr::Ternary { span, .. }
            | HExpr::Assign { span, .. }
            | HExpr::IncDec { span, .. } => *span,
        }
    }
}

/// A fully resolved program, ready for bytecode compilation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HProgram {
    /// All globals; `GlobalId` indexes here.
    pub globals: Vec<HGlobal>,
    /// All functions; `FuncId` indexes here.
    pub functions: Vec<HFunction>,
    /// The entry function (`main`).
    pub main: FuncId,
}

impl HProgram {
    /// Looks up a function by name.
    pub fn function_by_name(&self, name: &str) -> Option<(FuncId, &HFunction)> {
        self.functions
            .iter()
            .enumerate()
            .find(|(_, f)| f.name == name)
            .map(|(i, f)| (FuncId(i as u32), f))
    }

    /// Total words of global storage.
    pub fn global_words(&self) -> u32 {
        self.globals.iter().map(|g| g.storage.words()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storage_words() {
        assert_eq!(Storage::Scalar.words(), 1);
        assert_eq!(Storage::ArrayRef.words(), 1);
        assert_eq!(Storage::Array { size: 8 }.words(), 8);
        assert!(Storage::Array { size: 8 }.is_array());
        assert!(Storage::ArrayRef.is_array());
        assert!(!Storage::Scalar.is_array());
    }

    #[test]
    fn intrinsics_resolve_by_name() {
        assert_eq!(Intrinsic::by_name("print"), Some(Intrinsic::Print));
        assert_eq!(Intrinsic::by_name("input_len"), Some(Intrinsic::InputLen));
        assert_eq!(Intrinsic::by_name("nope"), None);
        assert_eq!(Intrinsic::Print.arity(), 1);
        assert_eq!(Intrinsic::InputLen.arity(), 0);
        assert_eq!(Intrinsic::Output.name(), "output");
    }

    #[test]
    fn id_display() {
        assert_eq!(FuncId(3).to_string(), "fn#3");
        assert_eq!(GlobalId(0).to_string(), "g#0");
        assert_eq!(LocalId(7).to_string(), "l#7");
    }
}
