//! Name resolution and semantic checking.
//!
//! Lowers the syntactic [`ast::Program`] into
//! [`hir::HProgram`](crate::hir::HProgram):
//!
//! * every variable reference is bound to a global or a frame slot,
//! * every call is bound to a [`FuncId`] or an [`Intrinsic`],
//! * scoping, arity, array/scalar usage, `break`/`continue` placement and
//!   `return` arity are checked,
//! * `main` is verified to exist with signature `int main()`.

use crate::ast;
use crate::error::{LangError, Phase, Result};
use crate::hir::*;
use crate::pos::Span;
use std::collections::HashMap;

/// Resolves a parsed program.
///
/// # Errors
///
/// Returns the first semantic error found.
///
/// # Examples
///
/// ```
/// use alchemist_lang::{parse_program, resolve};
/// let hir = resolve(&parse_program("int g; int main() { g = 1; return g; }")?)?;
/// assert_eq!(hir.globals.len(), 1);
/// # Ok::<(), alchemist_lang::LangError>(())
/// ```
pub fn resolve(program: &ast::Program) -> Result<HProgram> {
    Resolver::new(program)?.run(program)
}

/// Convenience: parse and resolve in one step.
///
/// # Errors
///
/// Returns the first lexical, syntactic or semantic error.
pub fn compile_to_hir(src: &str) -> Result<HProgram> {
    let prog = crate::parser::parse_program(src)?;
    resolve(&prog)
}

#[derive(Debug)]
struct FuncSig {
    id: FuncId,
    is_void: bool,
    params: Vec<bool>, // true = array parameter
}

#[derive(Debug)]
struct Resolver {
    globals: Vec<HGlobal>,
    global_names: HashMap<String, GlobalId>,
    functions: HashMap<String, FuncSig>,
    /// Synthesized `$spawnN` thread-body functions, appended after the
    /// source functions. Their ids start at `source_count`.
    synth: Vec<HFunction>,
    source_count: usize,
}

#[derive(Debug)]
struct FnCx {
    locals: Vec<HLocal>,
    scopes: Vec<HashMap<String, LocalId>>,
    loop_depth: u32,
    is_void: bool,
}

impl FnCx {
    fn declare(&mut self, name: &str, storage: Storage, span: Span) -> Result<LocalId> {
        let scope = self.scopes.last_mut().expect("scope stack is never empty");
        if scope.contains_key(name) {
            return Err(LangError::new(
                Phase::Resolve,
                span,
                format!("`{name}` is already declared in this scope"),
            ));
        }
        let id = LocalId(self.locals.len() as u32);
        self.locals.push(HLocal {
            name: name.to_owned(),
            storage,
            span,
        });
        scope.insert(name.to_owned(), id);
        Ok(id)
    }

    fn lookup(&self, name: &str) -> Option<LocalId> {
        self.scopes.iter().rev().find_map(|s| s.get(name)).copied()
    }
}

impl Resolver {
    fn new(program: &ast::Program) -> Result<Self> {
        let mut globals = Vec::new();
        let mut global_names = HashMap::new();
        for g in &program.globals {
            if global_names.contains_key(&g.name) {
                return Err(LangError::new(
                    Phase::Resolve,
                    g.span,
                    format!("global `{}` is declared twice", g.name),
                ));
            }
            let storage = match g.array_size {
                None => Storage::Scalar,
                Some(n) if n > 0 && n <= u32::MAX as i64 => Storage::Array { size: n as u32 },
                Some(n) => {
                    return Err(LangError::new(
                        Phase::Resolve,
                        g.span,
                        format!("array size must be positive, got {n}"),
                    ));
                }
            };
            let id = GlobalId(globals.len() as u32);
            globals.push(HGlobal {
                name: g.name.clone(),
                storage,
                init: g.init.unwrap_or(0),
                span: g.span,
            });
            global_names.insert(g.name.clone(), id);
        }

        let mut functions = HashMap::new();
        for (i, f) in program.functions.iter().enumerate() {
            if Intrinsic::by_name(&f.name).is_some() {
                return Err(LangError::new(
                    Phase::Resolve,
                    f.span,
                    format!("`{}` shadows a built-in intrinsic", f.name),
                ));
            }
            if functions.contains_key(&f.name) {
                return Err(LangError::new(
                    Phase::Resolve,
                    f.span,
                    format!("function `{}` is defined twice", f.name),
                ));
            }
            functions.insert(
                f.name.clone(),
                FuncSig {
                    id: FuncId(i as u32),
                    is_void: f.is_void,
                    params: f.params.iter().map(|p| p.is_array).collect(),
                },
            );
        }
        Ok(Resolver {
            globals,
            global_names,
            functions,
            synth: Vec::new(),
            source_count: program.functions.len(),
        })
    }

    fn run(mut self, program: &ast::Program) -> Result<HProgram> {
        let mut functions = Vec::with_capacity(program.functions.len());
        for f in &program.functions {
            let hf = self.function(f)?;
            functions.push(hf);
        }
        functions.append(&mut self.synth);
        let main = match self.functions.get("main") {
            Some(sig) => {
                if sig.is_void || !sig.params.is_empty() {
                    return Err(LangError::new(
                        Phase::Resolve,
                        program.functions[sig.id.0 as usize].span,
                        "`main` must have signature `int main()`",
                    ));
                }
                sig.id
            }
            None => {
                return Err(LangError::new(
                    Phase::Resolve,
                    Span::default(),
                    "program has no `main` function",
                ));
            }
        };
        Ok(HProgram {
            globals: self.globals,
            functions,
            main,
        })
    }

    fn function(&mut self, f: &ast::Function) -> Result<HFunction> {
        let mut cx = FnCx {
            locals: Vec::new(),
            scopes: vec![HashMap::new()],
            loop_depth: 0,
            is_void: f.is_void,
        };
        for p in &f.params {
            let storage = if p.is_array {
                Storage::ArrayRef
            } else {
                Storage::Scalar
            };
            cx.declare(&p.name, storage, p.span)?;
        }
        let body = self.block(&f.body, &mut cx)?;
        Ok(HFunction {
            name: f.name.clone(),
            param_count: f.params.len() as u32,
            locals: cx.locals,
            is_void: f.is_void,
            body,
            span: f.span,
        })
    }

    fn block(&mut self, b: &ast::Block, cx: &mut FnCx) -> Result<HBlock> {
        cx.scopes.push(HashMap::new());
        let result = self.block_inner(b, cx);
        cx.scopes.pop();
        result
    }

    fn block_inner(&mut self, b: &ast::Block, cx: &mut FnCx) -> Result<HBlock> {
        let mut stmts = Vec::with_capacity(b.stmts.len());
        for s in &b.stmts {
            stmts.push(self.stmt(s, cx)?);
        }
        Ok(HBlock { stmts })
    }

    fn stmt(&mut self, s: &ast::Stmt, cx: &mut FnCx) -> Result<HStmt> {
        match s {
            ast::Stmt::Local {
                name,
                array_size,
                init,
                span,
            } => {
                let storage = match array_size {
                    None => Storage::Scalar,
                    Some(n) if *n > 0 && *n <= u32::MAX as i64 => {
                        Storage::Array { size: *n as u32 }
                    }
                    Some(n) => {
                        return Err(LangError::new(
                            Phase::Resolve,
                            *span,
                            format!("array size must be positive, got {n}"),
                        ));
                    }
                };
                // Resolve the initializer before the name is in scope, so
                // `int x = x;` refers to any outer `x`.
                let init_expr = match init {
                    Some(e) => Some(self.value_expr(e, cx)?),
                    None => None,
                };
                let id = cx.declare(name, storage, *span)?;
                match init_expr {
                    Some(value) => Ok(HStmt::Init {
                        local: id,
                        value,
                        span: *span,
                    }),
                    None => Ok(HStmt::Block(HBlock::default())),
                }
            }
            ast::Stmt::Expr(e) => Ok(HStmt::Expr(self.expr(e, cx)?)),
            ast::Stmt::If {
                cond,
                then_blk,
                else_blk,
                span,
            } => {
                let cond = self.value_expr(cond, cx)?;
                let then_blk = self.block(then_blk, cx)?;
                let else_blk = match else_blk {
                    Some(b) => Some(self.block(b, cx)?),
                    None => None,
                };
                Ok(HStmt::If {
                    cond,
                    then_blk,
                    else_blk,
                    span: *span,
                })
            }
            ast::Stmt::While { cond, body, span } => {
                let cond = self.value_expr(cond, cx)?;
                cx.loop_depth += 1;
                let body = self.block(body, cx);
                cx.loop_depth -= 1;
                Ok(HStmt::While {
                    cond,
                    body: body?,
                    span: *span,
                })
            }
            ast::Stmt::DoWhile { body, cond, span } => {
                cx.loop_depth += 1;
                let body = self.block(body, cx);
                cx.loop_depth -= 1;
                let cond = self.value_expr(cond, cx)?;
                Ok(HStmt::DoWhile {
                    body: body?,
                    cond,
                    span: *span,
                })
            }
            ast::Stmt::For {
                init,
                cond,
                step,
                body,
                span,
            } => {
                // The init declaration scopes over cond, step and body.
                cx.scopes.push(HashMap::new());
                let result = (|| {
                    let init = match init {
                        Some(s) => Some(Box::new(self.stmt(s, cx)?)),
                        None => None,
                    };
                    let cond = match cond {
                        Some(e) => Some(self.value_expr(e, cx)?),
                        None => None,
                    };
                    let step = match step {
                        Some(e) => Some(self.expr(e, cx)?),
                        None => None,
                    };
                    cx.loop_depth += 1;
                    let body = self.block(body, cx);
                    cx.loop_depth -= 1;
                    Ok(HStmt::For {
                        init,
                        cond,
                        step,
                        body: body?,
                        span: *span,
                    })
                })();
                cx.scopes.pop();
                result
            }
            ast::Stmt::Spawn { body, span } => {
                // The body becomes a synthesized void, parameterless
                // function resolved in a fresh frame: it sees globals and
                // its own locals, never the spawning function's frame.
                let mut scx = FnCx {
                    locals: Vec::new(),
                    scopes: vec![HashMap::new()],
                    loop_depth: 0,
                    is_void: true,
                };
                let hbody = self.block(body, &mut scx)?;
                let name = format!("$spawn{}", self.synth.len());
                self.synth.push(HFunction {
                    name,
                    param_count: 0,
                    locals: scx.locals,
                    is_void: true,
                    body: hbody,
                    span: *span,
                });
                let func = FuncId((self.source_count + self.synth.len() - 1) as u32);
                Ok(HStmt::Spawn { func, span: *span })
            }
            ast::Stmt::Join(span) => Ok(HStmt::Join(*span)),
            ast::Stmt::Break(span) => {
                if cx.loop_depth == 0 {
                    return Err(LangError::new(
                        Phase::Resolve,
                        *span,
                        "`break` outside of a loop",
                    ));
                }
                Ok(HStmt::Break(*span))
            }
            ast::Stmt::Continue(span) => {
                if cx.loop_depth == 0 {
                    return Err(LangError::new(
                        Phase::Resolve,
                        *span,
                        "`continue` outside of a loop",
                    ));
                }
                Ok(HStmt::Continue(*span))
            }
            ast::Stmt::Return { value, span } => {
                let value = match (value, cx.is_void) {
                    (Some(_), true) => {
                        return Err(LangError::new(
                            Phase::Resolve,
                            *span,
                            "`void` function cannot return a value",
                        ));
                    }
                    (None, false) => {
                        return Err(LangError::new(
                            Phase::Resolve,
                            *span,
                            "`int` function must return a value",
                        ));
                    }
                    (Some(e), false) => Some(self.value_expr(e, cx)?),
                    (None, true) => None,
                };
                Ok(HStmt::Return { value, span: *span })
            }
            ast::Stmt::Block(b) => Ok(HStmt::Block(self.block(b, cx)?)),
        }
    }

    /// Resolves a variable name to its site and storage.
    fn var(&self, name: &str, span: Span, cx: &FnCx) -> Result<HVar> {
        if let Some(id) = cx.lookup(name) {
            let storage = cx.locals[id.0 as usize].storage;
            return Ok(HVar {
                site: VarSite::Local(id),
                storage,
                span,
            });
        }
        if let Some(&id) = self.global_names.get(name) {
            let storage = self.globals[id.0 as usize].storage;
            return Ok(HVar {
                site: VarSite::Global(id),
                storage,
                span,
            });
        }
        Err(LangError::new(
            Phase::Resolve,
            span,
            format!("undefined variable `{name}`"),
        ))
    }

    /// Resolves an expression that must produce a value.
    fn value_expr(&mut self, e: &ast::Expr, cx: &mut FnCx) -> Result<HExpr> {
        let h = self.expr(e, cx)?;
        if let HExpr::Call {
            is_void: true,
            span,
            ..
        } = &h
        {
            return Err(LangError::new(
                Phase::Resolve,
                *span,
                "`void` function call used as a value",
            ));
        }
        Ok(h)
    }

    fn lvalue(
        &mut self,
        target: &ast::LValue,
        cx: &mut FnCx,
    ) -> Result<(HVar, Option<Box<HExpr>>)> {
        let var = self.var(&target.name, target.span, cx)?;
        match (&target.index, var.storage.is_array()) {
            (Some(idx), true) => {
                let idx = self.value_expr(idx, cx)?;
                Ok((var, Some(Box::new(idx))))
            }
            (None, false) => Ok((var, None)),
            (Some(_), false) => Err(LangError::new(
                Phase::Resolve,
                target.span,
                format!("`{}` is a scalar and cannot be indexed", target.name),
            )),
            (None, true) => Err(LangError::new(
                Phase::Resolve,
                target.span,
                format!("cannot assign to array `{}` without an index", target.name),
            )),
        }
    }

    fn expr(&mut self, e: &ast::Expr, cx: &mut FnCx) -> Result<HExpr> {
        match e {
            ast::Expr::Int(v, span) => Ok(HExpr::Int(*v, *span)),
            ast::Expr::Var(name, span) => {
                let var = self.var(name, *span, cx)?;
                if var.storage.is_array() {
                    return Err(LangError::new(
                        Phase::Resolve,
                        *span,
                        format!(
                            "array `{name}` used as a scalar (arrays may only be \
                             indexed or passed to array parameters)"
                        ),
                    ));
                }
                Ok(HExpr::Load(var))
            }
            ast::Expr::Index { name, index, span } => {
                let var = self.var(name, *span, cx)?;
                if !var.storage.is_array() {
                    return Err(LangError::new(
                        Phase::Resolve,
                        *span,
                        format!("`{name}` is a scalar and cannot be indexed"),
                    ));
                }
                let index = Box::new(self.value_expr(index, cx)?);
                Ok(HExpr::LoadIndex {
                    var,
                    index,
                    span: *span,
                })
            }
            ast::Expr::Call { name, args, span } => self.call(name, args, *span, cx),
            ast::Expr::Unary { op, expr, span } => Ok(HExpr::Unary {
                op: *op,
                expr: Box::new(self.value_expr(expr, cx)?),
                span: *span,
            }),
            ast::Expr::Binary { op, lhs, rhs, span } => Ok(HExpr::Binary {
                op: *op,
                lhs: Box::new(self.value_expr(lhs, cx)?),
                rhs: Box::new(self.value_expr(rhs, cx)?),
                span: *span,
            }),
            ast::Expr::Ternary {
                cond,
                then_expr,
                else_expr,
                span,
            } => Ok(HExpr::Ternary {
                cond: Box::new(self.value_expr(cond, cx)?),
                then_expr: Box::new(self.value_expr(then_expr, cx)?),
                else_expr: Box::new(self.value_expr(else_expr, cx)?),
                span: *span,
            }),
            ast::Expr::Assign {
                target,
                op,
                value,
                span,
            } => {
                let (var, index) = self.lvalue(target, cx)?;
                let value = Box::new(self.value_expr(value, cx)?);
                Ok(HExpr::Assign {
                    var,
                    index,
                    op: *op,
                    value,
                    span: *span,
                })
            }
            ast::Expr::IncDec {
                target,
                inc,
                prefix,
                span,
            } => {
                let (var, index) = self.lvalue(target, cx)?;
                Ok(HExpr::IncDec {
                    var,
                    index,
                    inc: *inc,
                    prefix: *prefix,
                    span: *span,
                })
            }
        }
    }

    fn call(&mut self, name: &str, args: &[ast::Expr], span: Span, cx: &mut FnCx) -> Result<HExpr> {
        if let Some(which) = Intrinsic::by_name(name) {
            if args.len() != which.arity() {
                return Err(LangError::new(
                    Phase::Resolve,
                    span,
                    format!(
                        "intrinsic `{name}` takes {} argument(s), got {}",
                        which.arity(),
                        args.len()
                    ),
                ));
            }
            let args = args
                .iter()
                .map(|a| self.value_expr(a, cx))
                .collect::<Result<Vec<_>>>()?;
            return Ok(HExpr::CallIntrinsic { which, args, span });
        }
        let Some(sig) = self.functions.get(name) else {
            return Err(LangError::new(
                Phase::Resolve,
                span,
                format!("call to undefined function `{name}`"),
            ));
        };
        let (func_id, is_void, params) = (sig.id, sig.is_void, sig.params.clone());
        if args.len() != params.len() {
            return Err(LangError::new(
                Phase::Resolve,
                span,
                format!(
                    "function `{name}` takes {} argument(s), got {}",
                    params.len(),
                    args.len()
                ),
            ));
        }
        let mut h_args = Vec::with_capacity(args.len());
        for (arg, &param_is_array) in args.iter().zip(&params) {
            if param_is_array {
                // Array parameters accept a bare array name.
                let ast::Expr::Var(arg_name, arg_span) = arg else {
                    return Err(LangError::new(
                        Phase::Resolve,
                        arg.span(),
                        format!(
                            "array parameter of `{name}` requires an array name \
                             argument"
                        ),
                    ));
                };
                let var = self.var(arg_name, *arg_span, cx)?;
                if !var.storage.is_array() {
                    return Err(LangError::new(
                        Phase::Resolve,
                        *arg_span,
                        format!(
                            "`{arg_name}` is a scalar but `{name}` expects an array \
                             here"
                        ),
                    ));
                }
                h_args.push(HArg::Array(var));
            } else {
                h_args.push(HArg::Scalar(self.value_expr(arg, cx)?));
            }
        }
        Ok(HExpr::Call {
            func: func_id,
            args: h_args,
            is_void,
            span,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ok(src: &str) -> HProgram {
        compile_to_hir(src).unwrap()
    }

    fn err(src: &str) -> String {
        compile_to_hir(src).unwrap_err().message().to_owned()
    }

    #[test]
    fn resolves_globals_and_locals() {
        let h = ok("int g = 5; int main() { int x = g; return x; }");
        assert_eq!(h.globals[0].init, 5);
        let main = &h.functions[h.main.0 as usize];
        assert_eq!(main.locals.len(), 1);
        assert_eq!(main.locals[0].name, "x");
    }

    #[test]
    fn params_take_first_slots() {
        let h = ok("int f(int a, int b[]) { return a; } int main() { return 0; }");
        let f = &h.functions[0];
        assert_eq!(f.param_count, 2);
        assert_eq!(f.locals[0].storage, Storage::Scalar);
        assert_eq!(f.locals[1].storage, Storage::ArrayRef);
    }

    #[test]
    fn frame_words_counts_arrays() {
        let h = ok("int main() { int a; int buf[10]; return 0; }");
        assert_eq!(h.functions[0].frame_words(), 11);
    }

    #[test]
    fn shadowing_in_nested_scope_is_allowed() {
        let h = ok("int main() { int x = 1; { int x = 2; x = 3; } return x; }");
        // Two distinct slots named x.
        assert_eq!(h.functions[0].locals.len(), 2);
    }

    #[test]
    fn duplicate_in_same_scope_rejected() {
        assert!(err("int main() { int x; int x; return 0; }").contains("already declared"));
    }

    #[test]
    fn undefined_variable_rejected() {
        assert!(err("int main() { return y; }").contains("undefined variable"));
    }

    #[test]
    fn undefined_function_rejected() {
        assert!(err("int main() { return f(); }").contains("undefined function"));
    }

    #[test]
    fn arity_mismatch_rejected() {
        assert!(err("int f(int a) { return a; } int main() { return f(); }")
            .contains("takes 1 argument"));
    }

    #[test]
    fn array_argument_type_checked() {
        let msg = err("int f(int a[]) { return a[0]; } int main() { int x; return f(x); }");
        assert!(msg.contains("expects an array"), "{msg}");
        let msg2 = err("int f(int a) { return a; } int buf[4]; int main() { return f(buf); }");
        assert!(msg2.contains("used as a scalar"), "{msg2}");
    }

    #[test]
    fn array_can_be_passed_through() {
        let h = ok("int f(int a[]) { return a[0]; } \
             int g(int b[]) { return f(b); } \
             int buf[4]; \
             int main() { return g(buf); }");
        assert_eq!(h.functions.len(), 3);
    }

    #[test]
    fn break_outside_loop_rejected() {
        assert!(err("int main() { break; return 0; }").contains("outside of a loop"));
        assert!(err("int main() { continue; return 0; }").contains("outside of a loop"));
    }

    #[test]
    fn break_inside_if_inside_loop_allowed() {
        ok("int main() { while (1) { if (1) break; } return 0; }");
    }

    #[test]
    fn void_return_rules() {
        assert!(err("void f() { return 1; } int main() { return 0; }")
            .contains("cannot return a value"));
        assert!(err("int f() { return; } int main() { return 0; }").contains("must return a value"));
    }

    #[test]
    fn void_call_as_value_rejected() {
        let msg = err("void f() { } int main() { int x = f(); return x; }");
        assert!(msg.contains("used as a value"), "{msg}");
    }

    #[test]
    fn void_call_as_statement_allowed() {
        ok("void f() { } int main() { f(); return 0; }");
    }

    #[test]
    fn main_signature_enforced() {
        assert!(err("int f() { return 0; }").contains("no `main`"));
        assert!(err("void main() { }").contains("int main()"));
        assert!(err("int main(int x) { return x; }").contains("int main()"));
    }

    #[test]
    fn intrinsic_shadowing_rejected() {
        assert!(
            err("int print(int x) { return x; } int main() { return 0; }")
                .contains("shadows a built-in")
        );
    }

    #[test]
    fn intrinsic_arity_checked() {
        assert!(err("int main() { return input_len(1); }").contains("takes 0 argument"));
    }

    #[test]
    fn indexing_scalar_rejected() {
        assert!(err("int main() { int x; return x[0]; }").contains("cannot be indexed"));
    }

    #[test]
    fn assigning_bare_array_rejected() {
        assert!(err("int buf[2]; int main() { buf = 1; return 0; }").contains("without an index"));
    }

    #[test]
    fn for_scoped_declaration() {
        // `i` must not leak out of the for statement.
        let msg = err("int main() { for (int i = 0; i < 3; i++) {} return i; }");
        assert!(msg.contains("undefined variable"), "{msg}");
    }

    #[test]
    fn negative_array_size_rejected() {
        assert!(err("int buf[-2]; int main() { return 0; }").contains("positive"));
        assert!(err("int main() { int b[0]; return 0; }").contains("positive"));
    }

    #[test]
    fn initializer_resolves_against_outer_scope() {
        // `int x = x;` picks up the outer x, not the new one.
        let h = ok("int main() { int x = 3; { int y = x; y = y; } return 0; }");
        assert_eq!(h.functions[0].locals.len(), 2);
    }
}
