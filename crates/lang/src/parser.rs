//! Recursive-descent parser for mini-C.
//!
//! Operator precedence follows C. Assignment and ternary are right
//! associative; all other binary operators are left associative.

use crate::ast::*;
use crate::error::{LangError, Phase, Result};
use crate::lexer::Lexer;
use crate::pos::Span;
use crate::token::{Token, TokenKind};

/// Parses a full mini-C program from source text.
///
/// # Errors
///
/// Returns the first lexical or syntactic error encountered.
///
/// # Examples
///
/// ```
/// use alchemist_lang::parse_program;
/// let prog = parse_program("int main() { return 0; }")?;
/// assert_eq!(prog.functions.len(), 1);
/// assert_eq!(prog.functions[0].name, "main");
/// # Ok::<(), alchemist_lang::LangError>(())
/// ```
pub fn parse_program(src: &str) -> Result<Program> {
    let tokens = Lexer::new(src).tokenize()?;
    Parser::new(tokens).program()
}

/// Maximum expression/statement nesting depth accepted by the parser
/// (guards the recursive-descent stack; see `Parser::enter`).
pub const MAX_NESTING_DEPTH: u32 = 120;

/// Token-stream parser. Most users want [`parse_program`].
#[derive(Debug)]
pub struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    depth: u32,
}

/// RAII guard decrementing the parser's nesting depth.
struct DepthGuard<'p>(&'p mut Parser);

impl Parser {
    /// Creates a parser over a pre-lexed token stream.
    pub fn new(tokens: Vec<Token>) -> Self {
        Parser {
            tokens,
            pos: 0,
            depth: 0,
        }
    }

    fn enter(&mut self) -> Result<DepthGuard<'_>> {
        self.depth += 1;
        if self.depth > MAX_NESTING_DEPTH {
            return Err(self.err(format!(
                "nesting exceeds the maximum depth of {MAX_NESTING_DEPTH}"
            )));
        }
        Ok(DepthGuard(self))
    }

    fn peek(&self) -> &TokenKind {
        self.tokens
            .get(self.pos)
            .map(|t| &t.kind)
            .unwrap_or(&TokenKind::Eof)
    }

    fn span(&self) -> Span {
        self.tokens
            .get(self.pos)
            .map(|t| t.span)
            .or_else(|| self.tokens.last().map(|t| t.span))
            .unwrap_or_default()
    }

    fn prev_span(&self) -> Span {
        self.tokens
            .get(self.pos.saturating_sub(1))
            .map(|t| t.span)
            .unwrap_or_default()
    }

    fn bump(&mut self) -> TokenKind {
        let kind = self.peek().clone();
        if self.pos < self.tokens.len() {
            self.pos += 1;
        }
        kind
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<Span> {
        if self.peek() == kind {
            let sp = self.span();
            self.bump();
            Ok(sp)
        } else {
            Err(self.err(format!("expected `{}`, found `{}`", kind, self.peek())))
        }
    }

    fn expect_ident(&mut self) -> Result<(String, Span)> {
        let sp = self.span();
        match self.bump() {
            TokenKind::Ident(name) => Ok((name, sp)),
            other => Err(LangError::new(
                Phase::Parse,
                sp,
                format!("expected identifier, found `{other}`"),
            )),
        }
    }

    fn err(&self, msg: impl Into<String>) -> LangError {
        LangError::new(Phase::Parse, self.span(), msg)
    }

    /// Parses the whole token stream as a program.
    ///
    /// # Errors
    ///
    /// Returns the first syntax error.
    pub fn program(&mut self) -> Result<Program> {
        let mut globals = Vec::new();
        let mut functions = Vec::new();
        while self.peek() != &TokenKind::Eof {
            let is_void = match self.peek() {
                TokenKind::KwInt => false,
                TokenKind::KwVoid => true,
                other => {
                    return Err(self.err(format!(
                        "expected `int` or `void` at top level, found `{other}`"
                    )));
                }
            };
            let decl_span = self.span();
            self.bump();
            let (name, name_span) = self.expect_ident()?;
            if self.peek() == &TokenKind::LParen {
                functions.push(self.function(name, is_void, decl_span.merge(name_span))?);
            } else {
                if is_void {
                    return Err(LangError::new(
                        Phase::Parse,
                        name_span,
                        "global variables must have type `int`",
                    ));
                }
                self.global_tail(name, decl_span.merge(name_span), &mut globals)?;
            }
        }
        Ok(Program { globals, functions })
    }

    /// Parses `[N]? (= const)? (, name ...)* ;` after `int name`.
    fn global_tail(
        &mut self,
        first: String,
        first_span: Span,
        out: &mut Vec<GlobalDecl>,
    ) -> Result<()> {
        let mut name = first;
        let mut span = first_span;
        loop {
            let array_size = if self.eat(&TokenKind::LBracket) {
                let size = self.const_int()?;
                self.expect(&TokenKind::RBracket)?;
                Some(size)
            } else {
                None
            };
            let init = if self.eat(&TokenKind::Eq) {
                if array_size.is_some() {
                    return Err(self.err("array initializers are not supported"));
                }
                Some(self.const_int()?)
            } else {
                None
            };
            out.push(GlobalDecl {
                name,
                array_size,
                init,
                span,
            });
            if self.eat(&TokenKind::Comma) {
                let (n, sp) = self.expect_ident()?;
                name = n;
                span = sp;
            } else {
                self.expect(&TokenKind::Semi)?;
                return Ok(());
            }
        }
    }

    fn const_int(&mut self) -> Result<i64> {
        let negative = self.eat(&TokenKind::Minus);
        let sp = self.span();
        match self.bump() {
            TokenKind::Int(v) => Ok(if negative { -v } else { v }),
            other => Err(LangError::new(
                Phase::Parse,
                sp,
                format!("expected integer constant, found `{other}`"),
            )),
        }
    }

    fn function(&mut self, name: String, is_void: bool, span: Span) -> Result<Function> {
        self.expect(&TokenKind::LParen)?;
        let mut params = Vec::new();
        if !self.eat(&TokenKind::RParen) {
            loop {
                if self.eat(&TokenKind::KwVoid) {
                    // `f(void)` — C-style empty parameter list.
                    self.expect(&TokenKind::RParen)?;
                    break;
                }
                self.expect(&TokenKind::KwInt)?;
                let (pname, pspan) = self.expect_ident()?;
                let is_array = if self.eat(&TokenKind::LBracket) {
                    self.expect(&TokenKind::RBracket)?;
                    true
                } else {
                    false
                };
                params.push(Param {
                    name: pname,
                    is_array,
                    span: pspan,
                });
                if !self.eat(&TokenKind::Comma) {
                    self.expect(&TokenKind::RParen)?;
                    break;
                }
            }
        }
        let body = self.block()?;
        Ok(Function {
            name,
            params,
            is_void,
            body,
            span,
        })
    }

    fn block(&mut self) -> Result<Block> {
        let lo = self.expect(&TokenKind::LBrace)?;
        let mut stmts = Vec::new();
        while !self.eat(&TokenKind::RBrace) {
            if self.peek() == &TokenKind::Eof {
                return Err(self.err("unterminated block: expected `}`"));
            }
            stmts.push(self.stmt()?);
        }
        Ok(Block {
            stmts,
            span: lo.merge(self.prev_span()),
        })
    }

    /// Parses a single statement, wrapping non-block bodies of control
    /// statements into single-statement blocks.
    fn stmt(&mut self) -> Result<Stmt> {
        let guard = self.enter()?;
        guard.0.stmt_inner()
    }

    fn stmt_inner(&mut self) -> Result<Stmt> {
        match self.peek() {
            TokenKind::KwInt => self.local_decl(),
            TokenKind::KwIf => self.if_stmt(),
            TokenKind::KwWhile => self.while_stmt(),
            TokenKind::KwDo => self.do_while_stmt(),
            TokenKind::KwFor => self.for_stmt(),
            TokenKind::KwBreak => {
                let sp = self.span();
                self.bump();
                self.expect(&TokenKind::Semi)?;
                Ok(Stmt::Break(sp))
            }
            TokenKind::KwContinue => {
                let sp = self.span();
                self.bump();
                self.expect(&TokenKind::Semi)?;
                Ok(Stmt::Continue(sp))
            }
            TokenKind::KwReturn => {
                let sp = self.span();
                self.bump();
                let value = if self.peek() == &TokenKind::Semi {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(&TokenKind::Semi)?;
                Ok(Stmt::Return { value, span: sp })
            }
            TokenKind::KwSpawn => {
                let sp = self.span();
                self.bump();
                let body = self.block()?;
                Ok(Stmt::Spawn { body, span: sp })
            }
            TokenKind::KwJoin => {
                let sp = self.span();
                self.bump();
                self.expect(&TokenKind::Semi)?;
                Ok(Stmt::Join(sp))
            }
            TokenKind::LBrace => Ok(Stmt::Block(self.block()?)),
            _ => {
                let e = self.expr()?;
                self.expect(&TokenKind::Semi)?;
                Ok(Stmt::Expr(e))
            }
        }
    }

    fn local_decl(&mut self) -> Result<Stmt> {
        let lo = self.expect(&TokenKind::KwInt)?;
        let (name, name_span) = self.expect_ident()?;
        let array_size = if self.eat(&TokenKind::LBracket) {
            let size = self.const_int()?;
            self.expect(&TokenKind::RBracket)?;
            Some(size)
        } else {
            None
        };
        let init = if self.eat(&TokenKind::Eq) {
            if array_size.is_some() {
                return Err(self.err("array initializers are not supported"));
            }
            Some(self.expr()?)
        } else {
            None
        };
        self.expect(&TokenKind::Semi)?;
        Ok(Stmt::Local {
            name,
            array_size,
            init,
            span: lo.merge(name_span),
        })
    }

    /// Parses a control-statement body: either a block, or a single
    /// statement promoted to a one-element block.
    fn body(&mut self) -> Result<Block> {
        if self.peek() == &TokenKind::LBrace {
            self.block()
        } else {
            let s = self.stmt()?;
            let span = s.span();
            Ok(Block {
                stmts: vec![s],
                span,
            })
        }
    }

    fn if_stmt(&mut self) -> Result<Stmt> {
        let sp = self.expect(&TokenKind::KwIf)?;
        self.expect(&TokenKind::LParen)?;
        let cond = self.expr()?;
        self.expect(&TokenKind::RParen)?;
        let then_blk = self.body()?;
        let else_blk = if self.eat(&TokenKind::KwElse) {
            Some(self.body()?)
        } else {
            None
        };
        Ok(Stmt::If {
            cond,
            then_blk,
            else_blk,
            span: sp,
        })
    }

    fn while_stmt(&mut self) -> Result<Stmt> {
        let sp = self.expect(&TokenKind::KwWhile)?;
        self.expect(&TokenKind::LParen)?;
        let cond = self.expr()?;
        self.expect(&TokenKind::RParen)?;
        let body = self.body()?;
        Ok(Stmt::While {
            cond,
            body,
            span: sp,
        })
    }

    fn do_while_stmt(&mut self) -> Result<Stmt> {
        let sp = self.expect(&TokenKind::KwDo)?;
        let body = self.body()?;
        self.expect(&TokenKind::KwWhile)?;
        self.expect(&TokenKind::LParen)?;
        let cond = self.expr()?;
        self.expect(&TokenKind::RParen)?;
        self.expect(&TokenKind::Semi)?;
        Ok(Stmt::DoWhile {
            body,
            cond,
            span: sp,
        })
    }

    fn for_stmt(&mut self) -> Result<Stmt> {
        let sp = self.expect(&TokenKind::KwFor)?;
        self.expect(&TokenKind::LParen)?;
        let init = if self.eat(&TokenKind::Semi) {
            None
        } else if self.peek() == &TokenKind::KwInt {
            Some(Box::new(self.local_decl()?))
        } else {
            let e = self.expr()?;
            self.expect(&TokenKind::Semi)?;
            Some(Box::new(Stmt::Expr(e)))
        };
        let cond = if self.peek() == &TokenKind::Semi {
            None
        } else {
            Some(self.expr()?)
        };
        self.expect(&TokenKind::Semi)?;
        let step = if self.peek() == &TokenKind::RParen {
            None
        } else {
            Some(self.expr()?)
        };
        self.expect(&TokenKind::RParen)?;
        let body = self.body()?;
        Ok(Stmt::For {
            init,
            cond,
            step,
            body,
            span: sp,
        })
    }

    /// Parses an expression (assignment level, right associative).
    ///
    /// # Errors
    ///
    /// Returns an error on malformed syntax or when nesting exceeds
    /// [`MAX_NESTING_DEPTH`].
    pub fn expr(&mut self) -> Result<Expr> {
        let guard = self.enter()?;
        guard.0.expr_inner()
    }

    fn expr_inner(&mut self) -> Result<Expr> {
        let lhs = self.ternary()?;
        let compound = match self.peek() {
            TokenKind::Eq => None,
            TokenKind::PlusEq => Some(BinOp::Add),
            TokenKind::MinusEq => Some(BinOp::Sub),
            TokenKind::StarEq => Some(BinOp::Mul),
            TokenKind::SlashEq => Some(BinOp::Div),
            TokenKind::PercentEq => Some(BinOp::Rem),
            TokenKind::AmpEq => Some(BinOp::BitAnd),
            TokenKind::PipeEq => Some(BinOp::BitOr),
            TokenKind::CaretEq => Some(BinOp::BitXor),
            TokenKind::ShlEq => Some(BinOp::Shl),
            TokenKind::ShrEq => Some(BinOp::Shr),
            _ => return Ok(lhs),
        };
        let op_span = self.span();
        self.bump();
        let target = Self::lvalue_of(lhs, op_span)?;
        let value = Box::new(self.expr()?);
        let span = target.span.merge(value.span());
        Ok(Expr::Assign {
            target,
            op: compound,
            value,
            span,
        })
    }

    fn lvalue_of(e: Expr, at: Span) -> Result<LValue> {
        match e {
            Expr::Var(name, span) => Ok(LValue {
                name,
                index: None,
                span,
            }),
            Expr::Index { name, index, span } => Ok(LValue {
                name,
                index: Some(index),
                span,
            }),
            other => Err(LangError::new(
                Phase::Parse,
                at,
                format!(
                    "assignment target must be a variable or array element (at {})",
                    other.span()
                ),
            )),
        }
    }

    fn ternary(&mut self) -> Result<Expr> {
        let cond = self.binary(0)?;
        if self.eat(&TokenKind::Question) {
            let then_expr = Box::new(self.expr()?);
            self.expect(&TokenKind::Colon)?;
            let else_expr = Box::new(self.ternary()?);
            let span = cond.span().merge(else_expr.span());
            Ok(Expr::Ternary {
                cond: Box::new(cond),
                then_expr,
                else_expr,
                span,
            })
        } else {
            Ok(cond)
        }
    }

    /// Binding powers for binary operators, weakest first.
    fn bin_op(kind: &TokenKind) -> Option<(BinOp, u8)> {
        Some(match kind {
            TokenKind::OrOr => (BinOp::LogOr, 1),
            TokenKind::AndAnd => (BinOp::LogAnd, 2),
            TokenKind::Pipe => (BinOp::BitOr, 3),
            TokenKind::Caret => (BinOp::BitXor, 4),
            TokenKind::Amp => (BinOp::BitAnd, 5),
            TokenKind::EqEq => (BinOp::Eq, 6),
            TokenKind::Ne => (BinOp::Ne, 6),
            TokenKind::Lt => (BinOp::Lt, 7),
            TokenKind::Le => (BinOp::Le, 7),
            TokenKind::Gt => (BinOp::Gt, 7),
            TokenKind::Ge => (BinOp::Ge, 7),
            TokenKind::Shl => (BinOp::Shl, 8),
            TokenKind::Shr => (BinOp::Shr, 8),
            TokenKind::Plus => (BinOp::Add, 9),
            TokenKind::Minus => (BinOp::Sub, 9),
            TokenKind::Star => (BinOp::Mul, 10),
            TokenKind::Slash => (BinOp::Div, 10),
            TokenKind::Percent => (BinOp::Rem, 10),
            _ => return None,
        })
    }

    fn binary(&mut self, min_bp: u8) -> Result<Expr> {
        let mut lhs = self.unary()?;
        while let Some((op, bp)) = Self::bin_op(self.peek()) {
            if bp < min_bp {
                break;
            }
            self.bump();
            let rhs = self.binary(bp + 1)?;
            let span = lhs.span().merge(rhs.span());
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr> {
        let sp = self.span();
        let op = match self.peek() {
            TokenKind::Minus => Some(UnOp::Neg),
            TokenKind::Bang => Some(UnOp::Not),
            TokenKind::Tilde => Some(UnOp::BitNot),
            TokenKind::PlusPlus | TokenKind::MinusMinus => {
                let inc = self.peek() == &TokenKind::PlusPlus;
                self.bump();
                let operand = self.unary()?;
                let target = Self::lvalue_of(operand, sp)?;
                let span = sp.merge(target.span);
                return Ok(Expr::IncDec {
                    target,
                    inc,
                    prefix: true,
                    span,
                });
            }
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let expr = Box::new(self.unary()?);
            let span = sp.merge(expr.span());
            // Fold `-literal` so constants like -1 stay literals.
            if let (UnOp::Neg, Expr::Int(v, _)) = (op, expr.as_ref()) {
                return Ok(Expr::Int(v.wrapping_neg(), span));
            }
            return Ok(Expr::Unary { op, expr, span });
        }
        self.postfix()
    }

    fn postfix(&mut self) -> Result<Expr> {
        let mut e = self.primary()?;
        loop {
            match self.peek() {
                TokenKind::PlusPlus | TokenKind::MinusMinus => {
                    let inc = self.peek() == &TokenKind::PlusPlus;
                    let sp = self.span();
                    self.bump();
                    let target = Self::lvalue_of(e, sp)?;
                    let span = target.span.merge(sp);
                    e = Expr::IncDec {
                        target,
                        inc,
                        prefix: false,
                        span,
                    };
                }
                _ => return Ok(e),
            }
        }
    }

    fn primary(&mut self) -> Result<Expr> {
        let sp = self.span();
        match self.bump() {
            TokenKind::Int(v) => Ok(Expr::Int(v, sp)),
            TokenKind::LParen => {
                let e = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                Ok(e)
            }
            TokenKind::Ident(name) => match self.peek() {
                TokenKind::LParen => {
                    self.bump();
                    let mut args = Vec::new();
                    if !self.eat(&TokenKind::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat(&TokenKind::Comma) {
                                self.expect(&TokenKind::RParen)?;
                                break;
                            }
                        }
                    }
                    let span = sp.merge(self.prev_span());
                    Ok(Expr::Call { name, args, span })
                }
                TokenKind::LBracket => {
                    self.bump();
                    let index = Box::new(self.expr()?);
                    let hi = self.expect(&TokenKind::RBracket)?;
                    Ok(Expr::Index {
                        name,
                        index,
                        span: sp.merge(hi),
                    })
                }
                _ => Ok(Expr::Var(name, sp)),
            },
            other => Err(LangError::new(
                Phase::Parse,
                sp,
                format!("expected expression, found `{other}`"),
            )),
        }
    }
}

impl Drop for DepthGuard<'_> {
    fn drop(&mut self) {
        self.0.depth -= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_expr(src: &str) -> Expr {
        let tokens = Lexer::new(src).tokenize().unwrap();
        let mut p = Parser::new(tokens);
        let e = p.expr().unwrap();
        assert_eq!(p.peek(), &TokenKind::Eof, "trailing tokens");
        e
    }

    #[test]
    fn parses_empty_main() {
        let prog = parse_program("int main() { }").unwrap();
        assert_eq!(prog.functions.len(), 1);
        assert!(prog.functions[0].body.stmts.is_empty());
        assert!(!prog.functions[0].is_void);
    }

    #[test]
    fn parses_globals_with_arrays_and_inits() {
        let prog = parse_program("int a; int buf[16]; int x = -3, y = 7;\nint main(){}").unwrap();
        assert_eq!(prog.globals.len(), 4);
        assert_eq!(prog.globals[1].array_size, Some(16));
        assert_eq!(prog.globals[2].init, Some(-3));
        assert_eq!(prog.globals[3].init, Some(7));
    }

    #[test]
    fn parses_void_function_and_array_params() {
        let prog = parse_program("void f(int a[], int n) {} int main(){}").unwrap();
        let f = &prog.functions[0];
        assert!(f.is_void);
        assert!(f.params[0].is_array);
        assert!(!f.params[1].is_array);
    }

    #[test]
    fn parses_f_void_parameter_list() {
        let prog = parse_program("int g(void) { return 1; } int main(){}").unwrap();
        assert!(prog.functions[0].params.is_empty());
    }

    #[test]
    fn precedence_mul_over_add() {
        let e = parse_expr("1 + 2 * 3");
        let Expr::Binary {
            op: BinOp::Add,
            rhs,
            ..
        } = e
        else {
            panic!("expected Add at top")
        };
        assert!(matches!(*rhs, Expr::Binary { op: BinOp::Mul, .. }));
    }

    #[test]
    fn precedence_shift_between_add_and_cmp() {
        let e = parse_expr("1 << 2 + 3 < 4");
        // Parses as ((1 << (2+3)) < 4).
        let Expr::Binary {
            op: BinOp::Lt, lhs, ..
        } = e
        else {
            panic!("expected Lt at top")
        };
        assert!(matches!(*lhs, Expr::Binary { op: BinOp::Shl, .. }));
    }

    #[test]
    fn assignment_is_right_associative() {
        let e = parse_expr("a = b = 1");
        let Expr::Assign { target, value, .. } = e else {
            panic!()
        };
        assert_eq!(target.name, "a");
        assert!(matches!(*value, Expr::Assign { .. }));
    }

    #[test]
    fn compound_assignment_to_array_element() {
        let e = parse_expr("buf[i + 1] += 2");
        let Expr::Assign {
            target,
            op: Some(BinOp::Add),
            ..
        } = e
        else {
            panic!()
        };
        assert_eq!(target.name, "buf");
        assert!(target.index.is_some());
    }

    #[test]
    fn ternary_parses_right_associative() {
        let e = parse_expr("a ? 1 : b ? 2 : 3");
        let Expr::Ternary { else_expr, .. } = e else {
            panic!()
        };
        assert!(matches!(*else_expr, Expr::Ternary { .. }));
    }

    #[test]
    fn prefix_and_postfix_incdec() {
        let e = parse_expr("++x");
        assert!(matches!(
            e,
            Expr::IncDec {
                prefix: true,
                inc: true,
                ..
            }
        ));
        let e = parse_expr("x--");
        assert!(matches!(
            e,
            Expr::IncDec {
                prefix: false,
                inc: false,
                ..
            }
        ));
    }

    #[test]
    fn negative_literal_folds() {
        assert!(matches!(parse_expr("-42"), Expr::Int(-42, _)));
    }

    #[test]
    fn rejects_assignment_to_literal() {
        let tokens = Lexer::new("3 = x").tokenize().unwrap();
        let err = Parser::new(tokens).expr().unwrap_err();
        assert!(err.message().contains("assignment target"));
    }

    #[test]
    fn parses_control_statements() {
        let src = r#"
            int main() {
                int i;
                for (i = 0; i < 10; i++) {
                    if (i % 2 == 0) continue;
                    if (i == 7) break;
                }
                while (i > 0) i -= 1;
                do { i++; } while (i < 3);
                return i;
            }
        "#;
        let prog = parse_program(src).unwrap();
        assert_eq!(prog.functions[0].body.stmts.len(), 5);
    }

    #[test]
    fn single_statement_bodies_become_blocks() {
        let prog = parse_program("int main() { if (1) return 2; else return 3; }").unwrap();
        let Stmt::If {
            then_blk, else_blk, ..
        } = &prog.functions[0].body.stmts[0]
        else {
            panic!()
        };
        assert_eq!(then_blk.stmts.len(), 1);
        assert_eq!(else_blk.as_ref().unwrap().stmts.len(), 1);
    }

    #[test]
    fn for_with_declaration_init() {
        let prog =
            parse_program("int main() { for (int i = 0; i < 3; i++) {} return 0; }").unwrap();
        let Stmt::For {
            init: Some(init), ..
        } = &prog.functions[0].body.stmts[0]
        else {
            panic!()
        };
        assert!(matches!(**init, Stmt::Local { .. }));
    }

    #[test]
    fn for_with_empty_clauses() {
        let prog = parse_program("int main() { for (;;) break; return 0; }").unwrap();
        let Stmt::For {
            init, cond, step, ..
        } = &prog.functions[0].body.stmts[0]
        else {
            panic!()
        };
        assert!(init.is_none() && cond.is_none() && step.is_none());
    }

    #[test]
    fn reports_missing_semicolon() {
        let err = parse_program("int main() { int x = 1 }").unwrap_err();
        assert!(err.message().contains("expected `;`"), "{err}");
    }

    #[test]
    fn dangling_else_binds_to_nearest_if() {
        let prog = parse_program("int main() { if (1) if (2) return 1; else return 2; return 0; }")
            .unwrap();
        let Stmt::If {
            then_blk, else_blk, ..
        } = &prog.functions[0].body.stmts[0]
        else {
            panic!()
        };
        assert!(else_blk.is_none(), "outer if must not own the else");
        let Stmt::If {
            else_blk: inner_else,
            ..
        } = &then_blk.stmts[0]
        else {
            panic!()
        };
        assert!(inner_else.is_some());
    }
}
