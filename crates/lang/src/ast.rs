//! Abstract syntax tree produced by the [`Parser`](crate::Parser).
//!
//! The AST is purely syntactic: names are plain strings. Name resolution and
//! semantic checking lower it to the [`hir`](crate::hir) representation.

use crate::pos::Span;
use std::fmt;

/// A complete translation unit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    /// File-scope variable declarations, in source order.
    pub globals: Vec<GlobalDecl>,
    /// Function definitions, in source order.
    pub functions: Vec<Function>,
}

/// A file-scope variable: `int g = 3;` or `int buf[1024];`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GlobalDecl {
    /// Variable name.
    pub name: String,
    /// `Some(n)` for an array of `n` words, `None` for a scalar.
    pub array_size: Option<i64>,
    /// Optional constant initializer (scalars only).
    pub init: Option<i64>,
    /// Source location of the declaration.
    pub span: Span,
}

/// A function definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Function {
    /// Function name.
    pub name: String,
    /// Formal parameters, in order.
    pub params: Vec<Param>,
    /// `true` if declared `void`, `false` if declared `int`.
    pub is_void: bool,
    /// The function body.
    pub body: Block,
    /// Source location of the signature.
    pub span: Span,
}

/// A formal parameter: `int x` or `int buf[]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Param {
    /// Parameter name.
    pub name: String,
    /// `true` for an array-reference parameter (`int a[]`).
    pub is_array: bool,
    /// Source location.
    pub span: Span,
}

/// A `{ ... }` statement sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    /// The statements, in order.
    pub stmts: Vec<Stmt>,
    /// Source location of the braces.
    pub span: Span,
}

/// A statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stmt {
    /// Local declaration: `int x = e;` or `int a[n];`.
    Local {
        /// Variable name.
        name: String,
        /// `Some(n)` for a local array of `n` words.
        array_size: Option<i64>,
        /// Optional scalar initializer.
        init: Option<Expr>,
        /// Source location.
        span: Span,
    },
    /// An expression evaluated for effect: `f(x);`.
    Expr(Expr),
    /// `if (cond) { .. } else { .. }` — the conditional construct.
    If {
        /// Branch condition.
        cond: Expr,
        /// Taken when `cond != 0`.
        then_blk: Block,
        /// Taken when `cond == 0`, if present.
        else_blk: Option<Block>,
        /// Location of the `if` keyword / predicate.
        span: Span,
    },
    /// `while (cond) { .. }` — a loop construct.
    While {
        /// Loop condition.
        cond: Expr,
        /// Loop body.
        body: Block,
        /// Location of the `while` keyword / predicate.
        span: Span,
    },
    /// `do { .. } while (cond);` — a loop construct.
    DoWhile {
        /// Loop body (always executed at least once).
        body: Block,
        /// Loop condition.
        cond: Expr,
        /// Location of the `do` keyword.
        span: Span,
    },
    /// `for (init; cond; step) { .. }` — a loop construct.
    For {
        /// Optional initialization statement.
        init: Option<Box<Stmt>>,
        /// Optional condition (absent means "always true").
        cond: Option<Expr>,
        /// Optional step expression.
        step: Option<Expr>,
        /// Loop body.
        body: Block,
        /// Location of the `for` keyword.
        span: Span,
    },
    /// `spawn { .. }` — run the body on a new thread.
    Spawn {
        /// The spawned body.
        body: Block,
        /// Location of the `spawn` keyword.
        span: Span,
    },
    /// `join;` — wait for every thread this thread spawned.
    Join(Span),
    /// `break;`
    Break(Span),
    /// `continue;`
    Continue(Span),
    /// `return;` or `return e;`
    Return {
        /// The returned value, if any.
        value: Option<Expr>,
        /// Source location.
        span: Span,
    },
    /// A nested block.
    Block(Block),
}

impl Stmt {
    /// The source span of the statement.
    pub fn span(&self) -> Span {
        match self {
            Stmt::Local { span, .. }
            | Stmt::If { span, .. }
            | Stmt::While { span, .. }
            | Stmt::DoWhile { span, .. }
            | Stmt::For { span, .. }
            | Stmt::Spawn { span, .. }
            | Stmt::Join(span)
            | Stmt::Break(span)
            | Stmt::Continue(span)
            | Stmt::Return { span, .. } => *span,
            Stmt::Expr(e) => e.span(),
            Stmt::Block(b) => b.span,
        }
    }
}

/// A binary operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/` (traps on divide-by-zero)
    Div,
    /// `%` (traps on divide-by-zero)
    Rem,
    /// `&`
    BitAnd,
    /// `|`
    BitOr,
    /// `^`
    BitXor,
    /// `<<` (shift count masked to 0..63)
    Shl,
    /// `>>` (arithmetic; shift count masked to 0..63)
    Shr,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `&&` (short-circuit)
    LogAnd,
    /// `||` (short-circuit)
    LogOr,
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Rem => "%",
            BinOp::BitAnd => "&",
            BinOp::BitOr => "|",
            BinOp::BitXor => "^",
            BinOp::Shl => "<<",
            BinOp::Shr => ">>",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::LogAnd => "&&",
            BinOp::LogOr => "||",
        };
        f.write_str(s)
    }
}

/// A unary operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation `-e`.
    Neg,
    /// Logical not `!e` (yields 0 or 1).
    Not,
    /// Bitwise complement `~e`.
    BitNot,
}

impl fmt::Display for UnOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            UnOp::Neg => "-",
            UnOp::Not => "!",
            UnOp::BitNot => "~",
        };
        f.write_str(s)
    }
}

/// An assignable location: a scalar variable or an array element.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LValue {
    /// Variable name.
    pub name: String,
    /// `Some(i)` when the target is `name[i]`.
    pub index: Option<Box<Expr>>,
    /// Source location.
    pub span: Span,
}

/// An expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// Integer literal.
    Int(i64, Span),
    /// Scalar variable read, or bare array name in argument position.
    Var(String, Span),
    /// Array element read: `a[i]`.
    Index {
        /// Array name.
        name: String,
        /// Element index.
        index: Box<Expr>,
        /// Source location.
        span: Span,
    },
    /// Function or intrinsic call.
    Call {
        /// Callee name.
        name: String,
        /// Actual arguments.
        args: Vec<Expr>,
        /// Source location.
        span: Span,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand.
        expr: Box<Expr>,
        /// Source location.
        span: Span,
    },
    /// Binary operation (including short-circuit `&&`/`||`).
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
        /// Source location.
        span: Span,
    },
    /// `cond ? a : b` — a conditional construct.
    Ternary {
        /// Condition.
        cond: Box<Expr>,
        /// Value when true.
        then_expr: Box<Expr>,
        /// Value when false.
        else_expr: Box<Expr>,
        /// Source location.
        span: Span,
    },
    /// Assignment `lv = e` or compound assignment `lv op= e`.
    Assign {
        /// Target location.
        target: LValue,
        /// `Some(op)` for compound assignment.
        op: Option<BinOp>,
        /// Right-hand side.
        value: Box<Expr>,
        /// Source location.
        span: Span,
    },
    /// `++lv`, `lv++`, `--lv`, `lv--`.
    IncDec {
        /// Target location.
        target: LValue,
        /// `true` for `++`.
        inc: bool,
        /// `true` for prefix form (value after update).
        prefix: bool,
        /// Source location.
        span: Span,
    },
}

impl Expr {
    /// The source span of the expression.
    pub fn span(&self) -> Span {
        match self {
            Expr::Int(_, span) | Expr::Var(_, span) => *span,
            Expr::Index { span, .. }
            | Expr::Call { span, .. }
            | Expr::Unary { span, .. }
            | Expr::Binary { span, .. }
            | Expr::Ternary { span, .. }
            | Expr::Assign { span, .. }
            | Expr::IncDec { span, .. } => *span,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pos::Pos;

    #[test]
    fn stmt_span_delegates_to_expr() {
        let sp = Span::at(Pos::new(5, 2, 20));
        let s = Stmt::Expr(Expr::Int(1, sp));
        assert_eq!(s.span(), sp);
    }

    #[test]
    fn binop_display() {
        assert_eq!(BinOp::Shl.to_string(), "<<");
        assert_eq!(BinOp::LogOr.to_string(), "||");
        assert_eq!(UnOp::BitNot.to_string(), "~");
    }
}
