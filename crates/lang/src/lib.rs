//! # alchemist-lang
//!
//! The mini-C frontend of the Alchemist dependence-distance profiling
//! infrastructure (a reproduction of the CGO 2009 paper).
//!
//! The original Alchemist profiles native C programs through Valgrind. This
//! reproduction substitutes the binary-instrumentation layer with a
//! self-contained toolchain: this crate parses and resolves a C subset
//! ("mini-C"), `alchemist-vm` compiles it to bytecode and interprets it while
//! emitting the same event stream a DBI tool would, and `alchemist-core`
//! consumes those events to build dependence profiles.
//!
//! ## The language
//!
//! Mini-C has `int` scalars and fixed-size `int` arrays, global and local
//! variables, functions (`int` or `void`) with scalar and array (`int a[]`)
//! parameters, all C arithmetic/logical/bitwise operators, compound
//! assignment, `++`/`--`, `if`/`else`, `while`, `do`-`while`, `for`,
//! `break`, `continue`, `return`, the ternary operator and short-circuit
//! `&&`/`||`. Built-in intrinsics `input(i)`, `input_len()`, `print(x)` and
//! `output(i, x)` connect a program to the host harness.
//!
//! ## Example
//!
//! ```
//! use alchemist_lang::compile_to_hir;
//!
//! let hir = compile_to_hir(
//!     "int acc;
//!      int step(int x) { return x * x; }
//!      int main() {
//!          int i;
//!          for (i = 0; i < 10; i++) acc += step(i);
//!          return acc;
//!      }",
//! )?;
//! assert_eq!(hir.functions.len(), 2);
//! # Ok::<(), alchemist_lang::LangError>(())
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod error;
pub mod hir;
pub mod lexer;
pub mod parser;
pub mod pos;
pub mod printer;
pub mod resolver;
pub mod token;

pub use ast::{BinOp, Program, UnOp};
pub use error::{LangError, Phase};
pub use hir::{FuncId, GlobalId, HProgram, Intrinsic, LocalId, Storage, VarSite};
pub use lexer::Lexer;
pub use parser::{parse_program, Parser};
pub use pos::{Pos, Span};
pub use printer::{print_expr, print_program};
pub use resolver::{compile_to_hir, resolve};
pub use token::{Token, TokenKind};
