//! Diagnostics for the mini-C frontend.

use crate::pos::Span;
use std::error::Error;
use std::fmt;

/// The phase of the frontend that produced a diagnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Tokenization.
    Lex,
    /// Parsing.
    Parse,
    /// Name resolution and semantic checking.
    Resolve,
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Phase::Lex => write!(f, "lex"),
            Phase::Parse => write!(f, "parse"),
            Phase::Resolve => write!(f, "resolve"),
        }
    }
}

/// A source-located frontend error.
///
/// # Examples
///
/// ```
/// use alchemist_lang::parse_program;
/// let err = parse_program("int main( {").unwrap_err();
/// assert!(err.to_string().contains("parse error"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LangError {
    phase: Phase,
    span: Span,
    message: String,
}

impl LangError {
    /// Creates an error attributed to `span`.
    pub fn new(phase: Phase, span: Span, message: impl Into<String>) -> Self {
        LangError {
            phase,
            span,
            message: message.into(),
        }
    }

    /// The frontend phase that raised the error.
    pub fn phase(&self) -> Phase {
        self.phase
    }

    /// Where in the source the error was detected.
    pub fn span(&self) -> Span {
        self.span
    }

    /// The human-readable message, without location prefix.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for LangError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} error at {}: {}", self.phase, self.span, self.message)
    }
}

impl Error for LangError {}

/// Convenience alias for frontend results.
pub type Result<T> = std::result::Result<T, LangError>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pos::{Pos, Span};

    #[test]
    fn display_includes_phase_location_and_message() {
        let e = LangError::new(Phase::Parse, Span::at(Pos::new(4, 9, 40)), "expected `;`");
        assert_eq!(e.to_string(), "parse error at 4:9: expected `;`");
        assert_eq!(e.phase(), Phase::Parse);
        assert_eq!(e.message(), "expected `;`");
    }

    #[test]
    fn error_trait_object_compatible() {
        fn takes_err(_: &dyn std::error::Error) {}
        let e = LangError::new(Phase::Lex, Span::default(), "bad char");
        takes_err(&e);
    }
}
