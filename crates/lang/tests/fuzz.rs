//! Robustness properties of the frontend: no input — valid or garbage —
//! may panic the lexer, parser or resolver; all failures must be
//! source-located `LangError`s.

use alchemist_lang::{compile_to_hir, parse_program, Lexer};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn lexer_never_panics(src in ".{0,200}") {
        let _ = Lexer::new(&src).tokenize();
    }

    #[test]
    fn lexer_handles_ascii_noise(src in "[ -~]{0,300}") {
        let _ = Lexer::new(&src).tokenize();
    }

    #[test]
    fn parser_never_panics(src in "[ -~]{0,300}") {
        let _ = parse_program(&src);
    }

    #[test]
    fn resolver_never_panics(src in "[a-z0-9(){};=+\\-*/<>! \n\\[\\]]{0,300}") {
        let _ = compile_to_hir(&src);
    }

    /// Token-shaped noise: join random keywords/operators/identifiers.
    #[test]
    fn parser_survives_token_salad(
        toks in proptest::collection::vec(
            prop_oneof![
                Just("int"), Just("void"), Just("if"), Just("else"),
                Just("while"), Just("for"), Just("do"), Just("break"),
                Just("continue"), Just("return"), Just("("), Just(")"),
                Just("{"), Just("}"), Just("["), Just("]"), Just(";"),
                Just(","), Just("="), Just("=="), Just("+"), Just("-"),
                Just("*"), Just("/"), Just("%"), Just("<"), Just(">"),
                Just("&&"), Just("||"), Just("?"), Just(":"), Just("x"),
                Just("y"), Just("main"), Just("0"), Just("1"), Just("42"),
            ],
            0..60,
        )
    ) {
        let src = toks.join(" ");
        let _ = compile_to_hir(&src);
    }

    /// Every reported error carries a position within (or just past) the
    /// source text.
    #[test]
    fn error_spans_are_in_bounds(src in "[ -~\n]{0,200}") {
        if let Err(e) = compile_to_hir(&src) {
            let lo = e.span().lo;
            prop_assert!(
                (lo.offset as usize) <= src.len(),
                "span offset {} beyond source length {}",
                lo.offset,
                src.len()
            );
            prop_assert!(lo.line >= 1 && lo.col >= 1);
        }
    }
}

/// Deeply nested expressions must not blow the stack: the parser enforces
/// a nesting-depth limit and reports it as an ordinary error.
#[test]
fn deep_nesting_parses_or_errors_gracefully() {
    let nest = |depth: usize| {
        let mut src = String::from("int main() { return ");
        for _ in 0..depth {
            src.push('(');
        }
        src.push('1');
        for _ in 0..depth {
            src.push(')');
        }
        src.push_str("; }");
        src
    };
    // Comfortably inside the limit: parses.
    let prog = parse_program(&nest(60)).expect("shallow nesting parses");
    assert_eq!(prog.functions.len(), 1);
    // Far beyond the limit: a located error, not a stack overflow.
    let err = parse_program(&nest(5000)).unwrap_err();
    assert!(err.message().contains("maximum depth"), "{err}");
}

#[test]
fn deeply_nested_blocks_parse() {
    let depth = 80;
    let mut src = String::from("int main() { ");
    for _ in 0..depth {
        src.push_str("{ ");
    }
    src.push_str("int x = 1; x = x;");
    for _ in 0..depth {
        src.push_str(" }");
    }
    src.push_str(" return 0; }");
    let hir = compile_to_hir(&src).expect("nested blocks resolve");
    assert_eq!(hir.functions.len(), 1);
}
