//! Property tests of the schedule simulator: classic makespan bounds and
//! monotonicity laws that any correct list scheduler satisfies.

use alchemist_parsim::{simulate, SimConfig, TaskId, TaskInstance, TaskTrace};
use alchemist_vm::Pc;
use proptest::prelude::*;

/// Builds a valid trace from gap/duration pairs: tasks are laid out
/// back-to-back with the given serial gaps between them.
fn trace_from(gaps: Vec<(u64, u64)>, tail: u64, edges: Vec<(u32, u32)>) -> TaskTrace {
    let mut t = 0u64;
    let mut tasks = Vec::new();
    for (gap, dur) in gaps {
        t += gap;
        tasks.push(TaskInstance {
            head: Pc(0),
            t_enter: t,
            t_exit: t + dur,
        });
        t += dur;
    }
    let n = tasks.len() as u32;
    let task_edges = edges
        .into_iter()
        .filter_map(|(a, b)| {
            // Keep only forward edges between existing tasks.
            let (a, b) = (a % n.max(1), b % n.max(1));
            (a < b).then_some((TaskId(a), TaskId(b)))
        })
        .collect();
    TaskTrace {
        tasks,
        main_joins: vec![],
        task_edges,
        cross_thread_sharing: 0,
        total_steps: t + tail,
    }
}

fn arb_trace() -> impl Strategy<Value = TaskTrace> {
    (
        proptest::collection::vec((0u64..200, 1u64..500), 1..20),
        0u64..300,
        proptest::collection::vec((any::<u32>(), any::<u32>()), 0..12),
    )
        .prop_map(|(gaps, tail, edges)| trace_from(gaps, tail, edges))
}

fn no_overhead(threads: usize) -> SimConfig {
    SimConfig {
        threads,
        spawn_overhead: 0,
        task_overhead: 0,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// T_par >= serial work, T_par >= total work / threads (the two lower
    /// bounds), and T_par <= T_seq (no-overhead schedules never lose).
    #[test]
    fn makespan_bounds(trace in arb_trace(), threads in 1usize..8) {
        let r = simulate(&trace, &no_overhead(threads));
        prop_assert!(r.t_par >= trace.serial_work(),
            "below serial bound: {} < {}", r.t_par, trace.serial_work());
        let work_bound = trace.task_work().div_ceil(threads as u64);
        prop_assert!(r.t_par >= work_bound.min(r.t_seq),
            "below work bound: {} < {}", r.t_par, work_bound);
        prop_assert!(r.t_par <= r.t_seq,
            "overhead-free schedule slower than sequential: {} > {}",
            r.t_par, r.t_seq);
    }

    /// More threads never hurt.
    #[test]
    fn threads_monotone(trace in arb_trace()) {
        let mut last = u64::MAX;
        for threads in [1usize, 2, 3, 4, 8, 16] {
            let r = simulate(&trace, &no_overhead(threads));
            prop_assert!(r.t_par <= last,
                "{threads} threads slower: {} > {last}", r.t_par);
            last = r.t_par;
        }
    }

    /// Adding precedence edges never speeds the schedule up.
    #[test]
    fn edges_only_constrain(trace in arb_trace()) {
        let mut relaxed = trace.clone();
        relaxed.task_edges.clear();
        let constrained = simulate(&trace, &no_overhead(4));
        let free = simulate(&relaxed, &no_overhead(4));
        prop_assert!(free.t_par <= constrained.t_par);
    }

    /// A full chain serializes all task work.
    #[test]
    fn full_chain_serializes(
        gaps in proptest::collection::vec((0u64..50, 1u64..200), 2..10)
    ) {
        let n = gaps.len() as u32;
        let chain: Vec<(u32, u32)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        let trace = trace_from(gaps, 0, chain);
        let r = simulate(&trace, &no_overhead(8));
        prop_assert!(r.t_par >= trace.task_work(),
            "chained tasks overlapped: {} < {}", r.t_par, trace.task_work());
    }

    /// With a single worker all task work serializes on that worker, but
    /// the main thread may still overlap its serial glue with it (the
    /// futures model keeps the spawning thread separate), so the makespan
    /// sits between the task-work bound and the sequential time.
    #[test]
    fn single_worker_serializes_tasks(trace in arb_trace()) {
        let r = simulate(&trace, &no_overhead(1));
        prop_assert!(r.t_par >= trace.task_work());
        prop_assert!(r.t_par <= r.t_seq);
    }

    /// Busy time is conserved: workers execute exactly the task work
    /// (plus per-task overhead).
    #[test]
    fn busy_time_conserved(trace in arb_trace(), threads in 1usize..6) {
        let cfg = SimConfig { threads, spawn_overhead: 3, task_overhead: 11 };
        let r = simulate(&trace, &cfg);
        let busy: u64 = r.thread_busy.iter().sum();
        let expected = trace.task_work() + 11 * trace.tasks.len() as u64;
        prop_assert_eq!(busy, expected);
    }
}
