//! Task extraction: re-run the program with marked constructs and record
//! the schedule-relevant structure.
//!
//! The extractor maintains the same execution-indexing stack discipline as
//! the profiler (procedure barriers, predicate re-execution, post-dominator
//! pops) but keeps no tree: it only needs to know when instances of the
//! *marked* constructs begin and end. Dependences are detected with the
//! same shadow-memory scheme, attributed to tasks, and turned into schedule
//! constraints:
//!
//! * head in task `A`, tail in the main thread → the main thread joins `A`
//!   at the tail's sequential position (the paper's "join the future at any
//!   possible conflicting read");
//! * head in task `A`, tail in task `B` → precedence edge `A → B`;
//! * head and tail in the same task, or both on the main thread → already
//!   ordered, no constraint;
//! * head and tail on different *program* threads (`spawn`ed mini-C
//!   threads) → no constraint either: the source program already runs the
//!   two sides concurrently, so the what-if schedule must not serialize
//!   them. These dependences are tallied in
//!   [`TaskTrace::cross_thread_sharing`] instead.
//!
//! Variables listed in [`ExtractConfig::privatized`] are excluded from
//! constraint generation: this models the source transformations the paper
//! applies by hand (thread-local copies, reductions, recomputed values).

use crate::task::{TaskId, TaskInstance, TaskTrace};
use alchemist_core::shadow::{Access, ShadowMemory};
use alchemist_core::shard::{run_sharded, run_sharded_batched, ShardError};
use alchemist_core::{ConstructId, ConstructKind};
use alchemist_lang::hir::FuncId;
use alchemist_obs::{span_opt, Counter, Metrics, Stage};
use alchemist_vm::{
    BlockId, Event, EventBatch, ExecConfig, Module, Pc, Tid, Time, TraceSink, Trap,
};
use std::collections::HashSet;

/// What to extract and which transformations to assume.
#[derive(Debug, Clone, Default)]
pub struct ExtractConfig {
    /// Heads of the constructs to run asynchronously.
    pub marked: HashSet<Pc>,
    /// Global variables whose conflicts are removed by privatization /
    /// reduction transformations (by name).
    pub privatized: HashSet<String>,
    /// Honor WAR/WAW conflicts as constraints (set when simulating a naive,
    /// untransformed parallelization).
    pub respect_war_waw: bool,
}

impl ExtractConfig {
    /// Marks one construct for asynchronous execution.
    pub fn mark(mut self, head: Pc) -> Self {
        self.marked.insert(head);
        self
    }

    /// Declares a global privatized (its conflicts are transformed away).
    pub fn privatize(mut self, name: &str) -> Self {
        self.privatized.insert(name.to_owned());
        self
    }
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    head: Pc,
    ipdom: Option<BlockId>,
    is_barrier: bool,
    /// Task opened when this entry was pushed, if any.
    opened: Option<TaskId>,
}

/// Per-thread extraction state: the indexing stack and the task (if any)
/// the thread is currently inside.
#[derive(Debug, Default)]
struct Lane {
    stack: Vec<Entry>,
    current_task: Option<TaskId>,
}

/// The extraction sink. Most users call [`extract_tasks`].
#[derive(Debug)]
pub struct TaskExtractor<'m> {
    module: &'m Module,
    config: ExtractConfig,
    /// One lane per thread (dense tids), grown on a thread's first event;
    /// single-threaded runs only ever use `lanes[0]`.
    lanes: Vec<Lane>,
    tasks: Vec<TaskInstance>,
    shadow: ShadowMemory<Option<TaskId>>,
    main_joins: Vec<(u64, TaskId)>,
    task_edges: HashSet<(TaskId, TaskId)>,
    /// Dependences whose head and tail ran on different program threads.
    /// They never become schedule constraints — the program's own spawn
    /// already decoupled the two sides — but they are *sharing*, which the
    /// simulator reports so the cost of the communication is not silently
    /// dropped.
    cross_sharing: u64,
    /// Addresses excluded by privatization.
    excluded: Vec<(u32, u32)>,
}

impl<'m> TaskExtractor<'m> {
    /// Creates an extractor for one run of `module`.
    pub fn new(module: &'m Module, config: ExtractConfig) -> Self {
        let excluded = module
            .globals
            .iter()
            .filter(|g| config.privatized.contains(&g.name))
            .map(|g| (g.offset, g.offset + g.words))
            .collect();
        TaskExtractor {
            module,
            config,
            lanes: vec![Lane::default()],
            tasks: Vec::new(),
            shadow: ShadowMemory::with_dense_limit(8, module.global_words),
            main_joins: Vec::new(),
            task_edges: HashSet::new(),
            cross_sharing: 0,
            excluded,
        }
    }

    /// Finishes extraction.
    pub fn into_trace(mut self, total_steps: u64) -> TaskTrace {
        for li in 0..self.lanes.len() {
            while !self.lanes[li].stack.is_empty() {
                self.pop_one(li, total_steps);
            }
        }
        let mut main_joins = self.main_joins;
        main_joins.sort_unstable();
        main_joins.dedup();
        let mut task_edges: Vec<_> = self.task_edges.into_iter().collect();
        task_edges.sort_unstable_by_key(|&(a, b)| (a.0, b.0));
        TaskTrace {
            tasks: self.tasks,
            main_joins,
            task_edges,
            cross_thread_sharing: self.cross_sharing,
            total_steps,
        }
    }

    /// Index of `tid`'s lane, growing the vector on a thread's first event.
    fn lane_index(&mut self, tid: Tid) -> usize {
        let idx = tid.0 as usize;
        if idx >= self.lanes.len() {
            self.lanes.resize_with(idx + 1, Lane::default);
        }
        idx
    }

    fn push(&mut self, lane: usize, head: Pc, ipdom: Option<BlockId>, is_barrier: bool, t: Time) {
        let opened =
            if self.lanes[lane].current_task.is_none() && self.config.marked.contains(&head) {
                let id = TaskId(self.tasks.len() as u32);
                self.tasks.push(TaskInstance {
                    head,
                    t_enter: t,
                    t_exit: t,
                });
                self.lanes[lane].current_task = Some(id);
                Some(id)
            } else {
                None
            };
        self.lanes[lane].stack.push(Entry {
            head,
            ipdom,
            is_barrier,
            opened,
        });
    }

    fn pop_one(&mut self, lane: usize, t: Time) {
        let e = self.lanes[lane]
            .stack
            .pop()
            .expect("extractor pop on empty stack");
        if let Some(id) = e.opened {
            self.tasks[id.0 as usize].t_exit = t;
            self.lanes[lane].current_task = None;
        }
    }

    fn traced(&self, addr: u32) -> bool {
        addr < self.module.global_words
            && !self
                .excluded
                .iter()
                .any(|&(lo, hi)| lo <= addr && addr < hi)
    }

    fn constrain(&mut self, lane: usize, head_tag: Option<TaskId>, tail_t: u64) {
        constrain_into(
            &mut self.main_joins,
            &mut self.task_edges,
            self.lanes[lane].current_task,
            head_tag,
            tail_t,
        );
    }
}

/// The schedule-constraint rule, as a free function so the read path
/// (`constrain`) and the write path's split-borrow callback share one
/// implementation: head in a task, tail on the main thread → join; head
/// and tail in different tasks → precedence edge; otherwise ordered.
fn constrain_into(
    main_joins: &mut Vec<(u64, TaskId)>,
    task_edges: &mut HashSet<(TaskId, TaskId)>,
    current: Option<TaskId>,
    head_tag: Option<TaskId>,
    tail_t: u64,
) {
    match (head_tag, current) {
        (Some(a), None) => main_joins.push((tail_t, a)),
        (Some(a), Some(b)) if a != b => {
            task_edges.insert((a, b));
        }
        _ => {}
    }
}

impl TraceSink for TaskExtractor<'_> {
    fn on_enter_function(&mut self, t: Time, func: FuncId, _fp: u32, tid: Tid) {
        let head = self.module.funcs[func.0 as usize].entry;
        let lane = self.lane_index(tid);
        self.push(lane, head, None, true, t);
    }

    fn on_exit_function(&mut self, t: Time, _func: FuncId, tid: Tid) {
        let lane = self.lane_index(tid);
        loop {
            let barrier = self.lanes[lane]
                .stack
                .last()
                .expect("exit without entry")
                .is_barrier;
            self.pop_one(lane, t);
            if barrier {
                return;
            }
        }
    }

    fn on_block_entry(&mut self, t: Time, block: BlockId, tid: Tid) {
        let lane = self.lane_index(tid);
        while let Some(top) = self.lanes[lane].stack.last() {
            if top.is_barrier || top.ipdom != Some(block) {
                break;
            }
            self.pop_one(lane, t);
        }
    }

    fn on_predicate(&mut self, t: Time, pc: Pc, block: BlockId, _taken: bool, tid: Tid) {
        let lane = self.lane_index(tid);
        let mut found = None;
        for (i, e) in self.lanes[lane].stack.iter().enumerate().rev() {
            if e.is_barrier {
                break;
            }
            if e.head == pc {
                found = Some(i);
                break;
            }
        }
        if let Some(i) = found {
            while self.lanes[lane].stack.len() > i {
                self.pop_one(lane, t);
            }
        }
        let ipdom = self.module.analysis.block(block).ipdom;
        self.push(lane, pc, ipdom, false, t);
    }

    fn on_read(&mut self, t: Time, addr: u32, pc: Pc, tid: Tid) {
        if !self.traced(addr) {
            return;
        }
        let lane = self.lane_index(tid);
        let access = Access {
            pc,
            t,
            tid,
            node: self.lanes[lane].current_task,
        };
        if let Some(dep) = self.shadow.on_read(addr, access) {
            if dep.head.tid != tid {
                // Already-parallel: the program's own threads carry this
                // flow; it costs communication, not schedule order.
                self.cross_sharing += 1;
            } else {
                self.constrain(lane, dep.head.node, t);
            }
        }
    }

    fn on_write(&mut self, t: Time, addr: u32, pc: Pc, tid: Tid) {
        if !self.traced(addr) {
            return;
        }
        let lane = self.lane_index(tid);
        let access = Access {
            pc,
            t,
            tid,
            node: self.lanes[lane].current_task,
        };
        // The write must update shadow state (clear the read set, install
        // the new last-write) whether or not WAR/WAW constraints are
        // honored; only the constraint emission is conditional. The
        // callback streams detected dependences into the constraint sets
        // over split borrows — no Vec — through the same `constrain_into`
        // rule the read path uses. Cross-thread heads never constrain
        // (they are already-parallel) but always count as sharing.
        let respect = self.config.respect_war_waw;
        let current = self.lanes[lane].current_task;
        let (main_joins, task_edges) = (&mut self.main_joins, &mut self.task_edges);
        let cross_sharing = &mut self.cross_sharing;
        self.shadow.on_write(addr, access, &mut |_kind, dep| {
            if dep.head.tid != tid {
                *cross_sharing += 1;
            } else if respect {
                constrain_into(main_joins, task_edges, current, dep.head.node, t);
            }
        });
    }

    fn on_batch(&mut self, batch: &EventBatch) {
        // Bulk path, pinned explicitly (mirrors
        // `AlchemistProfiler::on_batch`): one virtual call per batch, rows
        // consumed column-direct by the monomorphized `dispatch_into`.
        batch.dispatch_into(self);
    }
}

/// Runs `module` once and extracts its task trace.
///
/// # Errors
///
/// Returns the [`Trap`] if the program faults.
pub fn extract_tasks(
    module: &Module,
    exec_config: &ExecConfig,
    config: ExtractConfig,
) -> Result<TaskTrace, Trap> {
    let mut extractor = TaskExtractor::new(module, config);
    let outcome = alchemist_vm::run(module, exec_config, &mut extractor)?;
    Ok(extractor.into_trace(outcome.steps))
}

/// Extracts a task trace from a *replayed* event stream instead of
/// re-running the program.
///
/// Any source of [`Event`]s — a `RecordingSink`, a decoded `.alct` trace —
/// drives the same [`TaskExtractor`] a live run would, so one recorded
/// execution can be re-analyzed under many different mark/privatize
/// configurations without paying re-execution. `total_steps` is the
/// recorded run's final instruction count (a trace stores it in its
/// footer).
pub fn extract_tasks_from_events<I>(
    module: &Module,
    config: ExtractConfig,
    events: I,
    total_steps: u64,
) -> TaskTrace
where
    I: IntoIterator<Item = Event>,
{
    let mut extractor = TaskExtractor::new(module, config);
    for ev in events {
        ev.dispatch(&mut extractor);
    }
    extractor.into_trace(total_steps)
}

/// Address-sharded parallel variant of [`extract_tasks_from_events`].
///
/// Same scheme as [`alchemist_core::profile_events_par`]: every worker runs
/// a full [`TaskExtractor`] behind a [`ShardFilter`](alchemist_core::ShardFilter)
/// (via [`run_sharded`]), so it sees all control events (task open/close is
/// control-derived and identical in every shard) but only the memory
/// events of its address shard. The merge
/// keeps shard 0's task list, unions the schedule constraints — each
/// dynamic dependence is detected by exactly one shard — and re-applies
/// the sequential path's sort/dedup, so the result is **equal** to
/// [`extract_tasks_from_events`] on the same stream.
///
/// # Errors
///
/// [`ShardError`] if any shard worker panicked; surviving shards are
/// drained and joined before the error is returned.
pub fn extract_tasks_from_events_par(
    module: &Module,
    config: ExtractConfig,
    events: &[Event],
    total_steps: u64,
    jobs: usize,
) -> Result<TaskTrace, ShardError> {
    if jobs <= 1 {
        return Ok(extract_tasks_from_events(
            module,
            config,
            events.iter().copied(),
            total_steps,
        ));
    }
    let extractors = run_sharded(events, jobs, |_| TaskExtractor::new(module, config.clone()))?;
    Ok(merge_shard_traces(extractors, total_steps))
}

/// Batched twin of [`extract_tasks_from_events_par`]: extracts a task
/// trace from a stream of [`EventBatch`]es through `jobs` address shards
/// via [`run_sharded_batched`] (single-pass partitioning, bulk dispatch).
///
/// The result is **equal** to [`extract_tasks_from_events`] over the
/// concatenated batch rows. `jobs <= 1` runs one extractor sequentially,
/// one `on_batch` call per batch.
///
/// # Errors
///
/// [`ShardError`] if any shard worker panicked.
pub fn extract_tasks_from_batches_par(
    module: &Module,
    config: ExtractConfig,
    batches: &[EventBatch],
    total_steps: u64,
    jobs: usize,
) -> Result<TaskTrace, ShardError> {
    extract_tasks_from_batches_par_with(module, config, batches, total_steps, jobs, None)
}

/// [`extract_tasks_from_batches_par`] with self-instrumentation: when
/// `metrics` is `Some`, the whole extraction runs under an `extract` stage
/// span and the `parsim.tasks_extracted` counter is bumped with the trace's
/// task count. The internal shard fan-out is *not* instrumented — per-shard
/// metrics rows stay reserved for the dependence-profiling shards, so a
/// combined `replay` invocation reports one coherent shard table.
///
/// # Errors
///
/// [`ShardError`] if any shard worker panicked.
pub fn extract_tasks_from_batches_par_with(
    module: &Module,
    config: ExtractConfig,
    batches: &[EventBatch],
    total_steps: u64,
    jobs: usize,
    metrics: Option<&Metrics>,
) -> Result<TaskTrace, ShardError> {
    let _extract_span = span_opt(metrics, Stage::Extract);
    let trace = if jobs <= 1 {
        let mut extractor = TaskExtractor::new(module, config);
        for batch in batches {
            extractor.on_batch(batch);
        }
        extractor.into_trace(total_steps)
    } else {
        let extractors = run_sharded_batched(batches, jobs, |_| {
            TaskExtractor::new(module, config.clone())
        })?;
        merge_shard_traces(extractors, total_steps)
    };
    if let Some(m) = metrics {
        m.add(Counter::ParsimTasksExtracted, trace.tasks.len() as u64);
    }
    Ok(trace)
}

/// Merges per-shard extractor results: shard 0's control-derived task list
/// plus the union of every shard's schedule constraints, re-sorted and
/// deduplicated exactly as the sequential path does.
fn merge_shard_traces(extractors: Vec<TaskExtractor<'_>>, total_steps: u64) -> TaskTrace {
    let mut iter = extractors
        .into_iter()
        .map(|e| e.into_trace(total_steps))
        .collect::<Vec<_>>()
        .into_iter();
    // Invariant: only reached from the `jobs > 1` fan-out paths, which
    // spawn (and here return) at least two extractors.
    let mut base = iter.next().expect("at least one shard");
    let mut edge_set: HashSet<(TaskId, TaskId)> = base.task_edges.iter().copied().collect();
    for shard in iter {
        debug_assert_eq!(base.tasks, shard.tasks, "task lists are control-derived");
        base.main_joins.extend(shard.main_joins);
        edge_set.extend(shard.task_edges);
        // Each dynamic dependence is detected by exactly one address
        // shard, so sharing counts sum to the sequential run's.
        base.cross_thread_sharing += shard.cross_thread_sharing;
    }
    base.main_joins.sort_unstable();
    base.main_joins.dedup();
    base.task_edges = edge_set.into_iter().collect();
    base.task_edges.sort_unstable_by_key(|&(a, b)| (a.0, b.0));
    base
}

/// Finds the head of a construct by kind and source line (a convenient way
/// for benchmarks to say "the loop at line 14 of main").
pub fn construct_at_line(module: &Module, kind: ConstructKind, line: u32) -> Option<Pc> {
    match kind {
        ConstructKind::Method => module
            .funcs
            .iter()
            .find(|f| f.span.line() == line)
            .map(|f| f.entry),
        _ => (0..module.ops.len() as u32).map(Pc).find(|&pc| {
            module
                .analysis
                .predicate_kind(pc)
                .map(ConstructId::kind_of_pred)
                == Some(kind)
                && module.line_at(pc) == line
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alchemist_vm::compile_source;

    /// A loop whose iterations are heavy and independent, calling a worker
    /// per iteration.
    const INDEPENDENT: &str = "\
int out[64];
void work(int i) {
    int j;
    int acc = 0;
    for (j = 0; j < 200; j++) acc += j * i;
    out[i] = acc;
}
int main() {
    int i;
    for (i = 0; i < 8; i++) work(i);
    return out[7];
}";

    fn work_head(m: &Module) -> Pc {
        m.func_by_name("work").unwrap().1.entry
    }

    #[test]
    fn marked_function_instances_become_tasks() {
        let m = compile_source(INDEPENDENT).unwrap();
        let cfg = ExtractConfig::default().mark(work_head(&m));
        let trace = extract_tasks(&m, &ExecConfig::default(), cfg).unwrap();
        assert_eq!(trace.tasks.len(), 8);
        for t in &trace.tasks {
            assert!(t.duration() > 200, "worker bodies are heavy");
        }
        // Disjoint, ordered intervals.
        for w in trace.tasks.windows(2) {
            assert!(w[0].t_exit <= w[1].t_enter);
        }
    }

    #[test]
    fn independent_tasks_have_no_task_edges() {
        let m = compile_source(INDEPENDENT).unwrap();
        let cfg = ExtractConfig::default().mark(work_head(&m));
        let trace = extract_tasks(&m, &ExecConfig::default(), cfg).unwrap();
        assert!(trace.task_edges.is_empty(), "{:?}", trace.task_edges);
    }

    #[test]
    fn continuation_read_becomes_main_join() {
        let m = compile_source(INDEPENDENT).unwrap();
        let cfg = ExtractConfig::default().mark(work_head(&m));
        let trace = extract_tasks(&m, &ExecConfig::default(), cfg).unwrap();
        // `return out[7]` reads what task 7 wrote.
        assert!(
            trace.main_joins.iter().any(|&(_, t)| t == TaskId(7)),
            "main must join the producer of out[7]: {:?}",
            trace.main_joins
        );
    }

    #[test]
    fn chained_tasks_get_precedence_edges() {
        // Each call reads the previous call's result: a serial chain.
        let src = "\
int acc;
void step(int i) { acc = acc + i; }
int main() {
    int i;
    for (i = 0; i < 4; i++) step(i);
    return acc;
}";
        let m = compile_source(src).unwrap();
        let head = m.func_by_name("step").unwrap().1.entry;
        let cfg = ExtractConfig::default().mark(head);
        let trace = extract_tasks(&m, &ExecConfig::default(), cfg).unwrap();
        assert_eq!(trace.tasks.len(), 4);
        assert!(
            trace.task_edges.contains(&(TaskId(0), TaskId(1))),
            "chain edges: {:?}",
            trace.task_edges
        );
    }

    #[test]
    fn privatization_removes_constraints() {
        let src = "\
int counter;
int out[8];
void work(int i) { counter++; out[i] = i; }
int main() {
    int i;
    for (i = 0; i < 8; i++) work(i);
    return counter;
}";
        let m = compile_source(src).unwrap();
        let head = m.func_by_name("work").unwrap().1.entry;
        let naive = ExtractConfig::default().mark(head);
        let t1 = extract_tasks(&m, &ExecConfig::default(), naive).unwrap();
        assert!(!t1.task_edges.is_empty(), "counter chain serializes tasks");
        let transformed = ExtractConfig::default().mark(head).privatize("counter");
        let t2 = extract_tasks(&m, &ExecConfig::default(), transformed).unwrap();
        assert!(
            t2.task_edges.is_empty(),
            "privatized counter no longer constrains: {:?}",
            t2.task_edges
        );
    }

    #[test]
    fn loop_iterations_as_tasks() {
        let m = compile_source(INDEPENDENT).unwrap();
        // Mark the for-loop in main (a Loop predicate) instead of `work`.
        let main_line = 9; // "int main() {" is line 9 (1-based) in INDEPENDENT
        let _ = main_line;
        let loop_head = (0..m.ops.len() as u32)
            .map(Pc)
            .find(|&pc| {
                m.analysis.predicate_kind(pc) == Some(alchemist_vm::PredKind::Loop)
                    && m.func_at(pc) == Some(m.main)
            })
            .expect("main's loop predicate");
        let cfg = ExtractConfig::default().mark(loop_head);
        let trace = extract_tasks(&m, &ExecConfig::default(), cfg).unwrap();
        // 8 productive iterations + 1 final test instance.
        assert_eq!(trace.tasks.len(), 9);
    }

    #[test]
    fn replayed_events_extract_the_same_trace() {
        let m = compile_source(INDEPENDENT).unwrap();
        let cfg = ExtractConfig::default().mark(work_head(&m));
        let live = extract_tasks(&m, &ExecConfig::default(), cfg.clone()).unwrap();
        let mut rec = alchemist_vm::RecordingSink::default();
        let out = alchemist_vm::run(&m, &ExecConfig::default(), &mut rec).unwrap();
        let offline = extract_tasks_from_events(&m, cfg, rec.events.iter().copied(), out.steps);
        assert_eq!(live, offline);
    }

    #[test]
    fn sharded_extraction_equals_sequential() {
        // A workload with all three constraint sources: main joins (the
        // final out[7] read), task edges (the counter chain) and WAR/WAW
        // when respected.
        let src = "\
int counter;
int out[8];
void work(int i) { counter++; out[i] = i + counter; }
int main() {
    int i;
    for (i = 0; i < 8; i++) work(i);
    return out[7];
}";
        let m = compile_source(src).unwrap();
        let head = m.func_by_name("work").unwrap().1.entry;
        let mut rec = alchemist_vm::RecordingSink::default();
        let out = alchemist_vm::run(&m, &ExecConfig::default(), &mut rec).unwrap();
        for respect in [false, true] {
            let cfg = ExtractConfig {
                respect_war_waw: respect,
                ..ExtractConfig::default().mark(head)
            };
            let seq =
                extract_tasks_from_events(&m, cfg.clone(), rec.events.iter().copied(), out.steps);
            assert!(!seq.task_edges.is_empty(), "counter chain constrains");
            for jobs in [1usize, 2, 3, 4, 8] {
                let par =
                    extract_tasks_from_events_par(&m, cfg.clone(), &rec.events, out.steps, jobs)
                        .unwrap();
                assert_eq!(par, seq, "jobs={jobs} respect_war_waw={respect}");
            }
        }
    }

    #[test]
    fn batched_extraction_equals_sequential() {
        let src = "\
int counter;
int out[8];
void work(int i) { counter++; out[i] = i + counter; }
int main() {
    int i;
    for (i = 0; i < 8; i++) work(i);
    return out[7];
}";
        let m = compile_source(src).unwrap();
        let head = m.func_by_name("work").unwrap().1.entry;
        let mut rec = alchemist_vm::RecordingSink::default();
        let out = alchemist_vm::run(&m, &ExecConfig::default(), &mut rec).unwrap();
        let cfg = ExtractConfig::default().mark(head);
        let seq = extract_tasks_from_events(&m, cfg.clone(), rec.events.iter().copied(), out.steps);
        let batches: Vec<EventBatch> = rec.events.chunks(23).map(EventBatch::from_events).collect();
        for jobs in [1usize, 2, 4, 8] {
            let par =
                extract_tasks_from_batches_par(&m, cfg.clone(), &batches, out.steps, jobs).unwrap();
            assert_eq!(par, seq, "jobs={jobs}");
        }
    }

    #[test]
    fn construct_at_line_finds_methods() {
        let m = compile_source(INDEPENDENT).unwrap();
        let head = construct_at_line(&m, ConstructKind::Method, 2).unwrap();
        assert_eq!(head, work_head(&m));
    }

    #[test]
    fn nested_marks_do_not_nest_tasks() {
        // Both the loop and the callee are marked; only the outermost
        // (whichever opens first) becomes the task.
        let m = compile_source(INDEPENDENT).unwrap();
        let loop_head = (0..m.ops.len() as u32)
            .map(Pc)
            .find(|&pc| {
                m.analysis.predicate_kind(pc) == Some(alchemist_vm::PredKind::Loop)
                    && m.func_at(pc) == Some(m.main)
            })
            .unwrap();
        let cfg = ExtractConfig::default().mark(loop_head).mark(work_head(&m));
        let trace = extract_tasks(&m, &ExecConfig::default(), cfg).unwrap();
        // Tasks are the loop iterations; the nested work() calls fold in.
        assert_eq!(trace.tasks.len(), 9);
        for w in trace.tasks.windows(2) {
            assert!(w[0].t_exit <= w[1].t_enter, "no overlap");
        }
    }
}
