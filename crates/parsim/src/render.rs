//! Text rendering of simulated schedules (a Gantt-style timeline) for
//! examples and reports.

use crate::sim::{SimConfig, SimResult};
use crate::task::{TaskId, TaskTrace};
use std::fmt::Write as _;

/// A fully scheduled task, for inspection and rendering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduledTask {
    /// Which task.
    pub task: TaskId,
    /// Worker thread it ran on.
    pub worker: usize,
    /// Start time in the parallel timeline.
    pub start: u64,
    /// End time in the parallel timeline.
    pub end: u64,
}

/// Re-runs the list scheduler, recording per-task placement. The schedule
/// is identical to [`simulate`](crate::simulate)'s (same deterministic
/// policy); this variant additionally returns the placements.
pub fn schedule(trace: &TaskTrace, config: &SimConfig) -> (SimResult, Vec<ScheduledTask>) {
    // Reuse the simulator, then recompute placements deterministically by
    // replaying the same policy with bookkeeping.
    let result = crate::sim::simulate(trace, config);
    let placements = replay_placements(trace, config);
    (result, placements)
}

fn replay_placements(trace: &TaskTrace, config: &SimConfig) -> Vec<ScheduledTask> {
    // The logic mirrors sim::simulate; kept separate so the hot path stays
    // allocation-free. Consistency between the two is asserted by tests.
    let n = trace.tasks.len();
    let enters: Vec<u64> = trace.tasks.iter().map(|t| t.t_enter).collect();
    let mut prefix: Vec<u64> = Vec::with_capacity(n + 1);
    prefix.push(0);
    for t in &trace.tasks {
        let last = *prefix.last().expect("non-empty");
        prefix.push(last + t.duration());
    }
    let task_time_before = |x: u64| -> u64 {
        let i = enters.partition_point(|&e| e < x);
        let mut total = prefix[i];
        if i > 0 {
            let t = &trace.tasks[i - 1];
            if x < t.t_exit {
                total = prefix[i - 1] + (x - t.t_enter);
            }
        }
        total
    };
    let seq_compute =
        |a: u64, b: u64| -> u64 { (b - a) - (task_time_before(b) - task_time_before(a)) };

    let mut preds: Vec<Vec<TaskId>> = vec![Vec::new(); n];
    for &(from, to) in &trace.task_edges {
        preds[to.0 as usize].push(from);
    }
    #[derive(Clone, Copy, PartialEq, Eq)]
    enum K {
        Join(TaskId),
        Spawn(TaskId),
    }
    let mut events: Vec<(u64, K)> = Vec::new();
    for (pos, t) in &trace.main_joins {
        events.push((*pos, K::Join(*t)));
    }
    for (i, t) in trace.tasks.iter().enumerate() {
        events.push((t.t_enter, K::Spawn(TaskId(i as u32))));
    }
    events.sort_by_key(|&(pos, k)| (pos, matches!(k, K::Spawn(_))));

    let mut main = 0u64;
    let mut cursor = 0u64;
    let mut workers = vec![0u64; config.threads];
    let mut finish = vec![0u64; n];
    let mut out = Vec::with_capacity(n);
    for (pos, kind) in events {
        main += seq_compute(cursor, pos);
        cursor = pos;
        match kind {
            K::Spawn(tid) => {
                main += config.spawn_overhead;
                let duration = trace.tasks[tid.0 as usize].duration() + config.task_overhead;
                let mut ready = main;
                for &p in &preds[tid.0 as usize] {
                    ready = ready.max(finish[p.0 as usize]);
                }
                let (wi, &avail) = workers
                    .iter()
                    .enumerate()
                    .min_by_key(|&(i, &a)| (a, i))
                    .expect("threads > 0");
                let start = ready.max(avail);
                let end = start + duration;
                workers[wi] = end;
                finish[tid.0 as usize] = end;
                out.push(ScheduledTask {
                    task: tid,
                    worker: wi,
                    start,
                    end,
                });
            }
            K::Join(tid) => {
                main = main.max(finish[tid.0 as usize]);
            }
        }
    }
    out
}

/// Renders the schedule as a text timeline, one row per worker, `width`
/// columns spanning `[0, t_par]`.
pub fn render_timeline(trace: &TaskTrace, config: &SimConfig, width: usize) -> String {
    let (result, placements) = schedule(trace, config);
    let width = width.max(10);
    let scale = result.t_par.max(1) as f64 / width as f64;
    let mut rows = vec![vec![b'.'; width]; config.threads];
    for p in &placements {
        let a = (p.start as f64 / scale) as usize;
        let b = ((p.end as f64 / scale) as usize).clamp(a + 1, width);
        let glyph = b'A' + (p.task.0 % 26) as u8;
        for c in rows[p.worker][a.min(width - 1)..b].iter_mut() {
            *c = glyph;
        }
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "t_seq={} t_par={} speedup={:.2} ({} tasks on {} threads)",
        result.t_seq, result.t_par, result.speedup, result.tasks, config.threads
    );
    for (i, row) in rows.iter().enumerate() {
        let _ = writeln!(
            out,
            "w{i} |{}|",
            String::from_utf8(row.clone()).expect("ascii glyphs")
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::TaskInstance;
    use alchemist_vm::Pc;

    fn trace_of(tasks: Vec<(u64, u64)>, total: u64) -> TaskTrace {
        TaskTrace {
            tasks: tasks
                .into_iter()
                .map(|(a, b)| TaskInstance {
                    head: Pc(0),
                    t_enter: a,
                    t_exit: b,
                })
                .collect(),
            main_joins: vec![],
            task_edges: vec![],
            cross_thread_sharing: 0,
            total_steps: total,
        }
    }

    fn cfg(threads: usize) -> SimConfig {
        SimConfig {
            threads,
            spawn_overhead: 0,
            task_overhead: 0,
        }
    }

    #[test]
    fn placements_cover_every_task_once() {
        let trace = trace_of(vec![(0, 100), (100, 300), (300, 350)], 400);
        let (result, placements) = schedule(&trace, &cfg(2));
        assert_eq!(placements.len(), 3);
        let mut ids: Vec<u32> = placements.iter().map(|p| p.task.0).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 2]);
        for p in &placements {
            assert!(p.end <= result.t_par);
            assert!(p.worker < 2);
        }
    }

    #[test]
    fn placements_agree_with_sim_result() {
        let trace = trace_of(vec![(0, 500), (500, 900), (900, 1800)], 2000);
        let (result, placements) = schedule(&trace, &cfg(2));
        let max_end = placements.iter().map(|p| p.end).max().unwrap();
        assert!(
            result.t_par >= max_end,
            "makespan {} below last task end {max_end}",
            result.t_par
        );
        // Per-worker busy time matches the placements.
        for w in 0..2 {
            let busy: u64 = placements
                .iter()
                .filter(|p| p.worker == w)
                .map(|p| p.end - p.start)
                .sum();
            assert_eq!(busy, result.thread_busy[w]);
        }
    }

    #[test]
    fn no_worker_runs_two_tasks_at_once() {
        let tasks: Vec<(u64, u64)> = (0..12).map(|i| (i * 50, i * 50 + 50)).collect();
        let (_, placements) = schedule(&trace_of(tasks, 600), &cfg(3));
        for a in &placements {
            for b in &placements {
                if a.task != b.task && a.worker == b.worker {
                    assert!(
                        a.end <= b.start || b.end <= a.start,
                        "overlap on worker {}: {a:?} vs {b:?}",
                        a.worker
                    );
                }
            }
        }
    }

    #[test]
    fn timeline_renders_rows_per_worker() {
        let trace = trace_of(vec![(0, 400), (400, 800)], 800);
        let text = render_timeline(&trace, &cfg(2), 40);
        assert!(text.contains("w0 |"));
        assert!(text.contains("w1 |"));
        assert!(text.contains("speedup="));
        assert!(text.contains('A') && text.contains('B'));
    }
}
