//! # alchemist-parsim
//!
//! Profile-guided parallel-execution simulation for the Alchemist
//! reproduction (CGO 2009).
//!
//! The paper's Table V reports wall-clock speedups of hand-parallelized
//! pthread programs on a 4-core machine. This crate reproduces that
//! experiment without real threads: it re-runs the sequential program,
//! turns each instance of a *marked* construct into a task (the paper's
//! futures model), converts the dynamically detected dependences into
//! schedule constraints, and computes the makespan of a deterministic
//! list schedule on `K` workers.
//!
//! The privatization/reduction transformations the paper applies by hand
//! (thread-local `BZFILE` structures, per-thread `ivec`, local `errors`
//! flags, hoisted file closes) are modeled by
//! [`ExtractConfig::privatized`]: conflicts on those variables are assumed
//! transformed away.
//!
//! ## Example
//!
//! ```
//! use alchemist_parsim::{extract_tasks, simulate, ExtractConfig, SimConfig};
//! use alchemist_vm::{compile_source, ExecConfig};
//!
//! let m = compile_source(
//!     "int out[8];
//!      void work(int i) {
//!          int j; int acc = 0;
//!          for (j = 0; j < 500; j++) acc += j * i;
//!          out[i] = acc;
//!      }
//!      int main() { int i; for (i = 0; i < 8; i++) work(i); return out[7]; }",
//! )?;
//! let head = m.func_by_name("work").unwrap().1.entry;
//! let trace = extract_tasks(
//!     &m,
//!     &ExecConfig::default(),
//!     ExtractConfig::default().mark(head),
//! ).unwrap();
//! let result = simulate(&trace, &SimConfig::with_threads(4));
//! assert!(result.speedup > 2.0, "independent workers scale");
//! # Ok::<(), alchemist_lang::LangError>(())
//! ```

#![warn(missing_docs)]

pub mod advisor;
pub mod extract;
pub mod render;
pub mod sim;
pub mod task;

pub use advisor::{suggest_candidates, Candidate};
pub use extract::{
    construct_at_line, extract_tasks, extract_tasks_from_batches_par,
    extract_tasks_from_batches_par_with, extract_tasks_from_events, extract_tasks_from_events_par,
    ExtractConfig, TaskExtractor,
};
pub use render::{render_timeline, schedule, ScheduledTask};
pub use sim::{simulate, SimConfig, SimResult};
pub use task::{TaskId, TaskInstance, TaskTrace};
