//! Task traces extracted from a profiled sequential run.

use alchemist_vm::Pc;

/// Index of a task instance within a [`TaskTrace`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TaskId(pub u32);

/// One dynamic instance of a construct marked for asynchronous execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaskInstance {
    /// The static construct the task came from.
    pub head: Pc,
    /// Sequential timestamp at which the instance started (= its spawn
    /// point in the parallel version).
    pub t_enter: u64,
    /// Sequential timestamp at which the instance completed.
    pub t_exit: u64,
}

impl TaskInstance {
    /// The task's work, in instructions.
    pub fn duration(&self) -> u64 {
        self.t_exit.saturating_sub(self.t_enter)
    }
}

/// The schedule-relevant structure of one sequential run: tasks, the
/// dependence-induced joins the main thread must perform, and the
/// precedence edges between tasks.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TaskTrace {
    /// Task instances, ordered by `t_enter` (their intervals are disjoint).
    pub tasks: Vec<TaskInstance>,
    /// `(seq_pos, task)`: before executing the instruction at sequential
    /// position `seq_pos`, the main thread must wait for `task` to finish.
    pub main_joins: Vec<(u64, TaskId)>,
    /// `(from, to)`: task `to` consumes a value produced by task `from` and
    /// cannot start before `from` finishes.
    pub task_edges: Vec<(TaskId, TaskId)>,
    /// Dependences whose endpoints ran on different *program* threads
    /// (`spawn`ed mini-C threads). Already parallel in the source, so they
    /// generate no schedule constraints — but each one is an inter-thread
    /// communication the simulated speedup does not have to pay for, and
    /// worth surfacing (e.g. false sharing shows up here).
    pub cross_thread_sharing: u64,
    /// Total sequential instructions of the run.
    pub total_steps: u64,
}

impl TaskTrace {
    /// Total instructions spent inside tasks.
    pub fn task_work(&self) -> u64 {
        self.tasks.iter().map(|t| t.duration()).sum()
    }

    /// Instructions executed by the main thread outside all tasks.
    pub fn serial_work(&self) -> u64 {
        self.total_steps.saturating_sub(self.task_work())
    }

    /// Fraction of the run spent outside tasks (the serial fraction that
    /// bounds the achievable speedup, per Amdahl).
    pub fn serial_fraction(&self) -> f64 {
        if self.total_steps == 0 {
            return 1.0;
        }
        self.serial_work() as f64 / self.total_steps as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn durations_and_fractions() {
        let trace = TaskTrace {
            tasks: vec![
                TaskInstance {
                    head: Pc(1),
                    t_enter: 10,
                    t_exit: 40,
                },
                TaskInstance {
                    head: Pc(1),
                    t_enter: 50,
                    t_exit: 90,
                },
            ],
            main_joins: vec![],
            task_edges: vec![],
            cross_thread_sharing: 0,
            total_steps: 100,
        };
        assert_eq!(trace.tasks[0].duration(), 30);
        assert_eq!(trace.task_work(), 70);
        assert_eq!(trace.serial_work(), 30);
        assert!((trace.serial_fraction() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn empty_trace_is_fully_serial() {
        let trace = TaskTrace::default();
        assert_eq!(trace.serial_fraction(), 1.0);
    }
}
