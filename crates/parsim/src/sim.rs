//! Deterministic parallel-schedule simulation.
//!
//! Replays a [`TaskTrace`] under the futures execution model of the paper:
//! the main thread executes the sequential program; each marked construct
//! instance is spawned onto a pool of `threads` workers at the point where
//! the sequential run entered it; the main thread blocks at every
//! dependence-induced join; a task waits for its producer tasks. The
//! makespan of this schedule against the sequential instruction count gives
//! the speedup reported in Table V.
//!
//! The model is conservative (task-atomic joins: a consumer waits for the
//! whole producer, exactly like joining a future) and deterministic, so the
//! reproduced numbers are stable across runs.

use crate::task::{TaskId, TaskTrace};

/// Simulation parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimConfig {
    /// Worker threads (the paper's machines use 4).
    pub threads: usize,
    /// Main-thread cost of spawning one task, in instructions.
    pub spawn_overhead: u64,
    /// Fixed startup cost added to each task, in instructions.
    pub task_overhead: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            threads: 4,
            spawn_overhead: 64,
            task_overhead: 64,
        }
    }
}

impl SimConfig {
    /// A config with `threads` workers and default overheads.
    pub fn with_threads(threads: usize) -> Self {
        SimConfig {
            threads,
            ..SimConfig::default()
        }
    }
}

/// The outcome of a simulated parallel execution.
#[derive(Debug, Clone, PartialEq)]
pub struct SimResult {
    /// Sequential time (instructions).
    pub t_seq: u64,
    /// Simulated parallel makespan (instructions).
    pub t_par: u64,
    /// `t_seq / t_par`.
    pub speedup: f64,
    /// Number of tasks spawned.
    pub tasks: usize,
    /// Joins the main thread performed.
    pub main_joins: usize,
    /// Precedence edges between tasks.
    pub task_edges: usize,
    /// Busy time per worker thread.
    pub thread_busy: Vec<u64>,
    /// Instructions the main thread executed outside tasks.
    pub main_compute: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EventKind {
    Join(TaskId),
    Spawn(TaskId),
}

/// Simulates `trace` on `config.threads` workers.
///
/// # Panics
///
/// Panics if `config.threads == 0`.
pub fn simulate(trace: &TaskTrace, config: &SimConfig) -> SimResult {
    assert!(config.threads > 0, "at least one worker thread required");
    let n = trace.tasks.len();

    // Prefix sums of task time: task_time_before(x) = instructions spent
    // inside tasks in sequential interval [0, x).
    let enters: Vec<u64> = trace.tasks.iter().map(|t| t.t_enter).collect();
    let mut prefix: Vec<u64> = Vec::with_capacity(n + 1);
    prefix.push(0);
    for t in &trace.tasks {
        let last = *prefix.last().expect("non-empty prefix");
        prefix.push(last + t.duration());
    }
    let task_time_before = |x: u64| -> u64 {
        // Tasks fully before x plus the partial overlap of the task
        // containing x (if any).
        let i = enters.partition_point(|&e| e < x);
        let mut total = prefix[i];
        if i > 0 {
            let t = &trace.tasks[i - 1];
            if x < t.t_exit {
                // x lies inside task i-1: count only up to x.
                total = prefix[i - 1] + (x - t.t_enter);
            }
        }
        total
    };
    let seq_compute = |a: u64, b: u64| -> u64 {
        debug_assert!(a <= b);
        (b - a) - (task_time_before(b) - task_time_before(a))
    };

    // Predecessor lists.
    let mut preds: Vec<Vec<TaskId>> = vec![Vec::new(); n];
    for &(from, to) in &trace.task_edges {
        preds[to.0 as usize].push(from);
    }

    // Event list ordered by sequential position; joins before spawns at the
    // same position.
    let mut events: Vec<(u64, EventKind)> = Vec::with_capacity(n + trace.main_joins.len());
    for (pos, t) in &trace.main_joins {
        events.push((*pos, EventKind::Join(*t)));
    }
    for (i, t) in trace.tasks.iter().enumerate() {
        events.push((t.t_enter, EventKind::Spawn(TaskId(i as u32))));
    }
    events.sort_by_key(|&(pos, kind)| (pos, matches!(kind, EventKind::Spawn(_))));

    let mut main: u64 = 0;
    let mut cursor: u64 = 0;
    let mut main_compute: u64 = 0;
    let mut workers: Vec<u64> = vec![0; config.threads];
    let mut busy: Vec<u64> = vec![0; config.threads];
    let mut finish: Vec<u64> = vec![0; n];

    for (pos, kind) in events {
        let compute = seq_compute(cursor, pos);
        main += compute;
        main_compute += compute;
        cursor = pos;
        match kind {
            EventKind::Spawn(tid) => {
                main += config.spawn_overhead;
                let duration = trace.tasks[tid.0 as usize].duration() + config.task_overhead;
                let mut ready = main;
                for &p in &preds[tid.0 as usize] {
                    ready = ready.max(finish[p.0 as usize]);
                }
                // Earliest-available worker (ties: lowest index).
                let (wi, &avail) = workers
                    .iter()
                    .enumerate()
                    .min_by_key(|&(i, &a)| (a, i))
                    .expect("threads > 0");
                let start = ready.max(avail);
                let end = start + duration;
                workers[wi] = end;
                busy[wi] += duration;
                finish[tid.0 as usize] = end;
            }
            EventKind::Join(tid) => {
                main = main.max(finish[tid.0 as usize]);
            }
        }
    }
    let tail = seq_compute(cursor, trace.total_steps);
    main += tail;
    main_compute += tail;
    // The program ends when the main thread has joined every worker.
    let t_par = finish.iter().fold(main, |acc, &f| acc.max(f)).max(1);
    let t_seq = trace.total_steps.max(1);

    SimResult {
        t_seq,
        t_par,
        speedup: t_seq as f64 / t_par as f64,
        tasks: n,
        main_joins: trace.main_joins.len(),
        task_edges: trace.task_edges.len(),
        thread_busy: busy,
        main_compute,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::TaskInstance;
    use alchemist_vm::Pc;

    fn trace_of(tasks: Vec<(u64, u64)>, total: u64) -> TaskTrace {
        TaskTrace {
            tasks: tasks
                .into_iter()
                .map(|(a, b)| TaskInstance {
                    head: Pc(0),
                    t_enter: a,
                    t_exit: b,
                })
                .collect(),
            main_joins: vec![],
            task_edges: vec![],
            cross_thread_sharing: 0,
            total_steps: total,
        }
    }

    fn no_overhead(threads: usize) -> SimConfig {
        SimConfig {
            threads,
            spawn_overhead: 0,
            task_overhead: 0,
        }
    }

    #[test]
    fn no_tasks_means_no_speedup() {
        let r = simulate(&trace_of(vec![], 1000), &no_overhead(4));
        assert_eq!(r.t_par, 1000);
        assert!((r.speedup - 1.0).abs() < 1e-12);
        assert_eq!(r.main_compute, 1000);
    }

    #[test]
    fn independent_equal_tasks_scale_linearly() {
        // 4 tasks x 1000 instructions, back to back, negligible serial glue.
        let tasks = vec![(0, 1000), (1000, 2000), (2000, 3000), (3000, 4000)];
        let r = simulate(&trace_of(tasks, 4000), &no_overhead(4));
        assert_eq!(r.t_seq, 4000);
        assert_eq!(r.t_par, 1000, "all four run concurrently");
        assert!((r.speedup - 4.0).abs() < 1e-12);
    }

    #[test]
    fn two_threads_halve_four_tasks() {
        let tasks = vec![(0, 1000), (1000, 2000), (2000, 3000), (3000, 4000)];
        let r = simulate(&trace_of(tasks, 4000), &no_overhead(2));
        assert_eq!(r.t_par, 2000);
        assert_eq!(r.thread_busy, vec![2000, 2000]);
    }

    #[test]
    fn serial_chain_gives_no_speedup() {
        let tasks = vec![(0, 1000), (1000, 2000), (2000, 3000)];
        let mut trace = trace_of(tasks, 3000);
        trace.task_edges = vec![
            (crate::task::TaskId(0), crate::task::TaskId(1)),
            (crate::task::TaskId(1), crate::task::TaskId(2)),
        ];
        let r = simulate(&trace, &no_overhead(4));
        assert_eq!(r.t_par, 3000, "precedence chain serializes");
    }

    #[test]
    fn main_join_blocks_the_main_thread() {
        // One task [0,1000); main then computes 10 and joins it at seq 1010.
        let mut trace = trace_of(vec![(0, 1000)], 2000);
        trace.main_joins = vec![(1010, crate::task::TaskId(0))];
        let r = simulate(&trace, &no_overhead(4));
        // main: compute 10 (gap 1000..1010), wait until task end (1000),
        // main was at 10 -> join raises it to 1000, then remaining
        // 990 instructions of serial tail: t_par = 1990.
        assert_eq!(r.t_par, 1990);
    }

    #[test]
    fn join_after_task_finishes_costs_nothing() {
        // Long serial prefix then join: the task finished long ago.
        let mut trace = trace_of(vec![(0, 100)], 5000);
        trace.main_joins = vec![(4000, crate::task::TaskId(0))];
        let r = simulate(&trace, &no_overhead(4));
        assert_eq!(r.t_par, 4900, "serial 4900 dominates; join is free");
    }

    #[test]
    fn amdahl_limit_respected() {
        // Half the run is serial glue: speedup can't exceed 2.
        let tasks = vec![(0, 500), (2000, 2500), (3000, 3500), (3600, 4100)];
        let trace = trace_of(tasks, 4000 + 2000);
        let r = simulate(&trace, &no_overhead(64));
        assert!(
            r.speedup < 2.1,
            "speedup {} exceeds Amdahl bound",
            r.speedup
        );
    }

    #[test]
    fn overheads_reduce_speedup() {
        let tasks = vec![(0, 1000), (1000, 2000), (2000, 3000), (3000, 4000)];
        let fast = simulate(&trace_of(tasks.clone(), 4000), &no_overhead(4));
        let slow = simulate(
            &trace_of(tasks, 4000),
            &SimConfig {
                threads: 4,
                spawn_overhead: 100,
                task_overhead: 100,
            },
        );
        assert!(slow.speedup < fast.speedup);
    }

    #[test]
    fn single_thread_serializes_tasks() {
        let tasks = vec![(0, 1000), (1000, 2000)];
        let r = simulate(&trace_of(tasks, 2000), &no_overhead(1));
        assert_eq!(r.t_par, 2000);
        assert!((r.speedup - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_threads_panics() {
        simulate(&trace_of(vec![], 10), &no_overhead(0));
    }

    #[test]
    fn thread_busy_accounts_all_task_work() {
        let tasks = vec![(0, 700), (700, 1500), (1500, 1600)];
        let trace = trace_of(tasks, 1600);
        let r = simulate(&trace, &no_overhead(3));
        let total_busy: u64 = r.thread_busy.iter().sum();
        assert_eq!(total_busy, trace.task_work());
    }
}
