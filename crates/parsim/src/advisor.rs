//! Profile-guided parallelization advice.
//!
//! Automates the workflow the paper describes in §IV-B2: "look for large
//! constructs with few violating static RAW dependences and try to
//! parallelize those constructs. Use the WAW and WAR profiles as hints for
//! where to insert variable privatization and thread synchronization."

use alchemist_core::{ConstructKind, DepKind, ProfileReport};
use alchemist_vm::{Module, Pc};
use std::collections::BTreeSet;

/// One suggested parallelization target.
#[derive(Debug, Clone, PartialEq)]
pub struct Candidate {
    /// Head of the construct to mark.
    pub head: Pc,
    /// Human-readable label.
    pub label: String,
    /// Construct kind.
    pub kind: ConstructKind,
    /// Share of the run spent in the construct.
    pub norm_size: f64,
    /// Violating static RAW edges (0 means directly spawnable).
    pub violating_raw: usize,
    /// Global variables involved in violating WAR/WAW edges — the
    /// privatization worklist.
    pub privatize: Vec<String>,
}

/// Ranks parallelization candidates from a profile report.
///
/// A construct qualifies when it is a loop or method, it accounts for at
/// least `min_share` of the run, and it has at most `max_violating_raw`
/// violating RAW edges. Candidates are returned largest first.
pub fn suggest_candidates(
    report: &ProfileReport,
    module: &Module,
    min_share: f64,
    max_violating_raw: usize,
) -> Vec<Candidate> {
    report
        .ranked()
        .iter()
        .filter(|c| {
            matches!(c.kind, ConstructKind::Loop | ConstructKind::Method)
                && c.norm_size >= min_share
                && c.violating_raw <= max_violating_raw
                // `main` itself is never a useful spawn target.
                && c.label != "Method main"
        })
        .map(|c| {
            let mut privatize = BTreeSet::new();
            for e in &c.edges {
                if matches!(e.kind, DepKind::War | DepKind::Waw) && e.violating {
                    if let Some(name) = var_name_at(module, e) {
                        privatize.insert(name);
                    }
                }
            }
            Candidate {
                head: c.head,
                label: c.label.clone(),
                kind: c.kind,
                norm_size: c.norm_size,
                violating_raw: c.violating_raw,
                privatize: privatize.into_iter().collect(),
            }
        })
        .collect()
}

fn var_name_at(module: &Module, e: &alchemist_core::EdgeReport) -> Option<String> {
    module
        .globals
        .iter()
        .find(|g| g.offset <= e.var_addr && e.var_addr < g.offset + g.words)
        .map(|g| g.name.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use alchemist_core::{profile_module, ProfileConfig, ProfileReport};
    use alchemist_vm::{compile_source, ExecConfig};

    fn report(src: &str) -> (ProfileReport, Module) {
        let m = compile_source(src).unwrap();
        let (profile, ..) =
            profile_module(&m, &ExecConfig::default(), ProfileConfig::default()).unwrap();
        let r = ProfileReport::new(&profile, &m);
        (r, m)
    }

    #[test]
    fn independent_worker_is_suggested() {
        let (r, m) = report(
            "int out[16];
             void work(int i) {
                 int j; int acc = 0;
                 for (j = 0; j < 100; j++) acc += j * i;
                 out[i] = acc;
             }
             int main() { int i; for (i = 0; i < 16; i++) work(i); return out[3]; }",
        );
        let cands = suggest_candidates(&r, &m, 0.05, 0);
        assert!(
            cands.iter().any(|c| c.label == "Method work"),
            "work should be suggested: {cands:?}"
        );
        assert!(!cands.iter().any(|c| c.label == "Method main"));
    }

    #[test]
    fn privatization_hints_name_the_conflicting_global() {
        // `counter` follows the paper's `last_flags` pattern: written on
        // entry and reset on exit, so the reset of call i and the write of
        // call i+1 form a short-distance (violating) WAW.
        let (r, m) = report(
            "int counter;
             int sink;
             void work(int i) {
                 int j;
                 counter = counter + 1;
                 for (j = 0; j < 60; j++) sink = sink ^ (i + j);
                 counter = 0;
             }
             int main() { int i; for (i = 0; i < 8; i++) work(i); return counter; }",
        );
        // Allow RAW violations so `work` qualifies despite the counter chain.
        let cands = suggest_candidates(&r, &m, 0.05, 100);
        let work = cands.iter().find(|c| c.label == "Method work").unwrap();
        assert!(
            work.privatize.iter().any(|v| v == "counter"),
            "counter must appear in the privatization worklist: {:?}",
            work.privatize
        );
    }

    #[test]
    fn share_threshold_filters_small_constructs() {
        let (r, m) = report(
            "int g;
             void tiny() { g++; }
             int main() {
                 int i; int acc = 0;
                 tiny();
                 for (i = 0; i < 5000; i++) acc += i;
                 return g + acc;
             }",
        );
        let cands = suggest_candidates(&r, &m, 0.5, 100);
        assert!(
            !cands.iter().any(|c| c.label == "Method tiny"),
            "tiny is far below the share threshold"
        );
    }
}
