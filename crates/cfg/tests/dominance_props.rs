//! Property tests validating the CHK dominator implementation against a
//! brute-force reference (iterative dataflow over full dominator sets),
//! plus structural properties of dominance and natural loops.

use alchemist_cfg::{dominators, natural_loops, post_dominators, DiGraph};
use proptest::prelude::*;

/// Brute force: `dom(n)` = {n} ∪ ⋂ dom(preds) to a fixed point, starting
/// from "all nodes" for everything but the root.
fn reference_dominators(g: &DiGraph, root: u32) -> Vec<Option<Vec<bool>>> {
    let n = g.node_count();
    let reachable = g.reachable(root);
    let mut dom: Vec<Vec<bool>> = (0..n)
        .map(|i| {
            if i as u32 == root {
                let mut v = vec![false; n];
                v[i] = true;
                v
            } else {
                vec![true; n]
            }
        })
        .collect();
    let mut changed = true;
    while changed {
        changed = false;
        for u in 0..n {
            if u as u32 == root || !reachable[u] {
                continue;
            }
            let mut new: Option<Vec<bool>> = None;
            for &p in g.preds(u as u32) {
                if !reachable[p as usize] {
                    continue;
                }
                new = Some(match new {
                    None => dom[p as usize].clone(),
                    Some(acc) => acc
                        .iter()
                        .zip(&dom[p as usize])
                        .map(|(a, b)| *a && *b)
                        .collect(),
                });
            }
            let mut new = new.unwrap_or_else(|| vec![false; n]);
            new[u] = true;
            if new != dom[u] {
                dom[u] = new;
                changed = true;
            }
        }
    }
    (0..n)
        .map(|i| reachable[i].then(|| dom[i].clone()))
        .collect()
}

/// A random graph with `n` nodes rooted at 0: a spanning arborescence (so
/// everything is reachable) plus random extra edges.
fn arb_graph(max_nodes: usize, max_extra: usize) -> impl Strategy<Value = DiGraph> {
    (
        2..max_nodes,
        proptest::collection::vec((0u32..100, 0u32..100), 0..max_extra),
    )
        .prop_map(move |(n, extras)| {
            let mut g = DiGraph::new(n);
            for v in 1..n as u32 {
                // Parent chosen deterministically below v: keeps everything
                // reachable from 0.
                let parent = (v * 7 + 3) % v;
                g.add_edge(parent, v);
            }
            for (a, b) in extras {
                let u = a % n as u32;
                let v = b % n as u32;
                g.add_edge(u, v);
            }
            g
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn chk_matches_bruteforce(g in arb_graph(24, 40)) {
        let tree = dominators(&g, 0);
        let reference = reference_dominators(&g, 0);
        for b in 0..g.node_count() as u32 {
            match &reference[b as usize] {
                None => prop_assert!(!tree.is_reachable(b)),
                Some(set) => {
                    for a in 0..g.node_count() as u32 {
                        prop_assert_eq!(
                            tree.dominates(a, b),
                            set[a as usize],
                            "dominates({}, {}) mismatch", a, b
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn idom_is_a_strict_dominator(g in arb_graph(24, 40)) {
        let tree = dominators(&g, 0);
        for n in 1..g.node_count() as u32 {
            if let Some(d) = tree.idom(n) {
                prop_assert_ne!(d, n);
                prop_assert!(tree.dominates(d, n));
            }
        }
    }

    #[test]
    fn dominance_is_antisymmetric_and_transitive(g in arb_graph(16, 24)) {
        let tree = dominators(&g, 0);
        let n = g.node_count() as u32;
        for a in 0..n {
            for b in 0..n {
                if a != b && tree.dominates(a, b) {
                    prop_assert!(!tree.dominates(b, a), "{} <-> {}", a, b);
                }
                for c in 0..n {
                    if tree.dominates(a, b) && tree.dominates(b, c) {
                        prop_assert!(tree.dominates(a, c));
                    }
                }
            }
        }
    }

    #[test]
    fn root_dominates_every_reachable_node(g in arb_graph(24, 40)) {
        let tree = dominators(&g, 0);
        for n in 0..g.node_count() as u32 {
            if tree.is_reachable(n) {
                prop_assert!(tree.dominates(0, n));
            }
        }
    }

    #[test]
    fn postdominators_are_dominators_of_reverse(g in arb_graph(16, 24)) {
        // Route every node to a fresh exit so post-dominance is total.
        let n = g.node_count();
        let mut g2 = DiGraph::new(n + 1);
        for u in 0..n as u32 {
            for &v in g.succs(u) {
                g2.add_edge(u, v);
            }
            g2.add_edge(u, n as u32);
        }
        let pdom = post_dominators(&g2, n as u32);
        let dom_rev = dominators(&g2.reversed(), n as u32);
        for a in 0..=n as u32 {
            for b in 0..=n as u32 {
                prop_assert_eq!(pdom.dominates(a, b), dom_rev.dominates(a, b));
            }
        }
    }

    #[test]
    fn loop_headers_dominate_their_bodies(g in arb_graph(24, 40)) {
        let dom = dominators(&g, 0);
        let loops = natural_loops(&g, &dom);
        for l in &loops.loops {
            for node in 0..g.node_count() as u32 {
                if l.contains(node) {
                    prop_assert!(
                        dom.dominates(l.header, node),
                        "header {} does not dominate member {}",
                        l.header,
                        node
                    );
                }
            }
            for &latch in &l.latches {
                prop_assert!(l.contains(latch));
            }
        }
    }

    #[test]
    fn loop_membership_is_consistent(g in arb_graph(24, 40)) {
        let dom = dominators(&g, 0);
        let loops = natural_loops(&g, &dom);
        for node in 0..g.node_count() as u32 {
            let in_some = loops.loops.iter().any(|l| l.contains(node));
            prop_assert_eq!(loops.in_any_loop(node), in_some);
        }
    }
}
