//! # alchemist-cfg
//!
//! Control-flow-graph analyses for the Alchemist profiling infrastructure:
//! directed graphs, dominators, post-dominators and natural loops.
//!
//! The CGO 2009 Alchemist paper builds its execution index from two static
//! facts about each function's control-flow graph:
//!
//! 1. the **immediate post-dominator** of every predicate (a construct is
//!    "started by a predicate and terminated by the immediate post-dominator
//!    of the predicate"), and
//! 2. whether a predicate is a **loop predicate** (instrumentation rule 4
//!    treats each loop iteration as a construct instance).
//!
//! This crate supplies those facts for arbitrary graphs. Dominators are
//! computed with the Cooper–Harvey–Kennedy iterative algorithm; post-
//! dominators are dominators of the edge-reversed graph rooted at the exit
//! node. Nodes that cannot reach the exit (e.g. bodies of `while(1)` loops
//! with no `break`) have no post-dominator, which the runtime treats as
//! "popped only at function exit".
//!
//! ## Example
//!
//! ```
//! use alchemist_cfg::{DiGraph, post_dominators};
//!
//! // 0 -> 1 -> 3, 0 -> 2 -> 3   (a diamond)
//! let mut g = DiGraph::new(4);
//! g.add_edge(0, 1);
//! g.add_edge(0, 2);
//! g.add_edge(1, 3);
//! g.add_edge(2, 3);
//! let pdom = post_dominators(&g, 3);
//! assert_eq!(pdom.idom(0), Some(3)); // the join post-dominates the fork
//! ```

#![warn(missing_docs)]

pub mod dom;
pub mod graph;
pub mod loops;

pub use dom::{dominators, post_dominators, DomTree};
pub use graph::DiGraph;
pub use loops::{natural_loops, Loop, LoopForest};
