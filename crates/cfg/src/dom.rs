//! Dominator and post-dominator trees.
//!
//! Implements the iterative algorithm of Cooper, Harvey and Kennedy
//! ("A Simple, Fast Dominance Algorithm"). Post-dominators are computed as
//! dominators of the reversed graph rooted at the exit node.

use crate::graph::DiGraph;

/// A (post-)dominator tree over a graph's nodes.
///
/// Nodes unreachable from the root have no entry ([`DomTree::idom`] returns
/// `None` and [`DomTree::dominates`] returns `false` for them).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DomTree {
    root: u32,
    /// Immediate dominator per node; `idom[root] == root`; `None` when
    /// unreachable.
    idom: Vec<Option<u32>>,
    /// Depth in the dominator tree (root = 0); `usize::MAX` when unreachable.
    depth: Vec<usize>,
}

impl DomTree {
    /// The root of the tree (entry node for dominators, exit node for
    /// post-dominators).
    pub fn root(&self) -> u32 {
        self.root
    }

    /// The immediate dominator of `n`, or `None` if `n` is the root or
    /// unreachable.
    ///
    /// # Examples
    ///
    /// ```
    /// use alchemist_cfg::{DiGraph, dominators};
    /// let mut g = DiGraph::new(3);
    /// g.add_edge(0, 1);
    /// g.add_edge(1, 2);
    /// let dom = dominators(&g, 0);
    /// assert_eq!(dom.idom(2), Some(1));
    /// assert_eq!(dom.idom(0), None);
    /// ```
    pub fn idom(&self, n: u32) -> Option<u32> {
        let i = *self.idom.get(n as usize)?;
        match i {
            Some(d) if d != n => Some(d),
            _ => None,
        }
    }

    /// Whether `n` is reachable from the root (and so has a defined
    /// dominance relation).
    pub fn is_reachable(&self, n: u32) -> bool {
        self.idom.get(n as usize).is_some_and(|d| d.is_some())
    }

    /// Whether `a` dominates `b` (reflexively).
    pub fn dominates(&self, a: u32, b: u32) -> bool {
        if !self.is_reachable(a) || !self.is_reachable(b) {
            return false;
        }
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.idom(cur) {
                Some(d) => cur = d,
                None => return false,
            }
        }
    }

    /// Depth of `n` below the root, or `None` if unreachable.
    pub fn depth(&self, n: u32) -> Option<usize> {
        let d = *self.depth.get(n as usize)?;
        (d != usize::MAX).then_some(d)
    }
}

/// Computes the dominator tree of `g` rooted at `root`.
///
/// # Panics
///
/// Panics if `root` is out of range.
pub fn dominators(g: &DiGraph, root: u32) -> DomTree {
    assert!((root as usize) < g.node_count(), "root {root} out of range");
    let rpo = g.reverse_postorder(root);
    let n = g.node_count();
    // Map node -> position in reverse postorder (lower = earlier).
    let mut rpo_index = vec![usize::MAX; n];
    for (i, &node) in rpo.iter().enumerate() {
        rpo_index[node as usize] = i;
    }

    let mut idom: Vec<Option<u32>> = vec![None; n];
    idom[root as usize] = Some(root);

    let intersect = |idom: &[Option<u32>], mut a: u32, mut b: u32| -> u32 {
        while a != b {
            while rpo_index[a as usize] > rpo_index[b as usize] {
                a = idom[a as usize].expect("processed node has idom");
            }
            while rpo_index[b as usize] > rpo_index[a as usize] {
                b = idom[b as usize].expect("processed node has idom");
            }
        }
        a
    };

    let mut changed = true;
    while changed {
        changed = false;
        for &node in rpo.iter().skip(1) {
            // First processed predecessor.
            let mut new_idom: Option<u32> = None;
            for &p in g.preds(node) {
                if idom[p as usize].is_none() {
                    continue;
                }
                new_idom = Some(match new_idom {
                    None => p,
                    Some(cur) => intersect(&idom, cur, p),
                });
            }
            if let Some(ni) = new_idom {
                if idom[node as usize] != Some(ni) {
                    idom[node as usize] = Some(ni);
                    changed = true;
                }
            }
        }
    }

    // Depths by walking up; reachable nodes only.
    let mut depth = vec![usize::MAX; n];
    depth[root as usize] = 0;
    for &node in &rpo {
        if node == root {
            continue;
        }
        // rpo order guarantees the idom is already processed.
        if let Some(d) = idom[node as usize] {
            depth[node as usize] = depth[d as usize].saturating_add(1);
        }
    }

    DomTree { root, idom, depth }
}

/// Computes the post-dominator tree of `g` with exit node `exit`.
///
/// Nodes that cannot reach `exit` (e.g. infinite loops) are unreachable in
/// the tree.
///
/// # Panics
///
/// Panics if `exit` is out of range.
pub fn post_dominators(g: &DiGraph, exit: u32) -> DomTree {
    dominators(&g.reversed(), exit)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The classic CHK paper example graph.
    fn chk_graph() -> DiGraph {
        // 6 nodes: 0=entry(6 in paper) ... reusing small diamond-with-loop.
        let mut g = DiGraph::new(6);
        g.add_edge(0, 1);
        g.add_edge(0, 2);
        g.add_edge(1, 3);
        g.add_edge(2, 4);
        g.add_edge(3, 5);
        g.add_edge(4, 5);
        g.add_edge(4, 2); // loop back
        g
    }

    #[test]
    fn straight_line_dominators() {
        let mut g = DiGraph::new(3);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        let d = dominators(&g, 0);
        assert_eq!(d.idom(1), Some(0));
        assert_eq!(d.idom(2), Some(1));
        assert!(d.dominates(0, 2));
        assert!(!d.dominates(2, 0));
        assert_eq!(d.depth(2), Some(2));
    }

    #[test]
    fn diamond_join_dominated_by_fork() {
        let mut g = DiGraph::new(4);
        g.add_edge(0, 1);
        g.add_edge(0, 2);
        g.add_edge(1, 3);
        g.add_edge(2, 3);
        let d = dominators(&g, 0);
        assert_eq!(d.idom(3), Some(0), "join's idom skips both branch arms");
        assert!(d.dominates(0, 3));
        assert!(!d.dominates(1, 3));
    }

    #[test]
    fn loop_does_not_break_dominance() {
        let d = dominators(&chk_graph(), 0);
        assert_eq!(d.idom(2), Some(0));
        assert_eq!(d.idom(4), Some(2));
        assert_eq!(d.idom(5), Some(0));
    }

    #[test]
    fn unreachable_nodes_have_no_idom() {
        let mut g = DiGraph::new(3);
        g.add_edge(0, 1);
        let d = dominators(&g, 0);
        assert_eq!(d.idom(2), None);
        assert!(!d.is_reachable(2));
        assert!(!d.dominates(0, 2));
        assert_eq!(d.depth(2), None);
    }

    #[test]
    fn post_dominators_of_diamond() {
        let mut g = DiGraph::new(4);
        g.add_edge(0, 1);
        g.add_edge(0, 2);
        g.add_edge(1, 3);
        g.add_edge(2, 3);
        let pd = post_dominators(&g, 3);
        assert_eq!(
            pd.idom(0),
            Some(3),
            "fork's immediate post-dominator is join"
        );
        assert_eq!(pd.idom(1), Some(3));
        assert!(pd.dominates(3, 0));
    }

    #[test]
    fn post_dominators_while_loop_shape() {
        // H(cond) -> B(body) -> H ; H -> X(exit)
        let mut g = DiGraph::new(3);
        let (h, b, x) = (0, 1, 2);
        g.add_edge(h, b);
        g.add_edge(h, x);
        g.add_edge(b, h);
        let pd = post_dominators(&g, x);
        assert_eq!(pd.idom(h), Some(x), "loop header post-dominated by exit");
        assert_eq!(pd.idom(b), Some(h), "body post-dominated by header");
    }

    #[test]
    fn post_dominators_while_with_compound_condition() {
        // The `while (a && b)` shape from the design notes:
        // H -> M, H -> X, M -> B, M -> X, B -> H.
        let mut g = DiGraph::new(4);
        let (h, m, b, x) = (0, 1, 2, 3);
        g.add_edge(h, m);
        g.add_edge(h, x);
        g.add_edge(m, b);
        g.add_edge(m, x);
        g.add_edge(b, h);
        let pd = post_dominators(&g, x);
        assert_eq!(pd.idom(h), Some(x));
        assert_eq!(pd.idom(m), Some(x));
        assert_eq!(pd.idom(b), Some(h));
    }

    #[test]
    fn infinite_loop_has_no_post_dominator() {
        // 0 -> 1 <-> 2 (1,2 never reach exit 3); 0 -> 3.
        let mut g = DiGraph::new(4);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 1);
        g.add_edge(0, 3);
        let pd = post_dominators(&g, 3);
        assert_eq!(pd.idom(1), None);
        assert_eq!(pd.idom(2), None);
        assert!(pd.is_reachable(0));
    }

    #[test]
    fn self_dominance_is_reflexive() {
        let g = chk_graph();
        let d = dominators(&g, 0);
        for n in 0..6 {
            assert!(d.dominates(n, n), "node {n} must dominate itself");
        }
    }
}
