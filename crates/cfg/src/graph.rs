//! A compact directed graph over dense `u32` node ids.

/// A directed graph with nodes `0..n` and adjacency stored both ways.
///
/// Nodes are dense indices; edges may be added in any order. Parallel edges
/// are deduplicated (control-flow graphs never need multiplicity).
///
/// # Examples
///
/// ```
/// use alchemist_cfg::DiGraph;
/// let mut g = DiGraph::new(3);
/// g.add_edge(0, 1);
/// g.add_edge(1, 2);
/// assert_eq!(g.succs(1), &[2]);
/// assert_eq!(g.preds(1), &[0]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DiGraph {
    succs: Vec<Vec<u32>>,
    preds: Vec<Vec<u32>>,
}

impl DiGraph {
    /// Creates a graph with `n` nodes and no edges.
    pub fn new(n: usize) -> Self {
        DiGraph {
            succs: vec![Vec::new(); n],
            preds: vec![Vec::new(); n],
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.succs.len()
    }

    /// Adds the edge `u -> v`. Duplicate edges are ignored.
    ///
    /// # Panics
    ///
    /// Panics if `u` or `v` is out of range.
    pub fn add_edge(&mut self, u: u32, v: u32) {
        assert!((u as usize) < self.node_count(), "source {u} out of range");
        assert!((v as usize) < self.node_count(), "target {v} out of range");
        if !self.succs[u as usize].contains(&v) {
            self.succs[u as usize].push(v);
            self.preds[v as usize].push(u);
        }
    }

    /// Successors of `u`, in insertion order.
    pub fn succs(&self, u: u32) -> &[u32] {
        &self.succs[u as usize]
    }

    /// Predecessors of `u`, in insertion order.
    pub fn preds(&self, u: u32) -> &[u32] {
        &self.preds[u as usize]
    }

    /// Returns the edge-reversed graph.
    pub fn reversed(&self) -> DiGraph {
        DiGraph {
            succs: self.preds.clone(),
            preds: self.succs.clone(),
        }
    }

    /// Nodes in reverse postorder of a depth-first search from `root`.
    /// Unreachable nodes are absent.
    pub fn reverse_postorder(&self, root: u32) -> Vec<u32> {
        let n = self.node_count();
        let mut visited = vec![false; n];
        let mut postorder = Vec::with_capacity(n);
        // Iterative DFS that records a node after all its children.
        let mut stack: Vec<(u32, usize)> = Vec::new();
        if (root as usize) < n {
            visited[root as usize] = true;
            stack.push((root, 0));
        }
        while let Some(&mut (node, ref mut next)) = stack.last_mut() {
            let succs = self.succs(node);
            if *next < succs.len() {
                let child = succs[*next];
                *next += 1;
                if !visited[child as usize] {
                    visited[child as usize] = true;
                    stack.push((child, 0));
                }
            } else {
                postorder.push(node);
                stack.pop();
            }
        }
        postorder.reverse();
        postorder
    }

    /// All nodes reachable from `root` (including `root`).
    pub fn reachable(&self, root: u32) -> Vec<bool> {
        let mut seen = vec![false; self.node_count()];
        let mut work = vec![root];
        if (root as usize) < self.node_count() {
            seen[root as usize] = true;
        }
        while let Some(u) = work.pop() {
            for &v in self.succs(u) {
                if !seen[v as usize] {
                    seen[v as usize] = true;
                    work.push(v);
                }
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> DiGraph {
        let mut g = DiGraph::new(4);
        g.add_edge(0, 1);
        g.add_edge(0, 2);
        g.add_edge(1, 3);
        g.add_edge(2, 3);
        g
    }

    #[test]
    fn adjacency_is_recorded_both_ways() {
        let g = diamond();
        assert_eq!(g.succs(0), &[1, 2]);
        assert_eq!(g.preds(3), &[1, 2]);
        assert_eq!(g.node_count(), 4);
    }

    #[test]
    fn duplicate_edges_are_ignored() {
        let mut g = DiGraph::new(2);
        g.add_edge(0, 1);
        g.add_edge(0, 1);
        assert_eq!(g.succs(0), &[1]);
        assert_eq!(g.preds(1), &[0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        let mut g = DiGraph::new(2);
        g.add_edge(0, 5);
    }

    #[test]
    fn reversed_swaps_direction() {
        let g = diamond().reversed();
        assert_eq!(g.succs(3), &[1, 2]);
        assert_eq!(g.preds(0), &[1, 2]);
    }

    #[test]
    fn reverse_postorder_starts_at_root_ends_at_sinks() {
        let g = diamond();
        let order = g.reverse_postorder(0);
        assert_eq!(order.len(), 4);
        assert_eq!(order[0], 0);
        assert_eq!(*order.last().unwrap(), 3);
        // 1 and 2 appear before 3.
        let pos = |x: u32| order.iter().position(|&n| n == x).unwrap();
        assert!(pos(1) < pos(3));
        assert!(pos(2) < pos(3));
    }

    #[test]
    fn reverse_postorder_skips_unreachable() {
        let mut g = DiGraph::new(3);
        g.add_edge(0, 1);
        // node 2 is unreachable
        let order = g.reverse_postorder(0);
        assert_eq!(order, vec![0, 1]);
    }

    #[test]
    fn reverse_postorder_handles_cycles() {
        let mut g = DiGraph::new(3);
        g.add_edge(0, 1);
        g.add_edge(1, 0); // cycle
        g.add_edge(1, 2);
        let order = g.reverse_postorder(0);
        assert_eq!(order.len(), 3);
        assert_eq!(order[0], 0);
    }

    #[test]
    fn reachable_marks_component() {
        let mut g = DiGraph::new(4);
        g.add_edge(0, 1);
        g.add_edge(2, 3);
        let seen = g.reachable(0);
        assert_eq!(seen, vec![true, true, false, false]);
    }
}
