//! Natural-loop detection.
//!
//! A *back edge* is an edge `u -> h` where `h` dominates `u`. The natural
//! loop of that back edge is `h` plus every node that can reach `u` without
//! passing through `h`. Alchemist uses loop information to classify
//! predicates: a conditional branch whose block is a loop header (or is the
//! source of a back edge, as in `do`-`while`) delimits loop *iterations*
//! (instrumentation rule 4 of the paper).

use crate::dom::DomTree;
use crate::graph::DiGraph;

/// One natural loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Loop {
    /// The loop header (target of the back edge).
    pub header: u32,
    /// Sources of back edges into `header` that produced this loop.
    pub latches: Vec<u32>,
    /// Membership bitmap over all nodes (includes header and latches).
    pub body: Vec<bool>,
}

impl Loop {
    /// Whether `n` belongs to the loop.
    pub fn contains(&self, n: u32) -> bool {
        self.body.get(n as usize).copied().unwrap_or(false)
    }

    /// Number of nodes in the loop.
    pub fn len(&self) -> usize {
        self.body.iter().filter(|&&b| b).count()
    }

    /// Whether the loop body is empty (never true for well-formed loops).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// All natural loops of a graph, merged per header.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LoopForest {
    /// Loops in discovery order, one per distinct header.
    pub loops: Vec<Loop>,
    headers: Vec<bool>,
    latch_nodes: Vec<bool>,
    in_loop: Vec<bool>,
}

impl LoopForest {
    /// Whether `n` is the header of some natural loop.
    pub fn is_header(&self, n: u32) -> bool {
        self.headers.get(n as usize).copied().unwrap_or(false)
    }

    /// Whether `n` is the source of some back edge.
    pub fn is_latch(&self, n: u32) -> bool {
        self.latch_nodes.get(n as usize).copied().unwrap_or(false)
    }

    /// Whether `n` is inside any natural loop.
    pub fn in_any_loop(&self, n: u32) -> bool {
        self.in_loop.get(n as usize).copied().unwrap_or(false)
    }
}

/// Finds all natural loops of `g` given its dominator tree.
///
/// Loops sharing a header are merged (standard practice). Back edges whose
/// source is unreachable are ignored.
///
/// # Examples
///
/// ```
/// use alchemist_cfg::{natural_loops, dominators, DiGraph};
/// let mut g = DiGraph::new(3); // 0 -> 1 -> 2, 1 -> 1 is a self loop
/// g.add_edge(0, 1);
/// g.add_edge(1, 1);
/// g.add_edge(1, 2);
/// let dom = dominators(&g, 0);
/// let loops = natural_loops(&g, &dom);
/// assert!(loops.is_header(1));
/// assert_eq!(loops.loops.len(), 1);
/// ```
pub fn natural_loops(g: &DiGraph, dom: &DomTree) -> LoopForest {
    let n = g.node_count();
    let mut forest = LoopForest {
        loops: Vec::new(),
        headers: vec![false; n],
        latch_nodes: vec![false; n],
        in_loop: vec![false; n],
    };
    // Discover back edges in node order for determinism.
    for u in 0..n as u32 {
        if !dom.is_reachable(u) {
            continue;
        }
        for &h in g.succs(u) {
            if dom.dominates(h, u) {
                forest.latch_nodes[u as usize] = true;
                add_back_edge(g, &mut forest, h, u);
            }
        }
    }
    for l in &forest.loops {
        for (i, &inside) in l.body.iter().enumerate() {
            if inside {
                forest.in_loop[i] = true;
            }
        }
    }
    forest
}

fn add_back_edge(g: &DiGraph, forest: &mut LoopForest, header: u32, latch: u32) {
    let n = g.node_count();
    let lp = if forest.headers[header as usize] {
        forest
            .loops
            .iter_mut()
            .find(|l| l.header == header)
            .expect("header flag implies a recorded loop")
    } else {
        forest.headers[header as usize] = true;
        forest.loops.push(Loop {
            header,
            latches: Vec::new(),
            body: vec![false; n],
        });
        forest.loops.last_mut().expect("just pushed")
    };
    if !lp.latches.contains(&latch) {
        lp.latches.push(latch);
    }
    // Natural loop: header + reverse reachability from latch stopping at header.
    lp.body[header as usize] = true;
    let mut work = Vec::new();
    if !lp.body[latch as usize] {
        lp.body[latch as usize] = true;
        work.push(latch);
    }
    while let Some(u) = work.pop() {
        for &p in g.preds(u) {
            if !lp.body[p as usize] {
                lp.body[p as usize] = true;
                work.push(p);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dom::dominators;

    fn while_loop() -> DiGraph {
        // E -> H; H -> B, H -> X; B -> H
        let mut g = DiGraph::new(4);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(1, 3);
        g.add_edge(2, 1);
        g
    }

    #[test]
    fn while_loop_detected() {
        let g = while_loop();
        let loops = natural_loops(&g, &dominators(&g, 0));
        assert_eq!(loops.loops.len(), 1);
        let l = &loops.loops[0];
        assert_eq!(l.header, 1);
        assert_eq!(l.latches, vec![2]);
        assert!(l.contains(1) && l.contains(2));
        assert!(!l.contains(0) && !l.contains(3));
        assert_eq!(l.len(), 2);
        assert!(!l.is_empty());
        assert!(loops.is_header(1));
        assert!(loops.is_latch(2));
        assert!(loops.in_any_loop(2));
        assert!(!loops.in_any_loop(3));
    }

    #[test]
    fn nested_loops_have_two_headers() {
        // E -> H1 -> H2 -> B -> H2 ; B2: H2 -> L1body -> H1 ; H1 -> X
        // 0=E, 1=H1, 2=H2, 3=B(inner latch), 4=outer latch, 5=X
        let mut g = DiGraph::new(6);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 3);
        g.add_edge(3, 2); // inner back edge
        g.add_edge(2, 4);
        g.add_edge(4, 1); // outer back edge
        g.add_edge(1, 5);
        let loops = natural_loops(&g, &dominators(&g, 0));
        assert_eq!(loops.loops.len(), 2);
        assert!(loops.is_header(1) && loops.is_header(2));
        let outer = loops.loops.iter().find(|l| l.header == 1).unwrap();
        let inner = loops.loops.iter().find(|l| l.header == 2).unwrap();
        assert!(outer.contains(2) && outer.contains(3) && outer.contains(4));
        assert!(inner.contains(3) && !inner.contains(4) && !inner.contains(1));
    }

    #[test]
    fn loops_sharing_header_are_merged() {
        // Two back edges to the same header (e.g. `continue` + loop end).
        // 0 -> 1(H) -> 2 -> 1, 1 -> 3 -> 1, 1 -> 4(X)
        let mut g = DiGraph::new(5);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 1);
        g.add_edge(1, 3);
        g.add_edge(3, 1);
        g.add_edge(1, 4);
        let loops = natural_loops(&g, &dominators(&g, 0));
        assert_eq!(loops.loops.len(), 1);
        let l = &loops.loops[0];
        assert_eq!(l.latches.len(), 2);
        assert!(l.contains(2) && l.contains(3));
    }

    #[test]
    fn do_while_latch_is_predicate_block() {
        // E -> B(H); B -> Q; Q -> B (back), Q -> X.
        let mut g = DiGraph::new(4);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 1);
        g.add_edge(2, 3);
        let loops = natural_loops(&g, &dominators(&g, 0));
        assert!(loops.is_header(1), "body start is the header");
        assert!(loops.is_latch(2), "bottom test is the latch");
    }

    #[test]
    fn acyclic_graph_has_no_loops() {
        let mut g = DiGraph::new(3);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        let loops = natural_loops(&g, &dominators(&g, 0));
        assert!(loops.loops.is_empty());
        assert!(!loops.in_any_loop(1));
    }

    #[test]
    fn non_dominating_cycle_edge_is_not_back_edge() {
        // Irreducible-ish: 0 -> 1, 0 -> 2, 1 -> 2, 2 -> 1, 1 -> 3.
        // Neither 1 nor 2 dominates the other, so no natural loop.
        let mut g = DiGraph::new(4);
        g.add_edge(0, 1);
        g.add_edge(0, 2);
        g.add_edge(1, 2);
        g.add_edge(2, 1);
        g.add_edge(1, 3);
        let loops = natural_loops(&g, &dominators(&g, 0));
        assert!(loops.loops.is_empty());
    }
}
