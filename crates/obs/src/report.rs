//! Stable, versioned snapshots of a [`Metrics`] sink.
//!
//! The JSON emitter and parser are hand-rolled: this workspace is built
//! offline with no serde. The schema is pinned by [`SCHEMA_VERSION`] and the
//! round-trip test in this module; consumers should check `schema_version`
//! before reading anything else.

use crate::{Counter, Hist, Metrics, ShardMetrics, Stage};

/// Version of the metrics report schema. Bump when renaming/removing keys;
/// adding counters/stages/histograms is backward compatible.
pub const SCHEMA_VERSION: u32 = 1;

/// One timed stage.
#[derive(Debug, Clone, PartialEq)]
pub struct StageRow {
    pub stage: String,
    pub wall_ns: u64,
    pub calls: u64,
}

/// One latency histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistRow {
    pub name: String,
    pub count: u64,
    pub total_ns: u64,
    pub buckets: Vec<u64>,
}

/// One program thread's scheduler share.
#[derive(Debug, Clone, PartialEq)]
pub struct ThreadRow {
    pub tid: u32,
    pub quanta: u64,
}

/// Values computed from the raw counters at snapshot time.
#[derive(Debug, Clone, PartialEq)]
pub struct Derived {
    /// Max/min per-shard memory-event count (min clamped to 1 so the ratio
    /// stays finite); 0.0 when fewer than 2 shards reported.
    pub shard_imbalance: f64,
    /// Events per second over the `total` stage wall time (0.0 if untimed).
    pub events_per_sec: f64,
    /// Total-stage nanoseconds per event (0.0 if untimed).
    pub ns_per_event: f64,
    /// Trace bytes per event (decoded if replaying, else written).
    pub bytes_per_event: f64,
    /// Sum of sender-side channel wait across shards.
    pub send_wait_ns: u64,
    /// Sum of worker-side channel wait across shards.
    pub recv_wait_ns: u64,
}

/// A complete snapshot of a [`Metrics`] sink.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsReport {
    pub schema_version: u32,
    pub command: String,
    /// `(name, value)` for every registered counter, in declaration order.
    pub counters: Vec<(String, u64)>,
    /// Every registered stage, in declaration order (including zero-call).
    pub stages: Vec<StageRow>,
    /// Every registered histogram, in declaration order.
    pub histograms: Vec<HistRow>,
    /// Per-shard metrics (empty unless sharded replay ran).
    pub shards: Vec<ShardMetrics>,
    /// Per-tid scheduler quanta (empty unless the VM ran).
    pub threads: Vec<ThreadRow>,
    pub derived: Derived,
}

impl MetricsReport {
    /// Events processed, preferring the most pipeline-specific counter.
    fn event_basis(counters: &[(String, u64)]) -> u64 {
        let get = |c: Counter| {
            counters
                .iter()
                .find(|(n, _)| n == c.name())
                .map(|(_, v)| *v)
                .unwrap_or(0)
        };
        let profiled = get(Counter::ProfileEvents);
        let decoded = get(Counter::TraceEventsDecoded);
        let executed = get(Counter::VmEvents);
        if profiled > 0 {
            profiled
        } else if decoded > 0 {
            decoded
        } else {
            executed
        }
    }

    /// Snapshot `metrics` into a report. `command` labels which CLI command
    /// (or test harness) produced it.
    pub fn snapshot(metrics: &Metrics, command: &str) -> MetricsReport {
        let counters: Vec<(String, u64)> = Counter::ALL
            .iter()
            .map(|c| (c.name().to_string(), metrics.get(*c)))
            .collect();
        let stages: Vec<StageRow> = Stage::ALL
            .iter()
            .map(|s| {
                let (wall_ns, calls) = metrics.stage(*s);
                StageRow {
                    stage: s.name().to_string(),
                    wall_ns,
                    calls,
                }
            })
            .collect();
        let histograms: Vec<HistRow> = Hist::ALL
            .iter()
            .map(|h| {
                let (count, total_ns) = metrics.hist_totals(*h);
                HistRow {
                    name: h.name().to_string(),
                    count,
                    total_ns,
                    buckets: metrics.hist_buckets(*h).to_vec(),
                }
            })
            .collect();
        let shards = metrics.shards();
        let threads: Vec<ThreadRow> = metrics
            .sched()
            .into_iter()
            .map(|(tid, quanta)| ThreadRow { tid, quanta })
            .collect();

        let shard_imbalance = if shards.len() >= 2 {
            let max = shards.iter().map(|s| s.mem_events).max().unwrap_or(0);
            let min = shards.iter().map(|s| s.mem_events).min().unwrap_or(0);
            max as f64 / min.max(1) as f64
        } else {
            0.0
        };
        let events = Self::event_basis(&counters);
        let total_ns = stages
            .iter()
            .find(|s| s.stage == Stage::Total.name())
            .map(|s| s.wall_ns)
            .unwrap_or(0);
        let (events_per_sec, ns_per_event) = if events > 0 && total_ns > 0 {
            (
                events as f64 * 1e9 / total_ns as f64,
                total_ns as f64 / events as f64,
            )
        } else {
            (0.0, 0.0)
        };
        let bytes = {
            let decoded = metrics.get(Counter::TraceBytesDecoded);
            if decoded > 0 {
                decoded
            } else {
                metrics.get(Counter::TraceBytesWritten)
            }
        };
        let bytes_per_event = if events > 0 {
            bytes as f64 / events as f64
        } else {
            0.0
        };
        let derived = Derived {
            shard_imbalance,
            events_per_sec,
            ns_per_event,
            bytes_per_event,
            send_wait_ns: shards.iter().map(|s| s.send_wait_ns).sum(),
            recv_wait_ns: shards.iter().map(|s| s.recv_wait_ns).sum(),
        };

        MetricsReport {
            schema_version: SCHEMA_VERSION,
            command: command.to_string(),
            counters,
            stages,
            histograms,
            shards,
            threads,
            derived,
        }
    }

    /// Render as pretty-printed JSON (2-space indent, stable key order).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\n");
        out.push_str(&format!(
            "  \"schema_version\": {},\n  \"command\": \"{}\",\n",
            self.schema_version,
            escape_json(&self.command)
        ));
        out.push_str("  \"counters\": {\n");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            let comma = if i + 1 < self.counters.len() { "," } else { "" };
            out.push_str(&format!(
                "    \"{}\": {}{}\n",
                escape_json(name),
                value,
                comma
            ));
        }
        out.push_str("  },\n  \"stages\": [\n");
        for (i, s) in self.stages.iter().enumerate() {
            let comma = if i + 1 < self.stages.len() { "," } else { "" };
            out.push_str(&format!(
                "    {{\"stage\": \"{}\", \"wall_ns\": {}, \"calls\": {}}}{}\n",
                escape_json(&s.stage),
                s.wall_ns,
                s.calls,
                comma
            ));
        }
        out.push_str("  ],\n  \"histograms\": [\n");
        for (i, h) in self.histograms.iter().enumerate() {
            let comma = if i + 1 < self.histograms.len() {
                ","
            } else {
                ""
            };
            let buckets: Vec<String> = h.buckets.iter().map(|b| b.to_string()).collect();
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"count\": {}, \"total_ns\": {}, \"buckets\": [{}]}}{}\n",
                escape_json(&h.name),
                h.count,
                h.total_ns,
                buckets.join(", "),
                comma
            ));
        }
        out.push_str("  ],\n  \"shards\": [\n");
        for (i, s) in self.shards.iter().enumerate() {
            let comma = if i + 1 < self.shards.len() { "," } else { "" };
            out.push_str(&format!(
                "    {{\"shard\": {}, \"events\": {}, \"mem_events\": {}, \"send_wait_ns\": {}, \"recv_wait_ns\": {}, \"busy_ns\": {}, \"pages_allocated\": {}, \"read_set_spills\": {}}}{}\n",
                s.shard,
                s.events,
                s.mem_events,
                s.send_wait_ns,
                s.recv_wait_ns,
                s.busy_ns,
                s.pages_allocated,
                s.read_set_spills,
                comma
            ));
        }
        out.push_str("  ],\n  \"threads\": [\n");
        for (i, t) in self.threads.iter().enumerate() {
            let comma = if i + 1 < self.threads.len() { "," } else { "" };
            out.push_str(&format!(
                "    {{\"tid\": {}, \"quanta\": {}}}{}\n",
                t.tid, t.quanta, comma
            ));
        }
        out.push_str("  ],\n  \"derived\": {\n");
        out.push_str(&format!(
            "    \"shard_imbalance\": {},\n",
            fmt_f64(self.derived.shard_imbalance)
        ));
        out.push_str(&format!(
            "    \"events_per_sec\": {},\n",
            fmt_f64(self.derived.events_per_sec)
        ));
        out.push_str(&format!(
            "    \"ns_per_event\": {},\n",
            fmt_f64(self.derived.ns_per_event)
        ));
        out.push_str(&format!(
            "    \"bytes_per_event\": {},\n",
            fmt_f64(self.derived.bytes_per_event)
        ));
        out.push_str(&format!(
            "    \"send_wait_ns\": {},\n    \"recv_wait_ns\": {}\n",
            self.derived.send_wait_ns, self.derived.recv_wait_ns
        ));
        out.push_str("  }\n}\n");
        out
    }

    /// Parse a report previously produced by [`MetricsReport::to_json`].
    pub fn from_json(text: &str) -> Result<MetricsReport, String> {
        let value = json::parse(text)?;
        let obj = value.as_obj("report")?;
        let schema_version = obj.field("schema_version")?.as_u64("schema_version")? as u32;
        if schema_version != SCHEMA_VERSION {
            return Err(format!(
                "unsupported metrics schema version {schema_version} (expected {SCHEMA_VERSION})"
            ));
        }
        let command = obj.field("command")?.as_str("command")?.to_string();
        let counters = obj
            .field("counters")?
            .as_obj("counters")?
            .entries
            .iter()
            .map(|(name, v)| Ok((name.clone(), v.as_u64(name)?)))
            .collect::<Result<Vec<_>, String>>()?;
        let stages = obj
            .field("stages")?
            .as_arr("stages")?
            .iter()
            .map(|v| {
                let o = v.as_obj("stage")?;
                Ok(StageRow {
                    stage: o.field("stage")?.as_str("stage")?.to_string(),
                    wall_ns: o.field("wall_ns")?.as_u64("wall_ns")?,
                    calls: o.field("calls")?.as_u64("calls")?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        let histograms = obj
            .field("histograms")?
            .as_arr("histograms")?
            .iter()
            .map(|v| {
                let o = v.as_obj("histogram")?;
                Ok(HistRow {
                    name: o.field("name")?.as_str("name")?.to_string(),
                    count: o.field("count")?.as_u64("count")?,
                    total_ns: o.field("total_ns")?.as_u64("total_ns")?,
                    buckets: o
                        .field("buckets")?
                        .as_arr("buckets")?
                        .iter()
                        .map(|b| b.as_u64("bucket"))
                        .collect::<Result<Vec<_>, String>>()?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        let shards = obj
            .field("shards")?
            .as_arr("shards")?
            .iter()
            .map(|v| {
                let o = v.as_obj("shard")?;
                Ok(ShardMetrics {
                    shard: o.field("shard")?.as_u64("shard")? as usize,
                    events: o.field("events")?.as_u64("events")?,
                    mem_events: o.field("mem_events")?.as_u64("mem_events")?,
                    send_wait_ns: o.field("send_wait_ns")?.as_u64("send_wait_ns")?,
                    recv_wait_ns: o.field("recv_wait_ns")?.as_u64("recv_wait_ns")?,
                    busy_ns: o.field("busy_ns")?.as_u64("busy_ns")?,
                    pages_allocated: o.field("pages_allocated")?.as_u64("pages_allocated")?,
                    read_set_spills: o.field("read_set_spills")?.as_u64("read_set_spills")?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        let threads = obj
            .field("threads")?
            .as_arr("threads")?
            .iter()
            .map(|v| {
                let o = v.as_obj("thread")?;
                Ok(ThreadRow {
                    tid: o.field("tid")?.as_u64("tid")? as u32,
                    quanta: o.field("quanta")?.as_u64("quanta")?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        let d = obj.field("derived")?.as_obj("derived")?;
        let derived = Derived {
            shard_imbalance: d.field("shard_imbalance")?.as_f64("shard_imbalance")?,
            events_per_sec: d.field("events_per_sec")?.as_f64("events_per_sec")?,
            ns_per_event: d.field("ns_per_event")?.as_f64("ns_per_event")?,
            bytes_per_event: d.field("bytes_per_event")?.as_f64("bytes_per_event")?,
            send_wait_ns: d.field("send_wait_ns")?.as_u64("send_wait_ns")?,
            recv_wait_ns: d.field("recv_wait_ns")?.as_u64("recv_wait_ns")?,
        };
        Ok(MetricsReport {
            schema_version,
            command,
            counters,
            stages,
            histograms,
            shards,
            threads,
            derived,
        })
    }

    /// Render as a human-readable text report.
    pub fn render_text(&self) -> String {
        let mut out = String::with_capacity(2048);
        out.push_str(&format!(
            "metrics report (schema v{}) — command: {}\n",
            self.schema_version, self.command
        ));
        out.push_str("counters:\n");
        for (name, value) in &self.counters {
            out.push_str(&format!("  {name:<28} {value}\n"));
        }
        let total_ns = self
            .stages
            .iter()
            .find(|s| s.stage == Stage::Total.name())
            .map(|s| s.wall_ns)
            .unwrap_or(0);
        out.push_str("stages (wall time):\n");
        for s in &self.stages {
            if s.calls == 0 {
                continue;
            }
            let pct = if total_ns > 0 && s.stage != Stage::Total.name() {
                format!("  {:>5.1}%", s.wall_ns as f64 * 100.0 / total_ns as f64)
            } else {
                String::new()
            };
            out.push_str(&format!(
                "  {:<16} {:>12}{pct}  ({} call{})\n",
                s.stage,
                fmt_ns(s.wall_ns),
                s.calls,
                if s.calls == 1 { "" } else { "s" }
            ));
        }
        for s in &self.shards {
            let pct = if total_ns > 0 {
                format!("  {:>5.1}%", s.busy_ns as f64 * 100.0 / total_ns as f64)
            } else {
                String::new()
            };
            out.push_str(&format!(
                "  shard_worker[{}]  {:>12}{pct}  (busy)\n",
                s.shard,
                fmt_ns(s.busy_ns)
            ));
        }
        if !self.shards.is_empty() {
            out.push_str("shards:\n");
            out.push_str(
                "  shard     events  mem_events    send_wait    recv_wait         busy  pages  spills\n",
            );
            for s in &self.shards {
                out.push_str(&format!(
                    "  {:<5} {:>10}  {:>10}  {:>11}  {:>11}  {:>11}  {:>5}  {:>6}\n",
                    s.shard,
                    s.events,
                    s.mem_events,
                    fmt_ns(s.send_wait_ns),
                    fmt_ns(s.recv_wait_ns),
                    fmt_ns(s.busy_ns),
                    s.pages_allocated,
                    s.read_set_spills
                ));
            }
        }
        if !self.threads.is_empty() {
            out.push_str("scheduler:\n");
            for t in &self.threads {
                out.push_str(&format!("  tid {}: {} quanta\n", t.tid, t.quanta));
            }
        }
        for h in &self.histograms {
            if h.count == 0 {
                continue;
            }
            let mean = h.total_ns / h.count;
            out.push_str(&format!(
                "histogram {}: n={} mean={} p50~{}\n",
                h.name,
                h.count,
                fmt_ns(mean),
                fmt_bucket_range(&h.buckets, h.count)
            ));
        }
        out.push_str("derived:\n");
        if self.derived.shard_imbalance > 0.0 {
            out.push_str(&format!(
                "  shard imbalance max/min = {:.1}\n",
                self.derived.shard_imbalance
            ));
        }
        if self.derived.events_per_sec > 0.0 {
            out.push_str(&format!(
                "  throughput: {:.0} events/sec ({:.1} ns/event)\n",
                self.derived.events_per_sec, self.derived.ns_per_event
            ));
        }
        if self.derived.bytes_per_event > 0.0 {
            out.push_str(&format!(
                "  density: {:.2} bytes/event\n",
                self.derived.bytes_per_event
            ));
        }
        out.push_str(&format!(
            "  channel wait: send {}, recv {}\n",
            fmt_ns(self.derived.send_wait_ns),
            fmt_ns(self.derived.recv_wait_ns)
        ));
        out
    }
}

/// Median bucket range like `[2.0us, 4.1us)` from log2 bucket counts.
fn fmt_bucket_range(buckets: &[u64], count: u64) -> String {
    let mut seen = 0u64;
    for (i, b) in buckets.iter().enumerate() {
        seen += b;
        if seen * 2 >= count {
            let lo = if i == 0 { 0 } else { 1u64 << (i - 1) };
            let hi = 1u64 << i;
            return format!("[{}, {})", fmt_ns(lo), fmt_ns(hi));
        }
    }
    "[?, ?)".to_string()
}

/// Human duration from nanoseconds.
pub fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Shortest round-trippable representation of a finite f64.
fn fmt_f64(v: f64) -> String {
    debug_assert!(v.is_finite(), "metrics derived values must stay finite");
    format!("{v:?}")
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Minimal JSON reader — just enough to round-trip [`MetricsReport::to_json`]
/// output (and any JSON that sticks to objects/arrays/strings/numbers).
mod json {
    pub enum Value {
        Null,
        // Kept so the reader handles any standards-conformant document,
        // though our own emitter never produces booleans.
        #[allow(dead_code)]
        Bool(bool),
        /// Raw number token; converted on demand so u64 precision survives.
        Num(String),
        Str(String),
        Arr(Vec<Value>),
        Obj(Object),
    }

    pub struct Object {
        pub entries: Vec<(String, Value)>,
    }

    impl Object {
        pub fn field(&self, name: &str) -> Result<&Value, String> {
            self.entries
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| format!("missing field `{name}`"))
        }
    }

    impl Value {
        pub fn as_obj(&self, what: &str) -> Result<&Object, String> {
            match self {
                Value::Obj(o) => Ok(o),
                _ => Err(format!("`{what}` is not an object")),
            }
        }
        pub fn as_arr(&self, what: &str) -> Result<&[Value], String> {
            match self {
                Value::Arr(a) => Ok(a),
                _ => Err(format!("`{what}` is not an array")),
            }
        }
        pub fn as_str(&self, what: &str) -> Result<&str, String> {
            match self {
                Value::Str(s) => Ok(s),
                _ => Err(format!("`{what}` is not a string")),
            }
        }
        pub fn as_u64(&self, what: &str) -> Result<u64, String> {
            match self {
                Value::Num(raw) => raw
                    .parse::<u64>()
                    .map_err(|_| format!("`{what}` is not a u64: {raw}")),
                _ => Err(format!("`{what}` is not a number")),
            }
        }
        pub fn as_f64(&self, what: &str) -> Result<f64, String> {
            match self {
                Value::Num(raw) => raw
                    .parse::<f64>()
                    .map_err(|_| format!("`{what}` is not a number: {raw}")),
                _ => Err(format!("`{what}` is not a number")),
            }
        }
    }

    pub fn parse(text: &str) -> Result<Value, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }

    fn skip_ws(bytes: &[u8], pos: &mut usize) {
        while *pos < bytes.len() && bytes[*pos].is_ascii_whitespace() {
            *pos += 1;
        }
    }

    fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
        skip_ws(bytes, pos);
        if *pos < bytes.len() && bytes[*pos] == b {
            *pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, pos))
        }
    }

    fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b'{') => parse_object(bytes, pos),
            Some(b'[') => parse_array(bytes, pos),
            Some(b'"') => Ok(Value::Str(parse_string(bytes, pos)?)),
            Some(b't') => parse_keyword(bytes, pos, "true", Value::Bool(true)),
            Some(b'f') => parse_keyword(bytes, pos, "false", Value::Bool(false)),
            Some(b'n') => parse_keyword(bytes, pos, "null", Value::Null),
            Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(bytes, pos),
            _ => Err(format!("unexpected input at byte {pos}")),
        }
    }

    fn parse_keyword(
        bytes: &[u8],
        pos: &mut usize,
        word: &str,
        value: Value,
    ) -> Result<Value, String> {
        if bytes[*pos..].starts_with(word.as_bytes()) {
            *pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid keyword at byte {pos}"))
        }
    }

    fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        let start = *pos;
        if bytes.get(*pos) == Some(&b'-') {
            *pos += 1;
        }
        while *pos < bytes.len()
            && (bytes[*pos].is_ascii_digit()
                || matches!(bytes[*pos], b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            *pos += 1;
        }
        if *pos == start {
            return Err(format!("empty number at byte {pos}"));
        }
        Ok(Value::Num(
            std::str::from_utf8(&bytes[start..*pos])
                .map_err(|_| "non-utf8 number".to_string())?
                .to_string(),
        ))
    }

    fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
        expect(bytes, pos, b'"')?;
        let mut out = String::new();
        loop {
            match bytes.get(*pos) {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    *pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    *pos += 1;
                    match bytes.get(*pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = bytes
                                .get(*pos + 1..*pos + 5)
                                .ok_or_else(|| "truncated \\u escape".to_string())?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape".to_string())?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| "bad \\u code point".to_string())?,
                            );
                            *pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {pos}")),
                    }
                    *pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = std::str::from_utf8(&bytes[*pos..])
                        .map_err(|_| "non-utf8 string".to_string())?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    *pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        expect(bytes, pos, b'[')?;
        let mut items = Vec::new();
        skip_ws(bytes, pos);
        if bytes.get(*pos) == Some(&b']') {
            *pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(parse_value(bytes, pos)?);
            skip_ws(bytes, pos);
            match bytes.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b']') => {
                    *pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {pos}")),
            }
        }
    }

    fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        expect(bytes, pos, b'{')?;
        let mut entries = Vec::new();
        skip_ws(bytes, pos);
        if bytes.get(*pos) == Some(&b'}') {
            *pos += 1;
            return Ok(Value::Obj(Object { entries }));
        }
        loop {
            skip_ws(bytes, pos);
            let key = parse_string(bytes, pos)?;
            expect(bytes, pos, b':')?;
            let value = parse_value(bytes, pos)?;
            entries.push((key, value));
            skip_ws(bytes, pos);
            match bytes.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b'}') => {
                    *pos += 1;
                    return Ok(Value::Obj(Object { entries }));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {pos}")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HIST_BUCKETS;

    fn sample_metrics() -> Metrics {
        let m = Metrics::new();
        m.add(Counter::VmEvents, 1000);
        m.add(Counter::TraceChunksDecoded, 4);
        m.add(Counter::TraceBytesDecoded, 3000);
        m.add(Counter::ProfileEvents, 1000);
        m.add(Counter::ProfileDeps, 17);
        m.record_span(Stage::Decode, 5_000);
        m.record_span(Stage::Profile, 20_000);
        m.record_span(Stage::Total, 40_000);
        m.observe_ns(Hist::DecodeChunkNs, 1200);
        m.observe_ns(Hist::DecodeChunkNs, 1400);
        m.record_shard(ShardMetrics {
            shard: 0,
            events: 600,
            mem_events: 500,
            send_wait_ns: 100,
            recv_wait_ns: 200,
            busy_ns: 9000,
            pages_allocated: 2,
            read_set_spills: 1,
        });
        m.record_shard(ShardMetrics {
            shard: 1,
            events: 400,
            mem_events: 300,
            send_wait_ns: 50,
            recv_wait_ns: 80,
            busy_ns: 7000,
            pages_allocated: 1,
            read_set_spills: 0,
        });
        m.record_thread_quanta(0, 12);
        m.record_thread_quanta(1, 3);
        m
    }

    #[test]
    fn snapshot_has_every_registered_series() {
        let report = sample_metrics().report("test");
        assert_eq!(report.schema_version, SCHEMA_VERSION);
        assert_eq!(report.counters.len(), Counter::COUNT);
        assert_eq!(report.stages.len(), Stage::COUNT);
        assert_eq!(report.histograms.len(), Hist::COUNT);
        assert_eq!(report.histograms[0].buckets.len(), HIST_BUCKETS);
        assert_eq!(report.shards.len(), 2);
        assert_eq!(report.threads.len(), 2);
    }

    #[test]
    fn derived_values() {
        let report = sample_metrics().report("test");
        // 500 vs 300 mem events across 2 shards.
        assert!((report.derived.shard_imbalance - 500.0 / 300.0).abs() < 1e-9);
        // 1000 events over 40_000 ns.
        assert!((report.derived.ns_per_event - 40.0).abs() < 1e-9);
        assert!((report.derived.events_per_sec - 25_000_000.0).abs() < 1e-3);
        assert!((report.derived.bytes_per_event - 3.0).abs() < 1e-9);
        assert_eq!(report.derived.send_wait_ns, 150);
        assert_eq!(report.derived.recv_wait_ns, 280);
    }

    #[test]
    fn imbalance_with_zero_min_stays_finite() {
        let m = Metrics::new();
        m.record_shard(ShardMetrics {
            shard: 0,
            mem_events: 100,
            ..Default::default()
        });
        m.record_shard(ShardMetrics {
            shard: 1,
            mem_events: 0,
            ..Default::default()
        });
        let report = m.report("test");
        assert_eq!(report.derived.shard_imbalance, 100.0);
        assert!(report.derived.shard_imbalance.is_finite());
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let report = sample_metrics().report("replay");
        let json = report.to_json();
        let parsed = MetricsReport::from_json(&json).expect("parse back");
        assert_eq!(parsed, report);
        // And the re-emitted JSON is byte-identical.
        assert_eq!(parsed.to_json(), json);
    }

    #[test]
    fn json_round_trip_of_empty_metrics() {
        let report = Metrics::new().report("run");
        let parsed = MetricsReport::from_json(&report.to_json()).expect("parse back");
        assert_eq!(parsed, report);
    }

    #[test]
    fn from_json_rejects_other_schema_versions() {
        let mut report = sample_metrics().report("replay");
        report.schema_version = SCHEMA_VERSION + 1;
        let err = MetricsReport::from_json(&report.to_json()).unwrap_err();
        assert!(err.contains("schema version"), "{err}");
    }

    #[test]
    fn from_json_rejects_garbage() {
        assert!(MetricsReport::from_json("not json").is_err());
        assert!(MetricsReport::from_json("{\"schema_version\": 1}").is_err());
        assert!(MetricsReport::from_json("{} trailing").is_err());
    }

    #[test]
    fn text_render_mentions_key_series() {
        let text = sample_metrics().report("replay").render_text();
        assert!(text.contains("vm.events"));
        assert!(text.contains("shard_worker[0]"));
        assert!(text.contains("shard imbalance"));
        assert!(text.contains("tid 0: 12 quanta"));
        assert!(text.contains("channel wait"));
    }

    #[test]
    fn escape_and_parse_strings() {
        let m = Metrics::new();
        let report = m.report("weird \"cmd\"\nwith\ttabs\\");
        let parsed = MetricsReport::from_json(&report.to_json()).expect("parse back");
        assert_eq!(parsed.command, "weird \"cmd\"\nwith\ttabs\\");
    }
}
