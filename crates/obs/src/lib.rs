//! Self-instrumentation for the Alchemist pipeline.
//!
//! This crate provides a lightweight metrics layer — monotonic counters,
//! named stage spans, fixed-bucket latency histograms, and per-shard
//! slots — that the rest of the workspace threads through as an
//! `Option<&Metrics>` (or `Option<Arc<Metrics>>` where a struct owns it).
//! When the handle is `None` every instrumentation site collapses to a
//! branch on a `None` option, so the uninstrumented paths stay exactly as
//! fast as before.
//!
//! Design constraints (pinned by `crates/core/tests/zero_alloc.rs`):
//!
//! * **Allocation-free on the hot path.** Counters are a fixed array of
//!   [`AtomicU64`] indexed by the [`Counter`] enum; histograms use a fixed
//!   number of log2 buckets; stage spans add into fixed cells. The only
//!   allocating operations are [`Metrics::record_shard`] and
//!   [`Metrics::record_thread_quanta`], which run once per shard join /
//!   run end, never per event.
//! * **Stable, versioned reporting.** [`report::MetricsReport`] snapshots
//!   everything into a plain struct with a pinned
//!   [`report::SCHEMA_VERSION`], renderable as text or JSON (hand-rolled;
//!   the workspace is offline and carries no serde).

pub mod report;

pub use report::{MetricsReport, SCHEMA_VERSION};

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Pre-registered monotonic counters. Adding a variant extends the metrics
/// schema; names are stable `layer.metric` strings used in the JSON report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Counter {
    /// Events the VM interpreter delivered to its sink.
    VmEvents,
    /// Bytecode instructions the interpreter executed.
    VmInstructions,
    /// Event batches flushed by the VM's batching sink.
    VmBatchesFlushed,
    /// Scheduler context switches between program threads.
    VmContextSwitches,
    /// Program threads spawned (not counting main).
    VmThreadsSpawned,
    /// Chunks the trace writer encoded and wrote.
    TraceChunksWritten,
    /// Total bytes of `.alct` output (header + chunks + footer).
    TraceBytesWritten,
    /// Events encoded into the trace.
    TraceEventsWritten,
    /// Chunks decoded (streaming reader or parallel decode workers).
    TraceChunksDecoded,
    /// Compressed payload bytes decoded.
    TraceBytesDecoded,
    /// Events decoded from the trace.
    TraceEventsDecoded,
    /// Corrupt/truncated chunks skipped by salvage replay (`--recover`).
    TraceChunksSkipped,
    /// Events salvaged by recovery replay (what survived the damage).
    TraceEventsSalvaged,
    /// Events run through dependence profiling.
    ProfileEvents,
    /// Distinct dependence edges detected (intra- + cross-thread).
    ProfileDeps,
    /// `.alcp` profile artifacts encoded and written.
    ProfileSaves,
    /// `.alcp` profile artifacts decoded and loaded.
    ProfileLoads,
    /// Partial-profile merges performed (one per absorbed profile).
    ProfileMerges,
    /// Whole batches partitioned for sharded replay.
    ShardBatchesPartitioned,
    /// Non-empty per-shard sub-batches sent over shard channels.
    ShardSubBatchesSent,
    /// Parallel tasks identified by the parsim extractor.
    ParsimTasksExtracted,
}

impl Counter {
    pub const COUNT: usize = 21;

    /// Every counter, in declaration (= report) order.
    pub const ALL: [Counter; Counter::COUNT] = [
        Counter::VmEvents,
        Counter::VmInstructions,
        Counter::VmBatchesFlushed,
        Counter::VmContextSwitches,
        Counter::VmThreadsSpawned,
        Counter::TraceChunksWritten,
        Counter::TraceBytesWritten,
        Counter::TraceEventsWritten,
        Counter::TraceChunksDecoded,
        Counter::TraceBytesDecoded,
        Counter::TraceEventsDecoded,
        Counter::TraceChunksSkipped,
        Counter::TraceEventsSalvaged,
        Counter::ProfileEvents,
        Counter::ProfileDeps,
        Counter::ProfileSaves,
        Counter::ProfileLoads,
        Counter::ProfileMerges,
        Counter::ShardBatchesPartitioned,
        Counter::ShardSubBatchesSent,
        Counter::ParsimTasksExtracted,
    ];

    /// Stable `layer.metric` name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            Counter::VmEvents => "vm.events",
            Counter::VmInstructions => "vm.instructions",
            Counter::VmBatchesFlushed => "vm.batches_flushed",
            Counter::VmContextSwitches => "vm.context_switches",
            Counter::VmThreadsSpawned => "vm.threads_spawned",
            Counter::TraceChunksWritten => "trace.chunks_written",
            Counter::TraceBytesWritten => "trace.bytes_written",
            Counter::TraceEventsWritten => "trace.events_written",
            Counter::TraceChunksDecoded => "trace.chunks_decoded",
            Counter::TraceBytesDecoded => "trace.bytes_decoded",
            Counter::TraceEventsDecoded => "trace.events_decoded",
            Counter::TraceChunksSkipped => "trace.chunks_skipped",
            Counter::TraceEventsSalvaged => "trace.events_salvaged",
            Counter::ProfileEvents => "profile.events",
            Counter::ProfileDeps => "profile.deps",
            Counter::ProfileSaves => "profile.saves",
            Counter::ProfileLoads => "profile.loads",
            Counter::ProfileMerges => "profile.merges",
            Counter::ShardBatchesPartitioned => "shard.batches_partitioned",
            Counter::ShardSubBatchesSent => "shard.sub_batches_sent",
            Counter::ParsimTasksExtracted => "parsim.tasks_extracted",
        }
    }
}

/// Named pipeline stages timed by spans. `shard_worker[i]` busy time is
/// reported from [`ShardMetrics::busy_ns`] rather than a variant here, since
/// the worker count is dynamic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Stage {
    /// Source → module front-end (lex/parse/lower).
    Parse,
    /// VM interpretation (instrumented execution).
    Exec,
    /// Trace chunk encoding + writing.
    Encode,
    /// Trace decoding (streaming or chunk-parallel).
    Decode,
    /// Splitting batches into per-shard sub-batches.
    ShardPartition,
    /// Merging per-shard profiles/traces back together.
    Merge,
    /// Dependence profiling proper.
    Profile,
    /// Parallel-task extraction (parsim).
    Extract,
    /// Whole-command wall time, recorded once by the CLI.
    Total,
}

impl Stage {
    pub const COUNT: usize = 9;

    /// Every stage, in declaration (= report) order.
    pub const ALL: [Stage; Stage::COUNT] = [
        Stage::Parse,
        Stage::Exec,
        Stage::Encode,
        Stage::Decode,
        Stage::ShardPartition,
        Stage::Merge,
        Stage::Profile,
        Stage::Extract,
        Stage::Total,
    ];

    /// Stable stage name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Parse => "parse",
            Stage::Exec => "exec",
            Stage::Encode => "encode",
            Stage::Decode => "decode",
            Stage::ShardPartition => "shard_partition",
            Stage::Merge => "merge",
            Stage::Profile => "profile",
            Stage::Extract => "extract",
            Stage::Total => "total",
        }
    }
}

/// Fixed-bucket latency histograms (log2 nanosecond buckets).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Hist {
    /// Wall time to decode one trace chunk into events.
    DecodeChunkNs,
    /// Wall time to encode + write one trace chunk.
    EncodeChunkNs,
}

impl Hist {
    pub const COUNT: usize = 2;

    /// Every histogram, in declaration (= report) order.
    pub const ALL: [Hist; Hist::COUNT] = [Hist::DecodeChunkNs, Hist::EncodeChunkNs];

    /// Stable histogram name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            Hist::DecodeChunkNs => "decode.chunk_ns",
            Hist::EncodeChunkNs => "encode.chunk_ns",
        }
    }
}

/// Number of log2 buckets per histogram. Bucket `i` counts samples in
/// `[2^(i-1), 2^i)` ns (bucket 0 counts 0-ns samples); the last bucket
/// absorbs everything larger.
pub const HIST_BUCKETS: usize = 32;

/// Bucket index for a nanosecond sample.
#[inline]
pub fn hist_bucket(ns: u64) -> usize {
    if ns == 0 {
        0
    } else {
        let b = 64 - (ns.leading_zeros() as usize);
        b.min(HIST_BUCKETS - 1)
    }
}

struct StageCell {
    wall_ns: AtomicU64,
    calls: AtomicU64,
}

struct HistCell {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    total_ns: AtomicU64,
}

/// Per-shard metrics, accumulated thread-locally inside each shard worker
/// and merged into [`Metrics`] exactly once at join time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardMetrics {
    /// Shard index (block-cyclic address-partition lane: page-granular
    /// `(addr >> shift) % jobs`, with the stride chosen per stream by the
    /// balance ladder in `alchemist_core::shard::ShardSpec`).
    pub shard: usize,
    /// Event rows delivered to this shard's sink (control rows are
    /// broadcast, so these overlap across shards).
    pub events: u64,
    /// Memory event rows (the partitioned, non-overlapping portion).
    pub mem_events: u64,
    /// Nanoseconds the sender spent blocked pushing into this shard's
    /// bounded channel.
    pub send_wait_ns: u64,
    /// Nanoseconds this shard's worker spent blocked waiting to receive.
    pub recv_wait_ns: u64,
    /// Nanoseconds this shard's worker spent actually processing batches.
    pub busy_ns: u64,
    /// Shadow-memory pages faulted in by this shard's profiler.
    pub pages_allocated: u64,
    /// Read-set inline-capacity spills in this shard's profiler.
    pub read_set_spills: u64,
}

impl ShardMetrics {
    fn merge_from(&mut self, other: &ShardMetrics) {
        self.events += other.events;
        self.mem_events += other.mem_events;
        self.send_wait_ns += other.send_wait_ns;
        self.recv_wait_ns += other.recv_wait_ns;
        self.busy_ns += other.busy_ns;
        self.pages_allocated += other.pages_allocated;
        self.read_set_spills += other.read_set_spills;
    }
}

/// The shared metrics sink. Cheap to create; every recording operation on
/// the event path is a single atomic add.
pub struct Metrics {
    counters: [AtomicU64; Counter::COUNT],
    stages: [StageCell; Stage::COUNT],
    hists: [HistCell; Hist::COUNT],
    shards: Mutex<Vec<ShardMetrics>>,
    /// `(tid, quanta)` pairs recorded once at the end of a VM run.
    sched: Mutex<Vec<(u32, u64)>>,
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics::new()
    }
}

impl std::fmt::Debug for Metrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut s = f.debug_struct("Metrics");
        for c in Counter::ALL {
            let v = self.get(c);
            if v != 0 {
                s.field(c.name(), &v);
            }
        }
        s.finish_non_exhaustive()
    }
}

impl Metrics {
    pub fn new() -> Metrics {
        Metrics {
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            stages: std::array::from_fn(|_| StageCell {
                wall_ns: AtomicU64::new(0),
                calls: AtomicU64::new(0),
            }),
            hists: std::array::from_fn(|_| HistCell {
                buckets: std::array::from_fn(|_| AtomicU64::new(0)),
                count: AtomicU64::new(0),
                total_ns: AtomicU64::new(0),
            }),
            shards: Mutex::new(Vec::new()),
            sched: Mutex::new(Vec::new()),
        }
    }

    /// Add `n` to a counter.
    #[inline]
    pub fn add(&self, c: Counter, n: u64) {
        self.counters[c as usize].fetch_add(n, Ordering::Relaxed);
    }

    /// Increment a counter by one.
    #[inline]
    pub fn incr(&self, c: Counter) {
        self.add(c, 1);
    }

    /// Current value of a counter.
    #[inline]
    pub fn get(&self, c: Counter) -> u64 {
        self.counters[c as usize].load(Ordering::Relaxed)
    }

    /// Record `ns` of wall time (one call) against a stage.
    #[inline]
    pub fn record_span(&self, s: Stage, ns: u64) {
        let cell = &self.stages[s as usize];
        cell.wall_ns.fetch_add(ns, Ordering::Relaxed);
        cell.calls.fetch_add(1, Ordering::Relaxed);
    }

    /// `(wall_ns, calls)` recorded so far for a stage.
    #[inline]
    pub fn stage(&self, s: Stage) -> (u64, u64) {
        let cell = &self.stages[s as usize];
        (
            cell.wall_ns.load(Ordering::Relaxed),
            cell.calls.load(Ordering::Relaxed),
        )
    }

    /// Start a span that records into `s` when dropped.
    #[inline]
    pub fn span(&self, s: Stage) -> SpanGuard<'_> {
        SpanGuard {
            metrics: self,
            stage: s,
            start: Instant::now(),
        }
    }

    /// Record one nanosecond sample into a histogram.
    #[inline]
    pub fn observe_ns(&self, h: Hist, ns: u64) {
        let cell = &self.hists[h as usize];
        cell.buckets[hist_bucket(ns)].fetch_add(1, Ordering::Relaxed);
        cell.count.fetch_add(1, Ordering::Relaxed);
        cell.total_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// `(count, total_ns)` recorded so far for a histogram.
    pub fn hist_totals(&self, h: Hist) -> (u64, u64) {
        let cell = &self.hists[h as usize];
        (
            cell.count.load(Ordering::Relaxed),
            cell.total_ns.load(Ordering::Relaxed),
        )
    }

    /// Bucket counts for a histogram.
    pub fn hist_buckets(&self, h: Hist) -> [u64; HIST_BUCKETS] {
        let cell = &self.hists[h as usize];
        std::array::from_fn(|i| cell.buckets[i].load(Ordering::Relaxed))
    }

    /// Merge one shard's locally-accumulated metrics. Fields are summed if
    /// the shard index was recorded before (e.g. sender-side send-wait plus
    /// worker-side busy time). Called at join time, not on the hot path.
    pub fn record_shard(&self, sm: ShardMetrics) {
        let mut shards = self.shards.lock().unwrap();
        if let Some(existing) = shards.iter_mut().find(|s| s.shard == sm.shard) {
            existing.merge_from(&sm);
        } else {
            shards.push(sm);
            shards.sort_by_key(|s| s.shard);
        }
    }

    /// Snapshot of all per-shard metrics, sorted by shard index.
    pub fn shards(&self) -> Vec<ShardMetrics> {
        self.shards.lock().unwrap().clone()
    }

    /// Record the number of scheduler quanta a program thread consumed.
    /// Called once per thread at the end of a VM run.
    pub fn record_thread_quanta(&self, tid: u32, quanta: u64) {
        let mut sched = self.sched.lock().unwrap();
        if let Some(entry) = sched.iter_mut().find(|(t, _)| *t == tid) {
            entry.1 += quanta;
        } else {
            sched.push((tid, quanta));
            sched.sort_by_key(|(t, _)| *t);
        }
    }

    /// Snapshot of `(tid, quanta)` pairs, sorted by tid.
    pub fn sched(&self) -> Vec<(u32, u64)> {
        self.sched.lock().unwrap().clone()
    }

    /// Snapshot everything into a stable, versioned report.
    pub fn report(&self, command: &str) -> report::MetricsReport {
        report::MetricsReport::snapshot(self, command)
    }
}

/// Records elapsed wall time into a [`Stage`] on drop.
pub struct SpanGuard<'a> {
    metrics: &'a Metrics,
    stage: Stage,
    start: Instant,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        self.metrics
            .record_span(self.stage, self.start.elapsed().as_nanos() as u64);
    }
}

/// Span over an `Option<&Metrics>`: a no-op (not even a clock read) when the
/// handle is absent.
#[inline]
pub fn span_opt<'a>(metrics: Option<&'a Metrics>, stage: Stage) -> OptSpan<'a> {
    OptSpan {
        inner: metrics.map(|m| (m, stage, Instant::now())),
    }
}

/// Guard returned by [`span_opt`].
pub struct OptSpan<'a> {
    inner: Option<(&'a Metrics, Stage, Instant)>,
}

impl Drop for OptSpan<'_> {
    fn drop(&mut self) {
        if let Some((m, stage, start)) = self.inner.take() {
            m.record_span(stage, start.elapsed().as_nanos() as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_names_and_order_are_stable() {
        assert_eq!(Counter::ALL.len(), Counter::COUNT);
        for (i, c) in Counter::ALL.iter().enumerate() {
            assert_eq!(*c as usize, i, "Counter::ALL must follow declaration order");
        }
        // Names are unique and dot-scoped.
        let mut names: Vec<&str> = Counter::ALL.iter().map(|c| c.name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), Counter::COUNT);
        assert!(Counter::ALL.iter().all(|c| c.name().contains('.')));
    }

    #[test]
    fn stage_names_and_order_are_stable() {
        assert_eq!(Stage::ALL.len(), Stage::COUNT);
        for (i, s) in Stage::ALL.iter().enumerate() {
            assert_eq!(*s as usize, i);
        }
        let mut names: Vec<&str> = Stage::ALL.iter().map(|s| s.name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), Stage::COUNT);
    }

    #[test]
    fn counters_accumulate() {
        let m = Metrics::new();
        m.incr(Counter::VmEvents);
        m.add(Counter::VmEvents, 9);
        m.add(Counter::TraceBytesWritten, 123);
        assert_eq!(m.get(Counter::VmEvents), 10);
        assert_eq!(m.get(Counter::TraceBytesWritten), 123);
        assert_eq!(m.get(Counter::ProfileDeps), 0);
    }

    #[test]
    fn spans_record_wall_and_calls() {
        let m = Metrics::new();
        m.record_span(Stage::Decode, 100);
        m.record_span(Stage::Decode, 50);
        let (wall, calls) = m.stage(Stage::Decode);
        assert_eq!(wall, 150);
        assert_eq!(calls, 2);
        {
            let _g = m.span(Stage::Parse);
        }
        let (_, parse_calls) = m.stage(Stage::Parse);
        assert_eq!(parse_calls, 1);
    }

    #[test]
    fn span_opt_none_is_inert() {
        {
            let _g = span_opt(None, Stage::Exec);
        }
        let m = Metrics::new();
        {
            let _g = span_opt(Some(&m), Stage::Exec);
        }
        assert_eq!(m.stage(Stage::Exec).1, 1);
    }

    #[test]
    fn hist_bucketing() {
        assert_eq!(hist_bucket(0), 0);
        assert_eq!(hist_bucket(1), 1);
        assert_eq!(hist_bucket(2), 2);
        assert_eq!(hist_bucket(3), 2);
        assert_eq!(hist_bucket(4), 3);
        assert_eq!(hist_bucket(1023), 10);
        assert_eq!(hist_bucket(1024), 11);
        assert_eq!(hist_bucket(u64::MAX), HIST_BUCKETS - 1);

        let m = Metrics::new();
        m.observe_ns(Hist::DecodeChunkNs, 0);
        m.observe_ns(Hist::DecodeChunkNs, 3);
        m.observe_ns(Hist::DecodeChunkNs, 1 << 40);
        let (count, total) = m.hist_totals(Hist::DecodeChunkNs);
        assert_eq!(count, 3);
        assert_eq!(total, 3 + (1u64 << 40));
        let buckets = m.hist_buckets(Hist::DecodeChunkNs);
        assert_eq!(buckets[0], 1);
        assert_eq!(buckets[2], 1);
        assert_eq!(buckets.iter().sum::<u64>(), 3);
    }

    #[test]
    fn shard_metrics_merge_by_index() {
        let m = Metrics::new();
        m.record_shard(ShardMetrics {
            shard: 1,
            events: 10,
            mem_events: 8,
            busy_ns: 100,
            ..Default::default()
        });
        m.record_shard(ShardMetrics {
            shard: 0,
            events: 5,
            ..Default::default()
        });
        // Sender-side send-wait merges into the same shard slot.
        m.record_shard(ShardMetrics {
            shard: 1,
            send_wait_ns: 42,
            ..Default::default()
        });
        let shards = m.shards();
        assert_eq!(shards.len(), 2);
        assert_eq!(shards[0].shard, 0);
        assert_eq!(shards[0].events, 5);
        assert_eq!(shards[1].shard, 1);
        assert_eq!(shards[1].events, 10);
        assert_eq!(shards[1].send_wait_ns, 42);
        assert_eq!(shards[1].busy_ns, 100);
    }

    #[test]
    fn thread_quanta_merge_by_tid() {
        let m = Metrics::new();
        m.record_thread_quanta(1, 3);
        m.record_thread_quanta(0, 7);
        m.record_thread_quanta(1, 2);
        assert_eq!(m.sched(), vec![(0, 7), (1, 5)]);
    }
}
