//! Experiment drivers: one function per table/figure of the paper.
//!
//! Each driver returns both structured rows (consumed by tests, which
//! assert the paper's *shape*) and renders a text table comparable to the
//! paper's artifact. The `cargo bench` targets in `benches/` print these.

use alchemist_core::{profile_module, DepKind, ProfileConfig, ProfileReport};
use alchemist_parsim::{extract_tasks, simulate, ExtractConfig, SimConfig};
use alchemist_vm::NullSink;
use alchemist_workloads::{Scale, Workload};
use std::fmt::Write as _;
use std::time::Instant;

/// One row of Table III.
#[derive(Debug, Clone, PartialEq)]
pub struct Table3Row {
    /// Benchmark name.
    pub name: &'static str,
    /// Mini-C source lines.
    pub loc: usize,
    /// Static constructs (functions + predicates).
    pub static_constructs: usize,
    /// Dynamic construct instances profiled.
    pub dynamic_constructs: u64,
    /// Native run wall time, seconds.
    pub orig_secs: f64,
    /// Profiled run wall time, seconds.
    pub prof_secs: f64,
    /// Instructions executed.
    pub steps: u64,
}

impl Table3Row {
    /// Profiling slowdown factor.
    pub fn slowdown(&self) -> f64 {
        if self.orig_secs <= 0.0 {
            return 0.0;
        }
        self.prof_secs / self.orig_secs
    }
}

/// Table III: per benchmark, static/dynamic construct counts and native vs
/// profiled running time.
pub fn table3(scale: Scale) -> Vec<Table3Row> {
    alchemist_workloads::paper_suite()
        .iter()
        .map(|w| table3_row(w, scale))
        .collect()
}

fn table3_row(w: &Workload, scale: Scale) -> Table3Row {
    let module = w.module();
    let exec_cfg = w.exec_config(scale);

    let t0 = Instant::now();
    let native = alchemist_vm::run(&module, &exec_cfg, &mut NullSink)
        .unwrap_or_else(|e| panic!("{} trapped: {e}", w.name));
    let orig_secs = t0.elapsed().as_secs_f64();

    let t1 = Instant::now();
    let (profile, exec, _, _) = profile_module(&module, &exec_cfg, ProfileConfig::default())
        .unwrap_or_else(|e| panic!("{} trapped: {e}", w.name));
    let prof_secs = t1.elapsed().as_secs_f64();
    assert_eq!(
        native.output, exec.output,
        "profiling must not change results"
    );

    let dynamic: u64 = profile.constructs().map(|c| c.inst).sum();
    Table3Row {
        name: w.name,
        loc: w.loc(),
        static_constructs: module.analysis.static_construct_count(module.funcs.len()),
        dynamic_constructs: dynamic,
        orig_secs,
        prof_secs,
        steps: exec.steps,
    }
}

/// Renders Table III in the paper's layout.
pub fn render_table3(rows: &[Table3Row]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<12} {:>6} {:>8} {:>12} {:>10} {:>10} {:>8}",
        "Benchmark", "LOC", "Static", "Dynamic", "Orig.(s)", "Prof.(s)", "Slowdn"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<12} {:>6} {:>8} {:>12} {:>10.4} {:>10.4} {:>7.0}x",
            r.name,
            r.loc,
            r.static_constructs,
            r.dynamic_constructs,
            r.orig_secs,
            r.prof_secs,
            r.slowdown()
        );
    }
    out
}

/// Figures 2 and 3: the gzip profile listing (RAW, then WAR/WAW for the
/// flush_block construct).
pub fn fig2_fig3(scale: Scale) -> String {
    let w = alchemist_workloads::by_name("gzip-1.3.5").expect("gzip workload");
    let (module, profile, _) = w.profile(scale);
    let report = ProfileReport::new(&profile, &module);
    let mut out = String::new();
    let _ = writeln!(out, "=== Fig. 2: gzip ranked RAW profile ===");
    out.push_str(&report.render(10));
    let _ = writeln!(out, "\n=== Fig. 3: flush_block WAR/WAW profile ===");
    if let Some(fb) = report.find("Method flush_block") {
        out.push_str(&report.render_war_waw(fb.head));
    }
    out
}

/// One Fig. 6 dataset: a benchmark's top constructs with normalized sizes
/// and violating-RAW counts, before and (for gzip) after the removal step.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig6Data {
    /// Sub-figure label, e.g. "6(a) gzip".
    pub label: String,
    /// Scatter points for the largest constructs.
    pub points: Vec<alchemist_core::Fig6Point>,
}

/// Figure 6: profile-quality series for gzip (before/after removal),
/// 197.parser, 130.lisp, plus the delaunay negative result.
pub fn fig6(scale: Scale, top_n: usize) -> Vec<Fig6Data> {
    let mut out = Vec::new();

    let gzip = alchemist_workloads::by_name("gzip-1.3.5").expect("gzip");
    let (gm, gp, _) = gzip.profile(scale);
    let greport = ProfileReport::new(&gp, &gm);
    out.push(Fig6Data {
        label: "6(a) gzip".to_owned(),
        points: greport.fig6_series(top_n),
    });
    // 6(b): remove the top-ranked loop construct (C1, the driver loop) and
    // everything with one nested instance per instance of it.
    let c1 = greport
        .ranked()
        .iter()
        .find(|c| c.kind == alchemist_core::ConstructKind::Loop)
        .map(|c| c.head);
    if let Some(c1) = c1 {
        let reduced = greport.remove_with_nested(c1);
        out.push(Fig6Data {
            label: "6(b) gzip after removing C1".to_owned(),
            points: reduced.fig6_series(top_n),
        });
    }

    for (name, label) in [
        ("197.parser", "6(c) 197.parser"),
        ("130.li", "6(d) 130.lisp"),
    ] {
        let w = alchemist_workloads::by_name(name).expect("workload");
        let (m, p, _) = w.profile(scale);
        let report = ProfileReport::new(&p, &m);
        out.push(Fig6Data {
            label: label.to_owned(),
            points: report.fig6_series(top_n),
        });
    }

    let del = alchemist_workloads::by_name("delaunay").expect("delaunay");
    let (dm, dp, _) = del.profile(scale);
    let dreport = ProfileReport::new(&dp, &dm);
    out.push(Fig6Data {
        label: "delaunay (negative result)".to_owned(),
        points: dreport.fig6_series(top_n),
    });
    out
}

/// Renders the Fig. 6 series as text.
pub fn render_fig6(data: &[Fig6Data]) -> String {
    let mut out = String::new();
    for d in data {
        let _ = writeln!(out, "=== Fig. {} ===", d.label);
        let _ = writeln!(
            out,
            "  {:<4} {:<30} {:>10} {:>12} {:>10}",
            "rank", "construct", "norm.size", "norm.violRAW", "violRAW"
        );
        for p in &d.points {
            let _ = writeln!(
                out,
                "  C{:<3} {:<30} {:>10.4} {:>12.4} {:>10}",
                p.rank, p.label, p.norm_size, p.norm_violations, p.violating_raw
            );
        }
        out.push('\n');
    }
    out
}

/// One row of Table IV: a parallelized location and its conflict counts.
#[derive(Debug, Clone, PartialEq)]
pub struct Table4Row {
    /// Benchmark name.
    pub name: &'static str,
    /// Construct label (the "code location" column).
    pub location: String,
    /// Violating static RAW edges.
    pub raw: usize,
    /// Violating static WAW edges.
    pub waw: usize,
    /// Violating static WAR edges.
    pub war: usize,
}

/// Table IV: for every parallelized workload, the profile of each marked
/// construct (static violating RAW/WAW/WAR counts).
pub fn table4(scale: Scale) -> Vec<Table4Row> {
    let mut rows = Vec::new();
    for name in ["bzip2", "ogg", "aes", "par2"] {
        let w = alchemist_workloads::by_name(name).expect("workload");
        let (module, profile, _) = w.profile(scale);
        let report = ProfileReport::new(&profile, &module);
        for &head in &w.resolve_targets(&module) {
            if let Some(c) = report.by_head(head) {
                rows.push(Table4Row {
                    name: w.name,
                    location: c.label.clone(),
                    raw: c.violating_raw,
                    waw: c.violating_waw,
                    war: c.violating_war,
                });
            }
        }
    }
    rows
}

/// Renders Table IV.
pub fn render_table4(rows: &[Table4Row]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<12} {:<34} {:>5} {:>5} {:>5}",
        "Program", "Code location", "RAW", "WAW", "WAR"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<12} {:<34} {:>5} {:>5} {:>5}",
            r.name, r.location, r.raw, r.waw, r.war
        );
    }
    out
}

/// One row of Table V.
#[derive(Debug, Clone, PartialEq)]
pub struct Table5Row {
    /// Benchmark name.
    pub name: &'static str,
    /// Sequential instructions.
    pub seq: u64,
    /// Simulated parallel instructions (makespan).
    pub par: u64,
    /// Simulated speedup.
    pub speedup: f64,
    /// The paper's reported speedup, when available.
    pub paper_speedup: Option<f64>,
    /// Tasks spawned in the simulation.
    pub tasks: usize,
}

/// Table V: simulated 4-thread speedups for every workload with a
/// parallelization recipe (the paper's rows plus the programs it discusses
/// qualitatively).
pub fn table5(scale: Scale, threads: usize) -> Vec<Table5Row> {
    alchemist_workloads::all()
        .iter()
        .filter_map(|w| {
            let spec = w.parallel.as_ref()?;
            let module = w.module();
            let mut cfg = ExtractConfig::default();
            for head in w.resolve_targets(&module) {
                cfg = cfg.mark(head);
            }
            for var in spec.privatized {
                cfg = cfg.privatize(var);
            }
            let trace = extract_tasks(&module, &w.exec_config(scale), cfg)
                .unwrap_or_else(|e| panic!("{} trapped: {e}", w.name));
            let result = simulate(&trace, &SimConfig::with_threads(threads));
            Some(Table5Row {
                name: w.name,
                seq: result.t_seq,
                par: result.t_par,
                speedup: result.speedup,
                paper_speedup: spec.paper_speedup,
                tasks: result.tasks,
            })
        })
        .collect()
}

/// Renders Table V.
pub fn render_table5(rows: &[Table5Row]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<12} {:>12} {:>12} {:>9} {:>8} {:>7}",
        "Benchmark", "Seq.(inst)", "Par.(inst)", "Speedup", "Paper", "Tasks"
    );
    for r in rows {
        let paper = r
            .paper_speedup
            .map(|s| format!("{s:.2}"))
            .unwrap_or_else(|| "-".to_owned());
        let _ = writeln!(
            out,
            "{:<12} {:>12} {:>12} {:>8.2}x {:>8} {:>7}",
            r.name, r.seq, r.par, r.speedup, paper, r.tasks
        );
    }
    out
}

/// Pool-size ablation (E13): profile gzip with shrinking pools; report
/// reuse/overflow behaviour and whether violating-RAW counts survive.
#[derive(Debug, Clone, PartialEq)]
pub struct PoolAblationRow {
    /// Configured capacity.
    pub capacity: usize,
    /// Peak nodes allocated.
    pub allocated: usize,
    /// Reuses of retired nodes.
    pub reused: u64,
    /// Forced growths past capacity.
    pub overflow_growths: u64,
    /// Total violating static RAW edges found.
    pub total_violating_raw: usize,
}

/// Runs the pool ablation on one workload.
pub fn pool_ablation(name: &str, scale: Scale, capacities: &[usize]) -> Vec<PoolAblationRow> {
    let w = alchemist_workloads::by_name(name).expect("workload");
    let module = w.module();
    capacities
        .iter()
        .map(|&capacity| {
            let cfg = ProfileConfig {
                pool_capacity: capacity,
                ..Default::default()
            };
            let (profile, _, stats, _) = profile_module(&module, &w.exec_config(scale), cfg)
                .unwrap_or_else(|e| panic!("{name} trapped: {e}"));
            PoolAblationRow {
                capacity,
                allocated: stats.allocated,
                reused: stats.reused,
                overflow_growths: stats.overflow_growths,
                total_violating_raw: profile.total_violating(DepKind::Raw),
            }
        })
        .collect()
}

/// Renders the pool ablation.
pub fn render_pool_ablation(name: &str, rows: &[PoolAblationRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "pool ablation: {name}");
    let _ = writeln!(
        out,
        "{:>10} {:>10} {:>10} {:>10} {:>14}",
        "capacity", "allocated", "reused", "growths", "violatingRAW"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:>10} {:>10} {:>10} {:>10} {:>14}",
            r.capacity, r.allocated, r.reused, r.overflow_growths, r.total_violating_raw
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_covers_all_benchmarks_and_counts() {
        let rows = table3(Scale::Tiny);
        assert_eq!(rows.len(), 8);
        for r in &rows {
            assert!(r.static_constructs > 0, "{}", r.name);
            assert!(
                r.dynamic_constructs > r.static_constructs as u64,
                "{}",
                r.name
            );
            assert!(r.steps > 0);
        }
        let text = render_table3(&rows);
        assert!(text.contains("gzip-1.3.5"));
        assert!(text.contains("delaunay"));
    }

    #[test]
    fn fig2_mentions_flush_block_and_raw_edges() {
        let text = fig2_fig3(Scale::Tiny);
        assert!(text.contains("Method flush_block"), "{text}");
        assert!(text.contains("RAW: line"), "{text}");
        assert!(
            text.contains("WAW: line") || text.contains("WAR: line"),
            "{text}"
        );
    }

    #[test]
    fn fig6_has_five_series() {
        let data = fig6(Scale::Tiny, 8);
        assert_eq!(data.len(), 5);
        let text = render_fig6(&data);
        assert!(text.contains("6(a) gzip"));
        assert!(text.contains("6(b)"));
        assert!(text.contains("6(c) 197.parser"));
        assert!(text.contains("6(d) 130.lisp"));
        assert!(text.contains("delaunay"));
    }

    #[test]
    fn fig6_delaunay_has_heavy_violations() {
        let data = fig6(Scale::Tiny, 8);
        let del = data.last().unwrap();
        let max_viol = del
            .points
            .iter()
            .map(|p| p.violating_raw)
            .max()
            .unwrap_or(0);
        assert!(
            max_viol >= 5,
            "delaunay's hot constructs must show many violating RAW deps, got {max_viol}"
        );
    }

    #[test]
    fn table4_reports_marked_constructs() {
        let rows = table4(Scale::Tiny);
        assert!(rows.len() >= 5, "bzip2 + ogg + aes + 2x par2: {rows:?}");
        let aes = rows.iter().find(|r| r.name == "aes").unwrap();
        assert!(
            aes.waw + aes.war > 0,
            "aes must show ivec conflicts: {aes:?}"
        );
    }

    #[test]
    fn table5_speedups_fall_in_expected_ranges() {
        let rows = table5(Scale::Small, 4);
        for r in &rows {
            let w = alchemist_workloads::by_name(r.name).unwrap();
            let (lo, hi) = w.parallel.as_ref().unwrap().expected_speedup;
            assert!(
                r.speedup >= lo && r.speedup <= hi,
                "{}: simulated {:.2} outside [{lo}, {hi}]",
                r.name,
                r.speedup
            );
        }
    }

    #[test]
    fn pool_ablation_reports_reuse_under_pressure() {
        let rows = pool_ablation("gzip-1.3.5", Scale::Tiny, &[16, 1024, 1_000_000]);
        assert_eq!(rows.len(), 3);
        assert!(rows[0].reused > 0, "tiny pool must recycle: {rows:?}");
        assert_eq!(
            rows[2].reused, 0,
            "paper-size pool never needs to recycle at this scale"
        );
    }
}
