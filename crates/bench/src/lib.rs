//! # alchemist-bench
//!
//! The benchmark harness regenerating every table and figure of the
//! Alchemist paper (CGO 2009). See [`experiments`] for the per-artifact
//! drivers; the `benches/` targets print them under `cargo bench`.

#![warn(missing_docs)]

pub mod experiments;

pub use experiments::{
    fig2_fig3, fig6, pool_ablation, render_fig6, render_pool_ablation, render_table3,
    render_table4, render_table5, table3, table4, table5, Fig6Data, PoolAblationRow, Table3Row,
    Table4Row, Table5Row,
};
