//! Regenerates the paper's Fig. 6: normalized construct size vs violating
//! static RAW dependences for gzip (before/after the removal step),
//! 197.parser and 130.lisp, plus the delaunay negative result (section
//! IV-B1: hot constructs with very many violating RAW dependences).

use alchemist_bench::{fig6, render_fig6};
use alchemist_workloads::Scale;

fn main() {
    let data = fig6(Scale::Default, 10);
    print!("{}", render_fig6(&data));
}
