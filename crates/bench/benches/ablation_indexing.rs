//! Indexing ablation (DESIGN.md E14): what the execution-index tree buys
//! over plain aggregation by static construct.
//!
//! The paper's section III argues context-insensitive profiles cannot
//! distinguish (a) same-iteration, (b) cross-iteration and (c) cross-call
//! dependences of the same static edge — and that calling-context
//! sensitivity alone is not enough either (the F/A/B example). This
//! ablation profiles that exact example and prints, per nesting construct,
//! the verdict Alchemist reaches vs what a flat profile would conclude.

use alchemist_core::{
    profile_module, ConstructKind, DepKind, IndexMode, ProfileConfig, ProfileReport,
};
use alchemist_vm::{compile_source, ExecConfig};

// The paper's "Inadequacy of Context Sensitivity" example: dependences
// between A() and B() at four different nesting distances.
const SRC: &str = "
int cell_same_j[4];
int cell_cross_j[4];
int cell_cross_i[4];
int cell_cross_f[4];
void a(int i, int j) {
    cell_same_j[0] = i + j;                 // consumed in the same j iter
    if (j == 0) cell_cross_j[0] = i;        // consumed next j iteration
    if (i == 0 && j == 0) cell_cross_i[0] = 1;   // consumed next i iter
    cell_cross_f[0] = cell_cross_f[0] + 1;  // consumed by the next F() call
}
void b(int i, int j) {
    int x = cell_same_j[0];
    int y = j > 0 ? cell_cross_j[0] : 0;
    int z = i > 0 ? cell_cross_i[0] : 0;
    cell_same_j[1] = x + y + z;
}
void f() {
    int i;
    int j;
    for (i = 0; i < 3; i++) {
        for (j = 0; j < 3; j++) {
            a(i, j);
            b(i, j);
        }
    }
}
int main() { f(); f(); return cell_cross_f[0]; }
";

fn main() {
    let module = compile_source(SRC).expect("example compiles");
    let (profile, exec, _, _) =
        profile_module(&module, &ExecConfig::default(), ProfileConfig::default())
            .expect("example runs");
    let _ = exec;
    let report = ProfileReport::new(&profile, &module);
    println!("=== Indexing ablation: the paper's F/A/B nesting example ===\n");
    println!("A static profiler sees *one* edge set for A->B. Alchemist");
    println!("attributes each dynamic dependence to exactly the constructs");
    println!("whose boundaries it crosses:\n");
    for c in report.ranked() {
        if !matches!(c.kind, ConstructKind::Loop | ConstructKind::Method) {
            continue;
        }
        let raws: Vec<String> = c
            .edges_of(DepKind::Raw)
            .map(|e| {
                format!(
                    "{} (line {} -> {}, Tdep={})",
                    e.var.as_deref().unwrap_or("?"),
                    e.head_line,
                    e.tail_line,
                    e.min_tdep
                )
            })
            .collect();
        println!(
            "{:<22} inst={:<4} crossing RAW: {}",
            c.label,
            c.inst,
            if raws.is_empty() {
                "none".to_owned()
            } else {
                raws.join(", ")
            }
        );
    }
    println!();
    println!("Expected shape: the j loop carries only the cross-j cell, the");
    println!("i loop additionally the cross-i cell, and Method f only the");
    println!("cross-call cell — none of which a flat or purely");
    println!("calling-context-sensitive profile can separate.");

    // The baseline: calling-context-only indexing (the paper's section III
    // comparison). Loop constructs vanish; every intra-invocation
    // dependence becomes invisible or smeared onto the procedures.
    let ctx_cfg = ProfileConfig {
        index_mode: IndexMode::CallContextOnly,
        ..ProfileConfig::default()
    };
    let (ctx_profile, ..) = profile_module(&module, &ExecConfig::default(), ctx_cfg).expect("runs");
    let ctx_report = ProfileReport::new(&ctx_profile, &module);
    println!();
    println!("--- calling-context-only baseline on the same run ---\n");
    for c in ctx_report.ranked() {
        let raws = c.edges_of(DepKind::Raw).count();
        println!(
            "{:<22} inst={:<4} crossing RAW edges: {}",
            c.label, c.inst, raws
        );
    }
    let full_constructs = report.ranked().len();
    let ctx_constructs = ctx_report.ranked().len();
    println!();
    println!(
        "full indexing distinguishes {full_constructs} constructs; the \
         context-only baseline {ctx_constructs} — the i/j loop verdicts \
         (parallelizable or not) are simply absent."
    );
}
