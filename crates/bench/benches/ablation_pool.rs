//! Pool-size ablation (DESIGN.md E13): the paper bounds profiler memory
//! with a 1M-entry construct pool and lazy retirement (Table I, Theorem 1)
//! and reports that the pool never overflowed. This ablation shrinks the
//! pool and shows (a) reuse kicking in, (b) overflow growths staying at
//! zero for generous pools, and (c) the profile's violating-RAW counts
//! surviving aggressive reuse.

use alchemist_bench::{pool_ablation, render_pool_ablation};
use alchemist_workloads::Scale;

fn main() {
    for name in ["gzip-1.3.5", "bzip2"] {
        let rows = pool_ablation(name, Scale::Default, &[8, 64, 1024, 65536, 1_000_000]);
        print!("{}", render_pool_ablation(name, &rows));
        println!();
    }
}
