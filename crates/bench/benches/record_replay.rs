//! Record/replay microbenchmarks: live (instrumented) profiling vs
//! recording a trace vs replaying a recorded trace into the profiler —
//! sequentially and through the address-sharded parallel pipeline — plus a
//! bytes-per-event report for the trace encoding and per-shard event
//! counts for the parallel split.
//!
//! The point of the trace subsystem is that the interpreter runs once and
//! every further analysis becomes an offline pass; `replay_profile`
//! measures exactly that offline cost next to `live_profile`'s pay-per-
//! analysis re-execution, and `replay_profile_par{2,4}` measure the
//! sharded pipeline (chunk-parallel decode + one shadow shard per worker,
//! merged to the identical profile). Control events are broadcast to every
//! shard, so sharding only wins on memory-dominated traces — the per-shard
//! counts printed above the timings show both the balance of the address
//! split and the broadcast fraction that bounds the speedup.

use alchemist_core::{
    profile_events_par, profile_module, shard_event_counts, AlchemistProfiler, ProfileConfig,
};
use alchemist_trace::{decode_events_par, TraceReader, TraceStats, TraceWriter};
use alchemist_workloads::Scale;
use criterion::{criterion_group, criterion_main, Criterion};

fn record_bytes(w: &alchemist_workloads::Workload) -> (Vec<u8>, TraceStats) {
    let module = w.module();
    let mut writer = TraceWriter::new(Vec::new(), Some(w.source)).expect("header");
    let outcome =
        alchemist_vm::run(&module, &w.exec_config(Scale::Tiny), &mut writer).expect("runs");
    writer.finish(outcome.steps).expect("finish")
}

fn bench_workload(c: &mut Criterion, name: &'static str) {
    let w = alchemist_workloads::by_name(name).expect("workload");
    let module = w.module();
    let cfg = w.exec_config(Scale::Tiny);
    let (bytes, stats) = record_bytes(w);
    println!(
        "{name}: trace is {} bytes for {} events ({:.2} bytes/event, {} chunks)",
        stats.bytes,
        stats.events,
        stats.bytes_per_event(),
        stats.chunks
    );
    let (events, summary) =
        decode_events_par(TraceReader::new(bytes.as_slice()).expect("header"), 4).expect("decode");
    for jobs in [2usize, 4] {
        let counts = shard_event_counts(&events, jobs);
        let shares: Vec<String> = counts.iter().map(|n| n.to_string()).collect();
        println!(
            "{name}: memory events per shard at --jobs {jobs}: {}",
            shares.join(", ")
        );
    }

    let mut group = c.benchmark_group(name);
    group.bench_function("live_profile", |b| {
        b.iter(|| profile_module(&module, &cfg, ProfileConfig::default()).expect("runs"))
    });
    group.bench_function("record", |b| {
        b.iter(|| {
            let mut writer = TraceWriter::new(Vec::new(), Some(w.source)).expect("header");
            let outcome = alchemist_vm::run(&module, &cfg, &mut writer).expect("runs");
            writer.finish(outcome.steps).expect("finish")
        })
    });
    // Sequential replay: stream the decode straight into one profiler.
    group.bench_function("replay_profile", |b| {
        b.iter(|| {
            let mut reader = TraceReader::new(bytes.as_slice()).expect("header");
            let mut prof = AlchemistProfiler::new(&module, ProfileConfig::default());
            let summary = reader.replay_into(&mut prof).expect("replay");
            prof.into_profile(summary.total_steps)
        })
    });
    // Parallel replay, full pipeline: chunk-parallel decode plus N address
    // shards (what `replay --jobs N` runs).
    for jobs in [2usize, 4] {
        group.bench_function(&format!("replay_profile_par{jobs}"), |b| {
            b.iter(|| {
                let reader = TraceReader::new(bytes.as_slice()).expect("header");
                let (events, summary) = decode_events_par(reader, jobs).expect("decode");
                let (profile, _, _) = profile_events_par(
                    &module,
                    &events,
                    summary.total_steps,
                    ProfileConfig::default(),
                    jobs,
                );
                profile
            })
        });
    }
    // Analysis-only parallel replay over pre-decoded events (isolates the
    // sharded-shadow speedup from the decode).
    group.bench_function("analysis_par4_predecoded", |b| {
        b.iter(|| {
            let (profile, _, _) = profile_events_par(
                &module,
                &events,
                summary.total_steps,
                ProfileConfig::default(),
                4,
            );
            profile
        })
    });
    group.finish();
}

fn benches(c: &mut Criterion) {
    bench_workload(c, "gzip-1.3.5");
    bench_workload(c, "aes");
}

criterion_group!(
    name = suite;
    config = Criterion::default().sample_size(10);
    targets = benches
);
criterion_main!(suite);
