//! Record/replay microbenchmarks: live (instrumented) profiling vs
//! recording a trace vs replaying a recorded trace into the profiler —
//! per-event and batched, sequentially and through the address-sharded
//! parallel pipeline — plus a bytes-per-event report for the trace
//! encoding and per-shard event counts for the parallel split.
//!
//! The point of the trace subsystem is that the interpreter runs once and
//! every further analysis becomes an offline pass; `replay_profile`
//! measures exactly that offline cost next to `live_profile`'s pay-per-
//! analysis re-execution. Each stage then has a batched twin so the
//! speedup of moving `EventBatch`es instead of single events is
//! *measured*, not asserted:
//!
//! * `record` vs `record_batched` — per-event `TraceSink` calls into the
//!   writer vs interpreter-side batching (`ExecConfig::batch_events`)
//!   flushing whole batches into `TraceWriter::on_batch`;
//! * `replay_profile` vs `replay_profile_batched` — event-at-a-time
//!   dispatch vs `replay_batched_into` feeding the profiler's `on_batch`;
//! * `replay_profile_par{2,4}` vs `replay_profile_batched_par{2,4}` — the
//!   `--jobs N` pipeline: per-event shard filtering (every worker scans
//!   the whole stream) vs `decode_batches_par` + single-pass batch
//!   partitioning (`profile_batches_par`).
//!
//! The batched paths are verified at setup to produce byte-identical
//! `.alct` bytes and an equal `DepProfile`, so the timings compare equal
//! work. Control events are broadcast to every shard, so sharding only
//! wins on memory-dominated traces — the per-shard counts printed above
//! the timings show both the balance of the address split and the
//! broadcast fraction that bounds the speedup.
//!
//! Set `ALCHEMIST_BENCH_QUICK=1` to run a single short iteration per
//! benchmark on one workload (the CI smoke mode: proves the harness still
//! compiles and runs without paying for stable statistics).

use alchemist_core::{
    profile_batches_par, profile_events_par, profile_module, shard_event_counts, AlchemistProfiler,
    ProfileConfig,
};
use alchemist_trace::{
    decode_batches_par, decode_events_par, MultiSink, TraceReader, TraceStats, TraceWriter,
};
use alchemist_vm::{CountingSink, ExecConfig, TraceSink, DEFAULT_BATCH_EVENTS};
use alchemist_workloads::Scale;
use criterion::{criterion_group, criterion_main, Criterion};

fn quick_mode() -> bool {
    std::env::var_os("ALCHEMIST_BENCH_QUICK").is_some()
}

fn record_bytes(w: &alchemist_workloads::Workload, batch_events: usize) -> (Vec<u8>, TraceStats) {
    let module = w.module();
    let cfg = ExecConfig {
        batch_events,
        ..w.exec_config(Scale::Tiny)
    };
    let mut writer = if module.uses_threads() {
        TraceWriter::new_v2(Vec::new(), Some(w.source))
    } else {
        TraceWriter::new(Vec::new(), Some(w.source))
    }
    .expect("header");
    let outcome = alchemist_vm::run(&module, &cfg, &mut writer).expect("runs");
    writer.finish(outcome.steps).expect("finish")
}

fn bench_workload(c: &mut Criterion, name: &'static str) {
    let w = alchemist_workloads::by_name(name).expect("workload");
    let module = w.module();
    let cfg = w.exec_config(Scale::Tiny);
    let batched_cfg = ExecConfig {
        batch_events: DEFAULT_BATCH_EVENTS,
        ..w.exec_config(Scale::Tiny)
    };
    let (bytes, stats) = record_bytes(w, 0);
    // The batched pipeline must do identical work before its speed means
    // anything: identical bytes on record, equal profile on replay.
    let (batched_bytes, _) = record_bytes(w, DEFAULT_BATCH_EVENTS);
    assert_eq!(
        batched_bytes, bytes,
        "{name}: batched recording must be byte-identical"
    );
    println!(
        "{name}: trace is {} bytes for {} events ({:.2} bytes/event, {} chunks)",
        stats.bytes,
        stats.events,
        stats.bytes_per_event(),
        stats.chunks
    );
    let (events, summary) =
        decode_events_par(TraceReader::new(bytes.as_slice()).expect("header"), 4).expect("decode");
    let (batches, _) = decode_batches_par(TraceReader::new(bytes.as_slice()).expect("header"), 4)
        .expect("batch decode");
    {
        let (seq, ..) = profile_module(&module, &cfg, ProfileConfig::default()).expect("runs");
        let (bat, ..) = profile_batches_par(
            &module,
            &batches,
            summary.total_steps,
            ProfileConfig::default(),
            4,
        )
        .expect("no shard panic");
        assert_eq!(bat, seq, "{name}: batched sharded profile must be equal");
    }
    for jobs in [2usize, 4] {
        let counts = shard_event_counts(&events, jobs);
        let shares: Vec<String> = counts.iter().map(|n| n.to_string()).collect();
        println!(
            "{name}: memory events per shard at --jobs {jobs}: {}",
            shares.join(", ")
        );
    }

    let mut group = c.benchmark_group(name);
    if quick_mode() {
        group.sample_size(1);
    }
    group.bench_function("live_profile", |b| {
        b.iter(|| profile_module(&module, &cfg, ProfileConfig::default()).expect("runs"))
    });
    // Recording: per-event writer calls vs interpreter-side batching.
    group.bench_function("record", |b| {
        b.iter(|| {
            let mut writer = TraceWriter::new(Vec::new(), Some(w.source)).expect("header");
            let outcome = alchemist_vm::run(&module, &cfg, &mut writer).expect("runs");
            writer.finish(outcome.steps).expect("finish")
        })
    });
    group.bench_function("record_batched", |b| {
        b.iter(|| {
            let mut writer = TraceWriter::new(Vec::new(), Some(w.source)).expect("header");
            let outcome = alchemist_vm::run(&module, &batched_cfg, &mut writer).expect("runs");
            writer.finish(outcome.steps).expect("finish")
        })
    });
    // Sequential replay: stream the decode straight into one profiler,
    // event at a time vs one on_batch call per block.
    group.bench_function("replay_profile", |b| {
        b.iter(|| {
            let mut reader = TraceReader::new(bytes.as_slice()).expect("header");
            let mut prof = AlchemistProfiler::new(&module, ProfileConfig::default());
            let summary = reader.replay_into(&mut prof).expect("replay");
            prof.into_profile(summary.total_steps)
        })
    });
    group.bench_function("replay_profile_batched", |b| {
        b.iter(|| {
            let mut reader = TraceReader::new(bytes.as_slice()).expect("header");
            let mut prof = AlchemistProfiler::new(&module, ProfileConfig::default());
            let summary = reader
                .replay_batched_into(&mut prof, DEFAULT_BATCH_EVENTS)
                .expect("replay");
            prof.into_profile(summary.total_steps)
        })
    });
    // Parallel replay, full pipeline (what `replay --jobs N` runs):
    // per-event shard filtering vs batch decode + single-pass partitioning.
    for jobs in [2usize, 4] {
        group.bench_function(&format!("replay_profile_par{jobs}"), |b| {
            b.iter(|| {
                let reader = TraceReader::new(bytes.as_slice()).expect("header");
                let (events, summary) = decode_events_par(reader, jobs).expect("decode");
                let (profile, _, _) = profile_events_par(
                    &module,
                    &events,
                    summary.total_steps,
                    ProfileConfig::default(),
                    jobs,
                )
                .expect("no shard panic");
                profile
            })
        });
        group.bench_function(&format!("replay_profile_batched_par{jobs}"), |b| {
            b.iter(|| {
                let reader = TraceReader::new(bytes.as_slice()).expect("header");
                let (batches, summary) = decode_batches_par(reader, jobs).expect("decode");
                let (profile, _, _) = profile_batches_par(
                    &module,
                    &batches,
                    summary.total_steps,
                    ProfileConfig::default(),
                    jobs,
                )
                .expect("no shard panic");
                profile
            })
        });
    }
    // Analysis-only parallel replay over pre-decoded input (isolates the
    // sharded-shadow speedup from the decode), per-event vs batched.
    group.bench_function("analysis_par4_predecoded", |b| {
        b.iter(|| {
            let (profile, _, _) = profile_events_par(
                &module,
                &events,
                summary.total_steps,
                ProfileConfig::default(),
                4,
            )
            .expect("no shard panic");
            profile
        })
    });
    group.bench_function("analysis_batched_par4_predecoded", |b| {
        b.iter(|| {
            let (profile, _, _) = profile_batches_par(
                &module,
                &batches,
                summary.total_steps,
                ProfileConfig::default(),
                4,
            )
            .expect("no shard panic");
            profile
        })
    });
    // Fan-out: the dynamic-dispatch case batching exists for. A MultiSink
    // holds `dyn TraceSink` consumers, so the per-event path pays three
    // virtual calls per event; the batched path pays three per *batch*
    // (what `replay --analysis profile,advise,stats` runs).
    group.bench_function("fanout3_per_event", |b| {
        b.iter(|| {
            let mut c1 = CountingSink::default();
            let mut c2 = CountingSink::default();
            let mut c3 = CountingSink::default();
            let mut fan = MultiSink::new();
            fan.push(&mut c1).push(&mut c2).push(&mut c3);
            for ev in &events {
                ev.dispatch(&mut fan);
            }
            drop(fan);
            (c1, c2, c3)
        })
    });
    group.bench_function("fanout3_batched", |b| {
        b.iter(|| {
            let mut c1 = CountingSink::default();
            let mut c2 = CountingSink::default();
            let mut c3 = CountingSink::default();
            let mut fan = MultiSink::new();
            fan.push(&mut c1).push(&mut c2).push(&mut c3);
            for batch in &batches {
                fan.on_batch(batch);
            }
            drop(fan);
            (c1, c2, c3)
        })
    });
    group.finish();
}

fn benches(c: &mut Criterion) {
    bench_workload(c, "gzip-1.3.5");
    if !quick_mode() {
        bench_workload(c, "aes");
    }
}

criterion_group!(
    name = suite;
    config = Criterion::default().sample_size(10);
    targets = benches
);
criterion_main!(suite);
