//! Record/replay microbenchmarks: live (instrumented) profiling vs
//! recording a trace vs replaying a recorded trace into the profiler, plus
//! a bytes-per-event report for the trace encoding.
//!
//! The point of the trace subsystem is that the interpreter runs once and
//! every further analysis becomes an offline pass; `replay_profile`
//! measures exactly that offline cost next to `live_profile`'s pay-per-
//! analysis re-execution.

use alchemist_core::{profile_module, AlchemistProfiler, ProfileConfig};
use alchemist_trace::{TraceReader, TraceStats, TraceWriter};
use alchemist_workloads::Scale;
use criterion::{criterion_group, criterion_main, Criterion};

fn record_bytes(w: &alchemist_workloads::Workload) -> (Vec<u8>, TraceStats) {
    let module = w.module();
    let mut writer = TraceWriter::new(Vec::new(), Some(w.source)).expect("header");
    let outcome =
        alchemist_vm::run(&module, &w.exec_config(Scale::Tiny), &mut writer).expect("runs");
    writer.finish(outcome.steps).expect("finish")
}

fn bench_workload(c: &mut Criterion, name: &'static str) {
    let w = alchemist_workloads::by_name(name).expect("workload");
    let module = w.module();
    let cfg = w.exec_config(Scale::Tiny);
    let (bytes, stats) = record_bytes(w);
    println!(
        "{name}: trace is {} bytes for {} events ({:.2} bytes/event, {} chunks)",
        stats.bytes,
        stats.events,
        stats.bytes_per_event(),
        stats.chunks
    );

    let mut group = c.benchmark_group(name);
    group.bench_function("live_profile", |b| {
        b.iter(|| profile_module(&module, &cfg, ProfileConfig::default()).expect("runs"))
    });
    group.bench_function("record", |b| {
        b.iter(|| {
            let mut writer = TraceWriter::new(Vec::new(), Some(w.source)).expect("header");
            let outcome = alchemist_vm::run(&module, &cfg, &mut writer).expect("runs");
            writer.finish(outcome.steps).expect("finish")
        })
    });
    group.bench_function("replay_profile", |b| {
        b.iter(|| {
            let mut reader = TraceReader::new(bytes.as_slice()).expect("header");
            let mut prof = AlchemistProfiler::new(&module, ProfileConfig::default());
            let summary = reader.replay_into(&mut prof).expect("replay");
            prof.into_profile(summary.total_steps)
        })
    });
    group.finish();
}

fn benches(c: &mut Criterion) {
    bench_workload(c, "gzip-1.3.5");
    bench_workload(c, "aes");
}

criterion_group!(
    name = suite;
    config = Criterion::default().sample_size(10);
    targets = benches
);
criterion_main!(suite);
