//! Machine-readable perf harness: measures ns/event for the profiling hot
//! paths over every bundled workload and writes the results as JSON.
//!
//! This is the driver behind `BENCH_5.json` (the repo's perf trajectory):
//!
//! ```text
//! cargo bench -p alchemist-bench --bench perf_json -- --out BENCH_5.json
//! ```
//!
//! Paths measured per workload (all at `Scale::Tiny`):
//!
//! * `live_profile` — run the interpreter with the online profiler attached
//!   (the paper's Table III configuration);
//! * `live_profile_metrics` — the same path with an `obs::Metrics` handle
//!   attached to the interpreter (the `--metrics` configuration); the
//!   harness asserts the aggregate overhead stays under 5% ns/event;
//! * `replay_profile_batched` — sequential batched replay of a recorded
//!   trace into the profiler;
//! * `replay_profile_batched_par4` — the full `replay --jobs 4` pipeline
//!   (chunk-parallel decode + address-sharded batched profiling).
//!
//! Every sample is a full pass over the workload's event stream; the
//! reported figure is the **best** of `--iters N` passes (default 5)
//! divided by the stream's event count. `ALCHEMIST_BENCH_QUICK=1` drops to
//! one pass per path (the CI smoke mode).
//!
//! The output is a JSON array of `{workload, path, events, ns_per_event}`
//! objects — stable keys, one object per (workload, path) pair — so perf
//! trajectories can be diffed across commits without scraping bench logs.

use alchemist_core::{profile_batches_par, AlchemistProfiler, ProfileConfig};
use alchemist_obs::{Counter, Metrics};
use alchemist_trace::{decode_batches_par, TraceReader, TraceWriter};
use alchemist_vm::DEFAULT_BATCH_EVENTS;
use alchemist_workloads::Scale;
use std::io::Write as _;
use std::time::Instant;

fn quick_mode() -> bool {
    std::env::var_os("ALCHEMIST_BENCH_QUICK").is_some()
}

struct Row {
    workload: &'static str,
    path: &'static str,
    events: u64,
    ns_per_event: f64,
}

/// Times `f` (one full pass per call) `iters` times; returns best-of ns.
fn best_of<F: FnMut()>(iters: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_nanos() as f64);
    }
    best
}

/// Accumulated best-of wall times for the metrics-overhead gate:
/// `(live_profile_ns, live_profile_metrics_ns)`, summed over workloads.
type OverheadTotals = (f64, f64);

fn measure_workload(
    w: &alchemist_workloads::Workload,
    iters: usize,
    rows: &mut Vec<Row>,
    totals: &mut OverheadTotals,
) {
    let module = w.module();
    let cfg = w.exec_config(Scale::Tiny);

    // Record once; every replay path reuses these bytes. Threaded
    // workloads need the v2 tid column; single-threaded ones stay on v1.
    let mut writer = if module.uses_threads() {
        TraceWriter::new_v2(Vec::new(), Some(w.source))
    } else {
        TraceWriter::new(Vec::new(), Some(w.source))
    }
    .expect("header");
    let outcome = alchemist_vm::run(&module, &cfg, &mut writer).expect("workload runs");
    let (bytes, stats) = writer.finish(outcome.steps).expect("finish");
    let events = stats.events;

    // The live/metrics pair feeds the overhead assertion, so even quick
    // mode takes best-of-3: the minimum converges on the true pass time
    // and keeps a one-shot scheduling hiccup from tripping the gate.
    let oiters = iters.max(3);
    let live_ns = best_of(oiters, || {
        let mut prof = AlchemistProfiler::new(&module, ProfileConfig::default());
        alchemist_vm::run(&module, &cfg, &mut prof).expect("workload runs");
        let _ = std::hint::black_box(prof.into_profile(outcome.steps));
    });
    rows.push(Row {
        workload: w.name,
        path: "live_profile",
        events,
        ns_per_event: live_ns / events as f64,
    });

    let metrics_ns = best_of(oiters, || {
        let metrics = Metrics::new();
        let mut prof = AlchemistProfiler::new(&module, ProfileConfig::default());
        alchemist_vm::run_with_metrics(&module, &cfg, &mut prof, Some(&metrics))
            .expect("workload runs");
        let _ = std::hint::black_box(prof.into_profile(outcome.steps));
        assert_eq!(
            metrics.get(Counter::VmEvents),
            events,
            "meter sees every event"
        );
    });
    rows.push(Row {
        workload: w.name,
        path: "live_profile_metrics",
        events,
        ns_per_event: metrics_ns / events as f64,
    });
    totals.0 += live_ns;
    totals.1 += metrics_ns;

    let seq_ns = best_of(iters, || {
        let mut reader = TraceReader::new(bytes.as_slice()).expect("header");
        let mut prof = AlchemistProfiler::new(&module, ProfileConfig::default());
        let summary = reader
            .replay_batched_into(&mut prof, DEFAULT_BATCH_EVENTS)
            .expect("replay");
        let _ = std::hint::black_box(prof.into_profile(summary.total_steps));
    });
    rows.push(Row {
        workload: w.name,
        path: "replay_profile_batched",
        events,
        ns_per_event: seq_ns / events as f64,
    });

    let par_ns = best_of(iters, || {
        let reader = TraceReader::new(bytes.as_slice()).expect("header");
        let (batches, summary) = decode_batches_par(reader, 4).expect("decode");
        let (profile, _, _) = profile_batches_par(
            &module,
            &batches,
            summary.total_steps,
            ProfileConfig::default(),
            4,
        );
        let _ = std::hint::black_box(profile);
    });
    rows.push(Row {
        workload: w.name,
        path: "replay_profile_batched_par4",
        events,
        ns_per_event: par_ns / events as f64,
    });
}

fn render_json(rows: &[Row]) -> String {
    let mut out = String::from("[\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"workload\": \"{}\", \"path\": \"{}\", \"events\": {}, \
             \"ns_per_event\": {:.2}}}{}\n",
            r.workload,
            r.path,
            r.events,
            r.ns_per_event,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("]\n");
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path: Option<String> = std::env::var("ALCHEMIST_BENCH_JSON").ok();
    let mut iters = if quick_mode() { 1 } else { 5 };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => out_path = Some(it.next().expect("--out needs a path").clone()),
            "--iters" => {
                iters = it
                    .next()
                    .expect("--iters needs a value")
                    .parse()
                    .expect("--iters: not a number");
            }
            // `cargo bench` forwards harness flags like `--bench`; ignore.
            _ => {}
        }
    }

    let mut rows = Vec::new();
    let mut totals: OverheadTotals = (0.0, 0.0);
    for w in alchemist_workloads::all() {
        eprintln!("measuring {} ({} passes per path)...", w.name, iters);
        measure_workload(w, iters, &mut rows, &mut totals);
    }

    // Metrics must be observationally free: aggregated over every workload
    // (so per-workload timer noise averages out), attaching a Metrics
    // handle to the live profiling path may cost at most 5% ns/event. The
    // small absolute slack absorbs clock granularity on sub-ms passes.
    let (base_ns, metered_ns) = totals;
    let overhead = (metered_ns - base_ns) / base_ns * 100.0;
    eprintln!(
        "metrics-on overhead: {overhead:+.2}% ({:.3} ms -> {:.3} ms aggregate best-of)",
        base_ns / 1e6,
        metered_ns / 1e6
    );
    assert!(
        metered_ns <= base_ns * 1.05 + 50_000.0,
        "metrics-on live profiling exceeded the 5% overhead budget: \
         {base_ns:.0} ns -> {metered_ns:.0} ns ({overhead:+.2}%)"
    );

    let json = render_json(&rows);
    match out_path {
        Some(path) => {
            let mut f = std::fs::File::create(&path)
                .unwrap_or_else(|e| panic!("cannot create {path}: {e}"));
            f.write_all(json.as_bytes()).expect("write json");
            eprintln!("wrote {} rows to {path}", rows.len());
        }
        None => print!("{json}"),
    }
}
