//! Machine-readable perf harness: measures ns/event for the profiling hot
//! paths over every bundled workload and writes the results as JSON.
//!
//! This is the driver behind `BENCH_5.json` (the repo's perf trajectory):
//!
//! ```text
//! cargo bench -p alchemist-bench --bench perf_json -- --out BENCH_5.json
//! ```
//!
//! Paths measured per workload (all at `Scale::Tiny`):
//!
//! * `live_profile` — run the interpreter with the online profiler attached
//!   (the paper's Table III configuration);
//! * `replay_profile_batched` — sequential batched replay of a recorded
//!   trace into the profiler;
//! * `replay_profile_batched_par4` — the full `replay --jobs 4` pipeline
//!   (chunk-parallel decode + address-sharded batched profiling).
//!
//! Every sample is a full pass over the workload's event stream; the
//! reported figure is the **best** of `--iters N` passes (default 5)
//! divided by the stream's event count. `ALCHEMIST_BENCH_QUICK=1` drops to
//! one pass per path (the CI smoke mode).
//!
//! The output is a JSON array of `{workload, path, events, ns_per_event}`
//! objects — stable keys, one object per (workload, path) pair — so perf
//! trajectories can be diffed across commits without scraping bench logs.

use alchemist_core::{profile_batches_par, AlchemistProfiler, ProfileConfig};
use alchemist_trace::{decode_batches_par, TraceReader, TraceWriter};
use alchemist_vm::DEFAULT_BATCH_EVENTS;
use alchemist_workloads::Scale;
use std::io::Write as _;
use std::time::Instant;

fn quick_mode() -> bool {
    std::env::var_os("ALCHEMIST_BENCH_QUICK").is_some()
}

struct Row {
    workload: &'static str,
    path: &'static str,
    events: u64,
    ns_per_event: f64,
}

/// Times `f` (one full pass per call) `iters` times; returns best-of ns.
fn best_of<F: FnMut()>(iters: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_nanos() as f64);
    }
    best
}

fn measure_workload(w: &alchemist_workloads::Workload, iters: usize, rows: &mut Vec<Row>) {
    let module = w.module();
    let cfg = w.exec_config(Scale::Tiny);

    // Record once; every replay path reuses these bytes. Threaded
    // workloads need the v2 tid column; single-threaded ones stay on v1.
    let mut writer = if module.uses_threads() {
        TraceWriter::new_v2(Vec::new(), Some(w.source))
    } else {
        TraceWriter::new(Vec::new(), Some(w.source))
    }
    .expect("header");
    let outcome = alchemist_vm::run(&module, &cfg, &mut writer).expect("workload runs");
    let (bytes, stats) = writer.finish(outcome.steps).expect("finish");
    let events = stats.events;

    let live_ns = best_of(iters, || {
        let mut prof = AlchemistProfiler::new(&module, ProfileConfig::default());
        alchemist_vm::run(&module, &cfg, &mut prof).expect("workload runs");
        let _ = std::hint::black_box(prof.into_profile(outcome.steps));
    });
    rows.push(Row {
        workload: w.name,
        path: "live_profile",
        events,
        ns_per_event: live_ns / events as f64,
    });

    let seq_ns = best_of(iters, || {
        let mut reader = TraceReader::new(bytes.as_slice()).expect("header");
        let mut prof = AlchemistProfiler::new(&module, ProfileConfig::default());
        let summary = reader
            .replay_batched_into(&mut prof, DEFAULT_BATCH_EVENTS)
            .expect("replay");
        let _ = std::hint::black_box(prof.into_profile(summary.total_steps));
    });
    rows.push(Row {
        workload: w.name,
        path: "replay_profile_batched",
        events,
        ns_per_event: seq_ns / events as f64,
    });

    let par_ns = best_of(iters, || {
        let reader = TraceReader::new(bytes.as_slice()).expect("header");
        let (batches, summary) = decode_batches_par(reader, 4).expect("decode");
        let (profile, _, _) = profile_batches_par(
            &module,
            &batches,
            summary.total_steps,
            ProfileConfig::default(),
            4,
        );
        let _ = std::hint::black_box(profile);
    });
    rows.push(Row {
        workload: w.name,
        path: "replay_profile_batched_par4",
        events,
        ns_per_event: par_ns / events as f64,
    });
}

fn render_json(rows: &[Row]) -> String {
    let mut out = String::from("[\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"workload\": \"{}\", \"path\": \"{}\", \"events\": {}, \
             \"ns_per_event\": {:.2}}}{}\n",
            r.workload,
            r.path,
            r.events,
            r.ns_per_event,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("]\n");
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path: Option<String> = std::env::var("ALCHEMIST_BENCH_JSON").ok();
    let mut iters = if quick_mode() { 1 } else { 5 };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => out_path = Some(it.next().expect("--out needs a path").clone()),
            "--iters" => {
                iters = it
                    .next()
                    .expect("--iters needs a value")
                    .parse()
                    .expect("--iters: not a number");
            }
            // `cargo bench` forwards harness flags like `--bench`; ignore.
            _ => {}
        }
    }

    let mut rows = Vec::new();
    for w in alchemist_workloads::all() {
        eprintln!("measuring {} ({} passes per path)...", w.name, iters);
        measure_workload(w, iters, &mut rows);
    }
    let json = render_json(&rows);
    match out_path {
        Some(path) => {
            let mut f = std::fs::File::create(&path)
                .unwrap_or_else(|e| panic!("cannot create {path}: {e}"));
            f.write_all(json.as_bytes()).expect("write json");
            eprintln!("wrote {} rows to {path}", rows.len());
        }
        None => print!("{json}"),
    }
}
