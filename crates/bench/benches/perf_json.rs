//! Machine-readable perf harness: measures ns/event for the profiling hot
//! paths over every bundled workload and writes the results as JSON.
//!
//! This is the driver behind `BENCH_9.json` (the repo's perf trajectory):
//!
//! ```text
//! cargo bench -p alchemist-bench --bench perf_json -- --out BENCH_9.json
//! ```
//!
//! Paths measured per workload at `Scale::Tiny` (the base size):
//!
//! * `live_profile` — run the interpreter with the online profiler attached
//!   (the paper's Table III configuration);
//! * `live_profile_metrics` — the same path with an `obs::Metrics` handle
//!   attached to the interpreter (the `--metrics` configuration); the
//!   harness asserts the aggregate overhead stays under 5% ns/event;
//! * `replay_profile_batched` — sequential batched replay of a recorded
//!   trace into the profiler;
//! * `replay_profile_batched_par4` — the full `replay --jobs 4` pipeline
//!   (chunk-parallel decode + address-sharded batched profiling).
//!
//! The two replay paths are then re-measured at `Scale::Huge` (the
//! tens-of-millions-of-events regime where per-event costs dominate
//! setup and hand-off — the size parallel replay is for). In quick mode
//! only ogg and bzip2 run the scaled pair; a full run scales the whole
//! suite. On a machine with 2+ CPUs the harness **asserts** that par4
//! ns/event does not exceed sequential ns/event on ogg and bzip2 at the
//! scaled size; on a single-CPU machine the parallel pipeline cannot win
//! wall-clock by construction (every worker re-walks the control stream),
//! so the numbers are recorded but the gate is skipped.
//!
//! Every sample is a full pass over the workload's event stream; the
//! reported figure is the **best** of `--iters N` passes (default 5,
//! capped at 3 for the scaled sizes) divided by the stream's event count.
//! `ALCHEMIST_BENCH_QUICK=1` drops to one pass per base path (the CI
//! smoke mode).
//!
//! The output is a JSON object `{cpus, rows}` where `rows` is an array of
//! `{workload, path, scale, events, ns_per_event}` objects — stable keys,
//! one object per (workload, path, scale) triple — so perf trajectories
//! can be diffed across commits without scraping bench logs. `cpus`
//! records the parallelism the numbers were taken under.

use alchemist_core::{profile_batches_par, AlchemistProfiler, ProfileConfig};
use alchemist_obs::{Counter, Metrics};
use alchemist_trace::{decode_batches_par, TraceReader, TraceWriter};
use alchemist_vm::DEFAULT_BATCH_EVENTS;
use alchemist_workloads::Scale;
use std::io::Write as _;
use std::time::Instant;

fn quick_mode() -> bool {
    std::env::var_os("ALCHEMIST_BENCH_QUICK").is_some()
}

fn cpus() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

struct Row {
    workload: &'static str,
    path: &'static str,
    scale: Scale,
    events: u64,
    ns_per_event: f64,
}

/// Times `f` (one full pass per call) `iters` times; returns best-of ns.
fn best_of<F: FnMut()>(iters: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_nanos() as f64);
    }
    best
}

/// Records `w` at `scale` to an in-memory trace; returns the encoded bytes
/// the replay paths consume, the event count and the step count.
fn record(w: &alchemist_workloads::Workload, scale: Scale) -> (Vec<u8>, u64, u64) {
    let module = w.module();
    // Threaded workloads need the v2 tid column; single-threaded ones
    // stay on v1.
    let mut writer = if module.uses_threads() {
        TraceWriter::new_v2(Vec::new(), Some(w.source))
    } else {
        TraceWriter::new(Vec::new(), Some(w.source))
    }
    .expect("header");
    let outcome = alchemist_vm::run(&module, &w.exec_config(scale), &mut writer).expect("runs");
    let (bytes, stats) = writer.finish(outcome.steps).expect("finish");
    (bytes, stats.events, outcome.steps)
}

/// Measures the two replay paths (sequential batched, sharded `--jobs 4`)
/// over `bytes`; pushes one row each and returns their `(seq, par)`
/// ns/event for the scaled-size gate.
fn measure_replay(
    w: &alchemist_workloads::Workload,
    scale: Scale,
    bytes: &[u8],
    events: u64,
    iters: usize,
    rows: &mut Vec<Row>,
) -> (f64, f64) {
    let module = w.module();
    let seq_ns = best_of(iters, || {
        let mut reader = TraceReader::new(bytes).expect("header");
        let mut prof = AlchemistProfiler::new(&module, ProfileConfig::default());
        let summary = reader
            .replay_batched_into(&mut prof, DEFAULT_BATCH_EVENTS)
            .expect("replay");
        let _ = std::hint::black_box(prof.into_profile(summary.total_steps));
    });
    rows.push(Row {
        workload: w.name,
        path: "replay_profile_batched",
        scale,
        events,
        ns_per_event: seq_ns / events as f64,
    });

    let par_ns = best_of(iters, || {
        let reader = TraceReader::new(bytes).expect("header");
        let (batches, summary) = decode_batches_par(reader, 4).expect("decode");
        let (profile, _, _) = profile_batches_par(
            &module,
            &batches,
            summary.total_steps,
            ProfileConfig::default(),
            4,
        )
        .expect("no shard panic");
        let _ = std::hint::black_box(profile);
    });
    rows.push(Row {
        workload: w.name,
        path: "replay_profile_batched_par4",
        scale,
        events,
        ns_per_event: par_ns / events as f64,
    });
    (seq_ns / events as f64, par_ns / events as f64)
}

/// Accumulated best-of wall times for the metrics-overhead gate:
/// `(live_profile_ns, live_profile_metrics_ns)`, summed over workloads.
type OverheadTotals = (f64, f64);

/// The base-size (Tiny) measurement: all four paths.
fn measure_workload(
    w: &alchemist_workloads::Workload,
    iters: usize,
    rows: &mut Vec<Row>,
    totals: &mut OverheadTotals,
) {
    let module = w.module();
    let cfg = w.exec_config(Scale::Tiny);
    let (bytes, events, steps) = record(w, Scale::Tiny);

    // The live/metrics pair feeds the overhead assertion, so even quick
    // mode takes best-of-3: the minimum converges on the true pass time
    // and keeps a one-shot scheduling hiccup from tripping the gate.
    let oiters = iters.max(3);
    let live_ns = best_of(oiters, || {
        let mut prof = AlchemistProfiler::new(&module, ProfileConfig::default());
        alchemist_vm::run(&module, &cfg, &mut prof).expect("workload runs");
        let _ = std::hint::black_box(prof.into_profile(steps));
    });
    rows.push(Row {
        workload: w.name,
        path: "live_profile",
        scale: Scale::Tiny,
        events,
        ns_per_event: live_ns / events as f64,
    });

    let metrics_ns = best_of(oiters, || {
        let metrics = Metrics::new();
        let mut prof = AlchemistProfiler::new(&module, ProfileConfig::default());
        alchemist_vm::run_with_metrics(&module, &cfg, &mut prof, Some(&metrics))
            .expect("workload runs");
        let _ = std::hint::black_box(prof.into_profile(steps));
        assert_eq!(
            metrics.get(Counter::VmEvents),
            events,
            "meter sees every event"
        );
    });
    rows.push(Row {
        workload: w.name,
        path: "live_profile_metrics",
        scale: Scale::Tiny,
        events,
        ns_per_event: metrics_ns / events as f64,
    });
    totals.0 += live_ns;
    totals.1 += metrics_ns;

    measure_replay(w, Scale::Tiny, &bytes, events, iters, rows);
}

fn render_json(rows: &[Row]) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("\"cpus\": {},\n", cpus()));
    out.push_str("\"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"workload\": \"{}\", \"path\": \"{}\", \"scale\": \"{}\", \
             \"events\": {}, \"ns_per_event\": {:.2}}}{}\n",
            r.workload,
            r.path,
            r.scale.name(),
            r.events,
            r.ns_per_event,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("]\n}\n");
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path: Option<String> = std::env::var("ALCHEMIST_BENCH_JSON").ok();
    let mut iters = if quick_mode() { 1 } else { 5 };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => out_path = Some(it.next().expect("--out needs a path").clone()),
            "--iters" => {
                iters = it
                    .next()
                    .expect("--iters needs a value")
                    .parse()
                    .expect("--iters: not a number");
            }
            // `cargo bench` forwards harness flags like `--bench`; ignore.
            _ => {}
        }
    }

    let mut rows = Vec::new();
    let mut totals: OverheadTotals = (0.0, 0.0);
    for w in alchemist_workloads::all() {
        eprintln!("measuring {} ({} passes per path)...", w.name, iters);
        measure_workload(w, iters, &mut rows, &mut totals);
    }

    // Metrics must be observationally free: aggregated over every workload
    // (so per-workload timer noise averages out), attaching a Metrics
    // handle to the live profiling path may cost at most 5% ns/event. The
    // small absolute slack absorbs clock granularity on sub-ms passes.
    let (base_ns, metered_ns) = totals;
    let overhead = (metered_ns - base_ns) / base_ns * 100.0;
    eprintln!(
        "metrics-on overhead: {overhead:+.2}% ({:.3} ms -> {:.3} ms aggregate best-of)",
        base_ns / 1e6,
        metered_ns / 1e6
    );
    assert!(
        metered_ns <= base_ns * 1.05 + 50_000.0,
        "metrics-on live profiling exceeded the 5% overhead budget: \
         {base_ns:.0} ns -> {metered_ns:.0} ns ({overhead:+.2}%)"
    );

    // The scaled replay pair. Quick mode covers the two gate workloads;
    // a full run scales the whole suite. Passes are capped at 2-3: at
    // tens of millions of events one pass is milliseconds of work per
    // event column, and best-of converges fast.
    let scaled = Scale::Huge;
    let scaled_iters = iters.clamp(2, 3);
    let gate = cpus() >= 2;
    if !gate {
        eprintln!(
            "note: {} CPU available — recording scaled seq-vs-par numbers \
             but skipping the par4<=seq gate (a lone core cannot win \
             wall-clock by adding workers)",
            cpus()
        );
    }
    for w in alchemist_workloads::all() {
        let gated = w.name == "ogg" || w.name == "bzip2";
        if quick_mode() && !gated {
            continue;
        }
        eprintln!(
            "measuring {} at --scale {} ({scaled_iters} passes per path)...",
            w.name,
            scaled.name()
        );
        let (bytes, events, _) = record(w, scaled);
        let (seq, par) = measure_replay(w, scaled, &bytes, events, scaled_iters, &mut rows);
        eprintln!(
            "  {} events: seq {seq:.1} ns/event, par4 {par:.1} ns/event",
            events
        );
        if gate && gated {
            // 2% slack: the gate is "parallel replay wins", not "wins by
            // a margin that survives timer jitter".
            assert!(
                par <= seq * 1.02,
                "{} at --scale {}: par4 replay ({par:.1} ns/event) must not \
                 exceed sequential ({seq:.1} ns/event) on a {}-CPU machine",
                w.name,
                scaled.name(),
                cpus()
            );
        }
    }

    let json = render_json(&rows);
    match out_path {
        Some(path) => {
            let mut f = std::fs::File::create(&path)
                .unwrap_or_else(|e| panic!("cannot create {path}: {e}"));
            f.write_all(json.as_bytes()).expect("write json");
            eprintln!("wrote {} rows to {path}", rows.len());
        }
        None => print!("{json}"),
    }
}
