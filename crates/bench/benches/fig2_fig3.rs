//! Regenerates the paper's Fig. 2 (gzip ranked RAW profile) and Fig. 3
//! (flush_block WAR/WAW profile).

use alchemist_bench::fig2_fig3;
use alchemist_workloads::Scale;

fn main() {
    print!("{}", fig2_fig3(Scale::Default));
}
