//! Shadow-memory hot-path microbenchmarks.
//!
//! Isolates the structures the profiler hits once per memory event —
//! [`ShadowMemory::on_read`]/[`ShadowMemory::on_write`] and
//! [`DepProfile::record_dependence`] — from the interpreter, the trace
//! codec and the indexing stack, so layout changes (paging, inline read
//! sets, hashing) show up undiluted:
//!
//! * `dense_*` — every access lands in one page (the global-segment
//!   pattern): pure cell-update cost, page faulted once at warm-up;
//! * `paged_sparse_*` — accesses stride across many pages (high frame
//!   addresses, large arrays): adds the page-indexing and, during
//!   warm-up, the first-touch faulting the old sparse `HashMap` path
//!   used to pay per lookup;
//! * `readset_inline` vs `readset_spill` — the same rotating-reader
//!   pattern under a reader cap at the inline capacity vs far above it
//!   (spilled cells), bounding the cost of the heap fallback;
//! * `record_dependence_*` — the profile-map update walk against warm
//!   edge maps (the steady-state case: no new edges, only min/count
//!   updates).
//!
//! Set `ALCHEMIST_BENCH_QUICK=1` for the CI smoke mode (one short sample
//! per benchmark, reduced iteration counts).

use alchemist_core::shadow::{Access, DetectedDep, ShadowMemory};
use alchemist_core::{
    ConstructKind, ConstructPool, DepKind, DepProfile, INLINE_READERS, PAGE_WORDS,
};
use alchemist_vm::{Pc, Tid, Time};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn quick_mode() -> bool {
    std::env::var_os("ALCHEMIST_BENCH_QUICK").is_some()
}

fn acc(pc: u32, t: Time) -> Access<u32> {
    Access {
        pc: Pc(pc),
        t,
        node: 0,
        tid: Tid::MAIN,
    }
}

/// Consumes emitted dependences so the optimizer cannot drop the work.
fn sink(count: &mut u64) -> impl FnMut(DepKind, DetectedDep<u32>) + '_ {
    move |_, dep| *count += black_box(dep.addr) as u64 % 2
}

fn bench_shadow(c: &mut Criterion) {
    let events: u64 = if quick_mode() { 20_000 } else { 400_000 };

    let mut group = c.benchmark_group("shadow_hot_path");
    if quick_mode() {
        group.sample_size(1);
    }

    // Dense: reads and writes cycling over one page's worth of addresses,
    // ~3 reads per write (a typical workload mix), read sets within the
    // inline capacity.
    // Shadows live outside the measured closures: the warm-up pass faults
    // their pages, the timed passes measure steady state.
    let mut dense: ShadowMemory<u32> = ShadowMemory::with_dense_limit(8, 1024);
    group.bench_function("dense_mixed_rw", move |b| {
        let s = &mut dense;
        b.iter(|| {
            let mut emitted = 0u64;
            for i in 0..events {
                let addr = (i % 1024) as u32;
                let t = i as Time;
                if i % 4 == 3 {
                    s.on_write(addr, acc((i % 7) as u32, t), &mut sink(&mut emitted));
                } else if let Some(dep) = s.on_read(addr, acc((i % 3) as u32 + 10, t)) {
                    emitted += dep.addr as u64 % 2;
                }
            }
            black_box((s.len(), emitted))
        })
    });

    // Sparse/paged: the same mix but striding across one address per page
    // over 64 pages — the pattern the old HashMap backing served.
    // 64 pages fault during the warm-up pass; the timed passes measure the
    // steady-state two-level indexing the old HashMap path paid hashing
    // for.
    let mut sparse: ShadowMemory<u32> = ShadowMemory::new(8);
    group.bench_function("paged_sparse_mixed_rw", move |b| {
        let s = &mut sparse;
        b.iter(|| {
            let mut emitted = 0u64;
            for i in 0..events {
                let addr = ((i % 64) as u32) * PAGE_WORDS as u32 + 17;
                let t = i as Time;
                if i % 4 == 3 {
                    s.on_write(addr, acc((i % 7) as u32, t), &mut sink(&mut emitted));
                } else if let Some(dep) = s.on_read(addr, acc((i % 3) as u32 + 10, t)) {
                    emitted += dep.addr as u64 % 2;
                }
            }
            black_box((s.stats().pages_allocated, emitted))
        })
    });

    // Read-set pressure: rotate through more distinct read sites than the
    // inline capacity, then clear with a write. With the cap at the
    // inline capacity this exercises eviction; with a large cap it
    // exercises the spill path.
    let sites = (INLINE_READERS + 4) as u64;
    for (name, cap) in [
        ("readset_inline", INLINE_READERS),
        ("readset_spill", INLINE_READERS * 4),
    ] {
        let mut shadow: ShadowMemory<u32> = ShadowMemory::with_dense_limit(cap, 64);
        group.bench_function(name, move |b| {
            let s = &mut shadow;
            b.iter(|| {
                let mut emitted = 0u64;
                for i in 0..events {
                    let addr = (i % 16) as u32;
                    let t = i as Time;
                    if i % 32 == 31 {
                        s.on_write(addr, acc(1, t), &mut sink(&mut emitted));
                    } else {
                        let pc = 100 + (i % sites) as u32;
                        if let Some(dep) = s.on_read(addr, acc(pc, t)) {
                            emitted += dep.addr as u64 % 2;
                        }
                    }
                }
                black_box((s.dropped_readers, s.stats().read_set_spills, emitted))
            })
        });
    }

    group.finish();
}

fn bench_record_dependence(c: &mut Criterion) {
    let events: u64 = if quick_mode() { 20_000 } else { 400_000 };

    let mut group = c.benchmark_group("record_dependence");
    if quick_mode() {
        group.sample_size(1);
    }

    // A three-deep completed ancestor chain (branch in loop in method):
    // every record walks all three and updates each one's edge map.
    let mut pool = ConstructPool::new(1 << 20, 64);
    let method = pool.push_instance(Pc(0), ConstructKind::Method, None, 0);
    let lp = pool.push_instance(Pc(10), ConstructKind::Loop, Some(method), 1);
    let iff = pool.push_instance(Pc(20), ConstructKind::Branch, Some(lp), 2);
    pool.complete_instance(iff, 50);
    pool.complete_instance(lp, 60);
    pool.complete_instance(method, 70);

    // Steady state: a bounded working set of static edges, hit repeatedly.
    for (name, distinct_edges) in [("warm_few_edges", 4u32), ("warm_many_edges", 256u32)] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut profile = DepProfile::new();
                for i in 0..events {
                    let e = (i % distinct_edges as u64) as u32;
                    profile.record_dependence(
                        &pool,
                        if e.is_multiple_of(3) {
                            DepKind::Raw
                        } else {
                            DepKind::War
                        },
                        Pc(100 + e),
                        iff,
                        3 + (i % 40),
                        Pc(500 + e),
                        45,
                        e % 8,
                        Tid::MAIN,
                        Tid::MAIN,
                    );
                }
                black_box(profile.len())
            })
        });
    }

    group.finish();
}

fn benches(c: &mut Criterion) {
    bench_shadow(c);
    bench_record_dependence(c);
}

criterion_group!(
    name = suite;
    config = Criterion::default().sample_size(10);
    targets = benches
);
criterion_main!(suite);
