//! Regenerates the paper's Table IV: the parallelized code locations and
//! their static violating RAW/WAW/WAR conflict counts.

use alchemist_bench::{render_table4, table4};
use alchemist_workloads::Scale;

fn main() {
    println!("=== Table IV: parallelization experience (conflict profiles) ===\n");
    let rows = table4(Scale::Default);
    print!("{}", render_table4(&rows));
}
