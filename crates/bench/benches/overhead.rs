//! Criterion microbenchmarks for profiling overhead (E15): native VM
//! execution vs full Alchemist profiling on two representative workloads,
//! plus the raw cost of the indexing machinery on a loop-heavy kernel.

use alchemist_core::{profile_module, ProfileConfig};
use alchemist_vm::{compile_source, ExecConfig, NullSink};
use alchemist_workloads::Scale;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_workload(c: &mut Criterion, name: &'static str) {
    let w = alchemist_workloads::by_name(name).expect("workload");
    let module = w.module();
    let cfg = w.exec_config(Scale::Tiny);
    let mut group = c.benchmark_group(name);
    group.bench_function("native", |b| {
        b.iter(|| alchemist_vm::run(&module, &cfg, &mut NullSink).expect("runs"))
    });
    group.bench_function("profiled", |b| {
        b.iter(|| profile_module(&module, &cfg, ProfileConfig::default()).expect("runs"))
    });
    group.finish();
}

fn bench_indexing_kernel(c: &mut Criterion) {
    // A branch-heavy kernel: stresses predicate push/pop and rule 5.
    let module = compile_source(
        "int acc;
         int main() {
             int i;
             for (i = 0; i < 20000; i++) {
                 if (i % 3 == 0) { acc += i; } else { acc -= 1; }
                 if (i % 7 == 0) acc ^= i;
             }
             return acc;
         }",
    )
    .expect("kernel compiles");
    let cfg = ExecConfig::default();
    let mut group = c.benchmark_group("indexing_kernel");
    group.bench_function("native", |b| {
        b.iter(|| alchemist_vm::run(&module, &cfg, &mut NullSink).expect("runs"))
    });
    group.bench_function("profiled", |b| {
        b.iter(|| profile_module(&module, &cfg, ProfileConfig::default()).expect("runs"))
    });
    group.finish();
}

fn benches(c: &mut Criterion) {
    bench_workload(c, "gzip-1.3.5");
    bench_workload(c, "aes");
    bench_indexing_kernel(c);
}

criterion_group!(
    name = suite;
    config = Criterion::default().sample_size(10);
    targets = benches
);
criterion_main!(suite);
