//! Regenerates the paper's Table V: sequential vs parallel time and
//! speedup on 4 threads, via the deterministic schedule simulator with the
//! paper's transformations (privatization/reductions) applied.

use alchemist_bench::{render_table5, table5};
use alchemist_workloads::Scale;

fn main() {
    println!("=== Table V: simulated parallelization results (4 threads) ===\n");
    let rows = table5(Scale::Default, 4);
    print!("{}", render_table5(&rows));
    println!("\nShape check vs paper: bzip2/ogg near-linear, aes/par2 clearly");
    println!("sublinear, delaunay at or below 1 (not parallelizable).");
}
