//! Regenerates the paper's Table III: benchmarks, static/dynamic construct
//! counts, original vs profiled running time.
//!
//! The paper ran gzip/bzip2/parser/li/ogg/aes/par2/delaunay natively and
//! under Valgrind-based Alchemist (slowdowns 166-712x including Valgrind's
//! own 5-10x). Here both runs share the same VM, so the slowdown isolates
//! the profiling work itself (indexing + shadow memory + profile updates).

use alchemist_bench::{render_table3, table3};
use alchemist_workloads::Scale;

fn main() {
    println!("=== Table III: benchmarks and profiling overhead ===");
    println!("(scale = Default; times are host wall-clock)\n");
    let rows = table3(Scale::Default);
    print!("{}", render_table3(&rows));
    println!("\npaper: slowdowns of 166-712x on Valgrind; here the profiled");
    println!("run and the baseline share one VM, so the factor isolates the");
    println!("indexing/shadow-memory cost alone.");
}
