//! Deterministic input generation for the benchmark suite.
//!
//! Inputs are produced by a fixed-seed xorshift generator so every run of
//! every experiment sees identical data (the reproduction's numbers must be
//! stable). Each workload gets data shaped like its real counterpart's:
//! compressible literal streams for the compressors, word streams for the
//! parser, expression streams for the lisp interpreter, sample waves for
//! the audio encoder.

/// Input size scaling for experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scale {
    /// Very small inputs for fast unit tests.
    Tiny,
    /// Small inputs (quick benches).
    Small,
    /// The default experiment size.
    Default,
    /// Larger inputs for overhead measurements.
    Large,
    /// The tens-of-millions-of-events regime for parallel-replay benches:
    /// big enough that per-event costs dominate setup and hand-off.
    Huge,
}

impl Scale {
    /// Multiplier applied to each workload's base input size.
    pub fn factor(self) -> usize {
        match self {
            Scale::Tiny => 1,
            Scale::Small => 2,
            Scale::Default => 4,
            Scale::Large => 8,
            Scale::Huge => 64,
        }
    }

    /// Every scale, smallest first.
    pub fn all() -> [Scale; 5] {
        [
            Scale::Tiny,
            Scale::Small,
            Scale::Default,
            Scale::Large,
            Scale::Huge,
        ]
    }

    /// The scale's lowercase CLI name (`--scale` value).
    pub fn name(self) -> &'static str {
        match self {
            Scale::Tiny => "tiny",
            Scale::Small => "small",
            Scale::Default => "default",
            Scale::Large => "large",
            Scale::Huge => "huge",
        }
    }

    /// Parses a `--scale` value ([`Scale::name`] spelling).
    pub fn parse(s: &str) -> Option<Scale> {
        Scale::all().into_iter().find(|sc| sc.name() == s)
    }
}

/// A tiny deterministic xorshift64* generator.
#[derive(Debug, Clone)]
pub struct Xorshift {
    state: u64,
}

impl Xorshift {
    /// Creates a generator from a nonzero seed.
    pub fn new(seed: u64) -> Self {
        Xorshift { state: seed.max(1) }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform value in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound.max(1)
    }
}

/// A compressible literal stream: runs of repeated symbols drawn from a
/// small alphabet (gzip/bzip2-shaped data).
pub fn literal_stream(n: usize, seed: u64) -> Vec<i64> {
    let mut rng = Xorshift::new(seed);
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        let sym = rng.below(24) as i64;
        let run = 1 + rng.below(6) as usize;
        for _ in 0..run.min(n - out.len()) {
            out.push(sym);
        }
    }
    out
}

/// A word stream with a Zipf-ish skew (parser-shaped data; zero is the
/// paper's "empty entry" and is skipped by the dictionary reader).
pub fn word_stream(n: usize, seed: u64) -> Vec<i64> {
    let mut rng = Xorshift::new(seed);
    (0..n)
        .map(|_| {
            let r = rng.below(100);
            let w = if r < 50 {
                rng.below(40) // frequent words
            } else if r < 90 {
                40 + rng.below(400)
            } else {
                440 + rng.below(3000)
            };
            w as i64 + 1
        })
        .collect()
}

/// An expression stream for the lisp loader: op codes and literals.
pub fn expr_stream(n: usize, seed: u64) -> Vec<i64> {
    let mut rng = Xorshift::new(seed);
    (0..n).map(|_| rng.below(1024) as i64).collect()
}

/// A sampled waveform (ogg-shaped data): sum of two square-ish waves plus
/// noise, non-negative.
pub fn wave_stream(n: usize, seed: u64) -> Vec<i64> {
    let mut rng = Xorshift::new(seed);
    (0..n)
        .map(|i| {
            let a = if (i / 13) % 2 == 0 { 300 } else { 100 };
            let b = if (i / 37) % 2 == 0 { 200 } else { 0 };
            (a + b + rng.below(64) as i64).clamp(0, 1023)
        })
        .collect()
}

/// Uniform bytes (aes/par2-shaped data).
pub fn byte_stream(n: usize, seed: u64) -> Vec<i64> {
    let mut rng = Xorshift::new(seed);
    (0..n).map(|_| rng.below(256) as i64).collect()
}

/// Triangle qualities for the delaunay workload: mostly "bad" triangles so
/// the refinement loop has work.
pub fn quality_stream(n: usize, seed: u64) -> Vec<i64> {
    let mut rng = Xorshift::new(seed);
    (0..n).map(|_| rng.below(55) as i64).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(literal_stream(64, 7), literal_stream(64, 7));
        assert_eq!(word_stream(64, 7), word_stream(64, 7));
        assert_eq!(byte_stream(64, 7), byte_stream(64, 7));
        assert_eq!(wave_stream(64, 7), wave_stream(64, 7));
        assert_eq!(expr_stream(64, 7), expr_stream(64, 7));
        assert_eq!(quality_stream(64, 7), quality_stream(64, 7));
    }

    #[test]
    fn seeds_change_the_data() {
        assert_ne!(byte_stream(64, 1), byte_stream(64, 2));
    }

    #[test]
    fn sizes_are_exact() {
        for n in [0, 1, 63, 100] {
            assert_eq!(literal_stream(n, 3).len(), n);
            assert_eq!(word_stream(n, 3).len(), n);
        }
    }

    #[test]
    fn literal_stream_is_compressible() {
        let data = literal_stream(1000, 42);
        let repeats = data.windows(2).filter(|w| w[0] == w[1]).count();
        assert!(repeats > 200, "expected runs, got {repeats} repeats");
    }

    #[test]
    fn word_stream_avoids_zero() {
        assert!(word_stream(500, 9).iter().all(|&w| w > 0));
    }

    #[test]
    fn quality_stream_below_refinement_threshold() {
        assert!(quality_stream(200, 5).iter().all(|&q| q < 60));
    }

    #[test]
    fn scale_factors_are_monotone() {
        let all = Scale::all();
        for pair in all.windows(2) {
            assert!(pair[0].factor() < pair[1].factor(), "{pair:?}");
        }
    }

    #[test]
    fn scale_names_round_trip() {
        for sc in Scale::all() {
            assert_eq!(Scale::parse(sc.name()), Some(sc));
        }
        assert_eq!(Scale::parse("gigantic"), None);
    }
}
