//! # alchemist-workloads
//!
//! Mini-C reimplementations of the CGO 2009 Alchemist benchmark suite.
//!
//! The paper evaluates on real C programs (gzip-1.3.5, bzip2, 197.parser,
//! 130.li, oggenc, AES-CTR from OpenSSL, par2cmdline, Delaunay mesh
//! refinement). Those cannot run on this reproduction's VM, so each is
//! re-implemented as a mini-C program that preserves the properties the
//! experiments measure:
//!
//! * the **construct structure** (which loops/procedures dominate, how they
//!   nest, how often they run), and
//! * the **sharing pattern** (which globals flow between a construct and
//!   its continuation — e.g. gzip's `outcnt`/`bi_buf` trailing bytes,
//!   aes's `ivec` chain, par2's file-close handle, delaunay's worklist).
//!
//! Each [`Workload`] carries a parallelization recipe ([`ParallelSpec`])
//! transcribing the transformation the paper describes for it, which the
//! Table IV/V experiments consume.

#![warn(missing_docs)]

pub mod inputs;

pub use inputs::{Scale, Xorshift};

use alchemist_core::{profile_module, DepProfile, ProfileConfig};
use alchemist_vm::{compile_source, ExecConfig, ExecOutcome, Module, Pc, PredKind};

/// How to locate a construct to parallelize.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Target {
    /// The procedure with this source name.
    Function(&'static str),
    /// The `ordinal`-th loop predicate (by code order) within the named
    /// function.
    LoopIn {
        /// Containing function.
        func: &'static str,
        /// 0-based loop index within the function.
        ordinal: usize,
    },
}

/// The parallelization recipe for one workload, transcribed from the
/// paper's §IV-B description of what was done by hand.
#[derive(Debug, Clone, PartialEq)]
pub struct ParallelSpec {
    /// Constructs to spawn as futures.
    pub targets: &'static [Target],
    /// Globals whose conflicts the transformation removes (privatization,
    /// reductions, hoisted operations).
    pub privatized: &'static [&'static str],
    /// Speedup reported in the paper's Table V (absent for programs the
    /// paper analyzed but did not time).
    pub paper_speedup: Option<f64>,
    /// The range our simulated speedup is expected to fall in (the *shape*
    /// check: who scales, who doesn't).
    pub expected_speedup: (f64, f64),
}

/// One benchmark of the suite.
#[derive(Debug, Clone, PartialEq)]
pub struct Workload {
    /// Short name (matches the paper's Table III row).
    pub name: &'static str,
    /// Mini-C source.
    pub source: &'static str,
    /// Repo-relative path of the program file `source` was included from.
    pub source_path: &'static str,
    /// What the program models.
    pub description: &'static str,
    /// Base input size (scaled by [`Scale::factor`]).
    pub base_input: usize,
    /// RNG seed for input generation.
    pub seed: u64,
    /// Which generator shapes the input.
    pub input_kind: InputKind,
    /// Parallelization recipe, if the paper parallelized this program.
    pub parallel: Option<ParallelSpec>,
}

/// Which input generator a workload uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InputKind {
    /// Compressible literal runs.
    Literals,
    /// Dictionary/sentence words.
    Words,
    /// Lisp expression stream.
    Exprs,
    /// Audio samples.
    Waves,
    /// Uniform bytes.
    Bytes,
    /// Triangle qualities.
    Qualities,
}

impl Workload {
    /// Compiles the workload.
    ///
    /// # Panics
    ///
    /// Panics if the embedded source fails to compile (a bug in this crate).
    pub fn module(&self) -> Module {
        compile_source(self.source)
            .unwrap_or_else(|e| panic!("workload {} does not compile: {e}", self.name))
    }

    /// Generates the deterministic input for `scale`.
    pub fn input(&self, scale: Scale) -> Vec<i64> {
        let n = self.base_input * scale.factor();
        match self.input_kind {
            InputKind::Literals => inputs::literal_stream(n, self.seed),
            InputKind::Words => inputs::word_stream(n, self.seed),
            InputKind::Exprs => inputs::expr_stream(n, self.seed),
            InputKind::Waves => inputs::wave_stream(n, self.seed),
            InputKind::Bytes => inputs::byte_stream(n, self.seed),
            InputKind::Qualities => inputs::quality_stream(n, self.seed),
        }
    }

    /// Execution config with the scaled input.
    pub fn exec_config(&self, scale: Scale) -> ExecConfig {
        ExecConfig::with_input(self.input(scale))
    }

    /// Runs natively (no profiling).
    ///
    /// # Panics
    ///
    /// Panics if the workload traps (a bug in this crate).
    pub fn run_native(&self, scale: Scale) -> ExecOutcome {
        let module = self.module();
        alchemist_vm::run(
            &module,
            &self.exec_config(scale),
            &mut alchemist_vm::NullSink,
        )
        .unwrap_or_else(|e| panic!("workload {} trapped: {e}", self.name))
    }

    /// Runs under the Alchemist profiler.
    ///
    /// # Panics
    ///
    /// Panics if the workload traps.
    pub fn profile(&self, scale: Scale) -> (Module, DepProfile, ExecOutcome) {
        let module = self.module();
        let (profile, exec, _, _) =
            profile_module(&module, &self.exec_config(scale), ProfileConfig::default())
                .unwrap_or_else(|e| panic!("workload {} trapped: {e}", self.name));
        (module, profile, exec)
    }

    /// Source lines of the mini-C program (non-empty lines).
    pub fn loc(&self) -> usize {
        self.source.lines().filter(|l| !l.trim().is_empty()).count()
    }

    /// Resolves `target` in a compiled module.
    ///
    /// # Panics
    ///
    /// Panics if the target does not exist (a recipe/source mismatch).
    pub fn resolve_target(module: &Module, target: Target) -> Pc {
        match target {
            Target::Function(name) => {
                module
                    .func_by_name(name)
                    .unwrap_or_else(|| panic!("no function `{name}`"))
                    .1
                    .entry
            }
            Target::LoopIn { func, ordinal } => {
                let (_, fi) = module
                    .func_by_name(func)
                    .unwrap_or_else(|| panic!("no function `{func}`"));
                (fi.entry.0..fi.end.0)
                    .map(Pc)
                    .filter(|&pc| module.analysis.predicate_kind(pc) == Some(PredKind::Loop))
                    .nth(ordinal)
                    .unwrap_or_else(|| panic!("function `{func}` has no loop #{ordinal}"))
            }
        }
    }

    /// Resolves every target of the parallelization recipe.
    ///
    /// # Panics
    ///
    /// Panics if the workload has no recipe or a target is missing.
    pub fn resolve_targets(&self, module: &Module) -> Vec<Pc> {
        self.parallel
            .as_ref()
            .expect("workload has no parallelization recipe")
            .targets
            .iter()
            .map(|&t| Self::resolve_target(module, t))
            .collect()
    }
}

/// The full suite: the paper's eight benchmarks in Table III order
/// (197.parser, bzip2, gzip, 130.li, ogg, aes, par2, delaunay), followed
/// by three explicitly threaded workloads (producer_consumer, pipeline,
/// false_sharing) that exercise `spawn`/`join` and cross-thread
/// dependence classification.
pub fn all() -> &'static [Workload] {
    &SUITE
}

/// The paper's eight benchmarks (the prefix of [`all`] without the
/// threaded additions) — the set the Table III–V experiments run over.
pub fn paper_suite() -> &'static [Workload] {
    &all()[..8]
}

/// The explicitly threaded workloads (the `spawn`/`join` programs).
pub fn threaded_suite() -> &'static [Workload] {
    &all()[8..]
}

/// Looks a workload up by name.
pub fn by_name(name: &str) -> Option<&'static Workload> {
    all().iter().find(|w| w.name == name)
}

static SUITE: std::sync::LazyLock<Vec<Workload>> = std::sync::LazyLock::new(|| {
    vec![
        Workload {
            name: "197.parser",
            source: include_str!("../programs/parser197.mc"),
            source_path: "crates/workloads/programs/parser197.mc",
            description: "dictionary load (serial, I/O bound) + sentence parsing",
            base_input: 420,
            seed: 197,
            input_kind: InputKind::Words,
            parallel: Some(ParallelSpec {
                // The sentence loop (paper: loop at line 1302).
                targets: &[Target::LoopIn {
                    func: "main",
                    ordinal: 0,
                }],
                privatized: &["linkages"],
                paper_speedup: None,
                expected_speedup: (1.2, 4.0),
            }),
        },
        Workload {
            name: "bzip2",
            source: include_str!("../programs/bzip2.mc"),
            source_path: "crates/workloads/programs/bzip2.mc",
            description: "per-file block-sort compressor with shared BZFILE state",
            base_input: 420,
            seed: 256,
            input_kind: InputKind::Literals,
            parallel: Some(ParallelSpec {
                // The file loop in main; threads get private BZFILE state
                // and output buffers (paper section IV-B2).
                targets: &[Target::Function("compress_stream")],
                privatized: &[
                    "bzf_handle",
                    "bzf_in",
                    "bzf_bufpos",
                    "outbuf",
                    "outcnt",
                    "block",
                    "sorted",
                    "mtf",
                    "counts",
                ],
                paper_speedup: Some(3.46),
                expected_speedup: (2.4, 4.0),
            }),
        },
        Workload {
            name: "gzip-1.3.5",
            source: include_str!("../programs/gzip.mc"),
            source_path: "crates/workloads/programs/gzip.mc",
            description: "Fig. 2's zip/flush_block structure with bit packing",
            base_input: 600,
            seed: 135,
            input_kind: InputKind::Literals,
            parallel: Some(ParallelSpec {
                // flush_block as a future (paper section II); the
                // continuation's buffering continues while a block encodes.
                targets: &[Target::Function("flush_block")],
                privatized: &["flag_buf", "last_flags", "freq", "total_in"],
                paper_speedup: None,
                expected_speedup: (0.9, 3.0),
            }),
        },
        Workload {
            name: "130.li",
            source: include_str!("../programs/lisp130.mc"),
            source_path: "crates/workloads/programs/lisp130.mc",
            description: "xlisp-like loader + batch evaluation loop",
            base_input: 200,
            seed: 130,
            input_kind: InputKind::Exprs,
            parallel: Some(ParallelSpec {
                // The batch loop (paper: C2 in Fig. 6(d)); the loader
                // cursor is recomputed per thread (fixed-size loads).
                targets: &[Target::LoopIn {
                    func: "main",
                    ordinal: 0,
                }],
                privatized: &["load_cursor", "arena_top", "gc_count", "total"],
                paper_speedup: None,
                expected_speedup: (1.2, 4.0),
            }),
        },
        Workload {
            name: "ogg",
            source: include_str!("../programs/ogg.mc"),
            source_path: "crates/workloads/programs/ogg.mc",
            description: "per-file audio encoder with shared error/sample state",
            base_input: 512,
            seed: 101,
            input_kind: InputKind::Waves,
            parallel: Some(ParallelSpec {
                targets: &[Target::Function("encode_file")],
                privatized: &[
                    "errors",
                    "samples_read",
                    "outbuf",
                    "outcnt",
                    "frame",
                    "spectrum",
                ],
                paper_speedup: Some(3.95),
                expected_speedup: (2.8, 4.0),
            }),
        },
        Workload {
            name: "aes",
            source: include_str!("../programs/aes.mc"),
            source_path: "crates/workloads/programs/aes.mc",
            description: "counter-mode cipher; serial byte staging + ivec chain",
            base_input: 512,
            seed: 128,
            input_kind: InputKind::Bytes,
            parallel: Some(ParallelSpec {
                // Keystream+XOR as the future; each thread gets its own
                // recomputed counter state (paper section IV-B2, aes).
                targets: &[Target::Function("process_block")],
                privatized: &["ivec", "ecount", "num", "keystream", "blocks_done"],
                paper_speedup: Some(1.63),
                expected_speedup: (1.1, 2.7),
            }),
        },
        Workload {
            name: "par2",
            source: include_str!("../programs/par2.mc"),
            source_path: "crates/workloads/programs/par2.mc",
            description: "Reed-Solomon parity with serial staging I/O",
            base_input: 1024,
            seed: 742,
            input_kind: InputKind::Bytes,
            parallel: Some(ParallelSpec {
                // Both loops the paper parallelized: per-file verification
                // and per-output-block parity computation.
                targets: &[
                    Target::LoopIn {
                        func: "open_source_files",
                        ordinal: 0,
                    },
                    Target::LoopIn {
                        func: "process_data",
                        ordinal: 0,
                    },
                ],
                privatized: &["open_handle", "files_open", "scratch"],
                paper_speedup: Some(1.78),
                expected_speedup: (1.2, 2.8),
            }),
        },
        Workload {
            name: "delaunay",
            source: include_str!("../programs/delaunay.mc"),
            source_path: "crates/workloads/programs/delaunay.mc",
            description: "worklist mesh refinement; dense cross-iteration deps",
            base_input: 150,
            seed: 77,
            input_kind: InputKind::Qualities,
            parallel: Some(ParallelSpec {
                // The refinement loop. No transformation helps: the
                // worklist cursors chain every iteration (the paper's
                // negative result) — spawn overhead makes the "parallel"
                // version a net slowdown.
                targets: &[Target::LoopIn {
                    func: "main",
                    ordinal: 1,
                }],
                privatized: &[],
                paper_speedup: None,
                expected_speedup: (0.4, 1.1),
            }),
        },
        Workload {
            name: "producer_consumer",
            source: include_str!("../programs/producer_consumer.mc"),
            source_path: "crates/workloads/programs/producer_consumer.mc",
            description: "spawned producer fills a buffer the main thread consumes",
            base_input: 400,
            seed: 311,
            input_kind: InputKind::Bytes,
            // Already explicitly threaded in the source; the paper's
            // what-if parallelization question does not apply.
            parallel: None,
        },
        Workload {
            name: "pipeline",
            source: include_str!("../programs/pipeline.mc"),
            source_path: "crates/workloads/programs/pipeline.mc",
            description: "three-stage decode/filter/reduce pipeline, one thread per stage",
            base_input: 384,
            seed: 433,
            input_kind: InputKind::Bytes,
            parallel: None,
        },
        Workload {
            name: "false_sharing",
            source: include_str!("../programs/false_sharing.mc"),
            source_path: "crates/workloads/programs/false_sharing.mc",
            description: "two workers with disjoint slots contending on one shared word",
            base_input: 360,
            seed: 547,
            input_kind: InputKind::Bytes,
            parallel: None,
        },
    ]
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_the_papers_eight_benchmarks() {
        let names: Vec<_> = paper_suite().iter().map(|w| w.name).collect();
        assert_eq!(
            names,
            vec![
                "197.parser",
                "bzip2",
                "gzip-1.3.5",
                "130.li",
                "ogg",
                "aes",
                "par2",
                "delaunay"
            ]
        );
    }

    #[test]
    fn threaded_suite_spawns_and_the_paper_suite_does_not() {
        let names: Vec<_> = threaded_suite().iter().map(|w| w.name).collect();
        assert_eq!(
            names,
            vec!["producer_consumer", "pipeline", "false_sharing"]
        );
        for w in threaded_suite() {
            assert!(w.module().uses_threads(), "{} must spawn", w.name);
        }
        for w in paper_suite() {
            assert!(
                !w.module().uses_threads(),
                "{} must stay single-threaded",
                w.name
            );
        }
    }

    #[test]
    fn every_workload_compiles() {
        for w in all() {
            let m = w.module();
            assert!(!m.ops.is_empty(), "{} compiled empty", w.name);
        }
    }

    #[test]
    fn every_workload_runs_at_tiny_scale() {
        for w in all() {
            let out = w.run_native(Scale::Tiny);
            assert!(out.steps > 0, "{} executed nothing", w.name);
            assert!(!out.output.is_empty(), "{} printed nothing", w.name);
        }
    }

    #[test]
    fn runs_are_deterministic() {
        for w in all() {
            let a = w.run_native(Scale::Tiny);
            let b = w.run_native(Scale::Tiny);
            assert_eq!(a, b, "{} is nondeterministic", w.name);
        }
    }

    #[test]
    fn scaling_increases_work() {
        for w in all() {
            let small = w.run_native(Scale::Tiny).steps;
            let big = w.run_native(Scale::Default).steps;
            assert!(
                big > small,
                "{}: {big} steps at Default vs {small} at Tiny",
                w.name
            );
        }
    }

    #[test]
    fn by_name_finds_workloads() {
        assert!(by_name("gzip-1.3.5").is_some());
        assert!(by_name("nope").is_none());
    }

    #[test]
    fn parallel_targets_resolve() {
        for w in all() {
            if w.parallel.is_none() {
                continue;
            }
            let m = w.module();
            let targets = w.resolve_targets(&m);
            assert!(!targets.is_empty(), "{}", w.name);
        }
    }

    #[test]
    fn privatized_variables_exist() {
        for w in all() {
            let Some(spec) = &w.parallel else { continue };
            let m = w.module();
            for var in spec.privatized {
                assert!(
                    m.global_by_name(var).is_some(),
                    "{}: privatized variable `{var}` is not a global",
                    w.name
                );
            }
        }
    }

    #[test]
    fn loc_counts_nonempty_lines() {
        for w in all() {
            assert!(w.loc() > 30, "{} suspiciously small: {}", w.name, w.loc());
        }
    }
}
