//! # alchemist-trace
//!
//! Durable, replayable execution traces for the Alchemist event stream.
//!
//! The live pipeline couples instrumentation to analysis: the interpreter
//! pushes every [`TraceSink`] event straight into one online profiler, so
//! each additional analysis pays a full re-execution. This crate decouples
//! them. A [`TraceWriter`] — itself a `TraceSink` — records a run into a
//! compact binary artifact (`.alct`); a [`TraceReader`] replays that
//! artifact into *any* other sink, bit-for-bit identical to the live event
//! stream. Record once, then run dependence profiling, WAR/WAW analysis,
//! task extraction and the parallelism advisor as cheap offline passes —
//! or fan one replay out to several consumers at once with [`Tee`] /
//! [`MultiSink`].
//!
//! The format is chunked (self-delimiting blocks carrying their own event
//! counts and time ranges, see [`format`](mod@format)), so replay can skip or window
//! by time without decoding what it does not need, and delta/varint
//! encoded, averaging a few bytes per event. Chunks decode independently
//! of each other, so a trace can also be decoded chunk-parallel across
//! worker threads ([`decode_events_par`]). Traces can embed the mini-C
//! source of the recorded program, making the artifact self-contained.
//!
//! ## Record, then replay
//!
//! ```
//! use alchemist_trace::{TraceReader, TraceWriter};
//! use alchemist_vm::{compile_source, run, ExecConfig, RecordingSink};
//!
//! let src = "int g; int main() { int i; for (i = 0; i < 5; i++) g += i; return g; }";
//! let module = compile_source(src)?;
//!
//! // Record: the writer is a TraceSink, so the interpreter drives it.
//! let mut writer = TraceWriter::new(Vec::new(), Some(src)).unwrap();
//! let outcome = run(&module, &ExecConfig::default(), &mut writer).unwrap();
//! let (bytes, stats) = writer.finish(outcome.steps).unwrap();
//!
//! // Replay: the recorded stream equals the live one, event for event.
//! let mut live = RecordingSink::default();
//! run(&module, &ExecConfig::default(), &mut live).unwrap();
//! let mut reader = TraceReader::new(bytes.as_slice()).unwrap();
//! assert_eq!(reader.source(), Some(src));
//! let mut replayed = RecordingSink::default();
//! let summary = reader.replay_into(&mut replayed).unwrap();
//! assert_eq!(replayed, live);
//! assert_eq!(summary.total_steps, outcome.steps);
//! assert_eq!(summary.events, stats.events);
//! # Ok::<(), alchemist_lang::LangError>(())
//! ```
//!
//! Corrupt input never panics: every structural defect (foreign magic,
//! future version, mid-chunk EOF, undefined event tag, v3 CRC mismatch)
//! decodes to a typed [`TraceError`]. When losing the damaged part is
//! preferable to losing the whole trace, the salvage path —
//! [`TraceReader::read_raw_chunks_recover`] / [`decode_batches_par_recover`]
//! — skips corrupt or truncated chunks and tallies what was dropped in a
//! [`RecoveryReport`]. Files are produced crash-safely through the
//! [`atomic`] module's write-temp-then-rename commit.
//!
//! Beyond the event stream, the crate also persists the *result* of
//! profiling: the [`alcp`] module defines `.alcp` profile artifacts — a
//! sealed [`DepProfile`](alchemist_core::DepProfile) plus optional
//! embedded source and task summary — with the same varint/delta toolbox
//! and the same typed-error discipline ([`AlcpError`]). Artifacts from
//! separate runs merge offline through the order-independent
//! [`PartialProfile`](alchemist_core::PartialProfile) algebra.
//!
//! [`TraceSink`]: alchemist_vm::TraceSink

#![warn(missing_docs)]

pub mod alcp;
pub mod atomic;
pub mod error;
pub mod format;
pub mod par;
pub mod reader;
pub mod tee;
pub mod varint;
pub mod writer;

pub use alcp::{AlcpError, ProfileArtifact, ALCP_MAGIC, ALCP_VERSION};
pub use atomic::{write_atomic, AtomicFile};
pub use error::TraceError;
pub use par::{
    decode_batches_par, decode_batches_par_recover, decode_batches_par_with, decode_chunk,
    decode_chunk_into, decode_events_par,
};
pub use reader::{ChunkInfo, RawChunk, RecoveryReport, ReplaySummary, TraceReader};
pub use tee::{MultiSink, Tee};
pub use writer::{TraceStats, TraceWriter, DEFAULT_CHECKPOINT_CHUNKS, DEFAULT_CHUNK_EVENTS};
